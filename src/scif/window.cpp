#include "scif/window.hpp"

#include <algorithm>

namespace vphi::scif {

sim::Expected<RegOffset> WindowTable::add(std::byte* base, std::size_t len,
                                          RegOffset offset, int prot,
                                          int flags, bool fragmented) {
  if (base == nullptr || len == 0) return sim::Status::kInvalidArgument;
  if (len % kPageSize != 0) return sim::Status::kInvalidArgument;
  if (prot == 0) return sim::Status::kInvalidArgument;

  sim::MutexLock lock(mu_);
  RegOffset chosen;
  if ((flags & SCIF_MAP_FIXED) != 0) {
    if (offset < 0 || offset % static_cast<RegOffset>(kPageSize) != 0) {
      return sim::Status::kInvalidArgument;
    }
    if (overlaps_locked(offset, len)) return sim::Status::kAlreadyExists;
    chosen = offset;
  } else {
    chosen = next_dynamic_;
    next_dynamic_ += static_cast<RegOffset>(len);
  }
  windows_[chosen] = Window{chosen, len, base, prot, fragmented, 0};
  return chosen;
}

sim::Status WindowTable::remove(RegOffset offset, std::size_t len) {
  sim::MutexLock lock(mu_);
  auto it = windows_.find(offset);
  if (it == windows_.end() || it->second.len != len) {
    return sim::Status::kInvalidArgument;
  }
  if (it->second.mmap_refs > 0) return sim::Status::kBusy;
  windows_.erase(it);
  return sim::Status::kOk;
}

sim::Expected<std::vector<WindowSpan>> WindowTable::resolve(
    RegOffset offset, std::size_t len, int required_prot) const {
  if (len == 0) return std::vector<WindowSpan>{};
  sim::MutexLock lock(mu_);
  std::vector<WindowSpan> spans;
  RegOffset cursor = offset;
  std::size_t remaining = len;
  while (remaining > 0) {
    // Find the window containing `cursor`.
    auto it = windows_.upper_bound(cursor);
    if (it == windows_.begin()) return sim::Status::kNoSuchEntry;
    --it;
    const Window& w = it->second;
    if (cursor < w.offset ||
        cursor >= w.offset + static_cast<RegOffset>(w.len)) {
      return sim::Status::kNoSuchEntry;
    }
    if ((w.prot & required_prot) != required_prot) {
      return sim::Status::kAccessDenied;
    }
    const auto within = static_cast<std::size_t>(cursor - w.offset);
    const std::size_t take = std::min(remaining, w.len - within);
    spans.push_back(WindowSpan{w.base + within, take, w.fragmented});
    cursor += static_cast<RegOffset>(take);
    remaining -= take;
  }
  return spans;
}

sim::Status WindowTable::add_mmap_ref(RegOffset offset) {
  sim::MutexLock lock(mu_);
  auto it = windows_.upper_bound(offset);
  if (it == windows_.begin()) return sim::Status::kNoSuchEntry;
  --it;
  if (offset >= it->second.offset + static_cast<RegOffset>(it->second.len)) {
    return sim::Status::kNoSuchEntry;
  }
  ++it->second.mmap_refs;
  return sim::Status::kOk;
}

sim::Status WindowTable::drop_mmap_ref(RegOffset offset) {
  sim::MutexLock lock(mu_);
  auto it = windows_.upper_bound(offset);
  if (it == windows_.begin()) return sim::Status::kNoSuchEntry;
  --it;
  if (offset >= it->second.offset + static_cast<RegOffset>(it->second.len) ||
      it->second.mmap_refs == 0) {
    return sim::Status::kNoSuchEntry;
  }
  --it->second.mmap_refs;
  return sim::Status::kOk;
}

std::size_t WindowTable::count() const {
  sim::MutexLock lock(mu_);
  return windows_.size();
}

std::size_t WindowTable::total_bytes() const {
  sim::MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& [_, w] : windows_) total += w.len;
  return total;
}

bool WindowTable::overlaps_locked(RegOffset offset, std::size_t len) const {
  const RegOffset end = offset + static_cast<RegOffset>(len);
  auto it = windows_.lower_bound(offset);
  if (it != windows_.end() && it->first < end) return true;
  if (it != windows_.begin()) {
    --it;
    if (it->first + static_cast<RegOffset>(it->second.len) > offset) {
      return true;
    }
  }
  return false;
}

}  // namespace vphi::scif
