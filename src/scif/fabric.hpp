// The SCIF fabric: the set of nodes reachable over PCIe plus the shared
// readiness hub used by scif_poll().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "scif/node.hpp"
#include "scif/types.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace vphi::mic {
class Card;
}
namespace vphi::pcie {
class Link;
}

namespace vphi::scif {

/// Wakes scif_poll() waiters whenever any endpoint's readiness changes.
class PollHub {
 public:
  void notify() VPHI_EXCLUDES(mu_) {
    {
      sim::MutexLock lock(mu_);
      ++version_;
    }
    cv_.notify_all();
  }

  std::uint64_t version() const VPHI_EXCLUDES(mu_) {
    sim::MutexLock lock(mu_);
    return version_;
  }

  /// Wait (real time, bounded) until version changes from `seen`.
  /// Returns the new version, or `seen` on timeout.
  std::uint64_t wait_change(std::uint64_t seen, int timeout_ms)
      VPHI_EXCLUDES(mu_);

 private:
  mutable sim::Mutex mu_;
  sim::CondVar cv_;
  std::uint64_t version_ VPHI_GUARDED_BY(mu_) = 0;
};

class Fabric {
 public:
  explicit Fabric(const sim::CostModel& model);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Attach a card as the next SCIF node; returns its node id.
  NodeId attach_card(mic::Card& card);

  Node& host_node() noexcept { return *nodes_.front(); }
  Node* node(NodeId id) noexcept;
  std::uint16_t node_count() const noexcept {
    return static_cast<std::uint16_t>(nodes_.size());
  }

  /// The PCIe link data between `a` and `b` rides, or nullptr for
  /// host-local loopback. Card<->card peer-to-peer uses the initiator's
  /// card link (traffic crosses the host root complex either way).
  pcie::Link* link_between(NodeId a, NodeId b) noexcept;

  const sim::CostModel& model() const noexcept { return *model_; }
  PollHub& poll_hub() noexcept { return poll_hub_; }

  /// Per-tenant card-core occupancy accounting. Each backend charges the
  /// simulated time its host process spent servicing SCIF calls for one
  /// tenant (a VM, or a native host process) — which is exactly how the
  /// shared card's time divides across the VMs multiplexed onto it.
  /// Registered as "vphi.card.busy_ns" labeled "vm=<tenant>".
  /// Lock order: occupancy_mu_ -> registry mu_ (first charge for a tenant
  /// constructs its labeled Counter, which self-registers, while holding
  /// occupancy_mu_; the registry never calls back out).
  void charge_card_occupancy(const std::string& tenant, sim::Nanos busy_ns)
      VPHI_EXCLUDES(occupancy_mu_);
  /// tenant -> accumulated busy ns, for fairness computations.
  std::map<std::string, std::uint64_t> card_occupancy() const
      VPHI_EXCLUDES(occupancy_mu_);

 private:
  const sim::CostModel* model_;
  std::vector<std::unique_ptr<Node>> nodes_;
  PollHub poll_hub_;

  mutable sim::Mutex occupancy_mu_;
  std::map<std::string, std::unique_ptr<sim::metrics::Counter>>
      card_busy_by_tenant_ VPHI_GUARDED_BY(occupancy_mu_);
};

}  // namespace vphi::scif
