// The SCIF provider interface — the exact libscif surface.
//
// Applications, tools and the COI layer are written against this interface
// with descriptor-based calls that mirror Intel's libscif one to one. Two
// implementations exist:
//   * scif::HostProvider — the native path: descriptors resolve to kernel
//     endpoints on the local SCIF node (host process or card process);
//   * vphi::GuestScifProvider — the virtualized path inside a VM: every
//     call is forwarded through the vPHI frontend driver and virtio ring to
//     the QEMU backend, which replays it against a HostProvider.
// Because both present this same interface, everything above SCIF (COI,
// micnativeloadex, the benchmarks) runs unmodified in either environment —
// the paper's binary-compatibility property.
//
// All calls charge simulated time to the calling thread's sim::Actor
// (sim::this_actor()).
#pragma once

#include <cstddef>
#include <cstdint>

#include "scif/types.hpp"
#include "sim/status.hpp"

namespace vphi::mic {
class SysfsInfo;
}

namespace vphi::scif {

/// A live mapping created by Provider::mmap. `data` aliases remote (device)
/// memory; `cookie` identifies the mapping to munmap and the instrumented
/// accessors.
struct Mapping {
  std::byte* data = nullptr;
  std::size_t len = 0;
  RegOffset roffset = 0;
  std::uint64_t cookie = 0;

  bool valid() const noexcept { return data != nullptr; }
};

class Provider {
 public:
  virtual ~Provider() = default;

  // --- endpoint lifecycle (scif_open/close/bind/listen/connect/accept) ----
  virtual sim::Expected<int> open() = 0;
  virtual sim::Status close(int epd) = 0;
  virtual sim::Expected<Port> bind(int epd, Port pn) = 0;
  virtual sim::Status listen(int epd, int backlog) = 0;
  virtual sim::Status connect(int epd, PortId dst) = 0;
  virtual sim::Expected<AcceptResult> accept(int epd, int flags) = 0;

  // --- messaging (scif_send/scif_recv) -------------------------------------
  virtual sim::Expected<std::size_t> send(int epd, const void* msg,
                                          std::size_t len, int flags) = 0;
  virtual sim::Expected<std::size_t> recv(int epd, void* msg, std::size_t len,
                                          int flags) = 0;

  // --- registered memory & RMA ----------------------------------------------
  virtual sim::Expected<RegOffset> register_mem(int epd, void* addr,
                                                std::size_t len,
                                                RegOffset offset, int prot,
                                                int flags) = 0;
  virtual sim::Status unregister_mem(int epd, RegOffset offset,
                                     std::size_t len) = 0;
  virtual sim::Status readfrom(int epd, RegOffset loffset, std::size_t len,
                               RegOffset roffset, int flags) = 0;
  virtual sim::Status writeto(int epd, RegOffset loffset, std::size_t len,
                              RegOffset roffset, int flags) = 0;
  virtual sim::Status vreadfrom(int epd, void* addr, std::size_t len,
                                RegOffset roffset, int flags) = 0;
  virtual sim::Status vwriteto(int epd, void* addr, std::size_t len,
                               RegOffset roffset, int flags) = 0;

  // --- mmap (scif_mmap/scif_munmap) ------------------------------------------
  virtual sim::Expected<Mapping> mmap(int epd, RegOffset roffset,
                                      std::size_t len, int prot) = 0;
  virtual sim::Status munmap(Mapping& mapping) = 0;
  /// Instrumented access through a mapping (charges MMIO / fault costs).
  virtual sim::Status map_read(const Mapping& mapping, std::size_t off,
                               void* dst, std::size_t n) = 0;
  virtual sim::Status map_write(const Mapping& mapping, std::size_t off,
                                const void* src, std::size_t n) = 0;

  // --- synchronization ----------------------------------------------------------
  virtual sim::Expected<int> fence_mark(int epd, int flags) = 0;
  virtual sim::Status fence_wait(int epd, int mark) = 0;
  virtual sim::Status fence_signal(int epd, RegOffset loff, std::uint64_t lval,
                                   RegOffset roff, std::uint64_t rval,
                                   int flags) = 0;
  virtual sim::Expected<int> poll(PollEpd* epds, int nepds, int timeout_ms) = 0;

  // --- topology & platform info ----------------------------------------------
  virtual sim::Expected<NodeIds> get_node_ids() = 0;
  /// The MPSS sysfs view of card `index` (micnativeloadex reads this; vPHI
  /// forwards the host's table into the guest).
  virtual sim::Expected<mic::SysfsInfo> card_info(std::uint32_t index) = 0;
};

}  // namespace vphi::scif
