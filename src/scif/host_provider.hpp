// The native SCIF provider: what libscif + /dev/mic/scif give a process
// running directly on the host (or on the card's uOS). A HostProvider is
// constructed for a specific local node; each instance stands for one
// process's descriptor table.
#pragma once

#include <map>
#include <memory>

#include "scif/endpoint.hpp"
#include "scif/fabric.hpp"
#include "scif/provider.hpp"
#include "sim/thread_safety.hpp"

namespace vphi::scif {

class HostProvider final : public Provider {
 public:
  /// A provider for a process on `local_node` (kHostNode for host
  /// processes, a card's node id for uOS processes).
  HostProvider(Fabric& fabric, NodeId local_node);
  ~HostProvider() override;

  sim::Expected<int> open() override;
  sim::Status close(int epd) override;
  sim::Expected<Port> bind(int epd, Port pn) override;
  sim::Status listen(int epd, int backlog) override;
  sim::Status connect(int epd, PortId dst) override;
  sim::Expected<AcceptResult> accept(int epd, int flags) override;

  sim::Expected<std::size_t> send(int epd, const void* msg, std::size_t len,
                                  int flags) override;
  sim::Expected<std::size_t> recv(int epd, void* msg, std::size_t len,
                                  int flags) override;

  sim::Expected<RegOffset> register_mem(int epd, void* addr, std::size_t len,
                                        RegOffset offset, int prot,
                                        int flags) override;
  sim::Status unregister_mem(int epd, RegOffset offset,
                             std::size_t len) override;
  sim::Status readfrom(int epd, RegOffset loffset, std::size_t len,
                       RegOffset roffset, int flags) override;
  sim::Status writeto(int epd, RegOffset loffset, std::size_t len,
                      RegOffset roffset, int flags) override;
  sim::Status vreadfrom(int epd, void* addr, std::size_t len,
                        RegOffset roffset, int flags) override;
  sim::Status vwriteto(int epd, void* addr, std::size_t len, RegOffset roffset,
                       int flags) override;

  sim::Expected<Mapping> mmap(int epd, RegOffset roffset, std::size_t len,
                              int prot) override;
  sim::Status munmap(Mapping& mapping) override;
  sim::Status map_read(const Mapping& mapping, std::size_t off, void* dst,
                       std::size_t n) override;
  sim::Status map_write(const Mapping& mapping, std::size_t off,
                        const void* src, std::size_t n) override;

  sim::Expected<int> fence_mark(int epd, int flags) override;
  sim::Status fence_wait(int epd, int mark) override;
  sim::Status fence_signal(int epd, RegOffset loff, std::uint64_t lval,
                           RegOffset roff, std::uint64_t rval,
                           int flags) override;
  sim::Expected<int> poll(PollEpd* epds, int nepds, int timeout_ms) override;

  sim::Expected<NodeIds> get_node_ids() override;
  sim::Expected<mic::SysfsInfo> card_info(std::uint32_t index) override;

  /// Register windows on behalf of the vPHI backend: like register_mem but
  /// marks the backing as guest memory (two-level translated => per-page
  /// scatter-gather DMA cost).
  sim::Expected<RegOffset> register_guest_mem(int epd, void* addr,
                                              std::size_t len,
                                              RegOffset offset, int prot,
                                              int flags);
  /// vreadfrom/vwriteto variants over pinned guest memory (same marking).
  sim::Status vreadfrom_guest(int epd, void* addr, std::size_t len,
                              RegOffset roffset, int flags);
  sim::Status vwriteto_guest(int epd, void* addr, std::size_t len,
                             RegOffset roffset, int flags);

  /// Close every open descriptor (process exit): unblocks any thread
  /// parked in accept/recv on one of them.
  void close_all();

  Fabric& fabric() noexcept { return *fabric_; }
  NodeId local_node() const noexcept { return local_node_; }
  std::size_t open_descriptors() const VPHI_EXCLUDES(mu_);

  /// The endpoint behind a descriptor (tests / vphi backend plumbing).
  std::shared_ptr<Endpoint> endpoint(int epd) const VPHI_EXCLUDES(mu_);

 private:
  sim::Expected<std::shared_ptr<Endpoint>> lookup(int epd) const
      VPHI_EXCLUDES(mu_);

  Fabric* fabric_;
  NodeId local_node_;
  mutable sim::Mutex mu_;
  std::map<int, std::shared_ptr<Endpoint>> table_ VPHI_GUARDED_BY(mu_);
  std::map<std::uint64_t, MappedRegion> mappings_ VPHI_GUARDED_BY(mu_);
  int next_epd_ VPHI_GUARDED_BY(mu_) = 3;  // 0..2 feel like stdio; cosmetic
  std::uint64_t next_cookie_ VPHI_GUARDED_BY(mu_) = 1;
};

}  // namespace vphi::scif
