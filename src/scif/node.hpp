// A SCIF node: one participant in the fabric (the host is node 0; each Xeon
// Phi card is a node 1..N). Owns the node's port space and its reference to
// the card (for card nodes).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "scif/types.hpp"
#include "sim/status.hpp"
#include "sim/thread_safety.hpp"

namespace vphi::mic {
class Card;
}

namespace vphi::scif {

class Endpoint;
class Fabric;

class Node {
 public:
  Node(Fabric& fabric, NodeId id, mic::Card* card);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const noexcept { return id_; }
  Fabric& fabric() noexcept { return *fabric_; }
  /// Null for the host node.
  mic::Card* card() noexcept { return card_; }
  bool is_host() const noexcept { return card_ == nullptr; }

  /// Claim `pn`, or an ephemeral port when pn == 0.
  sim::Expected<Port> claim_port(Port pn) VPHI_EXCLUDES(mu_);
  void release_port(Port pn) VPHI_EXCLUDES(mu_);

  /// Register/unregister a listening endpoint on its bound port.
  sim::Status publish_listener(Port pn, std::shared_ptr<Endpoint> ep)
      VPHI_EXCLUDES(mu_);
  void retract_listener(Port pn) VPHI_EXCLUDES(mu_);
  std::shared_ptr<Endpoint> listener_at(Port pn) VPHI_EXCLUDES(mu_);

 private:
  Fabric* fabric_;
  NodeId id_;
  mic::Card* card_;

  sim::Mutex mu_;
  std::map<Port, bool> claimed_ VPHI_GUARDED_BY(mu_);  // port -> claimed
  std::map<Port, std::weak_ptr<Endpoint>> listeners_ VPHI_GUARDED_BY(mu_);
  Port next_ephemeral_ VPHI_GUARDED_BY(mu_) = kEphemeralBase;
};

}  // namespace vphi::scif
