// SCIF endpoint: the kernel-side object behind a scif_epd_t descriptor.
//
// Implements the full connection-oriented lifecycle (bind/listen/accept/
// connect), the two-way stream path (send/recv), the one-sided RMA path over
// registered windows ((v)readfrom/(v)writeto), scif_mmap, poll readiness and
// fences — with the simulated-time costs of the host SCIF driver, the PCIe
// link and the card-side uOS driver attached to each operation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "scif/stream.hpp"
#include "scif/types.hpp"
#include "scif/window.hpp"
#include "sim/actor.hpp"
#include "sim/status.hpp"
#include "sim/thread_safety.hpp"

namespace vphi::scif {

class Node;
class Fabric;
class Endpoint;

/// A live scif_mmap() mapping of remote registered memory.
///
/// On real hardware the returned pointer aliases Xeon Phi device memory
/// through a PCIe BAR; loads/stores are uncached MMIO. `data()` gives the
/// raw pointer (byte-exact); `read()/write()` are the instrumented accessors
/// that charge per-cacheline MMIO cost to the calling actor.
class MappedRegion {
 public:
  MappedRegion() = default;
  MappedRegion(std::shared_ptr<Endpoint> ep, RegOffset roffset, std::byte* ptr,
               std::size_t len);

  std::byte* data() noexcept { return ptr_; }
  const std::byte* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return len_; }
  RegOffset offset() const noexcept { return roffset_; }
  bool valid() const noexcept { return ptr_ != nullptr; }

  /// Instrumented load: copies [off, off+n) into dst, charging MMIO cost.
  sim::Status read(sim::Actor& actor, std::size_t off, void* dst,
                   std::size_t n) const;
  /// Instrumented store.
  sim::Status write(sim::Actor& actor, std::size_t off, const void* src,
                    std::size_t n);

  /// Tear down the mapping (what scif_munmap does): drops the window's
  /// mmap reference and invalidates this region.
  sim::Status release(sim::Actor& actor);

 private:
  friend class Endpoint;
  std::shared_ptr<Endpoint> ep_;  ///< keeps the window's owner alive
  RegOffset roffset_ = 0;
  std::byte* ptr_ = nullptr;
  std::size_t len_ = 0;
};

class Endpoint : public std::enable_shared_from_this<Endpoint> {
 public:
  enum class State {
    kUnbound,
    kBound,
    kListening,
    kConnecting,
    kConnected,
    kClosed,
  };

  explicit Endpoint(Node& node);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // --- lifecycle -------------------------------------------------------------
  sim::Expected<Port> bind(Port pn);
  sim::Status listen(int backlog);
  sim::Status connect(sim::Actor& actor, PortId dst);
  sim::Expected<std::shared_ptr<Endpoint>> accept(sim::Actor& actor, bool sync,
                                                  PortId* peer_out);
  sim::Status close();

  // --- two-way messaging -------------------------------------------------------
  sim::Expected<std::size_t> send(sim::Actor& actor, const void* msg,
                                  std::size_t len, int flags);
  sim::Expected<std::size_t> recv(sim::Actor& actor, void* msg,
                                  std::size_t len, int flags);

  // --- registered memory & RMA ---------------------------------------------------
  sim::Expected<RegOffset> register_mem(sim::Actor& actor, void* addr,
                                        std::size_t len, RegOffset offset,
                                        int prot, int flags,
                                        bool guest_backed = false);
  sim::Status unregister_mem(RegOffset offset, std::size_t len);

  sim::Status readfrom(sim::Actor& actor, RegOffset loffset, std::size_t len,
                       RegOffset roffset, int flags);
  sim::Status writeto(sim::Actor& actor, RegOffset loffset, std::size_t len,
                      RegOffset roffset, int flags);
  sim::Status vreadfrom(sim::Actor& actor, void* addr, std::size_t len,
                        RegOffset roffset, int flags,
                        bool guest_backed = false);
  sim::Status vwriteto(sim::Actor& actor, void* addr, std::size_t len,
                       RegOffset roffset, int flags,
                       bool guest_backed = false);

  sim::Expected<MappedRegion> mmap(sim::Actor& actor, RegOffset roffset,
                                   std::size_t len, int prot);
  sim::Status munmap(sim::Actor& actor, MappedRegion& region);

  // --- fences ------------------------------------------------------------------
  sim::Expected<int> fence_mark(sim::Actor& actor, int flags);
  sim::Status fence_wait(sim::Actor& actor, int mark);
  sim::Status fence_signal(sim::Actor& actor, RegOffset loff,
                           std::uint64_t lval, RegOffset roff,
                           std::uint64_t rval, int flags);

  // --- readiness -----------------------------------------------------------------
  /// Current poll bits against `events` plus the simulated time of the
  /// newest contributing event.
  short poll_events(short events) const;

  // --- introspection ----------------------------------------------------------------
  State state() const;
  Port port() const;
  PortId local_id() const;
  PortId peer_id() const;
  Node& node() noexcept { return *node_; }
  WindowTable& windows() noexcept { return windows_; }
  Stream& rx_for_test() noexcept { return rx_; }

 private:
  friend class Node;

  struct ConnRequest {
    std::shared_ptr<Endpoint> initiator;
    sim::Nanos ts;
  };

  /// Costs of entering the local SCIF driver (syscall + request handling).
  sim::Nanos driver_entry_cost() const;
  /// Delivery-time computation for `len` stream bytes leaving now, bound
  /// for `peer_node` (captured under mu_ by the caller).
  sim::Nanos stream_delivery_ts(sim::Actor& actor, NodeId peer_node,
                                std::size_t len);
  /// Issue one RMA of `len` bytes between resolved span lists.
  sim::Status rma_transfer(sim::Actor& actor,
                           const std::vector<WindowSpan>& dst,
                           const std::vector<WindowSpan>& src,
                           std::size_t len, int flags) VPHI_EXCLUDES(mu_);
  /// The connected peer, or nullptr — takes mu_ itself (safe snapshot).
  std::shared_ptr<Endpoint> connected_peer() const VPHI_EXCLUDES(mu_);
  void notify_readiness(sim::Nanos ts) VPHI_EXCLUDES(mu_);
  void record_rma_completion(sim::Nanos end) VPHI_EXCLUDES(rma_mu_);
  sim::Nanos outstanding_rma_max() const VPHI_EXCLUDES(rma_mu_);

  Node* node_;
  mutable sim::Mutex mu_;
  sim::CondVar cv_;
  State state_ VPHI_GUARDED_BY(mu_) = State::kUnbound;
  Port port_ VPHI_GUARDED_BY(mu_) = 0;
  bool port_claimed_ VPHI_GUARDED_BY(mu_) = false;

  // Connected pair.
  std::shared_ptr<Endpoint> peer_ VPHI_GUARDED_BY(mu_);
  PortId peer_id_ VPHI_GUARDED_BY(mu_){};
  sim::Nanos connect_done_ts_ VPHI_GUARDED_BY(mu_) = 0;
  sim::Status connect_result_ VPHI_GUARDED_BY(mu_) = sim::Status::kOk;

  // Listener.
  int backlog_limit_ VPHI_GUARDED_BY(mu_) = 0;
  std::vector<ConnRequest> backlog_ VPHI_GUARDED_BY(mu_);

  // Data paths (internally synchronized; not guarded by mu_).
  Stream rx_;
  WindowTable windows_;

  // Fences.
  mutable sim::Mutex rma_mu_;
  sim::Nanos last_rma_end_ VPHI_GUARDED_BY(rma_mu_) = 0;
  std::map<int, sim::Nanos> fence_marks_ VPHI_GUARDED_BY(rma_mu_);
  int next_mark_ VPHI_GUARDED_BY(rma_mu_) = 1;

  // Readiness bookkeeping.
  sim::Nanos last_event_ts_ VPHI_GUARDED_BY(mu_) = 0;
};

}  // namespace vphi::scif
