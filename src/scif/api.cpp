#include "scif/api.hpp"

namespace vphi::scif::api {

namespace {
thread_local Provider* g_provider = nullptr;
thread_local sim::Status g_last_error = sim::Status::kOk;

int fail(sim::Status s) {
  g_last_error = s;
  return -1;
}
}  // namespace

ProcessContext::ProcessContext(Provider& provider) : previous_(g_provider) {
  g_provider = &provider;
}

ProcessContext::~ProcessContext() { g_provider = previous_; }

Provider* current_provider() noexcept { return g_provider; }

sim::Status scif_last_error() noexcept { return g_last_error; }

scif_epd_t scif_open() {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  auto epd = g_provider->open();
  if (!epd) return fail(epd.status());
  return *epd;
}

int scif_close(scif_epd_t epd) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->close(epd);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_bind(scif_epd_t epd, Port pn) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  auto port = g_provider->bind(epd, pn);
  if (!port) return fail(port.status());
  return static_cast<int>(*port);
}

int scif_listen(scif_epd_t epd, int backlog) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->listen(epd, backlog);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_connect(scif_epd_t epd, const PortId* dst) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  if (dst == nullptr) return fail(sim::Status::kBadAddress);
  const auto s = g_provider->connect(epd, *dst);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_accept(scif_epd_t epd, PortId* peer, scif_epd_t* newepd, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  if (newepd == nullptr) return fail(sim::Status::kBadAddress);
  auto result = g_provider->accept(epd, flags);
  if (!result) return fail(result.status());
  *newepd = result->epd;
  if (peer != nullptr) *peer = result->peer;
  return 0;
}

long scif_send(scif_epd_t epd, const void* msg, std::size_t len, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  auto n = g_provider->send(epd, msg, len, flags);
  if (!n) return fail(n.status());
  return static_cast<long>(*n);
}

long scif_recv(scif_epd_t epd, void* msg, std::size_t len, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  auto n = g_provider->recv(epd, msg, len, flags);
  if (!n) return fail(n.status());
  return static_cast<long>(*n);
}

long scif_register(scif_epd_t epd, void* addr, std::size_t len,
                   RegOffset offset, int prot, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  auto off = g_provider->register_mem(epd, addr, len, offset, prot, flags);
  if (!off) return fail(off.status());
  return static_cast<long>(*off);
}

int scif_unregister(scif_epd_t epd, RegOffset offset, std::size_t len) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->unregister_mem(epd, offset, len);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_readfrom(scif_epd_t epd, RegOffset loffset, std::size_t len,
                  RegOffset roffset, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->readfrom(epd, loffset, len, roffset, flags);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_writeto(scif_epd_t epd, RegOffset loffset, std::size_t len,
                 RegOffset roffset, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->writeto(epd, loffset, len, roffset, flags);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_vreadfrom(scif_epd_t epd, void* addr, std::size_t len,
                   RegOffset roffset, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->vreadfrom(epd, addr, len, roffset, flags);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_vwriteto(scif_epd_t epd, void* addr, std::size_t len,
                  RegOffset roffset, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->vwriteto(epd, addr, len, roffset, flags);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_fence_mark(scif_epd_t epd, int flags, int* mark) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  if (mark == nullptr) return fail(sim::Status::kBadAddress);
  auto m = g_provider->fence_mark(epd, flags);
  if (!m) return fail(m.status());
  *mark = *m;
  return 0;
}

int scif_fence_wait(scif_epd_t epd, int mark) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->fence_wait(epd, mark);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_fence_signal(scif_epd_t epd, RegOffset loff, std::uint64_t lval,
                      RegOffset roff, std::uint64_t rval, int flags) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  const auto s = g_provider->fence_signal(epd, loff, lval, roff, rval, flags);
  return sim::ok(s) ? 0 : fail(s);
}

int scif_poll(PollEpd* epds, unsigned int nepds, long timeout_ms) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  auto n = g_provider->poll(epds, static_cast<int>(nepds),
                            static_cast<int>(timeout_ms));
  if (!n) return fail(n.status());
  return *n;
}

int scif_get_node_ids(NodeId* nodes, int len, NodeId* self) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  auto ids = g_provider->get_node_ids();
  if (!ids) return fail(ids.status());
  if (self != nullptr) *self = ids->self;
  if (nodes != nullptr) {
    for (int i = 0; i < len && i < static_cast<int>(ids->total); ++i) {
      nodes[i] = static_cast<NodeId>(i);
    }
  }
  return static_cast<int>(ids->total);
}

int scif_mmap(scif_epd_t epd, RegOffset roffset, std::size_t len, int prot,
              Mapping* out) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  if (out == nullptr) return fail(sim::Status::kBadAddress);
  auto mapping = g_provider->mmap(epd, roffset, len, prot);
  if (!mapping) return fail(mapping.status());
  *out = *mapping;
  return 0;
}

int scif_munmap(Mapping* mapping) {
  if (g_provider == nullptr) return fail(sim::Status::kNoDevice);
  if (mapping == nullptr) return fail(sim::Status::kBadAddress);
  const auto s = g_provider->munmap(*mapping);
  return sim::ok(s) ? 0 : fail(s);
}

}  // namespace vphi::scif::api
