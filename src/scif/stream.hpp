// Flow-controlled byte stream with simulated-time segments.
//
// scif_send/scif_recv have reliable byte-stream semantics with a bounded
// in-flight window (the driver's receive buffer). Each written segment
// carries the simulated time it becomes visible to the reader; a reader
// merges its clock with the newest segment it consumes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "sim/status.hpp"
#include "sim/time.hpp"

namespace vphi::scif {

class Stream {
 public:
  /// `capacity` bounds unread bytes; writers of more block (flow control).
  explicit Stream(std::size_t capacity = 4ull << 20) : capacity_(capacity) {}

  struct WriteResult {
    std::size_t written = 0;
  };
  struct ReadResult {
    std::size_t read = 0;
    sim::Nanos newest_ts = 0;  ///< visibility time of the last byte consumed
  };

  /// Append up to `len` bytes visible to readers at `ts`. If `blocking`,
  /// waits for window space and writes everything (or fails on reset);
  /// otherwise writes what fits now and may return 0 written with kWouldBlock.
  sim::Expected<WriteResult> write(const void* src, std::size_t len,
                                   sim::Nanos ts, bool blocking);

  /// Consume up to `len` bytes. If `blocking`, waits until *all* `len` bytes
  /// have been read (SCIF_RECV_BLOCK semantics) or the stream resets;
  /// otherwise returns whatever is available (kWouldBlock if none).
  sim::Expected<ReadResult> read(void* dst, std::size_t len, bool blocking);

  /// Bytes currently readable.
  std::size_t available() const;
  /// Space a non-blocking writer could use right now.
  std::size_t window() const;
  /// Visibility time of the oldest unread byte (0 if empty).
  sim::Nanos head_ts() const;

  /// Peer closed: readers drain remaining bytes then get kConnectionReset;
  /// writers fail immediately.
  void reset();
  bool is_reset() const;

  std::uint64_t total_written() const;

 private:
  struct Segment {
    std::vector<std::byte> data;
    std::size_t consumed = 0;  ///< bytes already read out of `data`
    sim::Nanos ts = 0;

    std::size_t unread() const noexcept { return data.size() - consumed; }
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<Segment> segments_;
  std::size_t unread_ = 0;
  std::uint64_t total_written_ = 0;
  bool reset_ = false;
};

}  // namespace vphi::scif
