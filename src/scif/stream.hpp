// Flow-controlled byte stream with simulated-time segments.
//
// scif_send/scif_recv have reliable byte-stream semantics with a bounded
// in-flight window (the driver's receive buffer). Each written segment
// carries the simulated time it becomes visible to the reader; a reader
// merges its clock with the newest segment it consumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/status.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace vphi::scif {

class Stream {
 public:
  /// `capacity` bounds unread bytes; writers of more block (flow control).
  explicit Stream(std::size_t capacity = 4ull << 20) : capacity_(capacity) {}

  struct WriteResult {
    std::size_t written = 0;
  };
  struct ReadResult {
    std::size_t read = 0;
    sim::Nanos newest_ts = 0;  ///< visibility time of the last byte consumed
  };

  /// Append up to `len` bytes visible to readers at `ts`. If `blocking`,
  /// waits for window space and writes everything (or fails on reset);
  /// otherwise writes what fits now and may return 0 written with kWouldBlock.
  sim::Expected<WriteResult> write(const void* src, std::size_t len,
                                   sim::Nanos ts, bool blocking)
      VPHI_EXCLUDES(mu_);

  /// Consume up to `len` bytes. If `blocking`, waits until *all* `len` bytes
  /// have been read (SCIF_RECV_BLOCK semantics) or the stream resets;
  /// otherwise returns whatever is available (kWouldBlock if none).
  sim::Expected<ReadResult> read(void* dst, std::size_t len, bool blocking)
      VPHI_EXCLUDES(mu_);

  /// Bytes currently readable.
  std::size_t available() const VPHI_EXCLUDES(mu_);
  /// Space a non-blocking writer could use right now.
  std::size_t window() const VPHI_EXCLUDES(mu_);
  /// Visibility time of the oldest unread byte (0 if empty).
  sim::Nanos head_ts() const VPHI_EXCLUDES(mu_);

  /// Peer closed: readers drain remaining bytes then get kConnectionReset;
  /// writers fail immediately.
  void reset() VPHI_EXCLUDES(mu_);
  bool is_reset() const VPHI_EXCLUDES(mu_);

  std::uint64_t total_written() const VPHI_EXCLUDES(mu_);

 private:
  struct Segment {
    std::vector<std::byte> data;
    std::size_t consumed = 0;  ///< bytes already read out of `data`
    sim::Nanos ts = 0;

    std::size_t unread() const noexcept { return data.size() - consumed; }
  };

  std::size_t capacity_;
  mutable sim::Mutex mu_;
  sim::CondVar readable_;
  sim::CondVar writable_;
  std::deque<Segment> segments_ VPHI_GUARDED_BY(mu_);
  std::size_t unread_ VPHI_GUARDED_BY(mu_) = 0;
  std::uint64_t total_written_ VPHI_GUARDED_BY(mu_) = 0;
  bool reset_ VPHI_GUARDED_BY(mu_) = false;
};

}  // namespace vphi::scif
