#include "scif/endpoint.hpp"

#include <algorithm>
#include <cstring>

#include "pcie/link.hpp"
#include "scif/fabric.hpp"
#include "scif/node.hpp"

namespace vphi::scif {

namespace {

/// Walk two span lists and copy `len` bytes from src spans to dst spans.
void copy_spans(const std::vector<WindowSpan>& dst,
                const std::vector<WindowSpan>& src, std::size_t len) {
  std::size_t di = 0, doff = 0, si = 0, soff = 0, moved = 0;
  while (moved < len) {
    const std::size_t dleft = dst[di].len - doff;
    const std::size_t sleft = src[si].len - soff;
    const std::size_t chunk = std::min({dleft, sleft, len - moved});
    std::memcpy(dst[di].base + doff, src[si].base + soff, chunk);
    doff += chunk;
    soff += chunk;
    moved += chunk;
    if (doff == dst[di].len) {
      ++di;
      doff = 0;
    }
    if (soff == src[si].len) {
      ++si;
      soff = 0;
    }
  }
}

bool any_fragmented(const std::vector<WindowSpan>& spans) {
  return std::any_of(spans.begin(), spans.end(),
                     [](const WindowSpan& s) { return s.fragmented; });
}

constexpr std::size_t kCacheLine = 64;

}  // namespace

// --- MappedRegion ------------------------------------------------------------

MappedRegion::MappedRegion(std::shared_ptr<Endpoint> ep, RegOffset roffset,
                           std::byte* ptr, std::size_t len)
    : ep_(std::move(ep)), roffset_(roffset), ptr_(ptr), len_(len) {}

sim::Status MappedRegion::read(sim::Actor& actor, std::size_t off, void* dst,
                               std::size_t n) const {
  if (!valid() || off + n > len_) return sim::Status::kOutOfRange;
  const auto& m = ep_->node().fabric().model();
  const std::size_t lines = (n + kCacheLine - 1) / kCacheLine;
  actor.advance(static_cast<sim::Nanos>(lines) * m.mmio_access_ns);
  std::memcpy(dst, ptr_ + off, n);
  return sim::Status::kOk;
}

sim::Status MappedRegion::write(sim::Actor& actor, std::size_t off,
                                const void* src, std::size_t n) {
  if (!valid() || off + n > len_) return sim::Status::kOutOfRange;
  const auto& m = ep_->node().fabric().model();
  const std::size_t lines = (n + kCacheLine - 1) / kCacheLine;
  actor.advance(static_cast<sim::Nanos>(lines) * m.mmio_access_ns);
  std::memcpy(ptr_ + off, src, n);
  return sim::Status::kOk;
}

// --- Endpoint lifecycle ----------------------------------------------------------

Endpoint::Endpoint(Node& node) : node_(&node) {}

Endpoint::~Endpoint() { close(); }

sim::Expected<Port> Endpoint::bind(Port pn) {
  sim::MutexLock lock(mu_);
  if (state_ != State::kUnbound) return sim::Status::kInvalidArgument;
  auto claimed = node_->claim_port(pn);
  if (!claimed) return claimed.status();
  port_ = *claimed;
  port_claimed_ = true;
  state_ = State::kBound;
  return port_;
}

sim::Status Endpoint::listen(int backlog) {
  if (backlog <= 0) return sim::Status::kInvalidArgument;
  sim::MutexLock lock(mu_);
  if (state_ != State::kBound) return sim::Status::kInvalidArgument;
  const auto published = node_->publish_listener(port_, shared_from_this());
  if (!sim::ok(published)) return published;
  backlog_limit_ = backlog;
  state_ = State::kListening;
  return sim::Status::kOk;
}

sim::Status Endpoint::connect(sim::Actor& actor, PortId dst) {
  {
    sim::MutexLock lock(mu_);
    if (state_ == State::kConnected) return sim::Status::kAlreadyConnected;
    if (state_ != State::kUnbound && state_ != State::kBound) {
      return sim::Status::kInvalidArgument;
    }
  }
  // Auto-bind to an ephemeral port, like the real driver.
  if (state() == State::kUnbound) {
    auto bound = bind(0);
    if (!bound) return bound.status();
  }

  Node* target = node_->fabric().node(dst.node);
  if (target == nullptr) return sim::Status::kNoDevice;
  auto listener = target->listener_at(dst.port);
  if (listener == nullptr) return sim::Status::kConnectionRefused;

  const auto& m = node_->fabric().model();
  // Connection request: syscall + driver + one PCIe hop to the remote driver.
  actor.advance(driver_entry_cost());
  sim::Nanos req_ts = actor.now();
  if (node_->fabric().link_between(node_->id(), dst.node) != nullptr) {
    req_ts += m.pcie_hop_ns;
  }
  req_ts += m.scif_card_driver_ns;

  // Enqueue on the listener's backlog.
  {
    sim::MutexLock lock(listener->mu_);
    if (listener->state_ != State::kListening) {
      return sim::Status::kConnectionRefused;
    }
    if (listener->backlog_.size() >=
        static_cast<std::size_t>(listener->backlog_limit_)) {
      return sim::Status::kConnectionRefused;
    }
    listener->backlog_.push_back(ConnRequest{shared_from_this(), req_ts});
    listener->last_event_ts_ = std::max(listener->last_event_ts_, req_ts);
  }
  {
    sim::MutexLock lock(mu_);
    state_ = State::kConnecting;
    connect_result_ = sim::Status::kOk;
  }
  listener->cv_.notify_all();
  listener->notify_readiness(req_ts);

  // Wait for the acceptor.
  sim::MutexLock lock(mu_);
  while (state_ == State::kConnecting) cv_.wait(mu_);
  if (state_ != State::kConnected) {
    return sim::ok(connect_result_) ? sim::Status::kConnectionRefused
                                    : connect_result_;
  }
  actor.sync_to(connect_done_ts_);
  return sim::Status::kOk;
}

sim::Expected<std::shared_ptr<Endpoint>> Endpoint::accept(sim::Actor& actor,
                                                          bool sync,
                                                          PortId* peer_out) {
  actor.advance(driver_entry_cost());
  ConnRequest req;
  {
    sim::MutexLock lock(mu_);
    if (state_ != State::kListening) return sim::Status::kNotListening;
    if (backlog_.empty() && !sync) return sim::Status::kWouldBlock;
    while (backlog_.empty() && state_ == State::kListening) cv_.wait(mu_);
    if (state_ != State::kListening) return sim::Status::kBadDescriptor;
    req = backlog_.front();
    backlog_.erase(backlog_.begin());
  }

  const auto& m = node_->fabric().model();
  actor.sync_and_advance(req.ts, m.scif_host_driver_ns);

  // Build the connected endpoint on this node.
  auto accepted = std::make_shared<Endpoint>(*node_);
  auto accepted_port = node_->claim_port(0);
  if (!accepted_port) return accepted_port.status();

  // Completion becomes visible to the initiator one hop later.
  sim::Nanos done_ts = actor.now();
  if (node_->fabric().link_between(node_->id(), req.initiator->node_->id()) !=
      nullptr) {
    done_ts += m.pcie_hop_ns;
  }

  {
    sim::MutexLock2 pair_lock(accepted->mu_, req.initiator->mu_);
    if (req.initiator->state_ != State::kConnecting) {
      // Initiator gave up (closed) while queued.
      node_->release_port(*accepted_port);
      return sim::Status::kConnectionReset;
    }
    accepted->port_ = *accepted_port;
    accepted->port_claimed_ = true;
    accepted->state_ = State::kConnected;
    accepted->peer_ = req.initiator;
    accepted->peer_id_ =
        PortId{req.initiator->node_->id(), req.initiator->port_};

    req.initiator->state_ = State::kConnected;
    req.initiator->peer_ = accepted;
    req.initiator->peer_id_ = PortId{node_->id(), accepted->port_};
    req.initiator->connect_done_ts_ = done_ts;
  }
  req.initiator->cv_.notify_all();
  req.initiator->notify_readiness(done_ts);

  if (peer_out != nullptr) {
    *peer_out = PortId{req.initiator->node_->id(), req.initiator->port_};
  }
  return accepted;
}

sim::Status Endpoint::close() {
  std::shared_ptr<Endpoint> peer;
  std::vector<ConnRequest> pending;
  {
    sim::MutexLock lock(mu_);
    if (state_ == State::kClosed) return sim::Status::kOk;
    if (state_ == State::kListening) {
      node_->retract_listener(port_);
      pending.swap(backlog_);
    }
    if (port_claimed_) {
      node_->release_port(port_);
      port_claimed_ = false;
    }
    peer = std::move(peer_);
    peer_.reset();
    const bool was_connecting = state_ == State::kConnecting;
    state_ = State::kClosed;
    if (was_connecting) connect_result_ = sim::Status::kInterrupted;
  }
  cv_.notify_all();
  rx_.reset();

  // Refuse any queued connectors.
  for (auto& req : pending) {
    {
      sim::MutexLock lock(req.initiator->mu_);
      if (req.initiator->state_ == State::kConnecting) {
        req.initiator->state_ = State::kClosed;
        req.initiator->connect_result_ = sim::Status::kConnectionRefused;
      }
    }
    req.initiator->cv_.notify_all();
  }

  if (peer != nullptr) {
    sim::Nanos peer_ts = 0;
    {
      sim::MutexLock lock(peer->mu_);
      peer->peer_.reset();
      peer_ts = peer->last_event_ts_;
    }
    peer->rx_.reset();
    peer->cv_.notify_all();
    peer->notify_readiness(peer_ts);
  }
  sim::Nanos self_ts = 0;
  {
    sim::MutexLock lock(mu_);
    self_ts = last_event_ts_;
  }
  notify_readiness(self_ts);
  return sim::Status::kOk;
}

// --- messaging -----------------------------------------------------------------

sim::Nanos Endpoint::driver_entry_cost() const {
  const auto& m = node_->fabric().model();
  return m.host_syscall_ns + m.scif_host_driver_ns;
}

sim::Nanos Endpoint::stream_delivery_ts(sim::Actor& actor, NodeId peer_node,
                                        std::size_t len) {
  const auto& m = node_->fabric().model();
  pcie::Link* link = node_->fabric().link_between(node_->id(), peer_node);
  if (link == nullptr) {
    // Host-local loopback: a kernel memcpy, no PCIe involved.
    const sim::Nanos dur =
        m.copy_setup_ns + sim::transfer_time(len, m.host_memcpy_Bps);
    return actor.advance(dur);
  }
  const sim::Nanos dur =
      m.dma_setup_ns + sim::transfer_time(len, m.scif_stream_bandwidth_Bps);
  const auto grant = link->occupy(actor.now(), dur, len);
  // scif_send with SCIF_SEND_BLOCK returns once the data is delivered and
  // acknowledged by the remote driver; the sender's clock follows delivery.
  const sim::Nanos arrival = grant.end + m.pcie_hop_ns + m.scif_card_driver_ns;
  actor.sync_to(arrival);
  return arrival;
}

sim::Expected<std::size_t> Endpoint::send(sim::Actor& actor, const void* msg,
                                          std::size_t len, int flags) {
  if (msg == nullptr && len > 0) return sim::Status::kBadAddress;
  std::shared_ptr<Endpoint> peer;
  NodeId peer_node{};
  {
    sim::MutexLock lock(mu_);
    if (state_ != State::kConnected) {
      return state_ == State::kClosed && peer_ == nullptr
                 ? sim::Status::kConnectionReset
                 : sim::Status::kNotConnected;
    }
    peer = peer_;
    peer_node = peer_id_.node;
  }
  if (peer == nullptr) return sim::Status::kConnectionReset;

  actor.advance(driver_entry_cost());
  const sim::Nanos arrival = stream_delivery_ts(actor, peer_node, len);

  const bool blocking = (flags & SCIF_SEND_BLOCK) != 0;
  auto written = peer->rx_.write(msg, len, arrival, blocking);
  if (!written) return written.status();
  peer->notify_readiness(arrival);
  peer->cv_.notify_all();
  return written->written;
}

sim::Expected<std::size_t> Endpoint::recv(sim::Actor& actor, void* msg,
                                          std::size_t len, int flags) {
  if (msg == nullptr && len > 0) return sim::Status::kBadAddress;
  {
    sim::MutexLock lock(mu_);
    if (state_ != State::kConnected && state_ != State::kClosed) {
      return sim::Status::kNotConnected;
    }
    if (state_ == State::kClosed && !rx_.is_reset() && rx_.available() == 0) {
      return sim::Status::kNotConnected;
    }
  }
  actor.advance(driver_entry_cost());
  const bool blocking = (flags & SCIF_RECV_BLOCK) != 0;
  auto got = rx_.read(msg, len, blocking);
  if (!got) return got.status();
  const auto& m = node_->fabric().model();
  actor.sync_and_advance(
      got->newest_ts,
      m.copy_setup_ns + sim::transfer_time(got->read, m.host_memcpy_Bps));
  notify_readiness(actor.now());
  return got->read;
}

// --- registered memory & RMA ----------------------------------------------------

sim::Expected<RegOffset> Endpoint::register_mem(sim::Actor& actor, void* addr,
                                                std::size_t len,
                                                RegOffset offset, int prot,
                                                int flags, bool guest_backed) {
  {
    sim::MutexLock lock(mu_);
    if (state_ != State::kConnected) return sim::Status::kNotConnected;
  }
  const auto& m = node_->fabric().model();
  const std::uint64_t pages = (len + WindowTable::kPageSize - 1) / WindowTable::kPageSize;
  actor.advance(driver_entry_cost() + pages * m.pin_per_page_ns);
  return windows_.add(static_cast<std::byte*>(addr), len, offset, prot, flags,
                      guest_backed);
}

sim::Status Endpoint::unregister_mem(RegOffset offset, std::size_t len) {
  return windows_.remove(offset, len);
}

sim::Status Endpoint::rma_transfer(sim::Actor& actor,
                                   const std::vector<WindowSpan>& dst,
                                   const std::vector<WindowSpan>& src,
                                   std::size_t len, int flags) {
  const auto& m = node_->fabric().model();
  const bool fragmented = any_fragmented(dst) || any_fragmented(src);
  NodeId peer_node{};
  {
    // peer_id_ is guarded by mu_; the RMA entry points check connectedness
    // via connected_peer() but release the lock before resolving windows,
    // so re-read the peer node here instead of touching peer_id_ unlocked.
    sim::MutexLock lock(mu_);
    peer_node = peer_id_.node;
  }
  pcie::Link* link = node_->fabric().link_between(node_->id(), peer_node);

  sim::Nanos end;
  if ((flags & SCIF_RMA_USECPU) != 0 || link == nullptr) {
    // CPU copy: programmed I/O through the BAR (or local memcpy on loopback).
    const double bw = link == nullptr ? m.host_memcpy_Bps : m.rma_cpu_bandwidth_Bps;
    end = actor.now() + m.copy_setup_ns + sim::transfer_time(len, bw);
  } else {
    const auto grant = link->dma(actor.now(), len, fragmented);
    end = grant.end;
  }
  copy_spans(dst, src, len);

  if ((flags & SCIF_RMA_SYNC) != 0) {
    actor.sync_to(end);
  }
  record_rma_completion(end);
  return sim::Status::kOk;
}

sim::Status Endpoint::readfrom(sim::Actor& actor, RegOffset loffset,
                               std::size_t len, RegOffset roffset, int flags) {
  std::shared_ptr<Endpoint> peer = connected_peer();
  if (peer == nullptr) return sim::Status::kNotConnected;
  if (len == 0) return sim::Status::kOk;
  actor.advance(driver_entry_cost());
  auto local = windows_.resolve(loffset, len, SCIF_PROT_WRITE);
  if (!local) return local.status();
  auto remote = peer->windows_.resolve(roffset, len, SCIF_PROT_READ);
  if (!remote) return remote.status();
  return rma_transfer(actor, *local, *remote, len, flags);
}

sim::Status Endpoint::writeto(sim::Actor& actor, RegOffset loffset,
                              std::size_t len, RegOffset roffset, int flags) {
  std::shared_ptr<Endpoint> peer = connected_peer();
  if (peer == nullptr) return sim::Status::kNotConnected;
  if (len == 0) return sim::Status::kOk;
  actor.advance(driver_entry_cost());
  auto local = windows_.resolve(loffset, len, SCIF_PROT_READ);
  if (!local) return local.status();
  auto remote = peer->windows_.resolve(roffset, len, SCIF_PROT_WRITE);
  if (!remote) return remote.status();
  return rma_transfer(actor, *remote, *local, len, flags);
}

sim::Status Endpoint::vreadfrom(sim::Actor& actor, void* addr, std::size_t len,
                                RegOffset roffset, int flags,
                                bool guest_backed) {
  std::shared_ptr<Endpoint> peer = connected_peer();
  if (peer == nullptr) return sim::Status::kNotConnected;
  if (addr == nullptr) return sim::Status::kBadAddress;
  if (len == 0) return sim::Status::kOk;
  const auto& m = node_->fabric().model();
  const std::uint64_t pages = (len + WindowTable::kPageSize - 1) / WindowTable::kPageSize;
  actor.advance(driver_entry_cost() + pages * m.pin_per_page_ns);
  auto remote = peer->windows_.resolve(roffset, len, SCIF_PROT_READ);
  if (!remote) return remote.status();
  std::vector<WindowSpan> local{{static_cast<std::byte*>(addr), len, guest_backed}};
  return rma_transfer(actor, local, *remote, len, flags);
}

sim::Status Endpoint::vwriteto(sim::Actor& actor, void* addr, std::size_t len,
                               RegOffset roffset, int flags,
                               bool guest_backed) {
  std::shared_ptr<Endpoint> peer = connected_peer();
  if (peer == nullptr) return sim::Status::kNotConnected;
  if (addr == nullptr) return sim::Status::kBadAddress;
  if (len == 0) return sim::Status::kOk;
  const auto& m = node_->fabric().model();
  const std::uint64_t pages = (len + WindowTable::kPageSize - 1) / WindowTable::kPageSize;
  actor.advance(driver_entry_cost() + pages * m.pin_per_page_ns);
  auto remote = peer->windows_.resolve(roffset, len, SCIF_PROT_WRITE);
  if (!remote) return remote.status();
  std::vector<WindowSpan> local{{static_cast<std::byte*>(addr), len, guest_backed}};
  return rma_transfer(actor, *remote, local, len, flags);
}

sim::Expected<MappedRegion> Endpoint::mmap(sim::Actor& actor,
                                           RegOffset roffset, std::size_t len,
                                           int prot) {
  std::shared_ptr<Endpoint> peer = connected_peer();
  if (peer == nullptr) return sim::Status::kNotConnected;
  if (len == 0) return sim::Status::kInvalidArgument;
  auto remote = peer->windows_.resolve(roffset, len, prot);
  if (!remote) return remote.status();
  if (remote->size() != 1) {
    // A single VA range cannot alias disjoint backings in the simulator.
    return sim::Status::kNotSupported;
  }
  const auto& m = node_->fabric().model();
  const std::uint64_t pages = (len + WindowTable::kPageSize - 1) / WindowTable::kPageSize;
  actor.advance(driver_entry_cost() + pages * m.mmap_setup_per_page_ns);
  const auto reffed = peer->windows_.add_mmap_ref(roffset);
  if (!sim::ok(reffed)) return reffed;
  return MappedRegion{peer, roffset, remote->front().base, len};
}

sim::Status MappedRegion::release(sim::Actor& actor) {
  if (!valid()) return sim::Status::kInvalidArgument;
  actor.advance(ep_->node().fabric().model().host_syscall_ns);
  const auto dropped = ep_->windows().drop_mmap_ref(roffset_);
  ptr_ = nullptr;
  len_ = 0;
  ep_.reset();
  return dropped;
}

sim::Status Endpoint::munmap(sim::Actor& actor, MappedRegion& region) {
  return region.release(actor);
}

// --- fences --------------------------------------------------------------------

void Endpoint::record_rma_completion(sim::Nanos end) {
  sim::MutexLock lock(rma_mu_);
  last_rma_end_ = std::max(last_rma_end_, end);
}

sim::Nanos Endpoint::outstanding_rma_max() const {
  sim::MutexLock lock(rma_mu_);
  return last_rma_end_;
}

sim::Expected<int> Endpoint::fence_mark(sim::Actor& actor, int flags) {
  std::shared_ptr<Endpoint> peer = connected_peer();
  if (peer == nullptr) return sim::Status::kNotConnected;
  actor.advance(node_->fabric().model().host_syscall_ns);
  sim::Nanos horizon = 0;
  if ((flags & SCIF_FENCE_INIT_SELF) != 0 || flags == 0) {
    horizon = std::max(horizon, outstanding_rma_max());
  }
  if ((flags & SCIF_FENCE_INIT_PEER) != 0) {
    horizon = std::max(horizon, peer->outstanding_rma_max());
  }
  sim::MutexLock lock(rma_mu_);
  const int mark = next_mark_++;
  fence_marks_[mark] = horizon;
  return mark;
}

sim::Status Endpoint::fence_wait(sim::Actor& actor, int mark) {
  sim::Nanos horizon;
  {
    sim::MutexLock lock(rma_mu_);
    auto it = fence_marks_.find(mark);
    if (it == fence_marks_.end()) return sim::Status::kInvalidArgument;
    horizon = it->second;
    fence_marks_.erase(it);
  }
  actor.sync_to(horizon);
  actor.advance(node_->fabric().model().host_syscall_ns);
  return sim::Status::kOk;
}

sim::Status Endpoint::fence_signal(sim::Actor& actor, RegOffset loff,
                                   std::uint64_t lval, RegOffset roff,
                                   std::uint64_t rval, int flags) {
  std::shared_ptr<Endpoint> peer = connected_peer();
  if (peer == nullptr) return sim::Status::kNotConnected;
  actor.advance(node_->fabric().model().host_syscall_ns);
  if ((flags & SCIF_SIGNAL_LOCAL) != 0) {
    auto span = windows_.resolve(loff, sizeof(lval), SCIF_PROT_WRITE);
    if (!span) return span.status();
    if (span->front().len < sizeof(lval)) return sim::Status::kInvalidArgument;
    std::memcpy(span->front().base, &lval, sizeof(lval));
  }
  if ((flags & SCIF_SIGNAL_REMOTE) != 0) {
    auto span = peer->windows_.resolve(roff, sizeof(rval), SCIF_PROT_WRITE);
    if (!span) return span.status();
    if (span->front().len < sizeof(rval)) return sim::Status::kInvalidArgument;
    std::memcpy(span->front().base, &rval, sizeof(rval));
    peer->notify_readiness(std::max(actor.now(), outstanding_rma_max()));
  }
  return sim::Status::kOk;
}

// --- readiness ------------------------------------------------------------------

void Endpoint::notify_readiness(sim::Nanos ts) {
  {
    sim::MutexLock lock(mu_);
    last_event_ts_ = std::max(last_event_ts_, ts);
  }
  node_->fabric().poll_hub().notify();
}

short Endpoint::poll_events(short events) const {
  sim::MutexLock lock(mu_);
  short revents = 0;
  switch (state_) {
    case State::kListening:
      if ((events & SCIF_POLLIN) != 0 && !backlog_.empty()) {
        revents |= SCIF_POLLIN;
      }
      break;
    case State::kConnected:
      if ((events & SCIF_POLLIN) != 0 &&
          (rx_.available() > 0 || rx_.is_reset())) {
        revents |= SCIF_POLLIN;
      }
      if ((events & SCIF_POLLOUT) != 0) {
        if (peer_ != nullptr && peer_->rx_.window() > 0) {
          revents |= SCIF_POLLOUT;
        }
      }
      if (peer_ == nullptr) revents |= SCIF_POLLHUP;
      break;
    case State::kClosed:
      if (rx_.available() > 0 && (events & SCIF_POLLIN) != 0) {
        revents |= SCIF_POLLIN;
      }
      revents |= SCIF_POLLHUP;
      break;
    default:
      revents |= SCIF_POLLERR;
      break;
  }
  return revents;
}

// --- introspection -----------------------------------------------------------------

Endpoint::State Endpoint::state() const {
  sim::MutexLock lock(mu_);
  return state_;
}

Port Endpoint::port() const {
  sim::MutexLock lock(mu_);
  return port_;
}

PortId Endpoint::local_id() const {
  sim::MutexLock lock(mu_);
  return PortId{node_->id(), port_};
}

PortId Endpoint::peer_id() const {
  sim::MutexLock lock(mu_);
  return peer_id_;
}

std::shared_ptr<Endpoint> Endpoint::connected_peer() const {
  sim::MutexLock lock(mu_);
  return state_ == State::kConnected ? peer_ : nullptr;
}

}  // namespace vphi::scif
