#include "scif/fabric.hpp"

#include <chrono>

#include "mic/card.hpp"
#include "scif/endpoint.hpp"

namespace vphi::scif {

std::uint64_t PollHub::wait_change(std::uint64_t seen, int timeout_ms) {
  sim::MutexLock lock(mu_);
  if (timeout_ms < 0) {
    while (version_ == seen) cv_.wait(mu_);
  } else {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (version_ == seen &&
           cv_.wait_until(mu_, deadline) != std::cv_status::timeout) {
    }
  }
  return version_;
}

Fabric::Fabric(const sim::CostModel& model) : model_(&model) {
  nodes_.push_back(std::make_unique<Node>(*this, kHostNode, nullptr));
}

Fabric::~Fabric() = default;

NodeId Fabric::attach_card(mic::Card& card) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, id, &card));
  return id;
}

Node* Fabric::node(NodeId id) noexcept {
  if (id >= nodes_.size()) return nullptr;
  return nodes_[id].get();
}

void Fabric::charge_card_occupancy(const std::string& tenant,
                                   sim::Nanos busy_ns) {
  if (busy_ns <= 0) return;
  sim::MutexLock lock(occupancy_mu_);
  auto it = card_busy_by_tenant_.find(tenant);
  if (it == card_busy_by_tenant_.end()) {
    it = card_busy_by_tenant_
             .emplace(tenant, std::make_unique<sim::metrics::Counter>(
                                  "vphi.card.busy_ns", "vm=" + tenant))
             .first;
  }
  it->second->inc(static_cast<std::uint64_t>(busy_ns));
}

std::map<std::string, std::uint64_t> Fabric::card_occupancy() const {
  sim::MutexLock lock(occupancy_mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [tenant, counter] : card_busy_by_tenant_) {
    out[tenant] = counter->value();
  }
  return out;
}

pcie::Link* Fabric::link_between(NodeId a, NodeId b) noexcept {
  if (a == kHostNode && b == kHostNode) return nullptr;
  // Use the non-host node's link; for card<->card pick the initiator's.
  const NodeId card_node = a == kHostNode ? b : a;
  Node* n = node(card_node);
  if (n == nullptr || n->card() == nullptr) return nullptr;
  return &n->card()->link();
}

}  // namespace vphi::scif
