#include "scif/host_provider.hpp"

#include <vector>

#include "mic/card.hpp"
#include "mic/sysfs.hpp"
#include "sim/actor.hpp"

namespace vphi::scif {

HostProvider::HostProvider(Fabric& fabric, NodeId local_node)
    : fabric_(&fabric), local_node_(local_node) {}

HostProvider::~HostProvider() { close_all(); }

void HostProvider::close_all() {
  std::map<int, std::shared_ptr<Endpoint>> table;
  {
    sim::MutexLock lock(mu_);
    table.swap(table_);
  }
  for (auto& [_, ep] : table) ep->close();
}

sim::Expected<std::shared_ptr<Endpoint>> HostProvider::lookup(int epd) const {
  sim::MutexLock lock(mu_);
  auto it = table_.find(epd);
  if (it == table_.end()) return sim::Status::kBadDescriptor;
  return it->second;
}

sim::Expected<int> HostProvider::open() {
  Node* node = fabric_->node(local_node_);
  if (node == nullptr) return sim::Status::kNoDevice;
  auto ep = std::make_shared<Endpoint>(*node);
  sim::MutexLock lock(mu_);
  const int epd = next_epd_++;
  table_[epd] = std::move(ep);
  return epd;
}

sim::Status HostProvider::close(int epd) {
  std::shared_ptr<Endpoint> ep;
  {
    sim::MutexLock lock(mu_);
    auto it = table_.find(epd);
    if (it == table_.end()) return sim::Status::kBadDescriptor;
    ep = std::move(it->second);
    table_.erase(it);
  }
  return ep->close();
}

sim::Expected<Port> HostProvider::bind(int epd, Port pn) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->bind(pn);
}

sim::Status HostProvider::listen(int epd, int backlog) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->listen(backlog);
}

sim::Status HostProvider::connect(int epd, PortId dst) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->connect(sim::this_actor(), dst);
}

sim::Expected<AcceptResult> HostProvider::accept(int epd, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  PortId peer;
  auto accepted = (*ep)->accept(sim::this_actor(),
                                (flags & SCIF_ACCEPT_SYNC) != 0, &peer);
  if (!accepted) return accepted.status();
  sim::MutexLock lock(mu_);
  const int new_epd = next_epd_++;
  table_[new_epd] = std::move(*accepted);
  return AcceptResult{new_epd, peer};
}

sim::Expected<std::size_t> HostProvider::send(int epd, const void* msg,
                                              std::size_t len, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->send(sim::this_actor(), msg, len, flags);
}

sim::Expected<std::size_t> HostProvider::recv(int epd, void* msg,
                                              std::size_t len, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->recv(sim::this_actor(), msg, len, flags);
}

sim::Expected<RegOffset> HostProvider::register_mem(int epd, void* addr,
                                                    std::size_t len,
                                                    RegOffset offset, int prot,
                                                    int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->register_mem(sim::this_actor(), addr, len, offset, prot, flags,
                             /*guest_backed=*/false);
}

sim::Expected<RegOffset> HostProvider::register_guest_mem(int epd, void* addr,
                                                          std::size_t len,
                                                          RegOffset offset,
                                                          int prot,
                                                          int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->register_mem(sim::this_actor(), addr, len, offset, prot, flags,
                             /*guest_backed=*/true);
}

sim::Status HostProvider::unregister_mem(int epd, RegOffset offset,
                                         std::size_t len) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->unregister_mem(offset, len);
}

sim::Status HostProvider::readfrom(int epd, RegOffset loffset, std::size_t len,
                                   RegOffset roffset, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->readfrom(sim::this_actor(), loffset, len, roffset, flags);
}

sim::Status HostProvider::writeto(int epd, RegOffset loffset, std::size_t len,
                                  RegOffset roffset, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->writeto(sim::this_actor(), loffset, len, roffset, flags);
}

sim::Status HostProvider::vreadfrom(int epd, void* addr, std::size_t len,
                                    RegOffset roffset, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->vreadfrom(sim::this_actor(), addr, len, roffset, flags,
                          /*guest_backed=*/false);
}

sim::Status HostProvider::vwriteto(int epd, void* addr, std::size_t len,
                                   RegOffset roffset, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->vwriteto(sim::this_actor(), addr, len, roffset, flags,
                         /*guest_backed=*/false);
}

sim::Status HostProvider::vreadfrom_guest(int epd, void* addr, std::size_t len,
                                          RegOffset roffset, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->vreadfrom(sim::this_actor(), addr, len, roffset, flags,
                          /*guest_backed=*/true);
}

sim::Status HostProvider::vwriteto_guest(int epd, void* addr, std::size_t len,
                                         RegOffset roffset, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->vwriteto(sim::this_actor(), addr, len, roffset, flags,
                         /*guest_backed=*/true);
}

sim::Expected<Mapping> HostProvider::mmap(int epd, RegOffset roffset,
                                          std::size_t len, int prot) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  auto region = (*ep)->mmap(sim::this_actor(), roffset, len, prot);
  if (!region) return region.status();
  sim::MutexLock lock(mu_);
  const std::uint64_t cookie = next_cookie_++;
  Mapping mapping{region->data(), region->size(), roffset, cookie};
  mappings_[cookie] = std::move(*region);
  return mapping;
}

sim::Status HostProvider::munmap(Mapping& mapping) {
  if (!mapping.valid()) return sim::Status::kInvalidArgument;
  MappedRegion region;
  {
    sim::MutexLock lock(mu_);
    auto it = mappings_.find(mapping.cookie);
    if (it == mappings_.end()) return sim::Status::kInvalidArgument;
    region = std::move(it->second);
    mappings_.erase(it);
  }
  mapping = Mapping{};
  return region.release(sim::this_actor());
}

sim::Status HostProvider::map_read(const Mapping& mapping, std::size_t off,
                                   void* dst, std::size_t n) {
  sim::MutexLock lock(mu_);
  auto it = mappings_.find(mapping.cookie);
  if (it == mappings_.end()) return sim::Status::kInvalidArgument;
  return it->second.read(sim::this_actor(), off, dst, n);
}

sim::Status HostProvider::map_write(const Mapping& mapping, std::size_t off,
                                    const void* src, std::size_t n) {
  sim::MutexLock lock(mu_);
  auto it = mappings_.find(mapping.cookie);
  if (it == mappings_.end()) return sim::Status::kInvalidArgument;
  return it->second.write(sim::this_actor(), off, src, n);
}

sim::Expected<int> HostProvider::fence_mark(int epd, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->fence_mark(sim::this_actor(), flags);
}

sim::Status HostProvider::fence_wait(int epd, int mark) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->fence_wait(sim::this_actor(), mark);
}

sim::Status HostProvider::fence_signal(int epd, RegOffset loff,
                                       std::uint64_t lval, RegOffset roff,
                                       std::uint64_t rval, int flags) {
  auto ep = lookup(epd);
  if (!ep) return ep.status();
  return (*ep)->fence_signal(sim::this_actor(), loff, lval, roff, rval, flags);
}

sim::Expected<int> HostProvider::poll(PollEpd* epds, int nepds,
                                      int timeout_ms) {
  if (epds == nullptr || nepds <= 0) return sim::Status::kInvalidArgument;
  auto& actor = sim::this_actor();
  const auto& m = fabric_->model();
  actor.advance(m.host_syscall_ns);
  PollHub& hub = fabric_->poll_hub();
  std::uint64_t seen = hub.version();
  for (;;) {
    int ready = 0;
    for (int i = 0; i < nepds; ++i) {
      auto ep = lookup(epds[i].epd);
      if (!ep) {
        epds[i].revents = SCIF_POLLNVAL;
        ++ready;
        continue;
      }
      epds[i].revents = (*ep)->poll_events(epds[i].events);
      if (epds[i].revents != 0) ++ready;
    }
    if (ready > 0 || timeout_ms == 0) return ready;
    const std::uint64_t now_version = hub.wait_change(seen, timeout_ms);
    if (now_version == seen && timeout_ms > 0) {
      // Timed out: the wait itself consumes the timeout in simulated time.
      actor.advance(static_cast<sim::Nanos>(timeout_ms) * sim::kMillisecond);
      return 0;
    }
    seen = now_version;
  }
}

sim::Expected<NodeIds> HostProvider::get_node_ids() {
  return NodeIds{fabric_->node_count(), local_node_};
}

sim::Expected<mic::SysfsInfo> HostProvider::card_info(std::uint32_t index) {
  Node* node = fabric_->node(static_cast<NodeId>(index + 1));
  if (node == nullptr || node->card() == nullptr) {
    return sim::Status::kNoDevice;
  }
  return node->card()->sysfs();
}

std::size_t HostProvider::open_descriptors() const {
  sim::MutexLock lock(mu_);
  return table_.size();
}

std::shared_ptr<Endpoint> HostProvider::endpoint(int epd) const {
  auto ep = lookup(epd);
  return ep ? *ep : nullptr;
}

}  // namespace vphi::scif
