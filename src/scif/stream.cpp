#include "scif/stream.hpp"

#include <algorithm>
#include <cstring>

namespace vphi::scif {

sim::Expected<Stream::WriteResult> Stream::write(const void* src,
                                                 std::size_t len,
                                                 sim::Nanos ts, bool blocking) {
  const auto* bytes = static_cast<const std::byte*>(src);
  std::size_t written = 0;
  sim::MutexLock lock(mu_);
  while (written < len) {
    if (reset_) return sim::Status::kConnectionReset;
    std::size_t space = capacity_ - unread_;
    if (space == 0) {
      if (!blocking) break;
      while (unread_ >= capacity_ && !reset_) writable_.wait(mu_);
      continue;
    }
    const std::size_t chunk = std::min(space, len - written);
    Segment seg;
    seg.ts = ts;
    seg.data.assign(bytes + written, bytes + written + chunk);
    segments_.push_back(std::move(seg));
    unread_ += chunk;
    total_written_ += chunk;
    written += chunk;
    readable_.notify_all();
  }
  if (written == 0 && len > 0) return sim::Status::kWouldBlock;
  return WriteResult{written};
}

sim::Expected<Stream::ReadResult> Stream::read(void* dst, std::size_t len,
                                               bool blocking) {
  auto* out = static_cast<std::byte*>(dst);
  ReadResult result;
  sim::MutexLock lock(mu_);
  while (result.read < len) {
    if (unread_ == 0) {
      if (reset_) {
        // Drained a reset stream: report what we got, or the reset itself.
        if (result.read > 0) return result;
        return sim::Status::kConnectionReset;
      }
      if (!blocking) break;
      while (unread_ == 0 && !reset_) readable_.wait(mu_);
      continue;
    }
    Segment& seg = segments_.front();
    const std::size_t chunk = std::min(seg.unread(), len - result.read);
    std::memcpy(out + result.read, seg.data.data() + seg.consumed, chunk);
    seg.consumed += chunk;
    result.newest_ts = std::max(result.newest_ts, seg.ts);
    if (seg.unread() == 0) segments_.pop_front();
    unread_ -= chunk;
    result.read += chunk;
    writable_.notify_all();
  }
  if (result.read == 0 && len > 0) return sim::Status::kWouldBlock;
  return result;
}

std::size_t Stream::available() const {
  sim::MutexLock lock(mu_);
  return unread_;
}

std::size_t Stream::window() const {
  sim::MutexLock lock(mu_);
  return capacity_ - unread_;
}

sim::Nanos Stream::head_ts() const {
  sim::MutexLock lock(mu_);
  return segments_.empty() ? 0 : segments_.front().ts;
}

void Stream::reset() {
  {
    sim::MutexLock lock(mu_);
    reset_ = true;
  }
  readable_.notify_all();
  writable_.notify_all();
}

bool Stream::is_reset() const {
  sim::MutexLock lock(mu_);
  return reset_;
}

std::uint64_t Stream::total_written() const {
  sim::MutexLock lock(mu_);
  return total_written_;
}

}  // namespace vphi::scif
