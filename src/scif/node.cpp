#include "scif/node.hpp"

#include "scif/endpoint.hpp"

namespace vphi::scif {

Node::Node(Fabric& fabric, NodeId id, mic::Card* card)
    : fabric_(&fabric), id_(id), card_(card) {}

sim::Expected<Port> Node::claim_port(Port pn) {
  sim::MutexLock lock(mu_);
  if (pn != 0) {
    if (claimed_.count(pn) != 0) return sim::Status::kAddressInUse;
    claimed_[pn] = true;
    return pn;
  }
  // Ephemeral allocation: scan forward from the cursor, wrapping once.
  for (std::uint32_t i = 0; i < 65'536 - kEphemeralBase; ++i) {
    Port candidate = static_cast<Port>(
        kEphemeralBase +
        (static_cast<std::uint32_t>(next_ephemeral_ - kEphemeralBase) + i) %
            (65'536u - kEphemeralBase));
    if (claimed_.count(candidate) == 0) {
      claimed_[candidate] = true;
      next_ephemeral_ = static_cast<Port>(candidate + 1);
      if (next_ephemeral_ < kEphemeralBase) next_ephemeral_ = kEphemeralBase;
      return candidate;
    }
  }
  return sim::Status::kNoSpace;
}

void Node::release_port(Port pn) {
  sim::MutexLock lock(mu_);
  claimed_.erase(pn);
  listeners_.erase(pn);
}

sim::Status Node::publish_listener(Port pn, std::shared_ptr<Endpoint> ep) {
  sim::MutexLock lock(mu_);
  if (claimed_.count(pn) == 0) return sim::Status::kInvalidArgument;
  listeners_[pn] = std::move(ep);
  return sim::Status::kOk;
}

void Node::retract_listener(Port pn) {
  sim::MutexLock lock(mu_);
  listeners_.erase(pn);
}

std::shared_ptr<Endpoint> Node::listener_at(Port pn) {
  sim::MutexLock lock(mu_);
  auto it = listeners_.find(pn);
  if (it == listeners_.end()) return nullptr;
  return it->second.lock();
}

}  // namespace vphi::scif
