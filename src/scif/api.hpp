// C-style libscif shim.
//
// The exact function surface of Intel's libscif, routed to whichever
// Provider is bound to the calling process context. This is the layer the
// paper's "no recompilation needed" claim lives at: a program written
// against scif_open()/scif_send()/... runs on the host (HostProvider bound)
// or inside a VM (GuestScifProvider bound) without source changes.
//
// Calls return 0 / a non-negative count on success and -1 on failure with
// the Status available via scif_last_error(), mirroring errno semantics.
#pragma once

#include <cstddef>

#include "scif/provider.hpp"
#include "scif/types.hpp"
#include "sim/status.hpp"

namespace vphi::scif::api {

using scif_epd_t = int;

/// Bind `provider` as the process context for the C-style calls on this
/// thread and its children (RAII; nests).
class ProcessContext {
 public:
  explicit ProcessContext(Provider& provider);
  ~ProcessContext();

  ProcessContext(const ProcessContext&) = delete;
  ProcessContext& operator=(const ProcessContext&) = delete;

 private:
  Provider* previous_;
};

/// The provider bound to this thread (nullptr if none).
Provider* current_provider() noexcept;

/// Status of the most recent failed call on this thread (errno analogue).
sim::Status scif_last_error() noexcept;

scif_epd_t scif_open();
int scif_close(scif_epd_t epd);
int scif_bind(scif_epd_t epd, Port pn);
int scif_listen(scif_epd_t epd, int backlog);
int scif_connect(scif_epd_t epd, const PortId* dst);
int scif_accept(scif_epd_t epd, PortId* peer, scif_epd_t* newepd, int flags);
long scif_send(scif_epd_t epd, const void* msg, std::size_t len, int flags);
long scif_recv(scif_epd_t epd, void* msg, std::size_t len, int flags);
long scif_register(scif_epd_t epd, void* addr, std::size_t len,
                   RegOffset offset, int prot, int flags);
int scif_unregister(scif_epd_t epd, RegOffset offset, std::size_t len);
int scif_readfrom(scif_epd_t epd, RegOffset loffset, std::size_t len,
                  RegOffset roffset, int flags);
int scif_writeto(scif_epd_t epd, RegOffset loffset, std::size_t len,
                 RegOffset roffset, int flags);
int scif_vreadfrom(scif_epd_t epd, void* addr, std::size_t len,
                   RegOffset roffset, int flags);
int scif_vwriteto(scif_epd_t epd, void* addr, std::size_t len,
                  RegOffset roffset, int flags);
int scif_fence_mark(scif_epd_t epd, int flags, int* mark);
int scif_fence_wait(scif_epd_t epd, int mark);
int scif_fence_signal(scif_epd_t epd, RegOffset loff, std::uint64_t lval,
                      RegOffset roff, std::uint64_t rval, int flags);
int scif_poll(PollEpd* epds, unsigned int nepds, long timeout_ms);
int scif_get_node_ids(NodeId* nodes, int len, NodeId* self);

/// scif_mmap/scif_munmap use the Mapping value type rather than raw void*
/// because the simulator must track the mapping cookie.
int scif_mmap(scif_epd_t epd, RegOffset roffset, std::size_t len, int prot,
              Mapping* out);
int scif_munmap(Mapping* mapping);

}  // namespace vphi::scif::api
