// SCIF (Symmetric Communication Interface) public types and constants.
//
// This mirrors Intel's scif.h so code written against the real API ports
// 1:1: the same names, the same flag semantics, the same port-space rules.
// vPHI's transparency claim rests on keeping this surface identical between
// the host provider and the guest (virtualized) provider.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vphi::scif {

/// SCIF node id: the host is always node 0; cards are 1..N.
using NodeId = std::uint16_t;
/// Port number within a node's port space.
using Port = std::uint16_t;
/// Offset in an endpoint's registered address space.
using RegOffset = std::int64_t;

inline constexpr NodeId kHostNode = 0;

/// Ports below this are reserved for privileged services (the COI daemon
/// listens on one); ephemeral binds allocate at or above it.
inline constexpr Port kPortReserved = 1'088;
/// First port handed out by the ephemeral allocator.
inline constexpr Port kEphemeralBase = 2'048;

/// (node, port) pair identifying one end of a connection — scif_portID.
struct PortId {
  NodeId node = 0;
  Port port = 0;

  friend bool operator==(const PortId&, const PortId&) = default;
};

// --- Flags (values mirror Intel scif.h where public) -------------------------

// send/recv
inline constexpr int SCIF_SEND_BLOCK = 0x1;
inline constexpr int SCIF_RECV_BLOCK = 0x1;

// accept
inline constexpr int SCIF_ACCEPT_SYNC = 0x1;

// register: protection
inline constexpr int SCIF_PROT_READ = 0x1;
inline constexpr int SCIF_PROT_WRITE = 0x2;

// register: flags
inline constexpr int SCIF_MAP_FIXED = 0x10;

// RMA flags
inline constexpr int SCIF_RMA_USECPU = 0x1;   ///< CPU copy instead of DMA
inline constexpr int SCIF_RMA_USECACHE = 0x2; ///< (accepted, no-op in sim)
inline constexpr int SCIF_RMA_SYNC = 0x4;     ///< block until completion
inline constexpr int SCIF_RMA_ORDERED = 0x8;  ///< (accepted, ordering is implicit)

// fence flags
inline constexpr int SCIF_FENCE_INIT_SELF = 0x1;  ///< RMAs initiated locally
inline constexpr int SCIF_FENCE_INIT_PEER = 0x2;  ///< RMAs initiated by peer
inline constexpr int SCIF_FENCE_RAS_SELF = 0x4;
inline constexpr int SCIF_FENCE_RAS_PEER = 0x8;
inline constexpr int SCIF_SIGNAL_LOCAL = 0x10;
inline constexpr int SCIF_SIGNAL_REMOTE = 0x20;

// poll events (match poll(2) bits)
inline constexpr short SCIF_POLLIN = 0x001;
inline constexpr short SCIF_POLLOUT = 0x004;
inline constexpr short SCIF_POLLERR = 0x008;
inline constexpr short SCIF_POLLHUP = 0x010;
inline constexpr short SCIF_POLLNVAL = 0x020;

/// One entry of a scif_poll() set — mirrors scif_pollepd.
struct PollEpd {
  int epd = -1;
  short events = 0;   ///< requested
  short revents = 0;  ///< returned
};

/// Result of scif_get_node_ids().
struct NodeIds {
  std::uint16_t total = 0;  ///< number of nodes in the fabric
  NodeId self = 0;          ///< the caller's node
};

/// Result of accept(): a fresh connected endpoint plus the peer identity.
struct AcceptResult {
  int epd = -1;
  PortId peer;
};

}  // namespace vphi::scif
