// Registered address space of a SCIF endpoint.
//
// scif_register() exposes a range of the caller's memory at an offset in the
// endpoint's *registered address space*; RMA operations and scif_mmap name
// remote memory by such offsets. A window records the backing pointer, the
// protection bits, and whether the backing is host-physically contiguous
// (host/device memory) or fragmented 4 KiB pages (pinned guest memory) —
// the latter drives the scatter-gather DMA cost that produces the paper's
// 72 %-of-native RMA throughput.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "scif/types.hpp"
#include "sim/status.hpp"
#include "sim/thread_safety.hpp"

namespace vphi::scif {

struct Window {
  RegOffset offset = 0;
  std::size_t len = 0;
  std::byte* base = nullptr;  ///< backing memory (non-owning)
  int prot = 0;               ///< SCIF_PROT_*
  bool fragmented = false;    ///< pinned guest pages => per-page SG cost
  std::uint32_t mmap_refs = 0;  ///< live scif_mmap references
};

/// One physically-resolvable piece of an RMA target range.
struct WindowSpan {
  std::byte* base = nullptr;
  std::size_t len = 0;
  bool fragmented = false;
};

class WindowTable {
 public:
  /// Base of the allocator-assigned region (offsets without SCIF_MAP_FIXED).
  static constexpr RegOffset kDynamicBase = 0x8000'0000;
  static constexpr std::size_t kPageSize = 4'096;

  /// Register [base, base+len) at `offset` (must be page aligned) when
  /// SCIF_MAP_FIXED, else at an allocator-chosen offset. len must be a
  /// multiple of the page size (mirrors the real API's EINVAL rules).
  sim::Expected<RegOffset> add(std::byte* base, std::size_t len,
                               RegOffset offset, int prot, int flags,
                               bool fragmented) VPHI_EXCLUDES(mu_);

  /// Remove the window that starts exactly at `offset` with length `len`
  /// (the real driver requires whole-window unregistration). Fails with
  /// kBusy while scif_mmap references are live.
  sim::Status remove(RegOffset offset, std::size_t len) VPHI_EXCLUDES(mu_);

  /// Resolve [offset, offset+len) to backing spans; the range may cross
  /// several windows but must be fully covered by registered memory with
  /// `required_prot`. kNoSuchEntry on a hole, kAccessDenied on protection
  /// mismatch.
  sim::Expected<std::vector<WindowSpan>> resolve(RegOffset offset,
                                                 std::size_t len,
                                                 int required_prot) const
      VPHI_EXCLUDES(mu_);

  /// Adjust the mmap reference count of the window containing `offset`.
  sim::Status add_mmap_ref(RegOffset offset) VPHI_EXCLUDES(mu_);
  sim::Status drop_mmap_ref(RegOffset offset) VPHI_EXCLUDES(mu_);

  std::size_t count() const VPHI_EXCLUDES(mu_);
  /// Sum of registered bytes.
  std::size_t total_bytes() const VPHI_EXCLUDES(mu_);

 private:
  bool overlaps_locked(RegOffset offset, std::size_t len) const
      VPHI_REQUIRES(mu_);

  mutable sim::Mutex mu_;
  std::map<RegOffset, Window> windows_ VPHI_GUARDED_BY(mu_);
  RegOffset next_dynamic_ VPHI_GUARDED_BY(mu_) = kDynamicBase;
};

}  // namespace vphi::scif
