// A QEMU-KVM virtual machine container.
//
// Bundles what one VM contributes to the vPHI picture: guest RAM (registered
// with the backend for zero-copy access), the guest kernel services, the
// virtio queue pair shared between the vPHI frontend (in the guest) and the
// vPHI backend (a QEMU device in host user space), the QEMU event loop the
// backend runs on, the KVM MMU for the VM_PFNPHI mmap path, and the virtual
// interrupt wire.
//
// Each Vm is one QEMU process — which is precisely how vPHI gets sharing:
// the host SCIF driver just sees multiple processes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "hv/event_loop.hpp"
#include "hv/guest_kernel.hpp"
#include "hv/guest_mem.hpp"
#include "hv/kvm_mmu.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"
#include "sim/thread_safety.hpp"
#include "virtio/device.hpp"
#include "virtio/ring.hpp"

namespace vphi::hv {

struct VmConfig {
  std::string name = "vm0";
  std::uint64_t ram_bytes = 256ull << 20;
  std::uint16_t ring_size = 256;
  std::uint32_t vcpus = 1;  ///< the paper evaluates a single-core VM
};

class Vm {
 public:
  /// Called when the backend injects a virtual interrupt; receives the
  /// simulated time the interrupt reaches the guest.
  using IrqHandler = std::function<void(sim::Nanos)>;

  Vm(const VmConfig& config, const sim::CostModel& model);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  const std::string& name() const noexcept { return config_.name; }
  const VmConfig& config() const noexcept { return config_; }
  const sim::CostModel& model() const noexcept { return *model_; }

  GuestPhysMem& ram() noexcept { return ram_; }
  GuestKernel& kernel() noexcept { return kernel_; }
  virtio::Virtqueue& vq() noexcept { return vq_; }
  virtio::DeviceStatus& device_status() noexcept { return status_; }
  EventLoop& qemu() noexcept { return qemu_; }
  kvm::Mmu& mmu() noexcept { return mmu_; }

  /// Frontend side: charge a guest->host notification (MMIO write that VM
  /// exits) and return the time the kick reaches QEMU.
  sim::Nanos kick_cost(sim::Actor& actor) {
    return actor.advance(model_->kick_vmexit_ns);
  }

  /// Backend side: deliver a virtual interrupt; the handler observes it at
  /// now + injection latency.
  void inject_irq(sim::Nanos backend_now) VPHI_EXCLUDES(irq_mu_);
  void set_irq_handler(IrqHandler handler) VPHI_EXCLUDES(irq_mu_);
  std::uint64_t irqs_injected() const noexcept { return irq_count_.value(); }

  /// Tear down the transport (unblocks the backend and any guest waiters).
  void shutdown();

 private:
  VmConfig config_;
  const sim::CostModel* model_;
  GuestPhysMem ram_;
  GuestKernel kernel_;
  virtio::Virtqueue vq_;
  virtio::DeviceStatus status_;
  EventLoop qemu_;
  kvm::Mmu mmu_;
  IrqHandler irq_handler_ VPHI_GUARDED_BY(irq_mu_);
  sim::Mutex irq_mu_;
  sim::metrics::Counter irq_count_;
};

}  // namespace vphi::hv
