#include "hv/kvm_mmu.hpp"

namespace vphi::hv::kvm {

sim::Expected<std::byte*> Mmu::access(sim::Actor& actor, std::uint64_t gva,
                                      std::uint64_t len) {
  if (len == 0) return sim::Status::kInvalidArgument;
  const Vma* vma = vmas_->find(gva);
  if (vma == nullptr || gva + len > vma->gva_start + vma->len) {
    // Without the vPHI vma tag, kvm would misinterpret the faulting address
    // as a host reference — the failure mode the paper's patch prevents.
    return sim::Status::kBadAddress;
  }
  if ((vma->flags & VM_PFNPHI) == 0) return sim::Status::kAccessDenied;

  // Fault in each untouched page exactly once.
  const std::uint64_t first_page = gva / kPage;
  const std::uint64_t last_page = (gva + len - 1) / kPage;
  std::uint64_t new_faults = 0;
  {
    sim::MutexLock lock(mu_);
    for (std::uint64_t p = first_page; p <= last_page; ++p) {
      if (shadow_.insert(p).second) ++new_faults;
    }
    fault_count_ += new_faults;
  }
  actor.advance(new_faults * model_->ept_fault_ns);
  return vma->device_base + (gva - vma->gva_start);
}

void Mmu::invalidate(std::uint64_t gva_start, std::uint64_t len) {
  sim::MutexLock lock(mu_);
  const std::uint64_t first_page = gva_start / kPage;
  const std::uint64_t last_page =
      len == 0 ? first_page : (gva_start + len - 1) / kPage;
  for (std::uint64_t p = first_page; p <= last_page; ++p) shadow_.erase(p);
}

std::uint64_t Mmu::faults() const {
  sim::MutexLock lock(mu_);
  return fault_count_;
}

std::uint64_t Mmu::mapped_pages() const {
  sim::MutexLock lock(mu_);
  return shadow_.size();
}

}  // namespace vphi::hv::kvm
