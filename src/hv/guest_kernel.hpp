// Guest kernel services the vPHI frontend driver depends on.
//
// * WaitQueue — the paper's waiting scheme, and the villain of its latency
//   breakdown: a requester sleeps after kicking the ring; the virtual
//   interrupt handler wakes *all* sleepers, each checks the shared ring, the
//   owner proceeds, the rest re-sleep. Sec. IV-B attributes 93% of the
//   375 us virtualization overhead to this sleep/wake path; the CostModel's
//   guest_wakeup_scheme_ns (plus a per-extra-sleeper tax) reproduces it.
// * page pinning — scif_register in the guest must pin user pages so RMA
//   stays correct across swapping (Sec. III, "Guest memory registration").
// * vma table — scif_mmap creates vmas tagged VM_PFNPHI carrying the device
//   frame, the small host-kernel modification vPHI needs.
// * copy_{from,to}_user timing — the only real copies on the vPHI data path.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "hv/guest_mem.hpp"
#include "sim/actor.hpp"
#include "sim/cost_model.hpp"
#include "sim/status.hpp"
#include "sim/thread_safety.hpp"

namespace vphi::hv {

/// The interrupt-driven wait queue of the vPHI frontend.
class WaitQueue {
 public:
  explicit WaitQueue(const sim::CostModel& model) : model_(&model) {}

  /// Register as a sleeper; returns the ticket the ISR completes later.
  /// Must be called before the request is kicked (no lost-wakeup window).
  std::uint64_t prepare() VPHI_EXCLUDES(mu_);

  /// Sleep until complete(ticket) arrives. Applies the waiting-scheme cost
  /// to `actor`: resume time is irq visibility + ISR entry + wakeup scheme
  /// + a tax for every other sleeper woken spuriously by our interrupt.
  /// Returns kShutDown if the queue was torn down first.
  sim::Status wait(std::uint64_t ticket, sim::Actor& actor)
      VPHI_EXCLUDES(mu_);

  /// Bounded wait: like wait(), but gives up after `wall_grace` of real time
  /// with no completion. Simulated time cannot advance while nothing
  /// happens, so a request the transport lost (dropped kick, dead backend)
  /// never completes and never moves the clock either — this wall-clock
  /// escape hatch is what lets the frontend charge its *simulated* request
  /// timeout and move on. On kTimedOut the ticket is deregistered (a late
  /// complete() for it is ignored) and no waiting cost is charged; the
  /// caller owns the simulated-time accounting of the timeout.
  sim::Status wait_for(std::uint64_t ticket, sim::Actor& actor,
                       std::chrono::milliseconds wall_grace)
      VPHI_EXCLUDES(mu_);

  /// ISR side: the response for `ticket` became visible at `irq_ts`.
  /// Completions for unknown (cancelled / timed-out) tickets are dropped.
  void complete(std::uint64_t ticket, sim::Nanos irq_ts) VPHI_EXCLUDES(mu_);

  /// Deregister a prepared ticket that will never be waited on (e.g. the
  /// request was never posted). A late complete() for it is dropped.
  void cancel(std::uint64_t ticket) VPHI_EXCLUDES(mu_);

  void shutdown() VPHI_EXCLUDES(mu_);

  std::size_t sleepers() const VPHI_EXCLUDES(mu_);
  /// Threads currently blocked inside wait() (for deterministic tests).
  std::size_t blocked_waiters() const VPHI_EXCLUDES(mu_);
  /// Total spurious wakeups suffered by all sleepers (wake-all semantics).
  std::uint64_t spurious_wakeups() const VPHI_EXCLUDES(mu_);

 private:
  struct Completion {
    sim::Nanos irq_ts = 0;
    std::size_t sleepers_at_irq = 0;
  };

  /// Shared loop behind wait()/wait_for(); `wall_deadline` null = unbounded.
  sim::Status wait_impl(
      std::uint64_t ticket, sim::Actor& actor,
      const std::chrono::steady_clock::time_point* wall_deadline)
      VPHI_EXCLUDES(mu_);

  const sim::CostModel* model_;
  mutable sim::Mutex mu_;
  sim::CondVar cv_;
  std::uint64_t next_ticket_ VPHI_GUARDED_BY(mu_) = 1;
  std::set<std::uint64_t> sleeping_ VPHI_GUARDED_BY(mu_);
  std::map<std::uint64_t, Completion> completed_ VPHI_GUARDED_BY(mu_);
  std::uint64_t spurious_ VPHI_GUARDED_BY(mu_) = 0;
  std::uint64_t wake_generation_ VPHI_GUARDED_BY(mu_) = 0;
  std::size_t blocked_ VPHI_GUARDED_BY(mu_) = 0;
  bool shutdown_ VPHI_GUARDED_BY(mu_) = false;
};

/// vm_area_struct flags we care about. VM_PFNPHI is the new label vPHI
/// introduces for scif_mmap'ed device regions.
inline constexpr std::uint32_t VM_PFNPHI = 0x1;

struct Vma {
  std::uint64_t gva_start = 0;
  std::uint64_t len = 0;
  std::uint32_t flags = 0;
  /// Host pointer to the device frame backing this vma (the "stored
  /// physical frame number" of the paper's kvm modification).
  std::byte* device_base = nullptr;
};

class VmaTable {
 public:
  sim::Status add(const Vma& vma) VPHI_EXCLUDES(mu_);
  sim::Status remove(std::uint64_t gva_start) VPHI_EXCLUDES(mu_);
  /// The vma containing `gva`, or nullptr.
  const Vma* find(std::uint64_t gva) const VPHI_EXCLUDES(mu_);
  std::size_t count() const VPHI_EXCLUDES(mu_);

 private:
  mutable sim::Mutex mu_;
  std::map<std::uint64_t, Vma> vmas_ VPHI_GUARDED_BY(mu_);  // by gva_start
};

class GuestKernel {
 public:
  GuestKernel(GuestPhysMem& ram, const sim::CostModel& model)
      : ram_(&ram), model_(&model), waitq_(model) {}

  GuestPhysMem& ram() noexcept { return *ram_; }
  WaitQueue& waitq() noexcept { return waitq_; }
  VmaTable& vmas() noexcept { return vmas_; }
  const sim::CostModel& model() const noexcept { return *model_; }

  /// Pin `len` bytes of guest user memory at gpa (get_user_pages): charges
  /// per-page cost and records the pin so unregister can validate.
  sim::Status pin_pages(sim::Actor& actor, std::uint64_t gpa,
                        std::uint64_t len) VPHI_EXCLUDES(pin_mu_);
  sim::Status unpin_pages(std::uint64_t gpa, std::uint64_t len)
      VPHI_EXCLUDES(pin_mu_);
  bool is_pinned(std::uint64_t gpa, std::uint64_t len) const
      VPHI_EXCLUDES(pin_mu_);
  std::uint64_t pinned_bytes() const VPHI_EXCLUDES(pin_mu_);

  /// copy_from_user / copy_to_user with guest-memcpy timing.
  void copy_from_user(sim::Actor& actor, void* dst, const void* src,
                      std::uint64_t len);
  void copy_to_user(sim::Actor& actor, void* dst, const void* src,
                    std::uint64_t len);

 private:
  GuestPhysMem* ram_;
  const sim::CostModel* model_;
  WaitQueue waitq_;
  VmaTable vmas_;
  mutable sim::Mutex pin_mu_;
  std::map<std::uint64_t, std::uint64_t> pinned_
      VPHI_GUARDED_BY(pin_mu_);  // gpa -> len
};

}  // namespace vphi::hv
