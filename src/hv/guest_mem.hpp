// Guest physical memory.
//
// One contiguous host allocation backs a VM's RAM (exactly how QEMU mmaps
// guest memory and registers it with KVM). Guest-physical addresses are
// offsets into it; the backend's zero-copy access to ring buffers is the
// translation gpa -> host pointer this class provides.
//
// A kernel-style allocator on top models kmalloc: Linux caps physically
// contiguous allocations at KMALLOC_MAX_SIZE (4 MiB on x86_64), the limit
// that forces the vPHI frontend to chunk large transfers (Sec. III,
// "Implementation details").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>

#include "sim/status.hpp"
#include "sim/thread_safety.hpp"

namespace vphi::hv {

/// KMALLOC_MAX_SIZE on x86_64.
inline constexpr std::uint64_t kKmallocMaxSize = 4ull << 20;

class GuestPhysMem {
 public:
  static constexpr std::uint64_t kPageSize = 4'096;

  explicit GuestPhysMem(std::uint64_t ram_bytes);

  GuestPhysMem(const GuestPhysMem&) = delete;
  GuestPhysMem& operator=(const GuestPhysMem&) = delete;

  std::uint64_t ram_bytes() const noexcept { return ram_bytes_; }

  /// gpa -> host pointer; nullptr when [gpa, gpa+len) exceeds guest RAM.
  void* translate(std::uint64_t gpa, std::uint64_t len) noexcept;
  /// host pointer -> gpa; kBadAddress if outside guest RAM.
  sim::Expected<std::uint64_t> gpa_of(const void* host_ptr) const noexcept;

  /// kmalloc: physically contiguous allocation, capped at KMALLOC_MAX_SIZE.
  /// Returns the gpa of the block.
  sim::Expected<std::uint64_t> kmalloc(std::uint64_t len) VPHI_EXCLUDES(mu_);
  sim::Status kfree(std::uint64_t gpa) VPHI_EXCLUDES(mu_);

  /// User-space allocation (mmap stand-in): same arena, no kmalloc cap.
  /// Guest user buffers for SCIF benchmarks come from here. Freed with
  /// kfree.
  sim::Expected<std::uint64_t> ualloc(std::uint64_t len) VPHI_EXCLUDES(mu_);

  std::uint64_t allocated_bytes() const VPHI_EXCLUDES(mu_);
  std::uint64_t allocation_count() const VPHI_EXCLUDES(mu_);
  /// kmalloc requests denied (cap exceeded, arena exhausted, or injected
  /// ENOMEM via sim::FaultInjector).
  std::uint64_t kmalloc_failures() const noexcept {
    return kmalloc_failures_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t ram_bytes_;
  std::unique_ptr<std::byte[]> ram_;
  std::atomic<std::uint64_t> kmalloc_failures_{0};
  mutable sim::Mutex mu_;
  std::map<std::uint64_t, std::uint64_t> free_blocks_
      VPHI_GUARDED_BY(mu_);  // gpa -> len
  std::map<std::uint64_t, std::uint64_t> live_blocks_
      VPHI_GUARDED_BY(mu_);  // gpa -> len
};

}  // namespace vphi::hv
