// The KVM MMU piece of vPHI's mmap path.
//
// scif_mmap inside a guest needs a two-level mapping: guest-virtual ->
// guest-physical -> host-physical (Xeon Phi device memory). A guest load to
// such an address faults into the kvm module, which — with the paper's
// <10 LOC modification — recognizes the VM_PFNPHI vma tag and resolves the
// fault to the stored device frame instead of misreading the address as a
// host pointer. We model exactly that: first touch of each page pays the
// EPT-fault cost; later touches hit the shadow mapping and only pay MMIO.
#pragma once

#include <cstdint>
#include <set>

#include "hv/guest_kernel.hpp"
#include "sim/actor.hpp"
#include "sim/cost_model.hpp"
#include "sim/status.hpp"
#include "sim/thread_safety.hpp"

namespace vphi::hv::kvm {

class Mmu {
 public:
  Mmu(const VmaTable& vmas, const sim::CostModel& model)
      : vmas_(&vmas), model_(&model) {}

  /// Resolve a guest-virtual access at `gva` for `len` bytes. Returns the
  /// host pointer into device memory. Faults (once per page) cost
  /// ept_fault_ns; every access costs MMIO per cacheline via the caller.
  sim::Expected<std::byte*> access(sim::Actor& actor, std::uint64_t gva,
                                   std::uint64_t len) VPHI_EXCLUDES(mu_);

  /// Drop shadow entries for a torn-down vma (munmap).
  void invalidate(std::uint64_t gva_start, std::uint64_t len)
      VPHI_EXCLUDES(mu_);

  std::uint64_t faults() const VPHI_EXCLUDES(mu_);
  std::uint64_t mapped_pages() const VPHI_EXCLUDES(mu_);

 private:
  static constexpr std::uint64_t kPage = 4'096;

  const VmaTable* vmas_;
  const sim::CostModel* model_;
  mutable sim::Mutex mu_;
  /// gva pages with established mappings.
  std::set<std::uint64_t> shadow_ VPHI_GUARDED_BY(mu_);
  std::uint64_t fault_count_ VPHI_GUARDED_BY(mu_) = 0;
};

}  // namespace vphi::hv::kvm
