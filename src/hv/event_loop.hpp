// The QEMU event loop.
//
// QEMU is event-driven: device emulation handlers run serialized on the main
// loop, and while one runs, the whole VM's other I/O stalls — cheap and
// race-free for short handlers, costly for long ones. For those, QEMU
// offloads to a worker thread and returns to the loop. Sec. III ("Blocking
// vs non-blocking mode") builds vPHI's per-opcode policy on exactly this
// tradeoff; this class provides both modes and the accounting (time the
// loop was held) the ablation bench A2 reports.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "sim/actor.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace vphi::hv {

class EventLoop {
 public:
  using Handler = std::function<void(sim::Actor&)>;

  explicit EventLoop(std::string name);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Run `handler` on the loop thread (QEMU's blocking mode). Handlers are
  /// strictly serialized; a long handler freezes everything behind it.
  void post(Handler handler) VPHI_EXCLUDES(mu_);

  /// Run `handler` on a fresh worker thread (QEMU's threaded mode): the
  /// loop keeps spinning. The worker's actor starts at `start_ts` (time the
  /// handoff became visible).
  void run_in_worker(Handler handler, sim::Nanos start_ts) VPHI_EXCLUDES(mu_);

  /// Block until every posted handler so far has run.
  void drain() VPHI_EXCLUDES(mu_);
  /// Join all worker threads spawned so far.
  void join_workers() VPHI_EXCLUDES(mu_);

  /// Stop the loop thread; pending handlers still run first.
  void stop() VPHI_EXCLUDES(mu_);

  sim::Actor& loop_actor() noexcept { return loop_actor_; }

  /// Cumulative simulated time handlers held the loop (the "VM frozen"
  /// account of the paper's blocking-mode discussion).
  sim::Nanos blocked_time() const VPHI_EXCLUDES(mu_);
  std::uint64_t handled() const VPHI_EXCLUDES(mu_);
  std::uint64_t workers_spawned() const VPHI_EXCLUDES(mu_);

 private:
  void loop_main() VPHI_EXCLUDES(mu_);

  std::string name_;
  sim::Actor loop_actor_;

  mutable sim::Mutex mu_;
  sim::CondVar cv_;
  sim::CondVar idle_cv_;
  std::deque<Handler> pending_ VPHI_GUARDED_BY(mu_);
  bool stopping_ VPHI_GUARDED_BY(mu_) = false;
  bool idle_ VPHI_GUARDED_BY(mu_) = true;
  std::uint64_t handled_ VPHI_GUARDED_BY(mu_) = 0;
  std::uint64_t workers_spawned_ VPHI_GUARDED_BY(mu_) = 0;
  sim::Nanos blocked_time_ VPHI_GUARDED_BY(mu_) = 0;
  std::vector<std::thread> workers_ VPHI_GUARDED_BY(mu_);
  std::thread loop_thread_;
};

}  // namespace vphi::hv
