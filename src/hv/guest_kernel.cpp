#include "hv/guest_kernel.hpp"

#include <algorithm>
#include <cstring>

namespace vphi::hv {

// --- WaitQueue ---------------------------------------------------------------

std::uint64_t WaitQueue::prepare() {
  sim::MutexLock lock(mu_);
  const std::uint64_t ticket = next_ticket_++;
  sleeping_.insert(ticket);
  return ticket;
}

sim::Status WaitQueue::wait(std::uint64_t ticket, sim::Actor& actor) {
  return wait_impl(ticket, actor, nullptr);
}

sim::Status WaitQueue::wait_for(std::uint64_t ticket, sim::Actor& actor,
                                std::chrono::milliseconds wall_grace) {
  const auto deadline = std::chrono::steady_clock::now() + wall_grace;
  return wait_impl(ticket, actor, &deadline);
}

sim::Status WaitQueue::wait_impl(
    std::uint64_t ticket, sim::Actor& actor,
    const std::chrono::steady_clock::time_point* wall_deadline) {
  Completion c;
  std::uint64_t my_spurious = 0;
  {
    sim::MutexLock lock(mu_);
    std::uint64_t seen_generation = wake_generation_;
    for (;;) {
      if (shutdown_) {
        sleeping_.erase(ticket);
        return sim::Status::kShutDown;
      }
      if (auto it = completed_.find(ticket); it != completed_.end()) {
        c = it->second;
        completed_.erase(it);
        sleeping_.erase(ticket);
        break;
      }
      // Sleep until any wake event; count generations we woke for in vain.
      ++blocked_;
      bool woken = true;
      while (!shutdown_ && wake_generation_ == seen_generation &&
             completed_.count(ticket) == 0) {
        if (wall_deadline == nullptr) {
          cv_.wait(mu_);
        } else if (cv_.wait_until(mu_, *wall_deadline) ==
                   std::cv_status::timeout) {
          woken = shutdown_ || wake_generation_ != seen_generation ||
                  completed_.count(ticket) != 0;
          if (!woken) break;
        }
      }
      --blocked_;
      if (!woken) {
        // Nothing is coming for this ticket: deregister so a late complete()
        // is dropped instead of leaking, and let the caller charge the
        // simulated timeout.
        sleeping_.erase(ticket);
        return sim::Status::kTimedOut;
      }
      if (wake_generation_ != seen_generation &&
          completed_.count(ticket) == 0 && !shutdown_) {
        ++my_spurious;
        ++spurious_;
      }
      seen_generation = wake_generation_;
    }
  }
  // The waiting scheme, charged with mu_ dropped: ISR entry + wake_up_all +
  // scheduler-in of this waiter, plus the ring-check churn of every other
  // sleeper our interrupt woke, plus our own spurious wakeups from other
  // requests' interrupts while we slept.
  const auto& m = *model_;
  const std::uint64_t extra = c.sleepers_at_irq > 0 ? c.sleepers_at_irq - 1 : 0;
  actor.sync_to(c.irq_ts);
  actor.advance(m.guest_irq_handler_ns + m.guest_wakeup_scheme_ns +
                extra * m.wakeup_per_extra_sleeper_ns +
                my_spurious * m.wakeup_per_extra_sleeper_ns);
  return sim::Status::kOk;
}

void WaitQueue::complete(std::uint64_t ticket, sim::Nanos irq_ts) {
  {
    sim::MutexLock lock(mu_);
    // A ticket that timed out (wait_for gave up) or was never prepared is
    // no longer in sleeping_: drop the completion instead of parking it in
    // completed_ forever.
    if (sleeping_.count(ticket) == 0) return;
    completed_[ticket] = Completion{irq_ts, sleeping_.size()};
    ++wake_generation_;
  }
  cv_.notify_all();  // wake_up_all: every sleeper checks the ring
}

void WaitQueue::cancel(std::uint64_t ticket) {
  sim::MutexLock lock(mu_);
  sleeping_.erase(ticket);
  completed_.erase(ticket);
}

void WaitQueue::shutdown() {
  {
    sim::MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t WaitQueue::sleepers() const {
  sim::MutexLock lock(mu_);
  return sleeping_.size();
}

std::size_t WaitQueue::blocked_waiters() const {
  sim::MutexLock lock(mu_);
  return blocked_;
}

std::uint64_t WaitQueue::spurious_wakeups() const {
  sim::MutexLock lock(mu_);
  return spurious_;
}

// --- VmaTable ---------------------------------------------------------------

sim::Status VmaTable::add(const Vma& vma) {
  if (vma.len == 0) return sim::Status::kInvalidArgument;
  sim::MutexLock lock(mu_);
  const std::uint64_t end = vma.gva_start + vma.len;
  auto it = vmas_.lower_bound(vma.gva_start);
  if (it != vmas_.end() && it->first < end) return sim::Status::kAlreadyExists;
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.gva_start + prev->second.len > vma.gva_start) {
      return sim::Status::kAlreadyExists;
    }
  }
  vmas_[vma.gva_start] = vma;
  return sim::Status::kOk;
}

sim::Status VmaTable::remove(std::uint64_t gva_start) {
  sim::MutexLock lock(mu_);
  return vmas_.erase(gva_start) > 0 ? sim::Status::kOk
                                    : sim::Status::kNoSuchEntry;
}

const Vma* VmaTable::find(std::uint64_t gva) const {
  sim::MutexLock lock(mu_);
  auto it = vmas_.upper_bound(gva);
  if (it == vmas_.begin()) return nullptr;
  --it;
  const Vma& v = it->second;
  return gva < v.gva_start + v.len ? &v : nullptr;
}

std::size_t VmaTable::count() const {
  sim::MutexLock lock(mu_);
  return vmas_.size();
}

// --- GuestKernel ---------------------------------------------------------------

sim::Status GuestKernel::pin_pages(sim::Actor& actor, std::uint64_t gpa,
                                   std::uint64_t len) {
  if (len == 0) return sim::Status::kInvalidArgument;
  if (ram_->translate(gpa, len) == nullptr) return sim::Status::kBadAddress;
  const std::uint64_t pages =
      (len + GuestPhysMem::kPageSize - 1) / GuestPhysMem::kPageSize;
  actor.advance(pages * model_->pin_per_page_ns);
  sim::MutexLock lock(pin_mu_);
  pinned_[gpa] = std::max(pinned_[gpa], len);
  return sim::Status::kOk;
}

sim::Status GuestKernel::unpin_pages(std::uint64_t gpa, std::uint64_t len) {
  sim::MutexLock lock(pin_mu_);
  auto it = pinned_.find(gpa);
  if (it == pinned_.end() || it->second != len) {
    return sim::Status::kInvalidArgument;
  }
  pinned_.erase(it);
  return sim::Status::kOk;
}

bool GuestKernel::is_pinned(std::uint64_t gpa, std::uint64_t len) const {
  sim::MutexLock lock(pin_mu_);
  auto it = pinned_.upper_bound(gpa);
  if (it == pinned_.begin()) return false;
  --it;
  return gpa >= it->first && gpa + len <= it->first + it->second;
}

std::uint64_t GuestKernel::pinned_bytes() const {
  sim::MutexLock lock(pin_mu_);
  std::uint64_t total = 0;
  for (const auto& [_, len] : pinned_) total += len;
  return total;
}

void GuestKernel::copy_from_user(sim::Actor& actor, void* dst, const void* src,
                                 std::uint64_t len) {
  actor.advance(model_->copy_setup_ns +
                sim::transfer_time(len, model_->guest_memcpy_Bps));
  if (len > 0) std::memcpy(dst, src, len);
}

void GuestKernel::copy_to_user(sim::Actor& actor, void* dst, const void* src,
                               std::uint64_t len) {
  actor.advance(model_->copy_setup_ns +
                sim::transfer_time(len, model_->guest_memcpy_Bps));
  if (len > 0) std::memcpy(dst, src, len);
}

}  // namespace vphi::hv
