#include "hv/vm.hpp"

namespace vphi::hv {

Vm::Vm(const VmConfig& config, const sim::CostModel& model)
    : config_(config),
      model_(&model),
      ram_(config.ram_bytes),
      kernel_(ram_, model),
      vq_(config.ring_size,
          [this](std::uint64_t gpa, std::uint32_t len) {
            return ram_.translate(gpa, len);
          },
          "vm=" + config.name),
      status_(virtio::VIRTIO_F_VERSION_1 | virtio::VIRTIO_F_EVENT_IDX |
              virtio::VPHI_F_SCIF | virtio::VPHI_F_MMAP_PFN |
              virtio::VPHI_F_SYSFS_INFO),
      qemu_(config.name),
      mmu_(kernel_.vmas(), model),
      irq_count_("vphi.hv.irqs_injected", "vm=" + config.name) {}

Vm::~Vm() { shutdown(); }

void Vm::inject_irq(sim::Nanos backend_now) {
  IrqHandler handler;
  {
    sim::MutexLock lock(irq_mu_);
    handler = irq_handler_;
  }
  irq_count_.inc();
  if (handler) handler(backend_now + model_->irq_inject_ns);
}

void Vm::set_irq_handler(IrqHandler handler) {
  sim::MutexLock lock(irq_mu_);
  irq_handler_ = std::move(handler);
}

void Vm::shutdown() {
  vq_.shutdown();
  kernel_.waitq().shutdown();
}

}  // namespace vphi::hv
