#include "hv/event_loop.hpp"

namespace vphi::hv {

EventLoop::EventLoop(std::string name)
    : name_(std::move(name)),
      loop_actor_(name_ + "-loop"),
      loop_thread_([this] { loop_main(); }) {}

EventLoop::~EventLoop() {
  stop();
  join_workers();
}

void EventLoop::loop_main() {
  sim::ActorScope scope(loop_actor_);
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return !pending_.empty() || stopping_; });
    if (pending_.empty() && stopping_) return;
    Handler handler = std::move(pending_.front());
    pending_.pop_front();
    idle_ = false;
    lock.unlock();

    const sim::Nanos before = loop_actor_.now();
    handler(loop_actor_);
    const sim::Nanos held = loop_actor_.now() - before;

    lock.lock();
    blocked_time_ += held;
    ++handled_;
    idle_ = pending_.empty();
    if (idle_) idle_cv_.notify_all();
  }
}

void EventLoop::post(Handler handler) {
  {
    std::lock_guard lock(mu_);
    pending_.push_back(std::move(handler));
    idle_ = false;
  }
  cv_.notify_one();
}

void EventLoop::run_in_worker(Handler handler, sim::Nanos start_ts) {
  std::lock_guard lock(mu_);
  ++workers_spawned_;
  workers_.emplace_back(
      [this, handler = std::move(handler), start_ts] {
        sim::Actor worker_actor{name_ + "-worker", start_ts};
        sim::ActorScope scope(worker_actor);
        handler(worker_actor);
      });
}

void EventLoop::drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return idle_ && pending_.empty(); });
}

void EventLoop::join_workers() {
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void EventLoop::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Already stopped; just make sure the thread is joined.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
}

sim::Nanos EventLoop::blocked_time() const {
  std::lock_guard lock(mu_);
  return blocked_time_;
}

std::uint64_t EventLoop::handled() const {
  std::lock_guard lock(mu_);
  return handled_;
}

std::uint64_t EventLoop::workers_spawned() const {
  std::lock_guard lock(mu_);
  return workers_spawned_;
}

}  // namespace vphi::hv
