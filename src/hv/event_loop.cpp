#include "hv/event_loop.hpp"

namespace vphi::hv {

EventLoop::EventLoop(std::string name)
    : name_(std::move(name)),
      loop_actor_(name_ + "-loop"),
      loop_thread_([this] { loop_main(); }) {}

EventLoop::~EventLoop() {
  stop();
  join_workers();
}

void EventLoop::loop_main() {
  sim::ActorScope scope(loop_actor_);
  for (;;) {
    Handler handler;
    {
      sim::MutexLock lock(mu_);
      while (pending_.empty() && !stopping_) cv_.wait(mu_);
      if (pending_.empty() && stopping_) return;
      handler = std::move(pending_.front());
      pending_.pop_front();
      idle_ = false;
    }

    // Run the handler with mu_ dropped: post() from inside a handler must
    // not deadlock, and the "loop held" account measures handler time only.
    const sim::Nanos before = loop_actor_.now();
    handler(loop_actor_);
    const sim::Nanos held = loop_actor_.now() - before;

    {
      sim::MutexLock lock(mu_);
      blocked_time_ += held;
      ++handled_;
      idle_ = pending_.empty();
      if (idle_) idle_cv_.notify_all();
    }
  }
}

void EventLoop::post(Handler handler) {
  {
    sim::MutexLock lock(mu_);
    pending_.push_back(std::move(handler));
    idle_ = false;
  }
  cv_.notify_one();
}

void EventLoop::run_in_worker(Handler handler, sim::Nanos start_ts) {
  sim::MutexLock lock(mu_);
  ++workers_spawned_;
  workers_.emplace_back(
      [this, handler = std::move(handler), start_ts] {
        sim::Actor worker_actor{name_ + "-worker", start_ts};
        sim::ActorScope scope(worker_actor);
        handler(worker_actor);
      });
}

void EventLoop::drain() {
  sim::MutexLock lock(mu_);
  while (!(idle_ && pending_.empty())) idle_cv_.wait(mu_);
}

void EventLoop::join_workers() {
  std::vector<std::thread> workers;
  {
    sim::MutexLock lock(mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void EventLoop::stop() {
  {
    sim::MutexLock lock(mu_);
    if (stopping_) {
      // Already stopped; just make sure the thread is joined.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
}

sim::Nanos EventLoop::blocked_time() const {
  sim::MutexLock lock(mu_);
  return blocked_time_;
}

std::uint64_t EventLoop::handled() const {
  sim::MutexLock lock(mu_);
  return handled_;
}

std::uint64_t EventLoop::workers_spawned() const {
  sim::MutexLock lock(mu_);
  return workers_spawned_;
}

}  // namespace vphi::hv
