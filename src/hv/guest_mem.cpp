#include "hv/guest_mem.hpp"

#include "sim/fault.hpp"
#include "sim/log.hpp"

namespace vphi::hv {

GuestPhysMem::GuestPhysMem(std::uint64_t ram_bytes)
    : ram_bytes_((ram_bytes + kPageSize - 1) / kPageSize * kPageSize),
      ram_(std::make_unique<std::byte[]>(ram_bytes_)) {
  free_blocks_[0] = ram_bytes_;
}

void* GuestPhysMem::translate(std::uint64_t gpa, std::uint64_t len) noexcept {
  if (gpa >= ram_bytes_ || len > ram_bytes_ - gpa) return nullptr;
  return ram_.get() + gpa;
}

sim::Expected<std::uint64_t> GuestPhysMem::gpa_of(
    const void* host_ptr) const noexcept {
  const auto* p = static_cast<const std::byte*>(host_ptr);
  if (p < ram_.get() || p >= ram_.get() + ram_bytes_) {
    return sim::Status::kBadAddress;
  }
  return static_cast<std::uint64_t>(p - ram_.get());
}

sim::Expected<std::uint64_t> GuestPhysMem::kmalloc(std::uint64_t len) {
  if (sim::fault_injector().should_fire(sim::FaultSite::kKmallocNoMem)) {
    VPHI_LOG(kWarn, "guest-mem") << "kmalloc(" << len << ") -> injected ENOMEM";
    kmalloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return sim::Status::kNoMemory;
  }
  if (len > kKmallocMaxSize) {  // kmalloc cap
    kmalloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return sim::Status::kNoMemory;
  }
  auto gpa = ualloc(len);
  if (!gpa) kmalloc_failures_.fetch_add(1, std::memory_order_relaxed);
  return gpa;
}

sim::Expected<std::uint64_t> GuestPhysMem::ualloc(std::uint64_t len) {
  if (len == 0) return sim::Status::kInvalidArgument;
  len = (len + kPageSize - 1) / kPageSize * kPageSize;
  sim::MutexLock lock(mu_);
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second < len) continue;
    const std::uint64_t gpa = it->first;
    const std::uint64_t remainder = it->second - len;
    free_blocks_.erase(it);
    if (remainder > 0) free_blocks_[gpa + len] = remainder;
    live_blocks_[gpa] = len;
    return gpa;
  }
  return sim::Status::kNoMemory;
}

sim::Status GuestPhysMem::kfree(std::uint64_t gpa) {
  sim::MutexLock lock(mu_);
  auto it = live_blocks_.find(gpa);
  if (it == live_blocks_.end()) return sim::Status::kInvalidArgument;
  std::uint64_t len = it->second;
  live_blocks_.erase(it);
  auto next = free_blocks_.lower_bound(gpa);
  if (next != free_blocks_.end() && next->first == gpa + len) {
    len += next->second;
    free_blocks_.erase(next);
  }
  auto prev = free_blocks_.lower_bound(gpa);
  if (prev != free_blocks_.begin()) {
    --prev;
    if (prev->first + prev->second == gpa) {
      prev->second += len;
      return sim::Status::kOk;
    }
  }
  free_blocks_[gpa] = len;
  return sim::Status::kOk;
}

std::uint64_t GuestPhysMem::allocated_bytes() const {
  sim::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [_, len] : live_blocks_) total += len;
  return total;
}

std::uint64_t GuestPhysMem::allocation_count() const {
  sim::MutexLock lock(mu_);
  return live_blocks_.size();
}

}  // namespace vphi::hv
