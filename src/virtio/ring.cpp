#include "virtio/ring.hpp"

#include <cassert>

namespace vphi::virtio {

namespace {
bool is_pow2(std::uint16_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Virtqueue::Virtqueue(std::uint16_t size, MemTranslate translate)
    : size_(size), translate_(std::move(translate)) {
  // Virtio mandates power-of-two queue sizes; a violation is a programming
  // error, not a recoverable condition.
  if (!is_pow2(size)) std::abort();
  table_.resize(size_);
  avail_ring_.resize(size_);
  used_ring_.resize(size_);
  // Chain all descriptors into the free list.
  for (std::uint16_t i = 0; i < size_; ++i) {
    table_[i].next = static_cast<std::uint16_t>(i + 1);
  }
  free_head_ = 0;
  num_free_ = size_;
}

sim::Expected<std::uint16_t> Virtqueue::alloc_desc_locked() {
  if (num_free_ == 0) return sim::Status::kNoSpace;
  const std::uint16_t d = free_head_;
  free_head_ = table_[d].next;
  --num_free_;
  return d;
}

void Virtqueue::free_chain_locked(std::uint16_t head) {
  std::uint16_t d = head;
  for (;;) {
    const bool has_next = (table_[d].flags & VIRTQ_DESC_F_NEXT) != 0;
    const std::uint16_t next = table_[d].next;
    table_[d] = Desc{};
    table_[d].next = free_head_;
    free_head_ = d;
    ++num_free_;
    if (!has_next) break;
    d = next;
  }
}

sim::Expected<std::uint16_t> Virtqueue::add_buf(std::span<const BufferRef> out,
                                                std::span<const BufferRef> in) {
  const std::size_t total = out.size() + in.size();
  if (total == 0) return sim::Status::kInvalidArgument;
  std::lock_guard lock(mu_);
  if (total > num_free_) return sim::Status::kNoSpace;

  std::uint16_t head = 0;
  std::uint16_t prev = 0;
  bool first = true;
  auto link = [&](const BufferRef& ref, bool write) {
    auto d = alloc_desc_locked();
    assert(d.has_value());  // reserved by the num_free_ check
    table_[*d].addr = ref.gpa;
    table_[*d].len = ref.len;
    table_[*d].flags = write ? VIRTQ_DESC_F_WRITE : std::uint16_t{0};
    if (first) {
      head = *d;
      first = false;
    } else {
      table_[prev].flags |= VIRTQ_DESC_F_NEXT;
      table_[prev].next = *d;
    }
    prev = *d;
  };
  for (const auto& ref : out) link(ref, false);
  for (const auto& ref : in) link(ref, true);

  avail_ring_[avail_idx_ % size_] = head;
  ++avail_idx_;
  return head;
}

void Virtqueue::kick(sim::Nanos visible_ts) {
  {
    std::lock_guard lock(mu_);
    ++kick_count_;
  }
  avail_event_.raise(visible_ts);
}

std::optional<UsedElem> Virtqueue::get_used() {
  std::lock_guard lock(mu_);
  if (used_consumed_ == used_idx_) return std::nullopt;
  UsedElem elem = used_ring_[used_consumed_ % size_];
  ++used_consumed_;
  free_chain_locked(static_cast<std::uint16_t>(elem.id));
  return elem;
}

std::optional<Chain> Virtqueue::pop_avail() {
  const auto kick_ts = avail_event_.wait();
  if (!kick_ts) return std::nullopt;
  auto chain = try_pop_avail();
  if (chain) chain->kick_ts = std::max(chain->kick_ts, *kick_ts);
  return chain;
}

std::optional<Chain> Virtqueue::try_pop_avail() {
  std::lock_guard lock(mu_);
  if (avail_consumed_ == avail_idx_) return std::nullopt;
  const std::uint16_t head = avail_ring_[avail_consumed_ % size_];
  ++avail_consumed_;

  Chain chain;
  chain.head = head;
  std::uint16_t d = head;
  for (;;) {
    const Desc& desc = table_[d];
    void* ptr = translate_ ? translate_(desc.addr, desc.len) : nullptr;
    chain.segments.push_back(
        Chain::Segment{ptr, desc.len, (desc.flags & VIRTQ_DESC_F_WRITE) != 0});
    if ((desc.flags & VIRTQ_DESC_F_NEXT) == 0) break;
    d = desc.next;
  }
  return chain;
}

sim::Status Virtqueue::push_used(std::uint16_t head, std::uint32_t written,
                                 sim::Nanos done_ts) {
  std::lock_guard lock(mu_);
  if (head >= size_) return sim::Status::kInvalidArgument;
  used_ring_[used_idx_ % size_] = UsedElem{head, written, done_ts};
  ++used_idx_;
  return sim::Status::kOk;
}

void Virtqueue::shutdown() { avail_event_.close(); }

std::uint16_t Virtqueue::free_descriptors() const {
  std::lock_guard lock(mu_);
  return num_free_;
}

std::uint16_t Virtqueue::avail_idx() const {
  std::lock_guard lock(mu_);
  return avail_idx_;
}

std::uint16_t Virtqueue::used_idx() const {
  std::lock_guard lock(mu_);
  return used_idx_;
}

std::uint64_t Virtqueue::kicks() const {
  std::lock_guard lock(mu_);
  return kick_count_;
}

}  // namespace vphi::virtio
