#include "virtio/ring.hpp"

#include <cassert>

#include "sim/fault.hpp"
#include "sim/log.hpp"

namespace vphi::virtio {

namespace {
bool is_pow2(std::uint16_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// virtio 1.0 sec 2.6.7.2: is a notification needed after moving the
/// producer index from `old_idx` to `new_idx`, given the consumer asked to
/// be notified once the index passes `event`? Wraparound-safe in u16.
bool vring_need_event(std::uint16_t event, std::uint16_t new_idx,
                      std::uint16_t old_idx) {
  return static_cast<std::uint16_t>(new_idx - event - 1) <
         static_cast<std::uint16_t>(new_idx - old_idx);
}
}  // namespace

Virtqueue::Virtqueue(std::uint16_t size, MemTranslate translate,
                     std::string label)
    : size_(size),
      translate_(std::move(translate)),
      kick_count_("vphi.ring.kicks", label),
      dropped_kicks_("vphi.ring.kicks_dropped", label),
      poisoned_chains_("vphi.ring.chains_poisoned", label),
      truncated_chains_("vphi.ring.chains_truncated", label),
      inflight_gauge_("vphi.ring.inflight", label),
      occupancy_hist_("vphi.ring.occupancy", label),
      suppressed_kicks_("vphi.ring.kicks_suppressed", label),
      suppressed_irqs_("vphi.ring.irqs_suppressed", label) {
  // Virtio mandates power-of-two queue sizes; a violation is a programming
  // error, not a recoverable condition.
  if (!is_pow2(size)) std::abort();
  table_.resize(size_);
  avail_ring_.resize(size_);
  avail_publish_ts_.resize(size_);
  trace_by_head_.resize(size_);
  used_ring_.resize(size_);
  // Chain all descriptors into the free list.
  for (std::uint16_t i = 0; i < size_; ++i) {
    table_[i].next = static_cast<std::uint16_t>(i + 1);
  }
  free_head_ = 0;
  num_free_ = size_;
}

sim::Expected<std::uint16_t> Virtqueue::alloc_desc_locked() {
  if (num_free_ == 0) return sim::Status::kNoSpace;
  const std::uint16_t d = free_head_;
  free_head_ = table_[d].next;
  --num_free_;
  return d;
}

void Virtqueue::free_chain_locked(std::uint16_t head) {
  std::uint16_t d = head;
  for (;;) {
    const bool has_next = (table_[d].flags & VIRTQ_DESC_F_NEXT) != 0;
    const std::uint16_t next = table_[d].next;
    table_[d] = Desc{};
    table_[d].next = free_head_;
    free_head_ = d;
    ++num_free_;
    if (!has_next) break;
    d = next;
  }
}

void Virtqueue::set_event_idx(bool enabled) {
  sim::MutexLock lock(mu_);
  event_idx_ = enabled;
}

bool Virtqueue::event_idx_enabled() const {
  sim::MutexLock lock(mu_);
  return event_idx_;
}

sim::Expected<std::uint16_t> Virtqueue::add_buf(std::span<const BufferRef> out,
                                                std::span<const BufferRef> in,
                                                sim::Nanos publish_ts,
                                                sim::TraceId trace) {
  const std::size_t total = out.size() + in.size();
  if (total == 0) return sim::Status::kInvalidArgument;
  sim::MutexLock lock(mu_);
  if (total > num_free_) return sim::Status::kNoSpace;

  std::uint16_t head = 0;
  std::uint16_t prev = 0;
  bool first = true;
  auto link = [&](const BufferRef& ref, bool write) {
    auto d = alloc_desc_locked();
    assert(d.has_value());  // reserved by the num_free_ check
    table_[*d].addr = ref.gpa;
    table_[*d].len = ref.len;
    table_[*d].flags = write ? VIRTQ_DESC_F_WRITE : std::uint16_t{0};
    if (first) {
      head = *d;
      first = false;
    } else {
      table_[prev].flags |= VIRTQ_DESC_F_NEXT;
      table_[prev].next = *d;
    }
    prev = *d;
  };
  for (const auto& ref : out) link(ref, false);
  for (const auto& ref : in) link(ref, true);

  avail_ring_[avail_idx_ % size_] = head;
  avail_publish_ts_[avail_idx_ % size_] = publish_ts;
  trace_by_head_[head] = trace;
  ++avail_idx_;
  ++live_chains_;
  inflight_gauge_.add(1);
  // Occupancy sampled at every post: the distribution a tenant's pipelined
  // window actually achieved (observer only, never charges the clock).
  occupancy_hist_.record(static_cast<sim::Nanos>(live_chains_));
  sim::tracer().record(trace, sim::SpanEvent::kAvailPublish, publish_ts);
  return head;
}

bool Virtqueue::kick_prepare() {
  sim::MutexLock lock(mu_);
  const std::uint16_t old_idx = kick_point_;
  kick_point_ = avail_idx_;
  if (!event_idx_) return true;
  if (vring_need_event(avail_event_shadow_, avail_idx_, old_idx)) return true;
  // The device's avail_event is not inside the freshly published range: it
  // is awake and draining, and will pick the entries up without a doorbell.
  suppressed_kicks_.inc();
  return false;
}

void Virtqueue::kick(sim::Nanos visible_ts) {
  kick_count_.inc();
  auto& fi = sim::fault_injector();
  if (fi.should_fire(sim::FaultSite::kKickDrop)) {
    // The doorbell write never reaches the device: the avail entry sits in
    // the ring until a later kick (the frontend's timeout path sends a
    // rescue kick) flushes it through.
    VPHI_LOG(kWarn, "virtio") << "kick at " << visible_ts << " dropped";
    dropped_kicks_.inc();
    return;
  }
  if (fi.should_fire(sim::FaultSite::kKickDelay)) {
    const sim::Nanos delay = fi.delay_ns(sim::FaultSite::kKickDelay);
    VPHI_LOG(kWarn, "virtio") << "kick at " << visible_ts << " delayed by "
                              << delay << "ns";
    visible_ts += delay;
  }
  avail_event_.raise(visible_ts);
}

std::optional<UsedElem> Virtqueue::get_used() {
  sim::MutexLock lock(mu_);
  if (used_consumed_ == used_idx_) return std::nullopt;
  UsedElem elem = used_ring_[used_consumed_ % size_];
  ++used_consumed_;
  free_chain_locked(static_cast<std::uint16_t>(elem.id));
  if (live_chains_ > 0) {
    --live_chains_;
    inflight_gauge_.add(-1);
  }
  return elem;
}

std::optional<Chain> Virtqueue::pop_avail() {
  // A raise with no pending chain is legal (kick coalescing, or a driver's
  // rescue kick racing a completion): skip it instead of reporting
  // shutdown, so a spurious doorbell can never kill the device loop.
  for (;;) {
    const auto kick_ts = avail_event_.wait();
    if (!kick_ts) return std::nullopt;
    auto chain = try_pop_avail();
    if (!chain) continue;
    chain->kick_ts = std::max(chain->kick_ts, *kick_ts);
    return chain;
  }
}

void Virtqueue::drain_avail_locked(std::vector<Chain>& out) {
  while (auto chain = try_pop_avail_locked()) {
    out.push_back(std::move(*chain));
  }
}

std::vector<Chain> Virtqueue::pop_avail_batch() {
  // Doorbell-first, like pop_avail: the device never scans the ring
  // unprompted, so a chain whose kick was dropped stays stranded until a
  // rescue kick — the lost-doorbell fault semantics depend on it. No
  // suppressed entry can strand across the wait either: the arm below
  // resets the shadow to the consumption point, which makes the *first*
  // publish after every drain ring the doorbell (only the following
  // publishes of a burst are suppressed, and the first one's raise covers
  // them all).
  std::vector<Chain> batch;
  for (;;) {
    auto raise_ts = avail_event_.wait();
    if (!raise_ts) return {};  // ring shut down
    sim::MutexLock lock(mu_);
    drain_avail_locked(batch);
    // Arm avail_event at the consumption point, atomically with the drain
    // (add_buf also runs under mu_): an entry published after this instant
    // sees the armed event and kicks; one published before was caught by
    // the drain above. And because the arm happens *before* this batch's
    // completions are pushed (and therefore before the interrupt that
    // wakes the driver's next submit), a serial driver's next kick_prepare
    // always observes the device re-armed: serial kicks stay deterministic
    // regardless of thread scheduling.
    if (event_idx_) avail_event_shadow_ = avail_consumed_;
    if (batch.empty()) continue;  // spurious raise (e.g. a rescue kick
                                  // racing a completion): re-arm and wait
    // Consume the extra doorbell raises that belong to entries just
    // drained (a multi-kick burst collapses into one batch): any raise
    // pending at this instant was issued after its entry became visible
    // (publish happens-before kick), so that entry is in `batch`. Leaving
    // them queued would let them masquerade later as fresh doorbells and
    // "rescue" a chain whose kick was genuinely dropped.
    while (auto extra = avail_event_.try_wait()) {
      raise_ts = std::max(*raise_ts, *extra);
    }
    for (auto& chain : batch) {
      chain.kick_ts = std::max(chain.kick_ts, *raise_ts);
    }
    return batch;
  }
}

std::optional<Chain> Virtqueue::try_pop_avail() {
  sim::MutexLock lock(mu_);
  return try_pop_avail_locked();
}

std::optional<Chain> Virtqueue::try_pop_avail_locked() {
  auto& fi = sim::fault_injector();
  // Simulated guest-side corruption: the device walk behaves as if the
  // chain's terminator pointed back at its head. Only the walk's *view* is
  // bent — the descriptor table stays intact so completion still recycles
  // the chain correctly.
  const bool inject_cycle = fi.should_fire(sim::FaultSite::kCycleChain);
  const bool inject_truncate = fi.should_fire(sim::FaultSite::kTruncateChain);

  if (avail_consumed_ == avail_idx_) return std::nullopt;
  const std::uint16_t head = avail_ring_[avail_consumed_ % size_];
  const sim::Nanos publish_ts = avail_publish_ts_[avail_consumed_ % size_];
  ++avail_consumed_;

  Chain chain;
  chain.head = head;
  chain.trace = trace_by_head_[head];
  // Lower bound for the device's view of the entry: when the doorbell is
  // suppressed (EVENT_IDX) no raise timestamp exists, so the publish time
  // carries the causality instead. pop_avail/pop_avail_batch still max()
  // this with the kick's visible_ts when one was delivered.
  chain.kick_ts = publish_ts;
  std::uint16_t d = head;
  std::uint16_t walked = 0;
  for (;;) {
    // The descriptor table is guest-writable shared memory: a corrupted (or
    // hostile) `next` can point outside the table or form a cycle. Cap the
    // walk at size_ segments — a well-formed chain can never be longer —
    // and poison anything that exceeds it instead of spinning forever.
    if (d >= size_ || walked == size_) {
      chain.poisoned = true;
      poisoned_chains_.inc();
      VPHI_LOG(kWarn, "virtio")
          << "descriptor walk from head " << head
          << " exceeded " << size_ << " segments: poisoning chain";
      break;
    }
    ++walked;
    const Desc& desc = table_[d];
    void* ptr = translate_ ? translate_(desc.addr, desc.len) : nullptr;
    chain.segments.push_back(
        Chain::Segment{ptr, desc.len, (desc.flags & VIRTQ_DESC_F_WRITE) != 0});
    if ((desc.flags & VIRTQ_DESC_F_NEXT) == 0) {
      if (!inject_cycle) break;
      d = head;  // injected corruption: terminator loops back to the head
      continue;
    }
    d = desc.next;
  }
  if (inject_truncate && chain.segments.size() > 1) {
    chain.segments.pop_back();
    truncated_chains_.inc();
    VPHI_LOG(kWarn, "virtio") << "chain from head " << head
                              << " truncated to " << chain.segments.size()
                              << " segment(s)";
  }
  return chain;
}

bool Virtqueue::arm_used_event() {
  sim::MutexLock lock(mu_);
  if (!event_idx_) return false;
  used_event_shadow_ = used_consumed_;
  // Arm-then-recheck: a completion pushed between the caller's last drain
  // and this arm had its interrupt suppressed; tell the caller to re-drain
  // instead of sleeping on an IRQ that will never come.
  return used_idx_ != used_consumed_;
}

bool Virtqueue::should_interrupt() {
  sim::MutexLock lock(mu_);
  if (!event_idx_) {
    used_signal_point_ = used_idx_;
    return true;
  }
  if (vring_need_event(used_event_shadow_, used_idx_, used_signal_point_)) {
    used_signal_point_ = used_idx_;
    return true;
  }
  suppressed_irqs_.inc();
  return false;
}

sim::Status Virtqueue::push_used(std::uint16_t head, std::uint32_t written,
                                 sim::Nanos done_ts) {
  sim::MutexLock lock(mu_);
  if (head >= size_) return sim::Status::kInvalidArgument;
  used_ring_[used_idx_ % size_] = UsedElem{head, written, done_ts};
  ++used_idx_;
  sim::tracer().record(trace_by_head_[head], sim::SpanEvent::kUsedPublish,
                       done_ts);
  trace_by_head_[head] = 0;
  return sim::Status::kOk;
}

void Virtqueue::shutdown() { avail_event_.close(); }

std::uint16_t Virtqueue::free_descriptors() const {
  sim::MutexLock lock(mu_);
  return num_free_;
}

std::uint16_t Virtqueue::avail_idx() const {
  sim::MutexLock lock(mu_);
  return avail_idx_;
}

std::uint16_t Virtqueue::used_idx() const {
  sim::MutexLock lock(mu_);
  return used_idx_;
}

std::uint16_t Virtqueue::live_chains() const {
  sim::MutexLock lock(mu_);
  return live_chains_;
}

}  // namespace vphi::virtio
