// Virtio device status / feature negotiation (virtio 1.0 section 2.1).
//
// The vPHI backend is a virtual PCI device in QEMU; before the frontend
// driver may use its virtqueue the standard status dance must complete:
// ACKNOWLEDGE -> DRIVER -> FEATURES_OK -> DRIVER_OK. We keep the handshake
// (and its failure mode, FAILED) so driver/device lifecycle tests mirror a
// real probe.
#pragma once

#include <atomic>
#include <cstdint>

namespace vphi::virtio {

inline constexpr std::uint8_t VIRTIO_STATUS_ACKNOWLEDGE = 0x01;
inline constexpr std::uint8_t VIRTIO_STATUS_DRIVER = 0x02;
inline constexpr std::uint8_t VIRTIO_STATUS_DRIVER_OK = 0x04;
inline constexpr std::uint8_t VIRTIO_STATUS_FEATURES_OK = 0x08;
inline constexpr std::uint8_t VIRTIO_STATUS_FAILED = 0x80;

/// Feature bits offered by the vPHI backend device.
inline constexpr std::uint64_t VIRTIO_F_VERSION_1 = 1ull << 32;
/// EVENT_IDX notification suppression (virtio 1.0 sec 2.6.7): driver and
/// device publish used_event/avail_event indices so doorbells and interrupts
/// are only delivered when the other side asked for them.
inline constexpr std::uint64_t VIRTIO_F_EVENT_IDX = 1ull << 29;
inline constexpr std::uint64_t VPHI_F_SCIF = 1ull << 0;        ///< SCIF transport
inline constexpr std::uint64_t VPHI_F_MMAP_PFN = 1ull << 1;    ///< VM_PFNPHI path
inline constexpr std::uint64_t VPHI_F_SYSFS_INFO = 1ull << 2;  ///< card info fwd

class DeviceStatus {
 public:
  explicit DeviceStatus(std::uint64_t offered_features)
      : offered_(offered_features) {}

  std::uint64_t offered_features() const noexcept { return offered_; }

  /// Driver writes its accepted feature subset; returns false (and latches
  /// FAILED) if the driver asked for something the device never offered.
  bool negotiate(std::uint64_t accepted) noexcept {
    if ((accepted & ~offered_) != 0) {
      set(VIRTIO_STATUS_FAILED);
      return false;
    }
    accepted_ = accepted;
    set(VIRTIO_STATUS_FEATURES_OK);
    return true;
  }

  std::uint64_t accepted_features() const noexcept { return accepted_; }

  void set(std::uint8_t bit) noexcept {
    status_.fetch_or(bit, std::memory_order_relaxed);
  }
  bool has(std::uint8_t bit) const noexcept {
    return (status_.load(std::memory_order_relaxed) & bit) != 0;
  }
  bool driver_ok() const noexcept { return has(VIRTIO_STATUS_DRIVER_OK); }
  bool failed() const noexcept { return has(VIRTIO_STATUS_FAILED); }

  void reset() noexcept {
    status_.store(0, std::memory_order_relaxed);
    accepted_ = 0;
  }

 private:
  std::uint64_t offered_;
  std::uint64_t accepted_ = 0;
  std::atomic<std::uint8_t> status_{0};
};

}  // namespace vphi::virtio
