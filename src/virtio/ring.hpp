// Virtio split virtqueue (descriptor table + avail ring + used ring).
//
// Structurally faithful to the virtio 1.0 split ring: the guest driver posts
// descriptor *chains* referencing guest-physical buffers and kicks; the host
// device pops chains, resolves the addresses through a translation callback
// (QEMU's registered guest-memory mapping), consumes/fills the buffers in
// place — zero copies, exactly the property the paper leans on — and pushes
// the chain head onto the used ring, then injects an interrupt.
//
// Timestamps ride along: a kick carries the driver-side visibility time, a
// used entry the device-side completion time.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "sim/actor.hpp"
#include "sim/channel.hpp"
#include "sim/metrics.hpp"
#include "sim/status.hpp"
#include "sim/thread_safety.hpp"
#include "sim/trace.hpp"

namespace vphi::virtio {

inline constexpr std::uint16_t VIRTQ_DESC_F_NEXT = 0x1;
inline constexpr std::uint16_t VIRTQ_DESC_F_WRITE = 0x2;

/// One descriptor table entry (virtq_desc).
struct Desc {
  std::uint64_t addr = 0;  ///< guest-physical address
  std::uint32_t len = 0;
  std::uint16_t flags = 0;
  std::uint16_t next = 0;
};

/// A guest buffer reference the driver wants to post.
struct BufferRef {
  std::uint64_t gpa = 0;
  std::uint32_t len = 0;
};

/// Used-ring element (virtq_used_elem).
struct UsedElem {
  std::uint32_t id = 0;   ///< head descriptor index of the completed chain
  std::uint32_t len = 0;  ///< bytes the device wrote into WRITE buffers
  sim::Nanos ts = 0;      ///< device-side completion visibility time
};

/// Resolves a guest-physical range to host-virtual memory. Must return
/// nullptr for addresses outside registered guest memory.
using MemTranslate =
    std::function<void*(std::uint64_t gpa, std::uint32_t len)>;

/// A popped chain as the device sees it: resolved segments in chain order.
struct Chain {
  std::uint16_t head = 0;
  sim::Nanos kick_ts = 0;
  /// Trace context of the request riding this chain (0 = untraced). Host-
  /// side bookkeeping only — the wire format is untouched.
  sim::TraceId trace = 0;
  /// The descriptor walk hit the size_ cap or an out-of-table index — the
  /// guest posted a cyclic or corrupted chain. The device must not trust
  /// any segment content; it should answer with an error response (or a
  /// zero-length used entry) and move on.
  bool poisoned = false;
  struct Segment {
    void* ptr = nullptr;
    std::uint32_t len = 0;
    bool device_writes = false;  ///< VIRTQ_DESC_F_WRITE
  };
  std::vector<Segment> segments;

  /// Total length of device-writable segments.
  std::uint32_t writable_bytes() const {
    std::uint32_t n = 0;
    for (const auto& s : segments) {
      if (s.device_writes) n += s.len;
    }
    return n;
  }
};

class Virtqueue {
 public:
  /// `size` must be a power of two (virtio requirement). `label` is the
  /// owning tenant's metric label ("vm=vm0"); empty for raw ring users —
  /// the ring's instruments then contribute to the aggregates only.
  Virtqueue(std::uint16_t size, MemTranslate translate,
            std::string label = {});

  std::uint16_t size() const noexcept { return size_; }

  /// Negotiated at probe time (VIRTIO_F_EVENT_IDX): both sides consult the
  /// used_event/avail_event indices before notifying. Off by default so raw
  /// ring users keep the legacy always-notify behavior.
  void set_event_idx(bool enabled) VPHI_EXCLUDES(mu_);
  bool event_idx_enabled() const VPHI_EXCLUDES(mu_);

  // --- driver (guest) side -------------------------------------------------

  /// Post a chain: `out` buffers are device-readable, `in` buffers are
  /// device-writable (WRITE flag). Returns the chain's head descriptor id,
  /// or kNoSpace when the table cannot hold the chain. `publish_ts` is the
  /// simulated time the avail entry became visible; it bounds the chain's
  /// kick_ts when the doorbell itself is suppressed (EVENT_IDX). `trace`
  /// ties the chain to a request trace: the ring records kAvailPublish now,
  /// stamps popped Chains with it, and records kUsedPublish on completion.
  sim::Expected<std::uint16_t> add_buf(std::span<const BufferRef> out,
                                       std::span<const BufferRef> in,
                                       sim::Nanos publish_ts = 0,
                                       sim::TraceId trace = 0)
      VPHI_EXCLUDES(mu_);

  /// Ask whether a doorbell is needed for the entries published since the
  /// last kick_prepare (virtqueue_kick_prepare). Always true with EVENT_IDX
  /// off. With it on, false (and counted as suppressed) when the device has
  /// not armed avail_event over the published range — i.e. it is already
  /// draining and will see the entries without a vmexit.
  bool kick_prepare() VPHI_EXCLUDES(mu_);

  /// Notify the device that avail entries are pending. `visible_ts` is the
  /// simulated time the kick reaches the device (the caller has already
  /// charged the MMIO/vmexit cost).
  void kick(sim::Nanos visible_ts);

  /// Non-blocking poll of the used ring. Frees the chain's descriptors.
  std::optional<UsedElem> get_used() VPHI_EXCLUDES(mu_);

  /// Driver side of EVENT_IDX: arm used_event at the current consumption
  /// point ("interrupt me for the next completion"). Returns true when used
  /// entries are already pending, in which case the caller must re-drain —
  /// the arm raced a push_used whose interrupt was suppressed (the classic
  /// lost-wakeup edge). No-op returning false when EVENT_IDX is off.
  bool arm_used_event() VPHI_EXCLUDES(mu_);

  // --- device (host) side -------------------------------------------------------

  /// Block until an avail chain is ready (or shutdown); resolve and return
  /// it. Device-side FIFO order matches avail order.
  std::optional<Chain> pop_avail() VPHI_EXCLUDES(mu_);
  /// Non-blocking variant.
  std::optional<Chain> try_pop_avail() VPHI_EXCLUDES(mu_);

  /// Batch pop: drain every ready avail entry (one wakeup amortized over the
  /// whole burst). Blocks when nothing is ready; with EVENT_IDX on it arms
  /// avail_event and atomically rechecks before sleeping, so a suppressed
  /// doorbell can never strand a published chain. An empty vector means the
  /// ring shut down.
  std::vector<Chain> pop_avail_batch() VPHI_EXCLUDES(mu_);

  /// Device side of EVENT_IDX, called after push_used: should a vIRQ be
  /// injected for the entries pushed since the last interrupt? Always true
  /// (and signal-point advancing) with EVENT_IDX off.
  bool should_interrupt() VPHI_EXCLUDES(mu_);

  /// Complete a chain: make it visible on the used ring at `done_ts` with
  /// `written` bytes produced. The caller raises the VM interrupt itself.
  sim::Status push_used(std::uint16_t head, std::uint32_t written,
                        sim::Nanos done_ts) VPHI_EXCLUDES(mu_);

  /// Stop the queue: pop_avail returns nullopt to unblock the device.
  void shutdown();

  // --- introspection / invariants ---------------------------------------------
  std::uint16_t free_descriptors() const VPHI_EXCLUDES(mu_);
  std::uint16_t avail_idx() const VPHI_EXCLUDES(mu_);
  std::uint16_t used_idx() const VPHI_EXCLUDES(mu_);
  // Per-instance reads of the registered metrics (registry names in
  // docs/OBSERVABILITY.md; a multi-VM snapshot sums across instances).
  std::uint64_t kicks() const { return kick_count_.value(); }
  /// Kicks swallowed by fault injection (kKickDrop).
  std::uint64_t dropped_kicks() const { return dropped_kicks_.value(); }
  /// Doorbells elided because the device was already draining (EVENT_IDX).
  std::uint64_t suppressed_kicks() const { return suppressed_kicks_.value(); }
  /// Interrupts elided because no driver armed used_event (EVENT_IDX).
  std::uint64_t suppressed_irqs() const { return suppressed_irqs_.value(); }
  /// Chains whose descriptor walk was cut short by the size_ cap (cyclic or
  /// corrupted next pointers, genuine or injected).
  std::uint64_t poisoned_chains() const { return poisoned_chains_.value(); }
  /// Chains whose segment list lost its tail to fault injection.
  std::uint64_t truncated_chains() const { return truncated_chains_.value(); }
  /// Chains currently between add_buf and get_used (ring occupancy).
  std::uint16_t live_chains() const VPHI_EXCLUDES(mu_);

 private:
  sim::Expected<std::uint16_t> alloc_desc_locked() VPHI_REQUIRES(mu_);
  void free_chain_locked(std::uint16_t head) VPHI_REQUIRES(mu_);
  std::optional<Chain> try_pop_avail_locked() VPHI_REQUIRES(mu_);
  /// Drain every ready avail entry under mu_ into `out`.
  void drain_avail_locked(std::vector<Chain>& out) VPHI_REQUIRES(mu_);

  std::uint16_t size_;
  MemTranslate translate_;

  // Lock order: ring mu_ -> tracer mu_ (add_buf/push_used record span
  // events under mu_; the tracer never reaches back into the ring).
  mutable sim::Mutex mu_;
  std::vector<Desc> table_ VPHI_GUARDED_BY(mu_);
  std::vector<std::uint16_t> avail_ring_ VPHI_GUARDED_BY(mu_);
  /// Parallel to avail_ring_.
  std::vector<sim::Nanos> avail_publish_ts_ VPHI_GUARDED_BY(mu_);
  /// Indexed by head descriptor.
  std::vector<sim::TraceId> trace_by_head_ VPHI_GUARDED_BY(mu_);
  std::vector<UsedElem> used_ring_ VPHI_GUARDED_BY(mu_);
  /// Head of the free-descriptor list.
  std::uint16_t free_head_ VPHI_GUARDED_BY(mu_) = 0;
  std::uint16_t num_free_ VPHI_GUARDED_BY(mu_) = 0;
  /// Driver's producer index.
  std::uint16_t avail_idx_ VPHI_GUARDED_BY(mu_) = 0;
  /// Device's consumer index.
  std::uint16_t avail_consumed_ VPHI_GUARDED_BY(mu_) = 0;
  /// Device's producer index.
  std::uint16_t used_idx_ VPHI_GUARDED_BY(mu_) = 0;
  /// Driver's consumer index.
  std::uint16_t used_consumed_ VPHI_GUARDED_BY(mu_) = 0;
  /// Chains between add_buf and get_used.
  std::uint16_t live_chains_ VPHI_GUARDED_BY(mu_) = 0;
  sim::metrics::Counter kick_count_;
  sim::metrics::Counter dropped_kicks_;
  sim::metrics::Counter poisoned_chains_;
  sim::metrics::Counter truncated_chains_;
  /// Point-in-time ring occupancy (chains in flight) and its distribution
  /// sampled at every add_buf.
  sim::metrics::Gauge inflight_gauge_;
  sim::metrics::LatencyHistogram occupancy_hist_;

  // --- EVENT_IDX state (virtio 1.0 sec 2.6.7) -------------------------------
  bool event_idx_ VPHI_GUARDED_BY(mu_) = false;
  /// Device: "kick me past this idx".
  std::uint16_t avail_event_shadow_ VPHI_GUARDED_BY(mu_) = 0;
  /// Driver: avail_idx_ at last prepare.
  std::uint16_t kick_point_ VPHI_GUARDED_BY(mu_) = 0;
  /// Driver: "irq me past this idx".
  std::uint16_t used_event_shadow_ VPHI_GUARDED_BY(mu_) = 0;
  /// Device: used_idx_ at last irq.
  std::uint16_t used_signal_point_ VPHI_GUARDED_BY(mu_) = 0;
  sim::metrics::Counter suppressed_kicks_;
  sim::metrics::Counter suppressed_irqs_;

  sim::EventLine avail_event_;
};

}  // namespace vphi::virtio
