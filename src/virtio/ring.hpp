// Virtio split virtqueue (descriptor table + avail ring + used ring).
//
// Structurally faithful to the virtio 1.0 split ring: the guest driver posts
// descriptor *chains* referencing guest-physical buffers and kicks; the host
// device pops chains, resolves the addresses through a translation callback
// (QEMU's registered guest-memory mapping), consumes/fills the buffers in
// place — zero copies, exactly the property the paper leans on — and pushes
// the chain head onto the used ring, then injects an interrupt.
//
// Timestamps ride along: a kick carries the driver-side visibility time, a
// used entry the device-side completion time.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "sim/actor.hpp"
#include "sim/channel.hpp"
#include "sim/status.hpp"

namespace vphi::virtio {

inline constexpr std::uint16_t VIRTQ_DESC_F_NEXT = 0x1;
inline constexpr std::uint16_t VIRTQ_DESC_F_WRITE = 0x2;

/// One descriptor table entry (virtq_desc).
struct Desc {
  std::uint64_t addr = 0;  ///< guest-physical address
  std::uint32_t len = 0;
  std::uint16_t flags = 0;
  std::uint16_t next = 0;
};

/// A guest buffer reference the driver wants to post.
struct BufferRef {
  std::uint64_t gpa = 0;
  std::uint32_t len = 0;
};

/// Used-ring element (virtq_used_elem).
struct UsedElem {
  std::uint32_t id = 0;   ///< head descriptor index of the completed chain
  std::uint32_t len = 0;  ///< bytes the device wrote into WRITE buffers
  sim::Nanos ts = 0;      ///< device-side completion visibility time
};

/// Resolves a guest-physical range to host-virtual memory. Must return
/// nullptr for addresses outside registered guest memory.
using MemTranslate =
    std::function<void*(std::uint64_t gpa, std::uint32_t len)>;

/// A popped chain as the device sees it: resolved segments in chain order.
struct Chain {
  std::uint16_t head = 0;
  sim::Nanos kick_ts = 0;
  /// The descriptor walk hit the size_ cap or an out-of-table index — the
  /// guest posted a cyclic or corrupted chain. The device must not trust
  /// any segment content; it should answer with an error response (or a
  /// zero-length used entry) and move on.
  bool poisoned = false;
  struct Segment {
    void* ptr = nullptr;
    std::uint32_t len = 0;
    bool device_writes = false;  ///< VIRTQ_DESC_F_WRITE
  };
  std::vector<Segment> segments;

  /// Total length of device-writable segments.
  std::uint32_t writable_bytes() const {
    std::uint32_t n = 0;
    for (const auto& s : segments) {
      if (s.device_writes) n += s.len;
    }
    return n;
  }
};

class Virtqueue {
 public:
  /// `size` must be a power of two (virtio requirement).
  Virtqueue(std::uint16_t size, MemTranslate translate);

  std::uint16_t size() const noexcept { return size_; }

  // --- driver (guest) side -------------------------------------------------

  /// Post a chain: `out` buffers are device-readable, `in` buffers are
  /// device-writable (WRITE flag). Returns the chain's head descriptor id,
  /// or kNoSpace when the table cannot hold the chain.
  sim::Expected<std::uint16_t> add_buf(std::span<const BufferRef> out,
                                       std::span<const BufferRef> in);

  /// Notify the device that avail entries are pending. `visible_ts` is the
  /// simulated time the kick reaches the device (the caller has already
  /// charged the MMIO/vmexit cost).
  void kick(sim::Nanos visible_ts);

  /// Non-blocking poll of the used ring. Frees the chain's descriptors.
  std::optional<UsedElem> get_used();

  // --- device (host) side -------------------------------------------------------

  /// Block until an avail chain is ready (or shutdown); resolve and return
  /// it. Device-side FIFO order matches avail order.
  std::optional<Chain> pop_avail();
  /// Non-blocking variant.
  std::optional<Chain> try_pop_avail();

  /// Complete a chain: make it visible on the used ring at `done_ts` with
  /// `written` bytes produced. The caller raises the VM interrupt itself.
  sim::Status push_used(std::uint16_t head, std::uint32_t written,
                        sim::Nanos done_ts);

  /// Stop the queue: pop_avail returns nullopt to unblock the device.
  void shutdown();

  // --- introspection / invariants ---------------------------------------------
  std::uint16_t free_descriptors() const;
  std::uint16_t avail_idx() const;
  std::uint16_t used_idx() const;
  std::uint64_t kicks() const;
  /// Kicks swallowed by fault injection (kKickDrop).
  std::uint64_t dropped_kicks() const;
  /// Chains whose descriptor walk was cut short by the size_ cap (cyclic or
  /// corrupted next pointers, genuine or injected).
  std::uint64_t poisoned_chains() const;
  /// Chains whose segment list lost its tail to fault injection.
  std::uint64_t truncated_chains() const;

 private:
  sim::Expected<std::uint16_t> alloc_desc_locked();
  void free_chain_locked(std::uint16_t head);

  std::uint16_t size_;
  MemTranslate translate_;

  mutable std::mutex mu_;
  std::vector<Desc> table_;
  std::vector<std::uint16_t> avail_ring_;
  std::vector<UsedElem> used_ring_;
  std::uint16_t free_head_ = 0;      ///< head of the free-descriptor list
  std::uint16_t num_free_ = 0;
  std::uint16_t avail_idx_ = 0;      ///< driver's producer index
  std::uint16_t avail_consumed_ = 0; ///< device's consumer index
  std::uint16_t used_idx_ = 0;       ///< device's producer index
  std::uint16_t used_consumed_ = 0;  ///< driver's consumer index
  std::uint64_t kick_count_ = 0;
  std::uint64_t dropped_kicks_ = 0;
  std::uint64_t poisoned_chains_ = 0;
  std::uint64_t truncated_chains_ = 0;

  sim::EventLine avail_event_;
};

}  // namespace vphi::virtio
