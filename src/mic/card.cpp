#include "mic/card.hpp"

namespace vphi::mic {

namespace {
// Booting the uOS (load image over PCIe, kernel init, coi_daemon start)
// takes a few seconds on real hardware; one modeled constant is enough
// since it is outside every measured path in the paper.
constexpr sim::Nanos kBootTime = 4ull * sim::kSecond;
}  // namespace

Card::Card(const CardConfig& config, const sim::CostModel& model)
    : config_(config),
      model_(&model),
      link_(model),
      dma_(link_),
      memory_(config.memory_backing_bytes),
      sysfs_(SysfsInfo::for_3120p(config.index)),
      scheduler_(model),
      card_actor_("mic" + std::to_string(config.index)) {}

void Card::boot() {
  if (online_) return;
  card_actor_.advance(kBootTime);
  sysfs_.set("state", "online");
  online_ = true;
}

}  // namespace vphi::mic
