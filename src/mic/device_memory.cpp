#include "mic/device_memory.hpp"

namespace vphi::mic {

DeviceMemory::DeviceMemory(std::uint64_t backing_bytes)
    : capacity_((backing_bytes + kPageSize - 1) / kPageSize * kPageSize),
      backing_(std::make_unique<std::byte[]>(capacity_)) {
  free_blocks_[0] = capacity_;
}

sim::Expected<std::uint64_t> DeviceMemory::allocate(std::uint64_t len) {
  if (len == 0) return sim::Status::kInvalidArgument;
  len = (len + kPageSize - 1) / kPageSize * kPageSize;
  sim::MutexLock lock(mu_);
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second < len) continue;
    const std::uint64_t offset = it->first;
    const std::uint64_t remainder = it->second - len;
    free_blocks_.erase(it);
    if (remainder > 0) free_blocks_[offset + len] = remainder;
    live_blocks_[offset] = len;
    return offset;
  }
  return sim::Status::kNoMemory;
}

sim::Status DeviceMemory::free(std::uint64_t offset) {
  sim::MutexLock lock(mu_);
  auto it = live_blocks_.find(offset);
  if (it == live_blocks_.end()) return sim::Status::kInvalidArgument;
  std::uint64_t len = it->second;
  live_blocks_.erase(it);

  // Coalesce with the next free block if adjacent.
  auto next = free_blocks_.lower_bound(offset);
  if (next != free_blocks_.end() && next->first == offset + len) {
    len += next->second;
    free_blocks_.erase(next);
  }
  // Coalesce with the previous free block if adjacent.
  auto prev = free_blocks_.lower_bound(offset);
  if (prev != free_blocks_.begin()) {
    --prev;
    if (prev->first + prev->second == offset) {
      prev->second += len;
      return sim::Status::kOk;
    }
  }
  free_blocks_[offset] = len;
  return sim::Status::kOk;
}

void* DeviceMemory::at(std::uint64_t offset) noexcept {
  if (offset >= capacity_) return nullptr;
  return backing_.get() + offset;
}

const void* DeviceMemory::at(std::uint64_t offset) const noexcept {
  if (offset >= capacity_) return nullptr;
  return backing_.get() + offset;
}

bool DeviceMemory::covers(std::uint64_t offset, std::uint64_t len) const {
  sim::MutexLock lock(mu_);
  auto it = live_blocks_.upper_bound(offset);
  if (it == live_blocks_.begin()) return false;
  --it;
  return offset >= it->first && offset + len <= it->first + it->second;
}

std::uint64_t DeviceMemory::used() const {
  sim::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [_, len] : live_blocks_) total += len;
  return total;
}

std::uint64_t DeviceMemory::allocation_count() const {
  sim::MutexLock lock(mu_);
  return live_blocks_.size();
}

}  // namespace vphi::mic
