#include "mic/sysfs.hpp"

#include <cstdlib>

namespace vphi::mic {

SysfsInfo SysfsInfo::for_3120p(std::uint32_t card_index) {
  SysfsInfo info;
  info.set("family", "Knights Corner");
  info.set("sku", "3120P");
  info.set("stepping", "C0");
  info.set("cores_count", "57");
  info.set("threads_per_core", "4");
  info.set("frequency_mhz", "1100");
  info.set("memsize_mb", "6144");
  info.set("memory_type", "GDDR5");
  info.set("driver_version", "3.8.6");
  info.set("uos_version", "2.6.38.8+mpss3.8.6");
  info.set("flash_version", "2.1.02.0391");
  info.set("state", "online");
  info.set("mic_id", std::to_string(card_index));
  info.set("device_node", "/dev/mic/scif");
  return info;
}

void SysfsInfo::set(const std::string& key, std::string value) {
  table_[key] = std::move(value);
}

std::optional<std::string> SysfsInfo::get(const std::string& key) const {
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

bool SysfsInfo::contains(const std::string& key) const {
  return table_.count(key) > 0;
}

std::optional<std::uint64_t> SysfsInfo::get_u64(const std::string& key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

std::string SysfsInfo::render() const {
  std::string out;
  for (const auto& [k, v] : table_) {
    out += k;
    out += ": ";
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace vphi::mic
