// Card-side GDDR memory: a real backing buffer with a first-fit arena
// allocator on top. SCIF registered windows on the card and COI buffers live
// here; RMA and mmap resolve to real pointers into this arena, so data
// movement is byte-exact.
//
// The simulated card advertises the full 6 GB of a 3120P, but the arena only
// backs `backing_bytes` of it (configurable) so tests stay small;
// allocations beyond the backing fail with kNoMemory exactly like exhausting
// the real card would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include "sim/thread_safety.hpp"

#include "sim/status.hpp"

namespace vphi::mic {

class DeviceMemory {
 public:
  static constexpr std::uint64_t kPageSize = 4'096;

  explicit DeviceMemory(std::uint64_t backing_bytes);

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  /// Allocate `len` bytes (rounded up to page size). Returns the device
  /// offset of the block.
  sim::Expected<std::uint64_t> allocate(std::uint64_t len);

  /// Free a block previously returned by allocate(). Exact-offset match
  /// required, like a device-side buddy allocator's API.
  sim::Status free(std::uint64_t offset);

  /// Host-visible pointer to device offset (valid for [offset, offset+len)
  /// of an allocated block). Returns nullptr for out-of-range offsets.
  void* at(std::uint64_t offset) noexcept;
  const void* at(std::uint64_t offset) const noexcept;

  /// True if [offset, offset+len) lies inside one allocated block.
  bool covers(std::uint64_t offset, std::uint64_t len) const;

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const;
  std::uint64_t allocation_count() const;

 private:
  std::uint64_t capacity_;
  std::unique_ptr<std::byte[]> backing_;
  mutable sim::Mutex mu_;
  std::map<std::uint64_t, std::uint64_t> free_blocks_
      VPHI_GUARDED_BY(mu_);  // offset -> len
  std::map<std::uint64_t, std::uint64_t> live_blocks_
      VPHI_GUARDED_BY(mu_);  // offset -> len
};

}  // namespace vphi::mic
