// A Xeon Phi card: PCIe link + device memory + uOS + sysfs identity.
//
// The card also owns its own Actor ("the uOS timeline") and a DMA engine.
// Higher layers attach to it: the SCIF fabric registers the card as a SCIF
// node, and the COI daemon runs as a thread against the card's services.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "mic/device_memory.hpp"
#include "mic/sysfs.hpp"
#include "mic/uos.hpp"
#include "pcie/dma.hpp"
#include "pcie/link.hpp"
#include "sim/actor.hpp"
#include "sim/cost_model.hpp"

namespace vphi::mic {

struct CardConfig {
  std::uint32_t index = 0;
  /// Bytes of device memory actually backed by host RAM in the simulation
  /// (allocations beyond this fail with kNoMemory). The sysfs identity still
  /// advertises the full 6 GB of a 3120P.
  std::uint64_t memory_backing_bytes = 1ull << 30;
};

class Card {
 public:
  Card(const CardConfig& config, const sim::CostModel& model);

  Card(const Card&) = delete;
  Card& operator=(const Card&) = delete;

  /// Boot the uOS: charges boot time on the card's timeline and flips the
  /// card online. Idempotent.
  void boot();
  bool online() const noexcept { return online_; }

  std::uint32_t index() const noexcept { return config_.index; }
  const sim::CostModel& model() const noexcept { return *model_; }

  pcie::Link& link() noexcept { return link_; }
  pcie::DmaEngine& dma() noexcept { return dma_; }
  DeviceMemory& memory() noexcept { return memory_; }
  SysfsInfo& sysfs() noexcept { return sysfs_; }
  const SysfsInfo& sysfs() const noexcept { return sysfs_; }
  uos::Scheduler& scheduler() noexcept { return scheduler_; }
  sim::Actor& card_actor() noexcept { return card_actor_; }

 private:
  CardConfig config_;
  const sim::CostModel* model_;
  pcie::Link link_;
  pcie::DmaEngine dma_;
  DeviceMemory memory_;
  SysfsInfo sysfs_;
  uos::Scheduler scheduler_;
  sim::Actor card_actor_;
  bool online_ = false;
};

}  // namespace vphi::mic
