// The card's micro operating system (uOS).
//
// A real KNC card boots a trimmed Linux whose scheduler multiplexes software
// threads onto 57 cores x 4 hardware threads; one core is reserved for the
// uOS itself (which is why the paper's dgemm sweeps use 56/112/224 threads).
// We model:
//  * placement: software threads are spread round-robin over the usable
//    cores, so n threads leave some cores running ceil(n/56) and the rest
//    floor(n/56) threads;
//  * issue efficiency: KNC's in-order pipeline cannot issue from the same
//    hw thread on back-to-back cycles, so per-core throughput depends on
//    resident threads (CostModel::mic_issue_eff);
//  * oversubscription: beyond 4 threads/core the uOS round-robin timeslices,
//    paying a context-switch tax per slice;
//  * thread spawn and exec/loader costs for process launch.
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/time.hpp"

namespace vphi::mic::uos {

class Scheduler {
 public:
  explicit Scheduler(const sim::CostModel& model) : model_(&model) {}

  std::uint32_t usable_cores() const {
    return model_->mic_cores - model_->mic_reserved_cores;
  }
  std::uint32_t hw_threads() const {
    return usable_cores() * model_->mic_threads_per_core;
  }

  /// Per-core double-precision flops/s with `resident` software threads on
  /// the core (resident >= 1). Beyond 4 threads the issue rate saturates at
  /// the 4-thread efficiency and a timeslicing tax applies.
  double core_flops_rate(std::uint32_t resident) const;

  /// Aggregate flops/s over the whole card when running `nthreads` software
  /// threads placed round-robin.
  double aggregate_flops_rate(std::uint32_t nthreads) const;

  /// Makespan of a perfectly balanced compute phase of `total_flops` split
  /// evenly over `nthreads` threads. Governed by the slowest thread (the one
  /// sharing the most crowded core), matching an OpenMP static schedule.
  sim::Nanos compute_makespan(double total_flops, std::uint32_t nthreads) const;

  /// Makespan of a memory-bound phase touching `bytes` (streamed once).
  sim::Nanos memory_makespan(std::uint64_t bytes) const {
    return sim::transfer_time(bytes, model_->mic_mem_bandwidth_Bps);
  }

  /// Cost of spawning `nthreads` threads (sequential pthread_create by the
  /// launcher thread, as the MKL/OpenMP runtime does on first use).
  sim::Nanos spawn_cost(std::uint32_t nthreads) const {
    return static_cast<sim::Nanos>(nthreads) * model_->uos_spawn_thread_ns;
  }

  /// Cost of exec()ing a freshly uploaded binary (loader, relocations).
  sim::Nanos exec_cost() const { return model_->uos_exec_setup_ns; }

  const sim::CostModel& model() const { return *model_; }

 private:
  const sim::CostModel* model_;
};

}  // namespace vphi::mic::uos
