#include "mic/uos.hpp"

#include <algorithm>

namespace vphi::mic::uos {

double Scheduler::core_flops_rate(std::uint32_t resident) const {
  if (resident == 0) return 0.0;
  const auto& m = *model_;
  const std::uint32_t hw = std::min(resident, m.mic_threads_per_core);
  double rate = m.mic_core_hz * m.mic_flops_per_cycle * m.mic_issue_eff[hw];
  if (resident > m.mic_threads_per_core) {
    // Oversubscribed: the uOS round-robins; each timeslice pays one switch.
    const double slice = static_cast<double>(m.uos_timeslice_ns);
    const double tax = slice / (slice + static_cast<double>(m.uos_ctx_switch_ns));
    rate *= tax;
  }
  return rate;
}

double Scheduler::aggregate_flops_rate(std::uint32_t nthreads) const {
  if (nthreads == 0) return 0.0;
  const std::uint32_t cores = usable_cores();
  const std::uint32_t active = std::min(nthreads, cores);
  const std::uint32_t q = nthreads / cores;
  const std::uint32_t r = nthreads % cores;
  double total = 0.0;
  if (q == 0) {
    total = static_cast<double>(active) * core_flops_rate(1);
  } else {
    total = static_cast<double>(r) * core_flops_rate(q + 1) +
            static_cast<double>(cores - r) * core_flops_rate(q);
  }
  return total;
}

sim::Nanos Scheduler::compute_makespan(double total_flops,
                                       std::uint32_t nthreads) const {
  if (total_flops <= 0.0 || nthreads == 0) return 0;
  const std::uint32_t cores = usable_cores();
  // Most crowded core's resident thread count.
  const std::uint32_t max_resident =
      (nthreads + cores - 1) / cores;  // ceil
  // A thread on the most crowded core progresses at core_rate / resident.
  const double slowest_thread_rate =
      core_flops_rate(max_resident) / static_cast<double>(max_resident);
  const double per_thread_flops =
      total_flops / static_cast<double>(nthreads);
  const double seconds = per_thread_flops / slowest_thread_rate;
  return static_cast<sim::Nanos>(seconds * 1e9);
}

}  // namespace vphi::mic::uos
