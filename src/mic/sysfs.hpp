// The host Xeon Phi driver's sysfs surface.
//
// Intel MPSS tools (micnativeloadex, micinfo) read card properties from
// /sys/class/mic/micN/*. The paper notes vPHI must expose the same
// information inside the guest for the tools to operate; the vPHI backend
// snapshots this table and the frontend serves it to guest-side tools.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace vphi::mic {

class SysfsInfo {
 public:
  /// The attribute table for an Intel Xeon Phi 3120P running MPSS 3.x —
  /// the card the paper evaluates on.
  static SysfsInfo for_3120p(std::uint32_t card_index);

  void set(const std::string& key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Integer-valued attribute, or nullopt if missing/non-numeric.
  std::optional<std::uint64_t> get_u64(const std::string& key) const;

  /// Full table, ordered by key (stable for tests and `mic_info`).
  const std::map<std::string, std::string>& entries() const { return table_; }

  /// Renders "key: value" lines the way `micinfo` prints them.
  std::string render() const;

 private:
  std::map<std::string, std::string> table_;
};

}  // namespace vphi::mic
