// PCIe link model.
//
// One Link instance stands in for the PCIe gen2 x16 connection between the
// host root complex and a Xeon Phi card. All DMA occupancy is serialized
// through a sim::BusArbiter so concurrent users (host processes, several
// VMs' backends, the card) contend realistically in simulated time.
//
// Two timing regimes, both from sim::CostModel:
//  * contiguous DMA — host-physically-contiguous target (host SCIF
//    registered windows, card GDDR): raw link bandwidth;
//  * fragmented DMA — pinned guest pages seen through QEMU are only
//    guest-contiguous; the engine pays a scatter-gather descriptor cost per
//    4 KiB page. This is the mechanism behind the paper's 72%-of-native
//    RMA throughput (Fig. 5).
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/actor.hpp"
#include "sim/bus.hpp"
#include "sim/cost_model.hpp"
#include "sim/stats.hpp"

namespace vphi::pcie {

class Link {
 public:
  explicit Link(const sim::CostModel& model) : model_(&model) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  const sim::CostModel& model() const noexcept { return *model_; }

  /// Charge one MMIO/doorbell traversal to `actor` and return its new now().
  sim::Nanos mmio_hop(sim::Actor& actor) {
    return actor.advance(model_->pcie_hop_ns);
  }

  /// Reserve the link for a DMA of `bytes`. The requester is ready at
  /// `ready`; the grant reflects queueing behind other transfers. Does not
  /// modify any actor — callers decide whether the op is synchronous.
  sim::BusArbiter::Grant dma(sim::Nanos ready, std::uint64_t bytes,
                             bool fragmented) {
    const sim::Nanos dur =
        model_->dma_setup_ns + model_->dma_transfer_ns(bytes, fragmented);
    auto grant = arbiter_.acquire(ready, dur);
    bytes_moved_ += bytes;
    return grant;
  }

  /// Reserve the link for an arbitrary pre-computed duration (used by the
  /// stream path, whose effective bandwidth differs from raw RMA DMA).
  sim::BusArbiter::Grant occupy(sim::Nanos ready, sim::Nanos duration,
                                std::uint64_t bytes) {
    auto grant = arbiter_.acquire(ready, duration);
    bytes_moved_ += bytes;
    return grant;
  }

  /// Total payload bytes that have crossed the link.
  std::uint64_t bytes_moved() const noexcept { return bytes_moved_; }

  /// Simulated time the link has been busy (utilization accounting).
  sim::Nanos busy_total() const { return arbiter_.busy_total(); }

  std::uint64_t dma_count() const { return arbiter_.grants(); }

 private:
  const sim::CostModel* model_;
  sim::BusArbiter arbiter_;
  std::atomic<std::uint64_t> bytes_moved_{0};
};

}  // namespace vphi::pcie
