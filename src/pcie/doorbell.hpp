// Doorbell / interrupt wires across the PCIe link.
//
// A Doorbell is a one-directional notification line: ringing it costs the
// sender one MMIO hop; the waiter observes the ring at sender-time + hop.
#pragma once

#include <optional>

#include "pcie/link.hpp"
#include "sim/actor.hpp"
#include "sim/channel.hpp"

namespace vphi::pcie {

class Doorbell {
 public:
  explicit Doorbell(Link& link) : link_(&link) {}

  /// Ring from `sender`: pays the MMIO hop on the sender's clock; the event
  /// becomes visible to the waiter at the post-hop time.
  void ring(sim::Actor& sender) {
    const sim::Nanos visible = link_->mmio_hop(sender);
    line_.raise(visible);
  }

  /// Block until rung; merges the ring's visibility time into `waiter`.
  /// Returns false if the doorbell was shut down.
  bool wait(sim::Actor& waiter) {
    const auto ts = line_.wait();
    if (!ts) return false;
    waiter.sync_to(*ts);
    return true;
  }

  /// Non-blocking poll; merges time on success.
  bool try_wait(sim::Actor& waiter) {
    const auto ts = line_.try_wait();
    if (!ts) return false;
    waiter.sync_to(*ts);
    return true;
  }

  void shutdown() { line_.close(); }

  std::uint64_t pending() const { return line_.pending(); }

 private:
  Link* link_;
  sim::EventLine line_;
};

}  // namespace vphi::pcie
