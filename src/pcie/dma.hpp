// DMA engine: moves real bytes between host and device memory with link
// timing. KNC exposes 8 DMA channels; channels share the one physical link,
// so the engine tracks per-channel statistics while the Link's arbiter
// provides the actual serialization.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>

#include "pcie/link.hpp"
#include "sim/actor.hpp"
#include "sim/time.hpp"

namespace vphi::pcie {

/// Completion record for one DMA operation.
struct DmaCompletion {
  sim::Nanos start;  ///< simulated time the transfer began on the link
  sim::Nanos end;    ///< simulated completion time
  std::uint32_t channel;
};

class DmaEngine {
 public:
  static constexpr std::uint32_t kChannels = 8;

  explicit DmaEngine(Link& link) : link_(&link) {}

  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  /// Move `len` bytes from `src` to `dst` over the link. `fragmented` marks a
  /// non-host-contiguous (pinned guest) side of the transfer. The copy is
  /// byte-exact; the returned completion carries the simulated timing. The
  /// caller's actor is NOT advanced — synchronous APIs sync to `end`,
  /// asynchronous ones record the completion for a later fence.
  DmaCompletion transfer(sim::Nanos ready, void* dst, const void* src,
                         std::uint64_t len, bool fragmented) {
    const std::uint32_t ch = next_channel_.fetch_add(1, std::memory_order_relaxed) % kChannels;
    auto grant = link_->dma(ready, len, fragmented);
    if (len > 0) std::memcpy(dst, src, len);
    channel_bytes_[ch].fetch_add(len, std::memory_order_relaxed);
    return {grant.start, grant.end, ch};
  }

  /// Same timing without data movement — used for modeled-only payloads
  /// (e.g. the library streaming phase of micnativeloadex where content is
  /// synthetic).
  DmaCompletion transfer_timing_only(sim::Nanos ready, std::uint64_t len,
                                     bool fragmented) {
    const std::uint32_t ch = next_channel_.fetch_add(1, std::memory_order_relaxed) % kChannels;
    auto grant = link_->dma(ready, len, fragmented);
    channel_bytes_[ch].fetch_add(len, std::memory_order_relaxed);
    return {grant.start, grant.end, ch};
  }

  std::uint64_t channel_bytes(std::uint32_t ch) const {
    return channel_bytes_.at(ch).load(std::memory_order_relaxed);
  }

  Link& link() noexcept { return *link_; }

 private:
  Link* link_;
  std::atomic<std::uint32_t> next_channel_{0};
  std::array<std::atomic<std::uint64_t>, kChannels> channel_bytes_{};
};

}  // namespace vphi::pcie
