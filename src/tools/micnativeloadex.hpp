// micnativeloadex — the MPSS tool the paper uses for its application
// experiment (Sec. IV-C).
//
// Launches a MIC executable on the coprocessor directly from the host (or,
// through vPHI, from inside a VM): verifies the card via its sysfs identity,
// runs the dependency/environment handshake with coi_daemon (a burst of
// small COI RPCs), streams the binary and its libraries over SCIF, seeds
// the requested thread count (MIC_OMP_NUM_THREADS), waits for the process
// to finish and reports per-phase timings — the "total time of execution"
// Figs. 6-8 plot.
//
// The tool is written against scif::Provider, so the identical code runs
// natively and inside a VM; only the provider differs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coi/binary.hpp"
#include "coi/process.hpp"
#include "scif/provider.hpp"
#include "sim/status.hpp"
#include "sim/time.hpp"

namespace vphi::tools {

struct LoadexOptions {
  std::uint32_t card_index = 0;
  /// MIC_OMP_NUM_THREADS: threads the card process spawns (56/112/224 in
  /// the paper's sweeps).
  std::uint32_t threads = 224;
  std::vector<std::string> args;
};

struct LoadexResult {
  int exit_code = 0;
  std::string output;
  sim::Nanos handshake_ns = 0;  ///< sysfs probe + control RPCs
  sim::Nanos transfer_ns = 0;   ///< binary + library streaming
  sim::Nanos exec_ns = 0;       ///< card-side run until exit
  sim::Nanos total_ns = 0;      ///< client-observed end-to-end time
};

class MicNativeLoadEx {
 public:
  explicit MicNativeLoadEx(scif::Provider& provider) : provider_(&provider) {}

  /// Run `image` on the card in native mode and wait for completion.
  sim::Expected<LoadexResult> run(const coi::BinaryImage& image,
                                  const LoadexOptions& options);

 private:
  scif::Provider* provider_;
};

}  // namespace vphi::tools
