// vphi-stat: hop-by-hop latency breakdown of the vPHI transport.
//
// Drives one RMA read through a full vPHI stack with request tracing on and
// prints the per-hop latency table (the simulated analogue of the paper's
// Sec. IV-B breakdown, derived from measured spans instead of cost-model
// constants). Exits non-zero when the hop sum disagrees with the end-to-end
// measurement by more than 5% — the identity that proves the trace spans
// tile the request timeline.
//
// Flags:
//   --size N           bytes to read (default 64 MiB)
//   --trace-out PATH   also write a Chrome "chrome://tracing" JSON trace
//   --list-metrics     print every registered metric name and exit
//   --smoke            CI-sized run (8 MiB read over 2 MiB RMA chunks) that
//                      writes vphi_stat_trace.json by default
#pragma once

namespace vphi::tools {

/// The vphi-stat entry point (argv-style so tests can call it in-process).
int vphi_stat_main(int argc, char** argv);

}  // namespace vphi::tools
