// micinfo work-alike: renders the card inventory a provider can see.
//
// MPSS ships `micinfo`, which reads the sysfs attributes of every card and
// prints an inventory; tools and admins use it to sanity-check the stack.
// Because vPHI forwards the host's sysfs tables into the guest, the same
// report works from inside a VM — which is itself a meaningful check of
// the paper's "expose the same information that is provided in the host".
#pragma once

#include <string>

#include "scif/provider.hpp"

namespace vphi::tools {

/// Render an inventory of all cards visible through `provider`, in
/// micinfo's "key: value" style with one section per card. Returns an
/// empty string when no cards are visible.
std::string render_mic_info(scif::Provider& provider);

}  // namespace vphi::tools
