#include "tools/vphi_lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace vphi::tools::lint {

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// 1-based line number of byte offset `pos` in `text`.
std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
}

bool metric_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
         c == '_';
}

/// Extract `vphi.*` metric-name tokens from one string literal body. A
/// token ending in '.' is a prefix (the rest of the name is concatenated
/// at runtime, e.g. "vphi.fe.op." + op + ".errors").
std::vector<std::string> metric_tokens(std::string_view literal) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = literal.find("vphi.", pos)) != std::string_view::npos) {
    std::size_t end = pos;
    while (end < literal.size() && metric_name_char(literal[end])) ++end;
    out.emplace_back(literal.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

}  // namespace

LexedFile lex(std::string_view source) {
  LexedFile out;
  out.code.reserve(source.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string current;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          current.clear();
          out.code += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out.code += '\'';
        } else {
          out.code += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.code += '\n';
        } else {
          out.code += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.code += "  ";
          ++i;
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          current += c;
          current += next;
          out.code += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.strings.push_back(current);
          out.code += '"';
        } else {
          current += c;
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.code += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.code += '\'';
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> check_metric_catalogue(
    const Corpus& src, std::string_view observability_md) {
  std::vector<Finding> findings;

  // Source side: complete names and prefix literals, with one origin each
  // for error messages.
  std::set<std::string> src_names, src_prefixes;
  std::map<std::string, std::string> origin;
  for (const auto& [path, contents] : src) {
    for (const auto& literal : lex(contents).strings) {
      for (const auto& token : metric_tokens(literal)) {
        if (token == "vphi.") continue;  // bare scheme mention, not a name
        if (token.back() == '.') {
          src_prefixes.insert(token);
        } else {
          src_names.insert(token);
        }
        origin.emplace(token, path);
      }
    }
  }

  // Doc side: every backtick-quoted vphi.* token. `<op>`-style segments
  // mark parameterized families; a trailing '.' (from `vphi.fe.*`) marks
  // a prose wildcard, not a catalogue entry.
  std::set<std::string> doc_names;        // exact catalogued names
  std::set<std::string> doc_param_names;  // with <...> placeholders
  static const std::regex doc_token_re("`(vphi\\.[A-Za-z0-9_.<>{}=]+)`?");
  const std::string docs{observability_md};
  for (auto it = std::sregex_iterator(docs.begin(), docs.end(), doc_token_re);
       it != std::sregex_iterator(); ++it) {
    std::string name = (*it)[1].str();
    if (auto brace = name.find('{'); brace != std::string::npos) {
      name.resize(brace);  // drop the {vm=...} label suffix
    }
    if (name.empty() || name.back() == '.') continue;
    if (name.find('<') != std::string::npos) {
      doc_param_names.insert(name);
    } else {
      doc_names.insert(name);
    }
  }

  // src -> docs: every registered name must be catalogued.
  for (const auto& name : src_names) {
    if (doc_names.count(name) != 0) continue;
    // A concatenation suffix of a parameterized family would not reach
    // here (suffixes don't start with "vphi."), so an exact miss is real.
    findings.push_back({"metric-catalogue", origin[name],
                        "metric '" + name +
                            "' is registered in src/ but missing from the "
                            "docs/OBSERVABILITY.md catalogue"});
  }
  for (const auto& prefix : src_prefixes) {
    const bool covered =
        std::any_of(doc_param_names.begin(), doc_param_names.end(),
                    [&](const std::string& d) { return d.rfind(prefix, 0) == 0; });
    if (!covered) {
      findings.push_back(
          {"metric-catalogue", origin[prefix],
           "metric family prefix '" + prefix +
               "' has no parameterized docs/OBSERVABILITY.md entry "
               "('" + prefix + "<...>')"});
    }
  }

  // docs -> src: every catalogued name must trace back to a literal.
  for (const auto& name : doc_names) {
    if (src_names.count(name) != 0) continue;
    findings.push_back({"metric-catalogue", "docs/OBSERVABILITY.md",
                        "catalogued metric '" + name +
                            "' does not appear in any src/ string literal "
                            "(stale docs?)"});
  }
  for (const auto& name : doc_param_names) {
    const std::string prefix = name.substr(0, name.find('<'));
    const bool covered =
        src_prefixes.count(prefix) != 0 ||
        std::any_of(src_prefixes.begin(), src_prefixes.end(),
                    [&](const std::string& p) { return prefix.rfind(p, 0) == 0; });
    if (!covered) {
      findings.push_back({"metric-catalogue", "docs/OBSERVABILITY.md",
                          "parameterized metric '" + name +
                              "' has no matching prefix literal in src/"});
    }
  }
  return findings;
}

std::vector<Finding> check_fault_sites(std::string_view observability_md) {
  std::vector<Finding> findings;
  std::set<std::string> seen;
  for (int i = 0; i < sim::kNumFaultSites; ++i) {
    const std::string name =
        sim::fault_site_name(static_cast<sim::FaultSite>(i));
    if (!seen.insert(name).second) {
      findings.push_back({"fault-sites", "src/sim/fault.cpp",
                          "duplicate fault-site name '" + name + "'"});
    }
    if (observability_md.find("`" + name + "`") == std::string_view::npos) {
      findings.push_back({"fault-sites", "docs/OBSERVABILITY.md",
                          "fault site '" + name +
                              "' is not documented in the fault-injector "
                              "section"});
    }
  }
  return findings;
}

std::vector<Finding> check_span_events(std::string_view design_md) {
  std::vector<Finding> findings;
  std::set<std::string> seen;
  const int num_events = static_cast<int>(sim::SpanEvent::kNumEvents);
  for (int i = 0; i < num_events; ++i) {
    const std::string name =
        sim::span_event_name(static_cast<sim::SpanEvent>(i));
    if (!seen.insert(name).second) {
      findings.push_back({"span-events", "src/sim/trace.cpp",
                          "duplicate span-event name '" + name + "'"});
    }
    if (design_md.find("`" + name + "`") == std::string_view::npos) {
      findings.push_back({"span-events", "DESIGN.md",
                          "span event '" + name +
                              "' is missing from the section-10 hop list"});
    }
  }
  return findings;
}

std::vector<Finding> check_ring_allocations(const Corpus& src) {
  std::vector<Finding> findings;
  static const std::regex alloc_re(
      "(^|[^A-Za-z0-9_])(new|malloc|calloc|realloc)\\b");
  for (const auto& [path, contents] : src) {
    if (path.find("virtio/ring.") == std::string::npos) continue;
    const LexedFile lexed = lex(contents);
    for (auto it = std::sregex_iterator(lexed.code.begin(), lexed.code.end(),
                                        alloc_re);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position(2));
      findings.push_back(
          {"ring-allocations", path + ":" + std::to_string(line_of(lexed.code, pos)),
           "'" + (*it)[2].str() +
               "' in a ring hot path — descriptor traffic must stay "
               "allocation-free"});
    }
  }
  return findings;
}

std::vector<Finding> check_stray_output(const Corpus& src) {
  std::vector<Finding> findings;
  // fprintf/snprintf/sprintf do not match: only bare printf( and
  // std::printf( reach stdout unannounced.
  static const std::regex out_re(
      "(std\\s*::\\s*cout)|((^|[^A-Za-z0-9_:])(std\\s*::\\s*)?printf\\s*\\()");
  for (const auto& [path, contents] : src) {
    if (path.rfind("src/tools/", 0) == 0) continue;
    const LexedFile lexed = lex(contents);
    for (auto it = std::sregex_iterator(lexed.code.begin(), lexed.code.end(),
                                        out_re);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position(0));
      findings.push_back(
          {"stray-output", path + ":" + std::to_string(line_of(lexed.code, pos)),
           "direct stdout write outside src/tools — use the logger, "
           "metrics or flight recorder"});
    }
  }
  return findings;
}

std::vector<Finding> run_all(const std::string& repo_root) {
  const fs::path root{repo_root};
  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    return {{"corpus", repo_root, "no src/ directory here"}};
  }
  Corpus src;
  for (auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    src.emplace_back(
        fs::relative(entry.path(), root).generic_string(),
        read_file(entry.path()));
  }
  std::sort(src.begin(), src.end());

  const std::string observability = read_file(root / "docs/OBSERVABILITY.md");
  const std::string design = read_file(root / "DESIGN.md");

  std::vector<Finding> findings;
  auto absorb = [&findings](std::vector<Finding> f) {
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
  };
  if (src.empty()) {
    findings.push_back({"corpus", repo_root, "no sources found under src/"});
  }
  if (observability.empty()) {
    findings.push_back(
        {"corpus", repo_root, "docs/OBSERVABILITY.md missing or empty"});
  }
  if (design.empty()) {
    findings.push_back({"corpus", repo_root, "DESIGN.md missing or empty"});
  }
  if (!findings.empty()) return findings;

  absorb(check_metric_catalogue(src, observability));
  absorb(check_fault_sites(observability));
  absorb(check_span_events(design));
  absorb(check_ring_allocations(src));
  absorb(check_stray_output(src));
  return findings;
}

}  // namespace vphi::tools::lint
