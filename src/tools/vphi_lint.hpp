// vphi-lint — repo-invariant linter, run as a ctest.
//
// The transport's observability contract is only useful while it is true:
// every metric a component registers must be in the docs/OBSERVABILITY.md
// catalogue (and vice versa — the catalogue must not advertise metrics
// nothing emits), fault-site and span-event names must match what DESIGN
// and the docs promise, the ring's hot paths must stay allocation-free,
// and nothing outside src/tools may write to stdout (library code talks
// through the logger/recorder, never the terminal). Each rule is a pure
// function over file contents so tests can feed synthetic corpora and
// prove the linter actually fails on violations.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vphi::tools::lint {

/// One rule violation: which rule, where, and what is wrong.
struct Finding {
  std::string rule;
  std::string where;  ///< "path" or "path:line"
  std::string message;
};

/// A set of source files: (repo-relative path, contents).
using Corpus = std::vector<std::pair<std::string, std::string>>;

/// Comment- and string-stripping lexer output for one file.
struct LexedFile {
  /// Contents with comments and string/char literal bodies blanked (same
  /// length and line structure as the input, so offsets map to lines).
  std::string code;
  /// Every string literal body, in order of appearance.
  std::vector<std::string> strings;
};

/// Strip // and /* */ comments and extract "..." literal bodies
/// (adjacent-literal concatenation is not folded; escapes are kept raw).
LexedFile lex(std::string_view source);

/// Rule 1: every `vphi.*` metric name literal in src appears in the
/// OBSERVABILITY.md catalogue and every catalogued name traces back to a
/// source literal. Prefix literals ("vphi.fe.op.") pair with
/// parameterized catalogue entries ("vphi.fe.op.<op>.errors").
std::vector<Finding> check_metric_catalogue(const Corpus& src,
                                            std::string_view observability_md);

/// Rule 2: fault-site names (live from sim::fault_site_name) are unique
/// and each is documented in OBSERVABILITY.md.
std::vector<Finding> check_fault_sites(std::string_view observability_md);

/// Rule 3: span-event names (live from sim::span_event_name) are unique
/// and each appears in DESIGN.md's section-10 hop list.
std::vector<Finding> check_span_events(std::string_view design_md);

/// Rule 4: no `new`/`malloc`/`calloc`/`realloc` in ring hot paths
/// (src/virtio/ring.*) — steady-state descriptor traffic must not touch
/// the allocator.
std::vector<Finding> check_ring_allocations(const Corpus& src);

/// Rule 5: no direct `std::cout` / `printf(` outside src/tools — library
/// code reports through the logger, metrics and recorder.
std::vector<Finding> check_stray_output(const Corpus& src);

/// Load src/**/*.{hpp,cpp}, docs/OBSERVABILITY.md and DESIGN.md from
/// `repo_root` and run every rule. Returns all findings (empty = clean).
std::vector<Finding> run_all(const std::string& repo_root);

}  // namespace vphi::tools::lint
