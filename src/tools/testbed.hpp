// Testbed builder: assembles the paper's experimental setup in one object —
// a host (Xeon E5-2695v2-like timing), one Xeon Phi 3120P card on a PCIe
// link, the SCIF fabric, and N QEMU-KVM VMs each carrying the full vPHI
// split-driver stack (frontend + backend + guest SCIF provider).
//
// Everything the benches and examples do starts from here:
//
//   tools::Testbed bed{{}};
//   auto& host = bed.host_provider();     // native path (baseline)
//   auto& guest = bed.vm(0).guest_scif(); // virtualized path (vPHI)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coi/daemon.hpp"
#include "hv/vm.hpp"
#include "mic/card.hpp"
#include "scif/fabric.hpp"
#include "scif/host_provider.hpp"
#include "sim/cost_model.hpp"
#include "vphi/backend.hpp"
#include "vphi/frontend.hpp"
#include "vphi/guest_scif.hpp"

namespace vphi::tools {

struct TestbedConfig {
  sim::CostModel model = sim::CostModel::paper();
  std::uint64_t card_backing_bytes = 512ull << 20;
  std::uint32_t num_vms = 1;
  std::uint64_t vm_ram_bytes = 256ull << 20;
  std::uint16_t ring_size = 256;
  core::FrontendDriver::Config frontend{};
  core::BackendPolicy backend_policy{};
  bool boot_card = true;
  /// Start coi_daemon on the card (needed for COI / micnativeloadex).
  bool start_coi_daemon = true;
};

class Testbed {
 public:
  /// One VM's vPHI stack.
  class VmStack {
   public:
    VmStack(const std::string& name, const TestbedConfig& config,
            const sim::CostModel& model, scif::Fabric& fabric);
    ~VmStack();

    hv::Vm& vm() noexcept { return *vm_; }
    core::FrontendDriver& frontend() noexcept { return *frontend_; }
    core::BackendDevice& backend() noexcept { return *backend_; }
    core::GuestScifProvider& guest_scif() noexcept { return *guest_scif_; }

    /// Allocate a guest user buffer (from guest RAM, no kmalloc cap) and
    /// return its host-visible pointer. Freed with free_user_buffer.
    sim::Expected<void*> alloc_user_buffer(std::size_t len);
    sim::Status free_user_buffer(void* ptr);

   private:
    std::unique_ptr<hv::Vm> vm_;
    std::unique_ptr<core::FrontendDriver> frontend_;
    std::unique_ptr<core::BackendDevice> backend_;
    std::unique_ptr<core::GuestScifProvider> guest_scif_;
  };

  explicit Testbed(const TestbedConfig& config);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  const sim::CostModel& model() const noexcept { return model_; }
  mic::Card& card() noexcept { return *card_; }
  scif::Fabric& fabric() noexcept { return *fabric_; }
  scif::NodeId card_node() const noexcept { return card_node_; }

  /// A host process identity (the native baseline path).
  scif::HostProvider& host_provider() noexcept { return *host_provider_; }
  /// A card (uOS) process identity — servers/daemons on the coprocessor.
  scif::HostProvider& card_provider() noexcept { return *card_provider_; }
  /// The card's coi_daemon (null when start_coi_daemon is false).
  coi::Daemon* coi_daemon() noexcept { return daemon_.get(); }

  std::size_t vm_count() const noexcept { return vms_.size(); }
  VmStack& vm(std::size_t i) { return *vms_.at(i); }

  /// Attach one more VM to the testbed (sharing experiments).
  VmStack& add_vm();

 private:
  TestbedConfig config_;
  sim::CostModel model_;  ///< owned copy; everything points here
  std::unique_ptr<mic::Card> card_;
  std::unique_ptr<scif::Fabric> fabric_;
  scif::NodeId card_node_ = 0;
  std::unique_ptr<scif::HostProvider> host_provider_;
  std::unique_ptr<scif::HostProvider> card_provider_;
  std::unique_ptr<coi::Daemon> daemon_;
  std::vector<std::unique_ptr<VmStack>> vms_;
};

}  // namespace vphi::tools
