// vphi-top: per-VM view of a shared Xeon Phi — the sharing half of vPHI,
// made observable.
//
// Runs a seeded multi-VM message-push scenario (every VM streams scif_send
// traffic at its own card-side sink through its own vPHI stack) and renders
// a per-VM table from the labeled metric registry: requests, bytes through
// the ring, p50/p99 request latency, mean ring occupancy, suppressed
// doorbells, errors and card-core busy time — plus Jain's fairness index
// over per-VM bytes and card occupancy.
//
// The tool is also its own consistency check: for every counter it prints,
// the per-VM column values must sum to the aggregate registry counter
// *exactly* (they read the same atomics), and it exits non-zero when they
// do not.
//
// Flags:
//   --vms N          number of VMs sharing the card (default 4)
//   --rounds N       base messages per VM (default 64; the seed skews each
//                    VM's count so fairness is a real measurement)
//   --msg-bytes N    message size (default 64 KiB)
//   --seed N         workload seed (default 42)
//   --inject-stall   drop a doorbell after the run and verify the stall
//                    watchdog fires exactly once (with a recorder dump)
//   --smoke          CI-sized run (2 VMs, 40 rounds)
#pragma once

namespace vphi::tools {

/// The vphi-top entry point (argv-style so tests can call it in-process).
int vphi_top_main(int argc, char** argv);

}  // namespace vphi::tools
