// Symmetric-mode runtime: an MPI-like communicator over SCIF.
//
// The paper's third Xeon Phi execution mode treats the card as an
// independent node: "a user can launch some processes of the same parallel
// application on the host side and some other processes on the accelerator,
// using for example MPI". vPHI claims support for all three modes because
// they all ride SCIF. This runtime makes that claim executable: ranks are
// threads, each bound to any scif::Provider — a HostProvider (host rank), a
// card-node provider (card rank) or a GuestScifProvider (rank inside a VM,
// through vPHI) — with a full connection mesh, point-to-point send/recv,
// barrier, broadcast and allreduce built on the SCIF stream.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "scif/provider.hpp"
#include "sim/status.hpp"

namespace vphi::tools::symm {

class World;

/// A rank's handle inside World::run — the MPI-ish surface.
class Rank {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Ordered, reliable point-to-point (per peer pair).
  sim::Status send(int dst, const void* buf, std::size_t len);
  sim::Status recv(int src, void* buf, std::size_t len);

  /// Collective operations over all ranks (flat algorithms via rank 0).
  sim::Status barrier();
  sim::Status broadcast(int root, void* buf, std::size_t len);
  sim::Status allreduce_sum(double* values, std::size_t count);

 private:
  friend class World;
  Rank(World& world, int rank) : world_(&world), rank_(rank) {}

  sim::Expected<int> epd_for(int peer);

  World* world_;
  int rank_;
  std::map<int, int> epds_;  ///< peer rank -> connected epd
};

class World {
 public:
  struct RankSpec {
    scif::Provider* provider = nullptr;
    std::string name;  ///< actor name ("host0", "vm0-rank", "mic-rank", ...)
  };

  /// `base_port`: rank i listens on base_port + i during mesh setup.
  World(std::vector<RankSpec> ranks, scif::Port base_port);

  int size() const noexcept { return static_cast<int>(ranks_.size()); }

  /// Run `body` once per rank, each on its own thread/actor, with the full
  /// connection mesh established first. Returns the first error any rank
  /// reported (kOk when all succeeded).
  sim::Status run(const std::function<sim::Status(Rank&)>& body);

 private:
  friend class Rank;

  std::vector<RankSpec> ranks_;
  scif::Port base_port_;
};

}  // namespace vphi::tools::symm
