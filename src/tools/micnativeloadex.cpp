#include "tools/micnativeloadex.hpp"

#include "coi/wire.hpp"
#include "mic/sysfs.hpp"
#include "sim/actor.hpp"

namespace vphi::tools {

namespace {
/// Small control RPCs the tool exchanges with coi_daemon before launching
/// (dependency discovery, environment setup, state queries). Each is a
/// full SCIF round trip — inside a VM, each pays the vPHI per-request
/// overhead, which is why small dgemm runs hurt relatively more (Fig. 6-8
/// at small sizes).
constexpr std::uint32_t kControlRpcs = 200;
}  // namespace

sim::Expected<LoadexResult> MicNativeLoadEx::run(const coi::BinaryImage& image,
                                                 const LoadexOptions& options) {
  auto& actor = sim::this_actor();
  auto& p = *provider_;
  LoadexResult result;
  const sim::Nanos t0 = actor.now();

  // 1. Probe the card through sysfs: the tool refuses to run against
  //    anything that is not a Knights Corner part ("the family codename of
  //    the accelerator ... micnativeloadex relies on this information").
  auto info = p.card_info(options.card_index);
  if (!info) return info.status();
  if (info->get("family").value_or("") != "Knights Corner") {
    return sim::Status::kNoDevice;
  }
  if (info->get("state").value_or("") != "online") {
    return sim::Status::kNoDevice;
  }
  const auto card_node = static_cast<scif::NodeId>(options.card_index + 1);

  // 2. Control handshake with coi_daemon.
  auto epd = p.open();
  if (!epd) return epd.status();
  auto connected = p.connect(*epd, scif::PortId{card_node, coi::kDaemonPort});
  if (!sim::ok(connected)) {
    p.close(*epd);
    return connected;
  }
  std::vector<std::uint8_t> payload;
  for (std::uint32_t i = 0; i < kControlRpcs; ++i) {
    auto sent = coi::send_msg(p, *epd, coi::MsgType::kAck, coi::Encoder{});
    if (!sim::ok(sent)) {
      p.close(*epd);
      return sent;
    }
    auto reply = coi::recv_msg(p, *epd, payload);
    if (!reply) {
      p.close(*epd);
      return reply.status();
    }
  }
  p.close(*epd);
  const sim::Nanos t1 = actor.now();
  result.handshake_ns = t1 - t0;

  // 3. Create the card process: streams the executable + libraries.
  std::vector<std::string> args = options.args;
  auto process = coi::Process::create(p, card_node, image, options.threads,
                                      std::move(args));
  if (!process) return process.status();
  const sim::Nanos t2 = actor.now();
  result.transfer_ns = t2 - t1;

  // 4. Run to completion (native mode: the binary is main()).
  auto exited = process->wait_for_shutdown();
  if (!exited) return exited.status();
  const sim::Nanos t3 = actor.now();
  result.exec_ns = t3 - t2;
  result.total_ns = t3 - t0;
  result.exit_code = exited->exit_code;
  result.output = std::move(exited->output);
  return result;
}

}  // namespace vphi::tools
