#include "tools/testbed.hpp"

namespace vphi::tools {

Testbed::VmStack::VmStack(const std::string& name, const TestbedConfig& config,
                          const sim::CostModel& model, scif::Fabric& fabric) {
  hv::VmConfig vm_config;
  vm_config.name = name;
  vm_config.ram_bytes = config.vm_ram_bytes;
  vm_config.ring_size = config.ring_size;
  vm_ = std::make_unique<hv::Vm>(vm_config, model);
  frontend_ = std::make_unique<core::FrontendDriver>(*vm_, config.frontend);
  backend_ =
      std::make_unique<core::BackendDevice>(*vm_, fabric, config.backend_policy);
  backend_->start();
  // The guest driver probes once the backend device is live.
  const auto probed = frontend_->probe();
  if (!sim::ok(probed)) {
    backend_->stop();
    vm_.reset();
    return;
  }
  guest_scif_ = std::make_unique<core::GuestScifProvider>(*frontend_);
}

Testbed::VmStack::~VmStack() {
  guest_scif_.reset();
  if (backend_) backend_->stop();
  if (vm_) vm_->shutdown();
}

sim::Expected<void*> Testbed::VmStack::alloc_user_buffer(std::size_t len) {
  // Guest user allocations are not kmalloc-capped (a user mmap stand-in).
  auto& ram = vm_->ram();
  auto gpa = ram.ualloc(len);
  if (!gpa) return gpa.status();
  return ram.translate(*gpa, len);
}

sim::Status Testbed::VmStack::free_user_buffer(void* ptr) {
  auto& ram = vm_->ram();
  auto gpa = ram.gpa_of(ptr);
  if (!gpa) return gpa.status();
  return ram.kfree(*gpa);
}

Testbed::Testbed(const TestbedConfig& config)
    : config_(config), model_(config.model) {
  card_ = std::make_unique<mic::Card>(
      mic::CardConfig{.index = 0,
                      .memory_backing_bytes = config.card_backing_bytes},
      model_);
  if (config.boot_card) card_->boot();
  fabric_ = std::make_unique<scif::Fabric>(model_);
  card_node_ = fabric_->attach_card(*card_);
  host_provider_ = std::make_unique<scif::HostProvider>(*fabric_,
                                                        scif::kHostNode);
  card_provider_ = std::make_unique<scif::HostProvider>(*fabric_, card_node_);
  if (config.start_coi_daemon) {
    daemon_ = std::make_unique<coi::Daemon>(*fabric_, *card_, card_node_);
    daemon_->start();
  }
  for (std::uint32_t i = 0; i < config.num_vms; ++i) add_vm();
}

Testbed::~Testbed() {
  // VMs first (their backends hold provider references into the fabric),
  // then the card-side daemon.
  vms_.clear();
  daemon_.reset();
}

Testbed::VmStack& Testbed::add_vm() {
  const std::string name = "vm" + std::to_string(vms_.size());
  vms_.push_back(std::make_unique<VmStack>(name, config_, model_, *fabric_));
  return *vms_.back();
}

}  // namespace vphi::tools
