#include "tools/mic_info.hpp"

#include "mic/sysfs.hpp"

namespace vphi::tools {

std::string render_mic_info(scif::Provider& provider) {
  std::string out;
  for (std::uint32_t index = 0;; ++index) {
    auto info = provider.card_info(index);
    if (!info) break;
    out += "mic" + std::to_string(index) + ":\n";
    for (const auto& [key, value] : info->entries()) {
      out += "  " + key + ": " + value + "\n";
    }
  }
  return out;
}

}  // namespace vphi::tools
