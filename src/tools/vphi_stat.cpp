#include "tools/vphi_stat.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "scif/types.hpp"
#include "sim/actor.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "tools/testbed.hpp"

namespace vphi::tools {
namespace {

constexpr scif::Port kPort = 2'900;

struct Options {
  std::size_t size = 64ull << 20;
  std::size_t rma_chunk = 0;  ///< 0 = frontend default (16 MiB)
  std::string trace_out;
  bool list_metrics = false;
  bool smoke = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--size N] [--trace-out PATH] [--list-metrics] "
               "[--smoke]\n",
               argv0);
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(arg, "--list-metrics") == 0) {
      opts.list_metrics = true;
    } else if (std::strcmp(arg, "--size") == 0 && i + 1 < argc) {
      opts.size = std::strtoull(argv[++i], nullptr, 0);
      if (opts.size == 0) return false;
    } else if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
      opts.trace_out = argv[++i];
    } else {
      return false;
    }
  }
  if (opts.smoke) {
    // CI-sized: 8 MiB over 2 MiB RMA chunks still exercises the chunk walk
    // (4 requests) and always leaves a trace file for validation.
    opts.size = 8ull << 20;
    opts.rma_chunk = 2ull << 20;
    if (opts.trace_out.empty()) opts.trace_out = "vphi_stat_trace.json";
  }
  return true;
}

/// Card-side RMA window server (standalone twin of the bench harness's
/// RmaWindowServer — this tool cannot link bench_common): accepts one
/// connection, registers a device-memory window at fixed offset 0, signals
/// readiness, and holds the window until the client hangs up.
class CardWindowServer {
 public:
  CardWindowServer(Testbed& bed, scif::Port port, std::size_t bytes) {
    auto& p = bed.card_provider();
    auto lep = p.open();
    if (!lep) return;
    const int listener = *lep;
    if (!p.bind(listener, port) || !sim::ok(p.listen(listener, 4))) return;
    server_ = std::async(std::launch::async, [&bed, &p, listener, bytes] {
      sim::Actor actor{"rma-server", sim::Actor::AtNow{}};
      sim::ActorScope scope(actor);
      auto conn = p.accept(listener, scif::SCIF_ACCEPT_SYNC);
      if (!conn) return;
      auto dev = bed.card().memory().allocate(bytes);
      if (!dev) return;
      auto reg = p.register_mem(conn->epd, bed.card().memory().at(*dev),
                                bytes, 0,
                                scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE,
                                scif::SCIF_MAP_FIXED);
      if (!reg) return;
      std::uint8_t ready = 1;
      p.send(conn->epd, &ready, 1, scif::SCIF_SEND_BLOCK);
      std::uint8_t bye;
      p.recv(conn->epd, &bye, 1, scif::SCIF_RECV_BLOCK);
      p.close(conn->epd);
      p.close(listener);
      bed.card().memory().free(*dev);
    });
  }

  ~CardWindowServer() {
    if (server_.valid()) server_.wait();
  }

 private:
  std::future<void> server_;
};

int list_metrics(Testbed& bed) {
  (void)bed;  // its stack is what populates the registry
  sim::fault_injector();  // instantiate the per-site fault counters too
  for (const auto& name : sim::metrics::registry().metric_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int run(const Options& opts) {
  TestbedConfig config;
  config.card_backing_bytes = 192ull << 20;
  config.vm_ram_bytes = 192ull << 20;
  config.start_coi_daemon = false;
  if (opts.rma_chunk != 0) config.frontend.rma_chunk = opts.rma_chunk;
  // Serial chunk walk (the default pipeline_window = 1): each request's
  // span tiles the timeline end to end, so sum(hops) must reproduce the
  // end-to-end measurement — the consistency check this tool enforces.
  Testbed bed{config};

  if (opts.list_metrics) return list_metrics(bed);

  sim::tracer().set_enabled(true);

  CardWindowServer server{bed, kPort, opts.size};
  auto& guest = bed.vm(0).guest_scif();

  sim::Actor actor{"vm-client", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);

  auto epd_e = guest.open();
  if (!epd_e) return 1;
  const int epd = *epd_e;
  if (!sim::ok(guest.connect(epd, scif::PortId{bed.card_node(), kPort}))) {
    std::fprintf(stderr, "vphi-stat: connect failed\n");
    return 1;
  }
  std::uint8_t ready;
  guest.recv(epd, &ready, 1, scif::SCIF_RECV_BLOCK);

  auto buf = bed.vm(0).alloc_user_buffer(opts.size);
  if (!buf) return 1;
  auto reg = guest.register_mem(epd, *buf, opts.size, 0,
                                scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE,
                                0);
  if (!reg) return 1;

  // Warm-up read synchronizes the client timeline with the service loops;
  // its spans are discarded so the table covers exactly one measured read.
  if (!sim::ok(guest.readfrom(epd, *reg, opts.size, 0, scif::SCIF_RMA_SYNC))) {
    std::fprintf(stderr, "vphi-stat: warm-up read failed\n");
    return 1;
  }
  sim::tracer().clear();

  const sim::Nanos before = actor.now();
  if (!sim::ok(guest.readfrom(epd, *reg, opts.size, 0, scif::SCIF_RMA_SYNC))) {
    std::fprintf(stderr, "vphi-stat: measured read failed\n");
    return 1;
  }
  const sim::Nanos end_to_end = actor.now() - before;

  const auto hops = sim::tracer().hop_breakdown();
  const std::size_t requests = sim::tracer().request_count();

  if (!opts.trace_out.empty()) {
    if (sim::tracer().write_chrome_trace(opts.trace_out)) {
      std::printf("wrote %s (%zu events)\n", opts.trace_out.c_str(),
                  sim::tracer().event_count());
    } else {
      std::fprintf(stderr, "vphi-stat: cannot write %s\n",
                   opts.trace_out.c_str());
      return 1;
    }
  }
  sim::tracer().set_enabled(false);  // keep teardown out of the table

  double hop_total_ns = 0.0;
  for (const auto& h : hops) {
    hop_total_ns += h.ns.mean() * static_cast<double>(h.ns.count());
  }

  std::printf("# vphi-stat: %zu MiB RMA read, %zu ring request(s)\n",
              opts.size >> 20, requests);
  std::printf("%-28s %6s %12s %12s %7s\n", "hop", "count", "mean_us",
              "total_us", "share");
  for (const auto& h : hops) {
    const double total = h.ns.mean() * static_cast<double>(h.ns.count());
    std::printf("%-12s -> %-12s %6llu %12.2f %12.2f %6.1f%%\n",
                sim::span_event_name(h.from), sim::span_event_name(h.to),
                static_cast<unsigned long long>(h.ns.count()),
                h.ns.mean() / 1e3, total / 1e3,
                hop_total_ns > 0.0 ? 100.0 * total / hop_total_ns : 0.0);
  }
  std::printf("%-28s %6s %12s %12.2f\n", "-- hop sum --", "", "",
              hop_total_ns / 1e3);
  std::printf("%-28s %6s %12s %12.2f\n", "-- end-to-end --", "", "",
              static_cast<double>(end_to_end) / 1e3);

  // Per-request spans telescope (consecutive hop deltas sum to complete -
  // submit), and the serial walk tiles the timeline, so the hop sum must
  // reproduce the end-to-end number. A gap means a missing or misplaced
  // span anchor.
  const double deviation =
      end_to_end > 0
          ? (hop_total_ns - static_cast<double>(end_to_end)) /
                static_cast<double>(end_to_end)
          : 1.0;
  std::printf("hop sum vs end-to-end: %+.2f%% (tolerance 5%%)\n",
              100.0 * deviation);

  std::uint8_t bye = 0;
  guest.send(epd, &bye, 1, scif::SCIF_SEND_BLOCK);
  guest.close(epd);
  bed.vm(0).free_user_buffer(*buf);

  if (deviation > 0.05 || deviation < -0.05) {
    std::fprintf(stderr,
                 "vphi-stat: hop sum deviates from end-to-end by more "
                 "than 5%%\n");
    return 1;
  }
  return 0;
}

}  // namespace

int vphi_stat_main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    usage(argc > 0 ? argv[0] : "vphi-stat");
    return 2;
  }
  return run(opts);
}

}  // namespace vphi::tools
