#include "tools/vphi_stat.hpp"

int main(int argc, char** argv) {
  return vphi::tools::vphi_stat_main(argc, argv);
}
