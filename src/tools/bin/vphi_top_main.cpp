#include "tools/vphi_top.hpp"

int main(int argc, char** argv) {
  return vphi::tools::vphi_top_main(argc, argv);
}
