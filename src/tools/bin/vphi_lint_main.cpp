// vphi-lint entry point: `vphi-lint <repo-root>`. Exit 0 when every repo
// invariant holds, 1 with one finding per line otherwise (ctest-friendly).
#include <cstdio>
#include <string>

#include "tools/vphi_lint.hpp"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  const auto findings = vphi::tools::lint::run_all(root);
  for (const auto& f : findings) {
    std::fprintf(stderr, "vphi-lint [%s] %s: %s\n", f.rule.c_str(),
                 f.where.c_str(), f.message.c_str());
  }
  if (findings.empty()) {
    std::printf("vphi-lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "vphi-lint: %zu finding(s)\n", findings.size());
  return 1;
}
