#include "tools/vphi_top.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "scif/types.hpp"
#include "sim/actor.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/recorder.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "tools/testbed.hpp"

namespace vphi::tools {
namespace {

constexpr scif::Port kBasePort = 4'600;

struct Options {
  std::uint32_t vms = 4;
  std::uint32_t rounds = 64;
  std::size_t msg_bytes = 64 * 1024;
  std::uint64_t seed = 42;
  bool inject_stall = false;
  bool smoke = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--vms N] [--rounds N] [--msg-bytes N] [--seed N] "
               "[--inject-stall] [--smoke]\n",
               argv0);
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(arg, "--inject-stall") == 0) {
      opts.inject_stall = true;
    } else if (std::strcmp(arg, "--vms") == 0 && i + 1 < argc) {
      opts.vms = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
      if (opts.vms == 0 || opts.vms > 16) return false;
    } else if (std::strcmp(arg, "--rounds") == 0 && i + 1 < argc) {
      opts.rounds =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
      if (opts.rounds == 0) return false;
    } else if (std::strcmp(arg, "--msg-bytes") == 0 && i + 1 < argc) {
      opts.msg_bytes = std::strtoull(argv[++i], nullptr, 0);
      if (opts.msg_bytes == 0) return false;
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      return false;
    }
  }
  if (opts.smoke) {
    opts.vms = 2;
    opts.rounds = 40;
  }
  return true;
}

/// Deterministic per-VM round counts: the seed skews each VM's share of the
/// workload (between half and full base rounds) so the fairness index
/// measures something real instead of trivially reporting 1.0.
std::vector<std::uint32_t> seeded_rounds(const Options& opts) {
  std::vector<std::uint32_t> rounds(opts.vms);
  std::uint64_t x = opts.seed * 6364136223846793005ull + 1442695040888963407ull;
  for (auto& r : rounds) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint32_t half = opts.rounds / 2;
    r = half + static_cast<std::uint32_t>((x >> 33) % (opts.rounds - half + 1));
    if (r == 0) r = 1;
  }
  return rounds;
}

/// Card-side byte sink: accepts one connection, signals readiness, then
/// receives exactly `total` bytes. One per VM, so every VM's stream has its
/// own card endpoint (the card sees N independent SCIF peers).
class CardSinkServer {
 public:
  CardSinkServer(Testbed& bed, scif::Port port, std::uint64_t total,
                 std::size_t chunk) {
    auto& p = bed.card_provider();
    auto lep = p.open();
    if (!lep) return;
    const int listener = *lep;
    if (!p.bind(listener, port) || !sim::ok(p.listen(listener, 2))) return;
    server_ = std::async(std::launch::async, [&p, listener, total, chunk] {
      sim::Actor actor{"sink", sim::Actor::AtNow{}};
      sim::ActorScope scope(actor);
      auto conn = p.accept(listener, scif::SCIF_ACCEPT_SYNC);
      if (!conn) return;
      std::uint8_t ready = 1;
      p.send(conn->epd, &ready, 1, scif::SCIF_SEND_BLOCK);
      std::vector<std::uint8_t> buf(chunk);
      std::uint64_t received = 0;
      while (received < total) {
        const auto want = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, total - received));
        auto got = p.recv(conn->epd, buf.data(), want, scif::SCIF_RECV_BLOCK);
        if (!got || *got == 0) break;
        received += *got;
      }
      p.close(conn->epd);
      p.close(listener);
    });
  }

  ~CardSinkServer() {
    if (server_.valid()) server_.wait();
  }

 private:
  std::future<void> server_;
};

struct VmRow {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double ring_occ = 0.0;
  std::uint64_t supp_kicks = 0;
  std::uint64_t errors = 0;
  std::uint64_t stalls = 0;
  std::uint64_t card_busy_ns = 0;
};

std::uint64_t labeled(const std::map<std::string, std::uint64_t>& m,
                      const std::string& label) {
  auto it = m.find(label);
  return it == m.end() ? 0 : it->second;
}

/// The tool's own honesty check: the per-VM breakdown and the aggregate
/// read the same atomics, so the labeled values must sum to the aggregate
/// counter *exactly*. Returns false (and complains) on any drift.
bool check_sums(const char* name) {
  auto& reg = sim::metrics::registry();
  const auto by_label = reg.counter_by_label(name);
  std::uint64_t sum = 0;
  for (const auto& [label, v] : by_label) sum += v;
  const std::uint64_t aggregate = reg.counter_value(name);
  if (sum != aggregate) {
    std::fprintf(stderr,
                 "vphi-top: %s per-VM sum %llu != aggregate %llu\n", name,
                 static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(aggregate));
    return false;
  }
  return true;
}

int run(const Options& opts) {
  TestbedConfig config;
  config.num_vms = opts.vms;
  config.vm_ram_bytes = 64ull << 20;
  config.card_backing_bytes = 64ull << 20;
  config.start_coi_daemon = false;
  // Polling keeps the whole run on the simulated clock (no wall-time
  // sleeps), and the timeout bounds the injected-stall phase: the watchdog
  // must flag the stalled request well before the driver gives up on it.
  config.frontend.scheme = core::WaitScheme::kPolling;
  config.frontend.request_timeout_ns = 100'000'000;  // 100 ms simulated
  // A --smoke run completes ~26 requests per VM; keep the watchdog's
  // percentile budget derivable even at that size.
  config.frontend.watchdog_min_samples = 16;
  Testbed bed{config};

  // Tracing feeds the flight recorder, so a watchdog/fault dump carries the
  // victim request's span chain. Observability never advances any clock, so
  // the table's numbers are identical with this line removed.
  sim::tracer().set_enabled(true);

  const auto rounds = seeded_rounds(opts);

  std::vector<std::unique_ptr<CardSinkServer>> sinks;
  for (std::uint32_t i = 0; i < opts.vms; ++i) {
    sinks.push_back(std::make_unique<CardSinkServer>(
        bed, static_cast<scif::Port>(kBasePort + i),
        static_cast<std::uint64_t>(rounds[i]) * opts.msg_bytes,
        opts.msg_bytes));
  }

  std::vector<std::thread> clients;
  for (std::uint32_t i = 0; i < opts.vms; ++i) {
    clients.emplace_back([&, i] {
      sim::Actor actor{"vm-client" + std::to_string(i), sim::Actor::AtNow{}};
      sim::ActorScope scope(actor);
      auto& guest = bed.vm(i).guest_scif();
      auto epd_e = guest.open();
      if (!epd_e) return;
      const int epd = *epd_e;
      if (!sim::ok(guest.connect(
              epd, scif::PortId{bed.card_node(),
                                static_cast<scif::Port>(kBasePort + i)}))) {
        return;
      }
      std::uint8_t ready;
      guest.recv(epd, &ready, 1, scif::SCIF_RECV_BLOCK);
      std::vector<std::uint8_t> msg(opts.msg_bytes,
                                    static_cast<std::uint8_t>(i));
      for (std::uint32_t r = 0; r < rounds[i]; ++r) {
        if (!guest.send(epd, msg.data(), msg.size(), scif::SCIF_SEND_BLOCK)) {
          break;
        }
      }
      guest.close(epd);
    });
  }
  for (auto& c : clients) c.join();
  sinks.clear();

  // Optional injected stall: drop the next doorbell, then issue one more
  // request on vm0. Its chain strands in the ring, the polling wait
  // advances simulated time, and once the request's age passes the
  // latency-derived budget the watchdog must fire — exactly once — and
  // dump the flight recorder before the driver's own timeout kicks in.
  if (opts.inject_stall) {
    const std::uint64_t dumps_before = sim::flight_recorder().dump_count();
    sim::fault_injector().arm_nth(sim::FaultSite::kKickDrop, 1);
    sim::Actor actor{"vm-staller", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    auto& guest = bed.vm(0).guest_scif();
    auto epd = guest.open();  // idempotent: the bounded retry heals it
    if (epd) guest.close(*epd);
    sim::fault_injector().disarm_all();
    const std::uint64_t stalls =
        bed.vm(0).frontend().watchdog_stalls();
    const std::uint64_t dumps =
        sim::flight_recorder().dump_count() - dumps_before;
    std::printf("injected stall: watchdog firings=%llu recorder dumps=%llu "
                "budget=%lld ns\n\n",
                static_cast<unsigned long long>(stalls),
                static_cast<unsigned long long>(dumps),
                static_cast<long long>(bed.vm(0).frontend().watchdog_budget()));
    if (stalls != 1) {
      std::fprintf(stderr,
                   "vphi-top: expected exactly one watchdog firing, got "
                   "%llu\n",
                   static_cast<unsigned long long>(stalls));
      return 1;
    }
    if (dumps < 1 && sim::flight_recorder().enabled()) {
      std::fprintf(stderr, "vphi-top: watchdog fired without a recorder "
                           "dump\n");
      return 1;
    }
  }

  // --- assemble the per-VM table from the labeled registry ------------------
  auto& reg = sim::metrics::registry();
  const auto ops = reg.counter_by_label("vphi.fe.requests");
  const auto bytes_out = reg.counter_by_label("vphi.fe.bytes_out");
  const auto bytes_in = reg.counter_by_label("vphi.fe.bytes_in");
  const auto timeouts = reg.counter_by_label("vphi.fe.timeouts");
  const auto proto_errors = reg.counter_by_label("vphi.fe.protocol_errors");
  const auto supp_kicks = reg.counter_by_label("vphi.ring.kicks_suppressed");
  const auto stalls = reg.counter_by_label("vphi.watchdog.stalls");
  const auto latency = reg.histogram_by_label("vphi.fe.request_latency_ns");
  const auto occupancy = reg.histogram_by_label("vphi.ring.occupancy");
  const auto card_busy = bed.fabric().card_occupancy();

  std::vector<VmRow> rows;
  for (std::uint32_t i = 0; i < opts.vms; ++i) {
    VmRow row;
    row.name = "vm" + std::to_string(i);
    const std::string label = "vm=" + row.name;
    row.ops = labeled(ops, label);
    row.bytes_out = labeled(bytes_out, label);
    row.bytes_in = labeled(bytes_in, label);
    row.errors = labeled(timeouts, label) + labeled(proto_errors, label);
    row.supp_kicks = labeled(supp_kicks, label);
    row.stalls = labeled(stalls, label);
    if (auto it = latency.find(label); it != latency.end()) {
      row.p50_us = it->second.percentile(0.50) / 1e3;
      row.p99_us = it->second.percentile(0.99) / 1e3;
    }
    if (auto it = occupancy.find(label); it != occupancy.end()) {
      row.ring_occ = it->second.mean();
    }
    if (auto it = card_busy.find(row.name); it != card_busy.end()) {
      row.card_busy_ns = it->second;
    }
    rows.push_back(std::move(row));
  }

  std::printf("# vphi-top: %u VM(s) sharing one card, seed %llu\n",
              opts.vms, static_cast<unsigned long long>(opts.seed));
  std::printf("%-6s %8s %12s %10s %9s %9s %8s %10s %7s %7s %12s\n", "vm",
              "ops", "bytes_out", "bytes_in", "p50_us", "p99_us", "ring_occ",
              "supp_kick", "errors", "stalls", "card_busy_us");
  VmRow total;
  std::vector<double> byte_shares, busy_shares;
  for (const auto& row : rows) {
    std::printf("%-6s %8llu %12llu %10llu %9.2f %9.2f %8.2f %10llu %7llu "
                "%7llu %12.1f\n",
                row.name.c_str(), static_cast<unsigned long long>(row.ops),
                static_cast<unsigned long long>(row.bytes_out),
                static_cast<unsigned long long>(row.bytes_in), row.p50_us,
                row.p99_us, row.ring_occ,
                static_cast<unsigned long long>(row.supp_kicks),
                static_cast<unsigned long long>(row.errors),
                static_cast<unsigned long long>(row.stalls),
                static_cast<double>(row.card_busy_ns) / 1e3);
    total.ops += row.ops;
    total.bytes_out += row.bytes_out;
    total.bytes_in += row.bytes_in;
    byte_shares.push_back(
        static_cast<double>(row.bytes_out + row.bytes_in));
    busy_shares.push_back(static_cast<double>(row.card_busy_ns));
  }
  std::printf("%-6s %8llu %12llu %10llu\n", "total",
              static_cast<unsigned long long>(total.ops),
              static_cast<unsigned long long>(total.bytes_out),
              static_cast<unsigned long long>(total.bytes_in));

  std::printf("\nfairness (Jain): bytes=%.4f card_occupancy=%.4f\n",
              sim::jain_index(byte_shares), sim::jain_index(busy_shares));

  // Per-VM columns must reproduce the aggregate counters exactly.
  bool ok = true;
  for (const char* name :
       {"vphi.fe.requests", "vphi.fe.bytes_out", "vphi.fe.bytes_in",
        "vphi.fe.timeouts", "vphi.fe.protocol_errors",
        "vphi.watchdog.stalls", "vphi.card.busy_ns"}) {
    ok = check_sums(name) && ok;
  }
  if (!ok) return 1;
  std::printf("per-VM sums match aggregates exactly\n");
  return 0;
}

}  // namespace
}  // namespace vphi::tools

namespace vphi::tools {

int vphi_top_main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    usage(argc > 0 ? argv[0] : "vphi-top");
    return 2;
  }
  return run(opts);
}

}  // namespace vphi::tools
