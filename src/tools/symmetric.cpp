#include "tools/symmetric.hpp"

#include <barrier>
#include <cstring>
#include <thread>

#include "scif/types.hpp"
#include "sim/actor.hpp"

namespace vphi::tools::symm {

int Rank::size() const noexcept { return world_->size(); }

sim::Expected<int> Rank::epd_for(int peer) {
  auto it = epds_.find(peer);
  if (it == epds_.end()) return sim::Status::kNotConnected;
  return it->second;
}

sim::Status Rank::send(int dst, const void* buf, std::size_t len) {
  if (dst == rank_ || dst < 0 || dst >= size()) {
    return sim::Status::kInvalidArgument;
  }
  auto epd = epd_for(dst);
  if (!epd) return epd.status();
  auto sent = world_->ranks_[static_cast<std::size_t>(rank_)].provider->send(
      *epd, buf, len, scif::SCIF_SEND_BLOCK);
  if (!sent) return sent.status();
  return *sent == len ? sim::Status::kOk : sim::Status::kConnectionReset;
}

sim::Status Rank::recv(int src, void* buf, std::size_t len) {
  if (src == rank_ || src < 0 || src >= size()) {
    return sim::Status::kInvalidArgument;
  }
  auto epd = epd_for(src);
  if (!epd) return epd.status();
  auto got = world_->ranks_[static_cast<std::size_t>(rank_)].provider->recv(
      *epd, buf, len, scif::SCIF_RECV_BLOCK);
  if (!got) return got.status();
  return *got == len ? sim::Status::kOk : sim::Status::kConnectionReset;
}

sim::Status Rank::barrier() {
  std::uint8_t token = 0;
  if (rank_ == 0) {
    for (int peer = 1; peer < size(); ++peer) {
      const auto s = recv(peer, &token, 1);
      if (!sim::ok(s)) return s;
    }
    for (int peer = 1; peer < size(); ++peer) {
      const auto s = send(peer, &token, 1);
      if (!sim::ok(s)) return s;
    }
    return sim::Status::kOk;
  }
  auto s = send(0, &token, 1);
  if (!sim::ok(s)) return s;
  return recv(0, &token, 1);
}

sim::Status Rank::broadcast(int root, void* buf, std::size_t len) {
  if (root < 0 || root >= size()) return sim::Status::kInvalidArgument;
  if (rank_ == root) {
    for (int peer = 0; peer < size(); ++peer) {
      if (peer == root) continue;
      const auto s = send(peer, buf, len);
      if (!sim::ok(s)) return s;
    }
    return sim::Status::kOk;
  }
  return recv(root, buf, len);
}

sim::Status Rank::allreduce_sum(double* values, std::size_t count) {
  const std::size_t bytes = count * sizeof(double);
  if (rank_ == 0) {
    std::vector<double> incoming(count);
    for (int peer = 1; peer < size(); ++peer) {
      const auto s = recv(peer, incoming.data(), bytes);
      if (!sim::ok(s)) return s;
      for (std::size_t i = 0; i < count; ++i) values[i] += incoming[i];
    }
  } else {
    const auto s = send(0, values, bytes);
    if (!sim::ok(s)) return s;
  }
  return broadcast(0, values, bytes);
}

World::World(std::vector<RankSpec> ranks, scif::Port base_port)
    : ranks_(std::move(ranks)), base_port_(base_port) {}

sim::Status World::run(const std::function<sim::Status(Rank&)>& body) {
  const int n = size();
  if (n == 0) return sim::Status::kInvalidArgument;

  // Resolve each rank's SCIF node up front (a guest rank's listener really
  // lives on the host node — its backend's process identity).
  std::vector<scif::NodeId> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto ids = ranks_[static_cast<std::size_t>(i)].provider->get_node_ids();
    if (!ids) return ids.status();
    nodes[static_cast<std::size_t>(i)] = ids->self;
  }

  std::barrier sync(n);
  std::vector<sim::Status> results(static_cast<std::size_t>(n),
                                   sim::Status::kOk);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));

  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      auto& spec = ranks_[static_cast<std::size_t>(i)];
      sim::Actor actor{spec.name, sim::Actor::AtNow{}};
      sim::ActorScope scope(actor);
      auto& p = *spec.provider;
      Rank rank{*this, i};
      auto fail = [&](sim::Status s) {
        results[static_cast<std::size_t>(i)] = s;
        sync.arrive_and_drop();
      };

      // Phase 1: every rank listens on base_port + rank.
      auto listener = p.open();
      if (!listener) return fail(listener.status());
      if (!p.bind(*listener, static_cast<scif::Port>(base_port_ + i))) {
        return fail(sim::Status::kAddressInUse);
      }
      const auto listening = p.listen(*listener, n);
      if (!sim::ok(listening)) return fail(listening);
      sync.arrive_and_wait();

      // Phase 2: rank i dials every lower rank and introduces itself;
      // every rank accepts one connection per higher rank.
      for (int peer = 0; peer < i; ++peer) {
        auto epd = p.open();
        if (!epd) return fail(epd.status());
        const auto connected = p.connect(
            *epd, scif::PortId{nodes[static_cast<std::size_t>(peer)],
                               static_cast<scif::Port>(base_port_ + peer)});
        if (!sim::ok(connected)) return fail(connected);
        const std::int32_t my_id = i;
        if (!p.send(*epd, &my_id, sizeof(my_id), scif::SCIF_SEND_BLOCK)) {
          return fail(sim::Status::kConnectionReset);
        }
        rank.epds_[peer] = *epd;
      }
      for (int incoming = i + 1; incoming < n; ++incoming) {
        auto conn = p.accept(*listener, scif::SCIF_ACCEPT_SYNC);
        if (!conn) return fail(conn.status());
        std::int32_t peer_id = -1;
        if (!p.recv(conn->epd, &peer_id, sizeof(peer_id),
                    scif::SCIF_RECV_BLOCK)) {
          return fail(sim::Status::kConnectionReset);
        }
        if (peer_id <= i || peer_id >= n) {
          return fail(sim::Status::kInternal);
        }
        rank.epds_[peer_id] = conn->epd;
      }
      sync.arrive_and_wait();

      // Phase 3: user code.
      results[static_cast<std::size_t>(i)] = body(rank);

      // Teardown.
      for (auto& [_, epd] : rank.epds_) p.close(epd);
      p.close(*listener);
    });
  }
  for (auto& t : threads) t.join();

  for (const auto s : results) {
    if (!sim::ok(s)) return s;
  }
  return sim::Status::kOk;
}

}  // namespace vphi::tools::symm
