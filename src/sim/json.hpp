// Shared JSON string escaping for every sim-layer emitter.
//
// Both the tracer's Chrome-trace export and the metrics registry's
// snapshot_json() interpolate caller-supplied names into JSON string
// literals. Instrument names are normally tame ("vphi.fe.requests"), but
// nothing enforces that — op names flow in from protocol tables and tests
// deliberately register hostile names — so every emitter must escape
// through this one helper instead of concatenating raw bytes.
#pragma once

#include <string>
#include <string_view>

namespace vphi::sim {

/// Append `s` to `out` escaped for use inside a JSON string literal:
/// quote, backslash and every control character below 0x20 (RFC 8259
/// sec. 7) — the common ones as their short forms, the rest as \u00XX.
void append_json_escaped(std::string& out, std::string_view s);

/// Convenience: the escaped copy.
std::string json_escaped(std::string_view s);

}  // namespace vphi::sim
