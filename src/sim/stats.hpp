// Measurement containers used by tests and benchmark harnesses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace vphi::sim {

/// Online mean/min/max/stddev accumulator.
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  /// Fold another accumulator in (parallel-variance combination), as if
  /// every sample had been add()ed here.
  void merge(const Summary& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const std::uint64_t n = n_ + o.n_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ = n;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log2-bucketed latency histogram (ns), with percentile estimation by
/// linear interpolation within a bucket.
class Histogram {
 public:
  void add(Nanos v) noexcept;
  /// Bucket-wise fold of another histogram.
  void merge(const Histogram& o) noexcept {
    for (int b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    total_ += o.total_;
    summary_.merge(o.summary_);
  }
  std::uint64_t count() const noexcept { return total_; }
  /// q in [0,1]; returns 0 for an empty histogram. Interpolated values are
  /// clamped into [min(), max()], and q = 1.0 is exactly max() — never the
  /// bucket's exclusive power-of-two upper bound.
  double percentile(double q) const noexcept;
  double mean() const noexcept { return summary_.mean(); }
  double min() const noexcept { return summary_.min(); }
  double max() const noexcept { return summary_.max(); }

 private:
  static constexpr int kBuckets = 64;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
  Summary summary_;
};

/// A named (x, y) series — one line of a paper figure.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
};

/// Renders series as an aligned text table (rows = x values, one column per
/// series), the way the bench binaries print each reproduced figure.
class FigureTable {
 public:
  FigureTable(std::string title, std::string x_label)
      : title_(std::move(title)), x_label_(std::move(x_label)) {}

  void add_series(Series s) { series_.push_back(std::move(s)); }
  /// Optional extra column computed as series[1]/series[0] etc.
  void add_ratio_column(std::size_t num, std::size_t den, std::string label);
  void print(std::ostream& os) const;

 private:
  struct Ratio {
    std::size_t num, den;
    std::string label;
  };
  std::string title_;
  std::string x_label_;
  std::vector<Series> series_;
  std::vector<Ratio> ratios_;
};

/// Pretty-print a byte count ("4 KiB", "64 MiB", "1 B").
std::string format_bytes(std::uint64_t bytes);

/// Jain's fairness index over per-tenant allocations x_i:
/// J = (sum x_i)^2 / (n * sum x_i^2). 1.0 = perfectly fair shares,
/// 1/n = one tenant hogging everything. Degenerate inputs (empty, or all
/// shares zero) report 1.0 — nothing was allocated unfairly.
inline double jain_index(const std::vector<double>& xs) noexcept {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (xs.empty() || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace vphi::sim
