// Calibrated cost model.
//
// Every timing constant used anywhere in the simulator lives in this one
// struct. The defaults are calibrated so the simulated testbed reproduces the
// numbers the vPHI paper measured on real hardware (Xeon E5-2695v2 host,
// Xeon Phi 3120P, QEMU-KVM 2.2.50). Each field's comment names the paper
// anchor it serves. Benches and tests construct alternative models to run
// ablations (e.g. a slower link, a cheaper wakeup scheme).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace vphi::sim {

struct CostModel {
  // --- Host SCIF native path -----------------------------------------------
  // Anchor: Fig. 4 — host 1-byte send/recv latency is 7 us end to end.
  // The five stages below sum to 7.0 us for a payload that rides the
  // doorbell (driver processing + PCIe hop + DMA setup + remote delivery).
  Nanos host_syscall_ns = 500;        ///< user->kernel ioctl entry/exit
  Nanos scif_host_driver_ns = 1'000;  ///< host SCIF driver request handling
  Nanos pcie_hop_ns = 900;            ///< one PCIe traversal (doorbell/MMIO)
  Nanos dma_setup_ns = 3'600;         ///< programming a DMA channel
  Nanos scif_card_driver_ns = 1'000;  ///< uOS SCIF driver delivery to endpoint

  // --- PCIe / DMA bandwidths ------------------------------------------------
  // Anchor: Fig. 5 — host remote read tops out at 6.4 GB/s. With the
  // dma_setup above, 6.45e9 B/s asymptotic gives 6.40 GB/s at 64 MiB.
  double dma_bandwidth_Bps = 6.45e9;
  // Scatter-gather descriptor cost per (4 KiB) page when the DMA target is
  // *not* physically contiguous on the host — i.e. pinned guest memory seen
  // through QEMU. Anchor: Fig. 5 — vPHI remote read tops out at 4.6 GB/s
  // (72% of host). The guest driver issues one RMA command per
  // FrontendConfig::rma_chunk (16 MiB), so a 64 MiB read pays 4 serial ring
  // round trips (~380 us fixed each) on top of the DMA; 185 ns/page closes
  // the rest of the 1/4.6e9 - 1/6.45e9 = 62.4 ps/B gap.
  Nanos dma_sg_per_page_ns = 185;
  std::uint64_t dma_page_bytes = 4'096;

  // Programmed-I/O RMA (SCIF_RMA_USECPU): CPU loads/stores through the BAR.
  double rma_cpu_bandwidth_Bps = 2.0e9;

  // Two-way (send/recv) data path rides bounce buffers + DMA; effective
  // stream bandwidth is lower than raw RMA. Used for micnativeloadex's
  // binary/library streaming (Figs. 6-8 launch phase).
  double scif_stream_bandwidth_Bps = 5.2e9;

  // Pinning user pages for RMA (get_user_pages), per 4 KiB page.
  Nanos pin_per_page_ns = 200;

  // --- Memory copies ---------------------------------------------------------
  double host_memcpy_Bps = 9.0e9;   ///< host user<->kernel copies (DDR3-1600)
  double guest_memcpy_Bps = 7.0e9;  ///< guest user<->kernel copies (virtualized)
  Nanos copy_setup_ns = 300;        ///< fixed cost per copy_{to,from}_user

  // --- vPHI split-driver path -------------------------------------------------
  // Anchor: Fig. 4 — vPHI 1-byte latency is 382 us, i.e. 375 us of
  // virtualization overhead over the 7 us native path, and the Sec. IV-B
  // breakdown attributes 93% of that overhead to the frontend's sleep/wake
  // waiting scheme. The stages below sum to 375 us with the wakeup scheme at
  // 349 us (93.07%).
  Nanos fe_prepare_ns = 3'000;        ///< frontend ioctl intercept + req build
  Nanos fe_copy_fixed_ns = 1'500;     ///< guest copy_from_user fixed part
  Nanos virtio_enqueue_ns = 1'000;    ///< descriptor chain post to avail ring
  Nanos kick_vmexit_ns = 2'000;       ///< MMIO kick -> VM exit -> QEMU notify
  Nanos be_dispatch_ns = 4'000;       ///< backend pop + guest-buffer mapping
  Nanos be_complete_ns = 3'000;       ///< backend used-ring push
  Nanos irq_inject_ns = 5'000;        ///< KVM virtual interrupt injection
  Nanos guest_irq_handler_ns = 3'000; ///< guest ISR entry + ring scan
  Nanos guest_wakeup_scheme_ns = 349'000;  ///< wake_up_all + sched-in of waiter
  Nanos fe_complete_ns = 2'000;       ///< frontend response demux
  Nanos fe_copyback_fixed_ns = 1'500; ///< guest copy_to_user fixed part

  // Extra wakeup cost per *additional* sleeper on the frontend wait queue:
  // the paper's scheme wakes all sleepers and each checks the shared ring.
  Nanos wakeup_per_extra_sleeper_ns = 4'000;

  // Polling-mode alternative (ablation A1): the frontend spins on the used
  // ring instead of sleeping. Detection granularity of the spin loop.
  Nanos poll_spin_ns = 200;

  // Pipelined transfers: cost of reaping an already-delivered completion
  // from the used ring (no sleep, no interrupt — the coalesced IRQ of an
  // earlier chunk in the window already drained it). This is what replaces
  // the 357 us sleep/wake path for all but the last chunk of a batch.
  Nanos pipeline_reap_ns = 500;

  // Backend worker-thread mode (ablation A2): cost of handing a request to a
  // worker and of the worker rejoining the event loop, vs. blocking the loop.
  Nanos worker_handoff_ns = 9'000;
  // While the event loop is blocked, other VM progress stalls; we account a
  // stall penalty per blocked microsecond when the VM has concurrent I/O.
  double evloop_block_penalty = 1.0;

  // --- KVM / mmap path ---------------------------------------------------------
  Nanos ept_fault_ns = 12'000;     ///< guest #PF -> KVM -> resolve VM_PFNPHI
  Nanos mmio_access_ns = 250;      ///< one load/store to mapped device memory
  Nanos mmap_setup_per_page_ns = 150;  ///< PTE setup inside scif_mmap

  // --- Xeon Phi 3120P card ------------------------------------------------------
  // 57 in-order cores @ 1.1 GHz, 4 hw threads/core, 512-bit DP FMA
  // (16 flop/cycle/core); core 0 is reserved for the uOS, leaving 56 cores —
  // which is exactly why the paper sweeps 56/112/224 threads.
  std::uint32_t mic_cores = 57;
  std::uint32_t mic_reserved_cores = 1;
  std::uint32_t mic_threads_per_core = 4;
  double mic_core_hz = 1.1e9;
  double mic_flops_per_cycle = 16.0;
  std::uint64_t mic_memory_bytes = 6ull << 30;  ///< 6 GB GDDR5
  double mic_mem_bandwidth_Bps = 240e9;         ///< GDDR5 aggregate
  Nanos uos_timeslice_ns = 1'000'000;           ///< uOS CFS-ish timeslice
  Nanos uos_ctx_switch_ns = 5'000;              ///< context switch on a KNC core
  /// Amortized per-thread startup cost of the card-side OpenMP/pthread
  /// pool (spawning fans out tree-wise, so the effective serial cost per
  /// thread is far below a lone pthread_create).
  Nanos uos_spawn_thread_ns = 20'000;
  Nanos uos_exec_setup_ns = 8'000'000;          ///< exec + loader on the card

  // KNC in-order pipeline issues from one thread every other cycle: a single
  // hw thread reaches at most ~50% of a core's peak. Issue efficiency by
  // resident hw threads per core (index 1..4), calibrated to MKL behaviour.
  double mic_issue_eff[5] = {0.0, 0.50, 0.88, 0.93, 0.95};

  // --- COI / micnativeloadex (Figs. 6-8 launch phase) ----------------------------
  // dgemm linked against MKL drags large shared objects to the card.
  std::uint64_t loadex_binary_bytes = 2ull << 20;    ///< the MIC executable
  std::uint64_t loadex_library_bytes = 350ull << 20; ///< MKL + OpenMP deps
  std::uint32_t loadex_control_msgs = 200;           ///< small COI RPCs
  Nanos coi_process_create_ns = 40'000'000;          ///< daemon fork/exec etc.

  /// The model calibrated to the paper's testbed (the defaults above).
  static const CostModel& paper() {
    static const CostModel m{};
    return m;
  }

  // Derived helpers ------------------------------------------------------------

  /// Native host one-way small-message latency (the 7 us anchor).
  Nanos host_small_msg_ns() const {
    return host_syscall_ns + scif_host_driver_ns + pcie_hop_ns + dma_setup_ns +
           scif_card_driver_ns;
  }

  /// Fixed vPHI split-driver overhead for one request/response round trip
  /// through the ring with the interrupt-based waiting scheme (the 375 us
  /// anchor), excluding data-size-dependent copies.
  Nanos vphi_ring_roundtrip_ns() const {
    return fe_prepare_ns + fe_copy_fixed_ns + virtio_enqueue_ns +
           kick_vmexit_ns + be_dispatch_ns + be_complete_ns + irq_inject_ns +
           guest_irq_handler_ns + guest_wakeup_scheme_ns + fe_complete_ns +
           fe_copyback_fixed_ns;
  }

  /// DMA duration for `bytes` into a target fragmented at page granularity
  /// (`fragmented` = pinned guest memory) or physically contiguous.
  Nanos dma_transfer_ns(std::uint64_t bytes, bool fragmented) const {
    Nanos t = transfer_time(bytes, dma_bandwidth_Bps);
    if (fragmented && bytes > 0) {
      const std::uint64_t pages = (bytes + dma_page_bytes - 1) / dma_page_bytes;
      t += pages * dma_sg_per_page_ns;
    }
    return t;
  }
};

}  // namespace vphi::sim
