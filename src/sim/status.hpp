// Error handling for the vPHI stack.
//
// The real system reports errors as negative errno values out of libscif and
// the drivers. We mirror that with a small Status enum (one value per errno
// the SCIF specification can return) plus an Expected<T> result type, so
// every layer of the stack can propagate the exact failure the paper's stack
// would produce, without exceptions on the hot path.
#pragma once

#include <cassert>
#include <string_view>
#include <utility>
#include <variant>

namespace vphi::sim {

/// Stack-wide error codes. Values mirror the errno set that Intel's SCIF
/// specification documents for each call, plus a few generic ones.
enum class Status : int {
  kOk = 0,
  kInvalidArgument,   // EINVAL
  kBadDescriptor,     // EBADF
  kBadAddress,        // EFAULT
  kNoMemory,          // ENOMEM
  kAddressInUse,      // EADDRINUSE
  kConnectionRefused, // ECONNREFUSED
  kConnectionReset,   // ECONNRESET
  kNotConnected,      // ENOTCONN
  kAlreadyConnected,  // EISCONN
  kWouldBlock,        // EAGAIN / EWOULDBLOCK
  kInterrupted,       // EINTR
  kTimedOut,          // ETIMEDOUT
  kNoDevice,          // ENODEV
  kNoSuchEntry,       // ENXIO (bad remote registered offset)
  kAccessDenied,      // EACCES (protection mismatch on RMA/mmap)
  kNotSupported,      // EOPNOTSUPP
  kOutOfRange,        // ERANGE
  kAlreadyExists,     // EEXIST (SCIF_MAP_FIXED collision)
  kNotListening,      // EOPNOTSUPP on accept of a non-listening endpoint
  kBusy,              // EBUSY (unregister with mapped pages / pending RMA)
  kNoSpace,           // ENOSPC (port space exhausted)
  kShutDown,          // device or VM torn down under the caller
  kInternal,          // bug in the simulator itself
  kIoError,           // EIO (transport-level corruption / protocol violation)
};

/// Human-readable name, e.g. for gtest failure messages and logs.
std::string_view to_string(Status s) noexcept;

/// True for kOk.
constexpr bool ok(Status s) noexcept { return s == Status::kOk; }

/// True when `v` is the integer encoding of a known Status value. The vPHI
/// wire carries Status as an int32; a peer (or an injected fault) can put
/// anything there, so receivers must range-check before casting back.
constexpr bool valid_status_int(int v) noexcept {
  return v >= static_cast<int>(Status::kOk) &&
         v <= static_cast<int>(Status::kIoError);
}

/// Minimal expected-or-error type (GCC 12 lacks std::expected).
/// Holds either a value of T or a non-kOk Status.
template <typename T>
class Expected {
 public:
  Expected(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Status error) : rep_(error) {         // NOLINT(google-explicit-constructor)
    assert(error != Status::kOk && "use a value for success");
  }

  bool has_value() const noexcept { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const noexcept { return has_value(); }

  Status status() const noexcept {
    return has_value() ? Status::kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(has_value());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value or a fallback when this holds an error.
  T value_or(T fallback) const& {
    return has_value() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace vphi::sim
