// Cross-actor synchronization that carries simulated timestamps.
//
// Real condition variables provide *functional* blocking between simulator
// threads; the simulated timestamps attached to every handoff provide the
// *timing*: a consumer merges its logical clock with the producer's event
// time, so waiting costs come out of the model, never out of the wall clock.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace vphi::sim {

/// Unbounded MPMC FIFO of (value, simulated availability time).
template <typename T>
class Channel {
 public:
  struct Item {
    T value;
    Nanos ts;  ///< simulated time the item became visible to consumers
  };

  /// Make `value` available to consumers at simulated time `ts`.
  void push(T value, Nanos ts) VPHI_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      items_.push_back(Item{std::move(value), ts});
    }
    cv_.notify_all();
  }

  /// Block until an item is available or the channel is closed.
  /// Returns nullopt on close-with-empty-queue.
  std::optional<Item> pop() VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) cv_.wait(mu_);
    if (items_.empty()) return std::nullopt;
    Item item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<Item> try_pop() VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    Item item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wake all poppers; subsequent pops drain remaining items then return
  /// nullopt.
  void close() VPHI_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Item> items_ VPHI_GUARDED_BY(mu_);
  bool closed_ VPHI_GUARDED_BY(mu_) = false;
};

/// A one-directional event line (doorbell / interrupt wire). Each raise
/// carries a timestamp; waiters collect the latest raise time. Counting
/// semantics: every raise releases exactly one waiter (or is remembered).
class EventLine {
 public:
  /// Signal the line at simulated time `ts`.
  void raise(Nanos ts) VPHI_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      ++pending_;
      last_ts_ = std::max(last_ts_, ts);
    }
    cv_.notify_one();
  }

  /// Block until a raise is available (or close); returns the raise
  /// timestamp, or nullopt if closed with nothing pending.
  std::optional<Nanos> wait() VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (pending_ == 0 && !closed_) cv_.wait(mu_);
    if (pending_ == 0) return std::nullopt;
    --pending_;
    return last_ts_;
  }

  /// Consume a pending raise if any, without blocking.
  std::optional<Nanos> try_wait() VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (pending_ == 0) return std::nullopt;
    --pending_;
    return last_ts_;
  }

  void close() VPHI_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::uint64_t pending() const VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return pending_;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::uint64_t pending_ VPHI_GUARDED_BY(mu_) = 0;
  Nanos last_ts_ VPHI_GUARDED_BY(mu_) = 0;
  bool closed_ VPHI_GUARDED_BY(mu_) = false;
};

}  // namespace vphi::sim
