// Minimal leveled logger. Off by default; enable with set_log_level or the
// VPHI_LOG environment variable (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string_view>

namespace vphi::sim {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emit one line (thread-safe) at the given level; no-op if filtered out.
void log_line(LogLevel level, std::string_view component, std::string_view msg);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace vphi::sim

#define VPHI_LOG(level, component)                                   \
  if (static_cast<int>(::vphi::sim::log_level()) >=                  \
      static_cast<int>(::vphi::sim::LogLevel::level))                \
  ::vphi::sim::detail::LogMessage(::vphi::sim::LogLevel::level, component)
