#include "sim/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/actor.hpp"
#include "sim/recorder.hpp"

namespace vphi::sim {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("VPHI_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kOff;
}

std::atomic<int> g_level{static_cast<int>(level_from_env())};
Mutex g_io_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
    default: return "?";
  }
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component, std::string_view msg) {
  if (static_cast<int>(log_level()) < static_cast<int>(level)) return;
  // Every emitted line also lands in the flight recorder, stamped with the
  // calling actor's simulated clock, so a recorder dump interleaves log
  // lines with span events on one simulated-time axis.
  flight_recorder().record_log(level, component, msg, this_actor().now());
  MutexLock lock(g_io_mu);
  std::fprintf(stderr, "[%s %.*s] %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace vphi::sim
