#include "sim/fault.hpp"

#include <string>

#include "sim/log.hpp"
#include "sim/recorder.hpp"

namespace vphi::sim {

const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kKmallocNoMem: return "kmalloc-nomem";
    case FaultSite::kKickDrop: return "kick-drop";
    case FaultSite::kKickDelay: return "kick-delay";
    case FaultSite::kCorruptRequestHeader: return "corrupt-request-header";
    case FaultSite::kCorruptResponseStatus: return "corrupt-response-status";
    case FaultSite::kCorruptResponseRet: return "corrupt-response-ret";
    case FaultSite::kShortUsedWrite: return "short-used-write";
    case FaultSite::kTruncateChain: return "truncate-chain";
    case FaultSite::kCycleChain: return "cycle-chain";
    case FaultSite::kNumSites: break;
  }
  return "unknown";
}

FaultInjector::FaultInjector() {
  for (int i = 0; i < kNumFaultSites; ++i) {
    const std::string base =
        std::string("vphi.fault.") +
        fault_site_name(static_cast<FaultSite>(i));
    hit_counters_[i] = std::make_unique<metrics::Counter>(base + ".hits");
    fire_counters_[i] = std::make_unique<metrics::Counter>(base + ".fires");
  }
}

void FaultInjector::arm(FaultSite site, const FaultConfig& config) {
  MutexLock lock(mu_);
  Site& s = sites_[static_cast<int>(site)];
  if (!s.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  s.config = config;
  s.armed = true;
  // Arming re-baselines the site: both the hit counter the nth-trigger is
  // measured against and the fire budget max_fires is charged against start
  // from zero. Without this a site armed, fired and disarmed once would stay
  // exhausted for every later arm in the same process.
  s.hits_since_arm = 0;
  s.fires = 0;
}

void FaultInjector::arm_nth(FaultSite site, std::uint64_t nth,
                            std::uint64_t max_fires) {
  FaultConfig config;
  config.nth = nth;
  config.max_fires = max_fires;
  arm(site, config);
}

void FaultInjector::arm_probability(FaultSite site, double p) {
  FaultConfig config;
  config.probability = p;
  arm(site, config);
}

void FaultInjector::disarm(FaultSite site) {
  MutexLock lock(mu_);
  Site& s = sites_[static_cast<int>(site)];
  if (s.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  s.armed = false;
  s.config = FaultConfig{};
}

void FaultInjector::disarm_all() {
  MutexLock lock(mu_);
  for (Site& s : sites_) {
    s.armed = false;
    s.config = FaultConfig{};
  }
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::armed(FaultSite site) const {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].armed;
}

bool FaultInjector::decide_locked(Site& s) noexcept {
  if (!s.armed) return false;
  if (s.config.max_fires != 0 && s.fires >= s.config.max_fires) return false;
  bool fire = s.config.nth != 0 && s.hits_since_arm == s.config.nth;
  if (!fire && s.config.probability > 0.0) {
    // SplitMix64 step (same generator as sim::Rng), inlined so the injector
    // owns its replayable stream.
    std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    fire = u < s.config.probability;
  }
  if (fire) ++s.fires;
  return fire;
}

bool FaultInjector::should_fire(FaultSite site, TraceId focus) noexcept {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  bool fire;
  {
    MutexLock lock(mu_);
    Site& s = sites_[static_cast<int>(site)];
    ++s.hits_total;
    hit_counters_[static_cast<int>(site)]->inc();
    if (s.armed) ++s.hits_since_arm;
    fire = decide_locked(s);
    if (fire) {
      fire_counters_[static_cast<int>(site)]->inc();
      VPHI_LOG(kWarn, "fault") << "injecting " << fault_site_name(site)
                               << " (hit " << s.hits_since_arm << ", fire "
                               << s.fires << ")";
    }
  }
  if (fire) {
    // Every injected fault becomes a diagnosable incident: dump the flight
    // recorder's window (outside mu_ — the dump reads the tracer). When the
    // call site passed the faulted request's trace id, the dump leads with
    // that request's full span chain.
    flight_recorder().dump(
        std::string("injected fault: ") + fault_site_name(site), focus);
  }
  return fire;
}

Nanos FaultInjector::delay_ns(FaultSite site) const noexcept {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].config.delay_ns;
}

std::uint64_t FaultInjector::hits(FaultSite site) const noexcept {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].hits_total;
}

std::uint64_t FaultInjector::fires(FaultSite site) const noexcept {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].fires;
}

std::uint64_t FaultInjector::total_fires() const noexcept {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const Site& s : sites_) total += s.fires;
  return total;
}

void FaultInjector::reset_counters() {
  MutexLock lock(mu_);
  for (Site& s : sites_) {
    s.hits_since_arm = 0;
    s.hits_total = 0;
    s.fires = 0;
  }
  for (int i = 0; i < kNumFaultSites; ++i) {
    hit_counters_[i]->reset();
    fire_counters_[i]->reset();
  }
}

void FaultInjector::seed(std::uint64_t s) {
  MutexLock lock(mu_);
  rng_state_ = s;
}

FaultInjector& fault_injector() {
  static FaultInjector injector;
  return injector;
}

}  // namespace vphi::sim
