// Fault injection for the vPHI transport.
//
// The backend services ring requests from *untrusted* guest frontends — from
// the host's point of view a VM is just a process — so every layer of the
// transport must survive a peer that lies, drops, delays or corrupts. This
// injector is the machinery that proves it: each FaultSite names one concrete
// point in the stack (a kmalloc that can return ENOMEM, a kick that can be
// swallowed, a header that can be scribbled over, a descriptor chain that can
// be cut short or bent into a cycle). Sites consult the process-global
// injector on their hot path; a single relaxed atomic keeps the disarmed cost
// at one load.
//
// Triggers compose per site:
//   * deterministic Nth hit — fire on exactly the nth consultation since arm
//     (the reproducible unit-test mode),
//   * probabilistic      — fire with probability p per hit, driven by the
//     deterministic sim::Rng (soak/stress mode),
//   * max_fires          — cap total fires so a test can inject exactly one
//     fault and then watch the stack recover.
//
// Every fire is counted and logged (VPHI_LOG kWarn, component "fault") so an
// injected fault is always observable alongside the transport's own error /
// timeout / retry counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "sim/metrics.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace vphi::sim {

/// One entry per fault point threaded through the transport.
enum class FaultSite : int {
  kKmallocNoMem = 0,       ///< GuestPhysMem::kmalloc returns kNoMemory
  kKickDrop,               ///< Virtqueue::kick swallowed (request stranded)
  kKickDelay,              ///< Virtqueue::kick delayed by delay_ns
  kCorruptRequestHeader,   ///< frontend posts a garbage RequestHeader
  kCorruptResponseStatus,  ///< backend answers with an invalid status int
  kCorruptResponseRet,     ///< backend answers kOk but an absurd ret0
  kShortUsedWrite,         ///< backend pushes used.len = 0 (short write)
  kTruncateChain,          ///< device-side walk loses the chain's tail
  kCycleChain,             ///< device-side walk sees a cyclic chain
  kNumSites,
};

inline constexpr int kNumFaultSites = static_cast<int>(FaultSite::kNumSites);

const char* fault_site_name(FaultSite site) noexcept;

/// Per-site trigger configuration. All triggers are evaluated per hit
/// (consultation); a site fires when either trigger says so, subject to
/// max_fires.
struct FaultConfig {
  double probability = 0.0;  ///< [0,1] chance per hit
  std::uint64_t nth = 0;     ///< fire on exactly the nth hit since arm (1-based);
                             ///< 0 disables the deterministic trigger
  std::uint64_t max_fires = 0;  ///< total fire budget; 0 = unlimited
  Nanos delay_ns = 0;           ///< extra latency for delay-flavoured sites
};

class FaultInjector {
 public:
  FaultInjector();

  void arm(FaultSite site, const FaultConfig& config) VPHI_EXCLUDES(mu_);
  /// Fire exactly on the nth upcoming hit (and, by default, only once).
  void arm_nth(FaultSite site, std::uint64_t nth, std::uint64_t max_fires = 1)
      VPHI_EXCLUDES(mu_);
  /// Fire with probability p on every hit.
  void arm_probability(FaultSite site, double p) VPHI_EXCLUDES(mu_);
  void disarm(FaultSite site) VPHI_EXCLUDES(mu_);
  void disarm_all() VPHI_EXCLUDES(mu_);
  bool armed(FaultSite site) const VPHI_EXCLUDES(mu_);

  /// Consult at the fault point: records the hit and decides whether the
  /// fault fires now. Cheap (one relaxed load) when nothing is armed.
  /// Every fire triggers a flight-recorder dump; call sites that know the
  /// request riding the faulted path pass its trace id as `focus` so the
  /// dump leads with that request's span chain.
  bool should_fire(FaultSite site, TraceId focus = 0) noexcept
      VPHI_EXCLUDES(mu_);

  /// The configured injection delay for `site` (kKickDelay and friends).
  Nanos delay_ns(FaultSite site) const noexcept VPHI_EXCLUDES(mu_);

  std::uint64_t hits(FaultSite site) const noexcept VPHI_EXCLUDES(mu_);
  std::uint64_t fires(FaultSite site) const noexcept VPHI_EXCLUDES(mu_);
  std::uint64_t total_fires() const noexcept VPHI_EXCLUDES(mu_);

  /// Zero all hit/fire counters (armed configs stay).
  void reset_counters() VPHI_EXCLUDES(mu_);
  /// Reseed the probabilistic trigger (deterministic replay).
  void seed(std::uint64_t s) VPHI_EXCLUDES(mu_);

 private:
  struct Site {
    FaultConfig config;
    bool armed = false;
    std::uint64_t hits_since_arm = 0;
    std::uint64_t hits_total = 0;
    std::uint64_t fires = 0;
  };

  bool decide_locked(Site& s) noexcept VPHI_REQUIRES(mu_);

  mutable Mutex mu_;
  Site sites_[kNumFaultSites] VPHI_GUARDED_BY(mu_);
  std::uint64_t rng_state_ VPHI_GUARDED_BY(mu_) = 0x9E3779B97F4A7C15ull;
  std::atomic<int> armed_count_{0};
  // Cumulative mirrors of hits_total/fires under registry names
  // ("vphi.fault.<site>.hits/.fires") so a metrics snapshot shows injected
  // faults next to the transport's own error counters. The raw Site fields
  // keep the arm-relative semantics (max_fires budgets, nth triggers).
  std::unique_ptr<metrics::Counter> hit_counters_[kNumFaultSites];
  std::unique_ptr<metrics::Counter> fire_counters_[kNumFaultSites];
};

/// The process-global injector the transport fault points consult.
FaultInjector& fault_injector();

}  // namespace vphi::sim
