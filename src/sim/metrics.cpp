#include "sim/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "sim/json.hpp"

namespace vphi::sim::metrics {
namespace {

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

template <typename T>
void erase_ptr(std::vector<T*>& v, T* p) {
  v.erase(std::remove(v.begin(), v.end(), p), v.end());
}

/// "name{label}" — the labeled-breakdown key used in snapshot JSON.
void append_labeled_key(std::string& out, const std::string& name,
                        const std::string& label) {
  out += '"';
  append_json_escaped(out, name);
  out += '{';
  append_json_escaped(out, label);
  out += "}\":";
}

void append_histogram_json(std::string& out, const Histogram& h) {
  out += "{\"count\":";
  out += std::to_string(h.count());
  out += ",\"mean\":";
  append_double(out, h.mean());
  out += ",\"p50\":";
  append_double(out, h.percentile(0.5));
  out += ",\"p99\":";
  append_double(out, h.percentile(0.99));
  out += ",\"max\":";
  append_double(out, h.max());
  out += '}';
}

}  // namespace

Counter::Counter(std::string name, std::string label)
    : name_(std::move(name)), label_(std::move(label)) {
  registry().add(this);
}
Counter::~Counter() { registry().remove(this); }

Gauge::Gauge(std::string name, std::string label)
    : name_(std::move(name)), label_(std::move(label)) {
  registry().add(this);
}
Gauge::~Gauge() { registry().remove(this); }

LatencyHistogram::LatencyHistogram(std::string name, std::string label)
    : name_(std::move(name)), label_(std::move(label)) {
  registry().add(this);
}
LatencyHistogram::~LatencyHistogram() { registry().remove(this); }

void LatencyHistogram::record(Nanos v) noexcept {
  MutexLock lock(mu_);
  h_.add(v);
}

Histogram LatencyHistogram::snapshot() const {
  MutexLock lock(mu_);
  return h_;
}

void Registry::add(Counter* c) {
  MutexLock lock(mu_);
  counters_.push_back(c);
}

void Registry::remove(Counter* c) {
  MutexLock lock(mu_);
  erase_ptr(counters_, c);
  retired_counters_[c->name()] += c->value();
  if (!c->label().empty()) {
    retired_labeled_counters_[c->name()][c->label()] += c->value();
  }
}

void Registry::add(Gauge* g) {
  MutexLock lock(mu_);
  gauges_.push_back(g);
}

void Registry::remove(Gauge* g) {
  MutexLock lock(mu_);
  erase_ptr(gauges_, g);
  retired_gauges_[g->name()] += g->value();
  if (!g->label().empty()) {
    retired_labeled_gauges_[g->name()][g->label()] += g->value();
  }
}

void Registry::add(LatencyHistogram* h) {
  MutexLock lock(mu_);
  histograms_.push_back(h);
}

void Registry::remove(LatencyHistogram* h) {
  MutexLock lock(mu_);
  erase_ptr(histograms_, h);
  retired_histograms_[h->name()].merge(h->snapshot());
  if (!h->label().empty()) {
    retired_labeled_histograms_[h->name()][h->label()].merge(h->snapshot());
  }
}

void Registry::reset() {
  MutexLock lock(mu_);
  retired_counters_.clear();
  retired_gauges_.clear();
  retired_histograms_.clear();
  retired_labeled_counters_.clear();
  retired_labeled_gauges_.clear();
  retired_labeled_histograms_.clear();
  for (Counter* c : counters_) c->reset();
  for (Gauge* g : gauges_) g->set(0);
}

std::string Registry::snapshot_json() const {
  MutexLock lock(mu_);

  std::map<std::string, std::uint64_t> counters = retired_counters_;
  auto labeled_counters = retired_labeled_counters_;
  for (const Counter* c : counters_) {
    counters[c->name()] += c->value();
    if (!c->label().empty()) {
      labeled_counters[c->name()][c->label()] += c->value();
    }
  }

  std::map<std::string, std::int64_t> gauges = retired_gauges_;
  auto labeled_gauges = retired_labeled_gauges_;
  for (const Gauge* g : gauges_) {
    gauges[g->name()] += g->value();
    if (!g->label().empty()) {
      labeled_gauges[g->name()][g->label()] += g->value();
    }
  }

  std::map<std::string, Histogram> hists = retired_histograms_;
  auto labeled_hists = retired_labeled_histograms_;
  for (const LatencyHistogram* h : histograms_) {
    hists[h->name()].merge(h->snapshot());
    if (!h->label().empty()) {
      labeled_hists[h->name()][h->label()].merge(h->snapshot());
    }
  }

  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : hists) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
    append_histogram_json(out, h);
  }
  out += "},\"labeled_counters\":{";
  first = true;
  for (const auto& [name, by_label] : labeled_counters) {
    for (const auto& [label, v] : by_label) {
      if (!first) out += ',';
      first = false;
      append_labeled_key(out, name, label);
      out += std::to_string(v);
    }
  }
  out += "},\"labeled_gauges\":{";
  first = true;
  for (const auto& [name, by_label] : labeled_gauges) {
    for (const auto& [label, v] : by_label) {
      if (!first) out += ',';
      first = false;
      append_labeled_key(out, name, label);
      out += std::to_string(v);
    }
  }
  out += "},\"labeled_histograms\":{";
  first = true;
  for (const auto& [name, by_label] : labeled_hists) {
    for (const auto& [label, h] : by_label) {
      if (!first) out += ',';
      first = false;
      append_labeled_key(out, name, label);
      append_histogram_json(out, h);
    }
  }
  out += "}}";
  return out;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  if (auto it = retired_counters_.find(name); it != retired_counters_.end()) {
    total += it->second;
  }
  for (const Counter* c : counters_) {
    if (c->name() == name) total += c->value();
  }
  return total;
}

std::uint64_t Registry::labeled_counter_value(const std::string& name,
                                              const std::string& label) const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  if (auto it = retired_labeled_counters_.find(name);
      it != retired_labeled_counters_.end()) {
    if (auto jt = it->second.find(label); jt != it->second.end()) {
      total += jt->second;
    }
  }
  for (const Counter* c : counters_) {
    if (c->name() == name && c->label() == label) total += c->value();
  }
  return total;
}

std::map<std::string, std::uint64_t> Registry::counter_by_label(
    const std::string& name) const {
  MutexLock lock(mu_);
  std::map<std::string, std::uint64_t> out;
  if (auto it = retired_labeled_counters_.find(name);
      it != retired_labeled_counters_.end()) {
    out = it->second;
  }
  for (const Counter* c : counters_) {
    if (c->name() == name && !c->label().empty()) out[c->label()] += c->value();
  }
  return out;
}

std::map<std::string, std::int64_t> Registry::gauge_by_label(
    const std::string& name) const {
  MutexLock lock(mu_);
  std::map<std::string, std::int64_t> out;
  if (auto it = retired_labeled_gauges_.find(name);
      it != retired_labeled_gauges_.end()) {
    out = it->second;
  }
  for (const Gauge* g : gauges_) {
    if (g->name() == name && !g->label().empty()) out[g->label()] += g->value();
  }
  return out;
}

std::map<std::string, Histogram> Registry::histogram_by_label(
    const std::string& name) const {
  MutexLock lock(mu_);
  std::map<std::string, Histogram> out;
  if (auto it = retired_labeled_histograms_.find(name);
      it != retired_labeled_histograms_.end()) {
    out = it->second;
  }
  for (const LatencyHistogram* h : histograms_) {
    if (h->name() == name && !h->label().empty()) {
      out[h->label()].merge(h->snapshot());
    }
  }
  return out;
}

Histogram Registry::histogram_value(const std::string& name) const {
  MutexLock lock(mu_);
  Histogram out;
  if (auto it = retired_histograms_.find(name);
      it != retired_histograms_.end()) {
    out.merge(it->second);
  }
  for (const LatencyHistogram* h : histograms_) {
    if (h->name() == name) out.merge(h->snapshot());
  }
  return out;
}

std::vector<std::string> Registry::metric_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const Counter* c : counters_) names.push_back(c->name());
  for (const Gauge* g : gauges_) names.push_back(g->name());
  for (const LatencyHistogram* h : histograms_) names.push_back(h->name());
  for (const auto& [name, v] : retired_counters_) names.push_back(name);
  for (const auto& [name, v] : retired_gauges_) names.push_back(name);
  for (const auto& [name, h] : retired_histograms_) names.push_back(name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::size_t Registry::instrument_count() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

void dump_metrics_at_exit() {
  const char* path = std::getenv("VPHI_METRICS");
  if (path == nullptr || path[0] == '\0') return;
  const std::string spec{path};
  const std::string json = registry().snapshot_json();
  if (spec == "1" || spec == "-" || spec == "stderr") {
    std::fprintf(stderr, "%s\n", json.c_str());
    return;
  }
  if (std::FILE* f = std::fopen(spec.c_str(), "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "vphi: cannot write VPHI_METRICS file %s\n",
                 spec.c_str());
  }
}

}  // namespace

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry();  // leaked: instruments may outlive main()
    if (const char* env = std::getenv("VPHI_METRICS");
        env != nullptr && env[0] != '\0' && std::string{env} != "0") {
      std::atexit(dump_metrics_at_exit);
    }
    return r;
  }();
  return *instance;
}

}  // namespace vphi::sim::metrics
