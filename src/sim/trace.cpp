#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "sim/actor.hpp"
#include "sim/json.hpp"
#include "sim/recorder.hpp"

namespace vphi::sim {
namespace {

// The op span the calling thread is currently inside (see TraceOpScope).
thread_local TraceId t_current_op = 0;

// Chrome-trace track per component, in pipeline-reading order.
constexpr int kTidGuestOps = 1;
constexpr int kTidFrontend = 2;
constexpr int kTidRing = 3;
constexpr int kTidBackend = 4;
constexpr int kTidIrq = 5;

int event_tid(SpanEvent ev) noexcept {
  switch (ev) {
    case SpanEvent::kSubmit:
    case SpanEvent::kKick:
    case SpanEvent::kWakeup:
    case SpanEvent::kComplete:
      return kTidFrontend;
    case SpanEvent::kAvailPublish:
    case SpanEvent::kUsedPublish:
      return kTidRing;
    case SpanEvent::kBackendPop:
    case SpanEvent::kHostSyscall:
      return kTidBackend;
    case SpanEvent::kVirq:
      return kTidIrq;
    case SpanEvent::kNumEvents:
      break;
  }
  return kTidFrontend;
}

/// Within one request the simulated timestamps are causally ordered, but
/// cross-thread record() calls may append out of order; sorting by
/// (ts, pipeline position) restores the canonical sequence.
void sort_events(std::vector<TraceEv>& evs) {
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEv& a, const TraceEv& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return static_cast<int>(a.event) <
                            static_cast<int>(b.event);
                   });
}

std::string g_trace_path;

void write_trace_at_exit() {
  if (!g_trace_path.empty()) tracer().write_chrome_trace(g_trace_path);
}

}  // namespace

const char* span_event_name(SpanEvent ev) noexcept {
  switch (ev) {
    case SpanEvent::kSubmit:
      return "submit";
    case SpanEvent::kAvailPublish:
      return "avail_publish";
    case SpanEvent::kKick:
      return "kick";
    case SpanEvent::kBackendPop:
      return "backend_pop";
    case SpanEvent::kHostSyscall:
      return "host_syscall";
    case SpanEvent::kUsedPublish:
      return "used_publish";
    case SpanEvent::kVirq:
      return "virq";
    case SpanEvent::kWakeup:
      return "wakeup";
    case SpanEvent::kComplete:
      return "complete";
    case SpanEvent::kNumEvents:
      break;
  }
  return "?";
}

void Tracer::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
}

RequestTrace* Tracer::find_locked(std::vector<RequestTrace>& v, TraceId id) {
  for (auto it = v.rbegin(); it != v.rend(); ++it)
    if (it->id == id) return &*it;
  return nullptr;
}

TraceId Tracer::begin_op(const char* name, Nanos ts) {
  if (!enabled()) return 0;
  const TraceId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  ops_.push_back({id, 0, name, {{SpanEvent::kSubmit, ts}}});
  flight_recorder().record_span(id, 0, name, SpanEvent::kSubmit, ts);
  return id;
}

void Tracer::end_op(TraceId id, Nanos ts) {
  if (id == 0) return;
  MutexLock lock(mu_);
  if (RequestTrace* op = find_locked(ops_, id)) {
    op->events.push_back({SpanEvent::kComplete, ts});
    flight_recorder().record_span(id, 0, op->op.c_str(), SpanEvent::kComplete,
                                  ts);
  }
}

TraceId Tracer::begin_request(const char* op_name, Nanos ts) {
  if (!enabled()) return 0;
  const TraceId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  requests_.push_back({id, t_current_op, op_name, {{SpanEvent::kSubmit, ts}}});
  flight_recorder().record_span(id, t_current_op, op_name, SpanEvent::kSubmit,
                                ts);
  return id;
}

void Tracer::record(TraceId id, SpanEvent ev, Nanos ts) {
  if (id == 0) return;  // the disabled / untraced fast path
  MutexLock lock(mu_);
  if (RequestTrace* req = find_locked(requests_, id)) {
    req->events.push_back({ev, ts});
    flight_recorder().record_span(id, req->parent, req->op.c_str(), ev, ts);
  }
  // A record against a cleared trace is silently dropped: clear() may race
  // with requests still in flight and that is fine.
}

void Tracer::clear() {
  MutexLock lock(mu_);
  requests_.clear();
  ops_.clear();
}

std::size_t Tracer::request_count() const {
  MutexLock lock(mu_);
  return requests_.size();
}

std::size_t Tracer::event_count() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& r : requests_) n += r.events.size();
  for (const auto& o : ops_) n += o.events.size();
  return n;
}

std::vector<RequestTrace> Tracer::requests() const {
  MutexLock lock(mu_);
  auto out = requests_;
  for (auto& r : out) sort_events(r.events);
  return out;
}

std::vector<RequestTrace> Tracer::ops() const {
  MutexLock lock(mu_);
  auto out = ops_;
  for (auto& o : out) sort_events(o.events);
  return out;
}

std::vector<Hop> Tracer::hop_breakdown() const {
  const auto reqs = requests();
  std::map<std::pair<int, int>, Summary> hops;
  for (const auto& r : reqs) {
    for (std::size_t i = 1; i < r.events.size(); ++i) {
      const auto& a = r.events[i - 1];
      const auto& b = r.events[i];
      hops[{static_cast<int>(a.event), static_cast<int>(b.event)}].add(
          static_cast<double>(b.ts - a.ts));
    }
  }
  std::vector<Hop> out;
  out.reserve(hops.size());
  for (const auto& [key, summary] : hops)
    out.push_back({static_cast<SpanEvent>(key.first),
                   static_cast<SpanEvent>(key.second), summary});
  return out;
}

std::string Tracer::chrome_trace_json() const {
  const auto reqs = requests();
  const auto op_spans = ops();

  struct ChromeEv {
    int tid;
    Nanos ts;
    std::string json;  // everything but pid/tid/ts
  };
  std::vector<ChromeEv> evs;

  auto make_args = [](TraceId id, const std::string& op) {
    std::string a = "\"args\":{\"trace\":" + std::to_string(id);
    if (!op.empty()) {
      a += ",\"op\":\"";
      append_json_escaped(a, op);
      a += '"';
    }
    a += '}';
    return a;
  };

  for (const auto& o : op_spans) {
    if (o.events.empty()) continue;
    const Nanos t0 = o.events.front().ts;
    const Nanos t1 = o.events.back().ts;
    std::string j = "\"name\":\"";
    append_json_escaped(j, o.op);
    j += "\",\"ph\":\"X\",\"dur\":" +
         std::to_string(static_cast<double>(t1 - t0) / 1e3) + "," +
         make_args(o.id, o.op);
    evs.push_back({kTidGuestOps, t0, std::move(j)});
  }

  for (const auto& r : reqs) {
    for (std::size_t i = 0; i < r.events.size(); ++i) {
      const auto& e = r.events[i];
      if (i + 1 < r.events.size()) {
        // A complete slice for the hop to the next event, drawn on the
        // destination's track so each component shows the latency it is
        // responsible for ending.
        const auto& n = r.events[i + 1];
        std::string j = "\"name\":\"";
        j += span_event_name(e.event);
        j += "\\u2192";  // →
        j += span_event_name(n.event);
        j += "\",\"ph\":\"X\",\"dur\":" +
             std::to_string(static_cast<double>(n.ts - e.ts) / 1e3) + "," +
             make_args(r.id, r.op);
        evs.push_back({event_tid(n.event), e.ts, std::move(j)});
      } else {
        std::string j = "\"name\":\"";
        j += span_event_name(e.event);
        j += "\",\"ph\":\"i\",\"s\":\"t\"," + make_args(r.id, r.op);
        evs.push_back({event_tid(e.event), e.ts, std::move(j)});
      }
    }
  }

  // chrome://tracing only asks for per-track order; sorting the whole array
  // by (tid, ts) also satisfies the trace_smoke validator directly.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const ChromeEv& a, const ChromeEv& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts < b.ts;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const std::pair<int, const char*> kTracks[] = {
      {kTidGuestOps, "guest ops"},
      {kTidFrontend, "frontend"},
      {kTidRing, "virtio ring"},
      {kTidBackend, "backend"},
      {kTidIrq, "vIRQ"},
  };
  for (const auto& [tid, name] : kTracks) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" + name + "\"}}";
  }
  for (const auto& e : evs) {
    out += ",{\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(static_cast<double>(e.ts) / 1e3) + "," +
           e.json + "}";
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

Tracer& tracer() {
  static Tracer* instance = [] {
    auto* t = new Tracer();  // leaked: records may arrive past main()
    if (const char* env = std::getenv("VPHI_TRACE");
        env != nullptr && env[0] != '\0' && std::string{env} != "0") {
      t->set_enabled(true);
      if (std::string{env} != "1") {
        g_trace_path = env;
        std::atexit(write_trace_at_exit);
      }
    }
    return t;
  }();
  return *instance;
}

TraceOpScope::TraceOpScope(const char* name) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  id_ = t.begin_op(name, this_actor().now());
  saved_parent_ = t_current_op;
  t_current_op = id_;
}

TraceOpScope::~TraceOpScope() {
  if (id_ == 0) return;
  tracer().end_op(id_, this_actor().now());
  t_current_op = saved_parent_;
}

}  // namespace vphi::sim
