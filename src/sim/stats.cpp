#include "sim/stats.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>

namespace vphi::sim {

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Histogram::add(Nanos v) noexcept {
  // bucket = index of top bit + 1
  const int b = v == 0 ? 0 : static_cast<int>(std::bit_width(v));
  buckets_[b >= kBuckets ? kBuckets - 1 : b] += 1;
  ++total_;
  summary_.add(static_cast<double>(v));
}

double Histogram::percentile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  // The top of the distribution is known exactly: interpolating inside the
  // last occupied bucket would report its exclusive power-of-two upper
  // bound (a value never observed) instead of the true maximum.
  if (q >= 1.0) return summary_.max();
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double in_bucket = static_cast<double>(buckets_[b]);
    if (seen + in_bucket >= target && in_bucket > 0.0) {
      // Interpolate within [2^(b-1), 2^b), then clamp to the observed
      // range — a single-bucket histogram must never report a quantile
      // outside [min, max].
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      const double hi = std::ldexp(1.0, b);
      const double frac = (target - seen) / in_bucket;
      return std::clamp(lo + frac * (hi - lo), summary_.min(),
                        summary_.max());
    }
    seen += in_bucket;
  }
  return summary_.max();
}

void FigureTable::add_ratio_column(std::size_t num, std::size_t den,
                                   std::string label) {
  ratios_.push_back({num, den, std::move(label)});
}

void FigureTable::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  if (series_.empty()) return;
  constexpr int kColWidth = 16;
  os << std::left << std::setw(kColWidth) << x_label_;
  for (const auto& s : series_) os << std::setw(kColWidth) << s.name;
  for (const auto& r : ratios_) os << std::setw(kColWidth) << r.label;
  os << "\n";
  const std::size_t rows = series_.front().x.size();
  for (std::size_t i = 0; i < rows; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", series_.front().x[i]);
    os << std::setw(kColWidth) << buf;
    for (const auto& s : series_) {
      const double y = i < s.y.size() ? s.y[i] : 0.0;
      std::snprintf(buf, sizeof(buf), "%.4f", y);
      os << std::setw(kColWidth) << buf;
    }
    for (const auto& r : ratios_) {
      const double den = series_[r.den].y[i];
      const double v = den != 0.0 ? series_[r.num].y[i] / den : 0.0;
      std::snprintf(buf, sizeof(buf), "%.4f", v);
      os << std::setw(kColWidth) << buf;
    }
    os << "\n";
  }
  os.flush();
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB"};
  int unit = 0;
  std::uint64_t v = bytes;
  while (v >= 1024 && v % 1024 == 0 && unit < 3) {
    v /= 1024;
    ++unit;
  }
  return std::to_string(v) + " " + kUnits[unit];
}

}  // namespace vphi::sim
