// Simulated-time primitives.
//
// All performance numbers in this repository are produced on a *virtual*
// clock, not the wall clock: every thread of execution owns a sim::Actor
// whose logical `now` advances by calibrated costs (sim::CostModel) as it
// performs work, and merges forward when it synchronizes with another actor
// (message arrival, interrupt, DMA completion). This makes every benchmark
// deterministic and machine-independent while the data path still moves real
// bytes.
#pragma once

#include <cstdint>

namespace vphi::sim {

/// Simulated time, in nanoseconds since testbed power-on.
using Nanos = std::uint64_t;

inline constexpr Nanos kNanosecond = 1;
inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

/// Convert simulated nanoseconds to floating-point seconds/micros for
/// reporting.
constexpr double to_seconds(Nanos t) { return static_cast<double>(t) / 1e9; }
constexpr double to_micros(Nanos t) { return static_cast<double>(t) / 1e3; }

/// Duration of moving `bytes` at `bytes_per_second`, rounded up to 1 ns so
/// that a nonzero transfer always consumes time.
constexpr Nanos transfer_time(std::uint64_t bytes, double bytes_per_second) {
  if (bytes == 0 || bytes_per_second <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_second;
  const auto whole = static_cast<Nanos>(ns);
  return whole == 0 ? 1 : whole;
}

}  // namespace vphi::sim
