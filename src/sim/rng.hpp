// Deterministic RNG for workload generation and property tests.
// SplitMix64: tiny, fast, excellent distribution for non-crypto use.
#pragma once

#include <cstdint>

namespace vphi::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Fill `n` bytes with reproducible pseudo-random content.
  void fill(void* dst, std::size_t n) noexcept {
    auto* p = static_cast<unsigned char*>(dst);
    while (n >= 8) {
      const std::uint64_t v = next();
      __builtin_memcpy(p, &v, 8);
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      const std::uint64_t v = next();
      __builtin_memcpy(p, &v, n);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace vphi::sim
