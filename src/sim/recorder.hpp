// Always-on flight recorder: the last window of observability events,
// retained for the moment something goes wrong.
//
// A fixed-size ring buffer of recent trace span events and log lines, each
// stamped with the simulated timestamp and the recording actor's name.
// Steady state allocates nothing: entries are preallocated fixed-width
// slots, recording is a memcpy under a mutex, and the ring silently
// overwrites its oldest entry when full. The recorder is a pure observer —
// it never touches any actor's clock — so leaving it on does not move a
// single simulated number.
//
// When a failure fires (a frontend timeout, a backend validation error, an
// injected fault, a watchdog stall), the owning component calls dump():
// the window is snapshotted and rendered as an annotated text dump
// (interleaving span events and log lines on one simulated-time axis) plus
// a Perfetto/Chrome trace-event JSON of the same window. When the dump has
// a focus request, its complete span chain is pulled from the tracer and
// printed first — the ring may have wrapped past the request's early
// events, the tracer has not.
//
// Span events only exist while sim::Tracer is enabled (an untraced request
// has id 0 and records nothing); log lines only exist at or above the
// VPHI_LOG level. The recorder interleaves whatever the two funnels emit.
//
// Env knob: VPHI_FLIGHT=0 disables the recorder entirely; =<path> writes
// each dump to <path>.<n>.txt / <path>.<n>.json in addition to stderr;
// unset or =1 keeps the default (record always, dump text to stderr, first
// kMaxStderrDumps dumps only). The last dump is always retrievable
// in-process via last_dump() regardless of the stderr cap.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/log.hpp"
#include "sim/metrics.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace vphi::sim {

/// One emitted dump: the annotated text and the Perfetto JSON of the
/// window at trigger time.
struct FlightDump {
  std::uint64_t seq = 0;  ///< 1-based dump sequence number
  std::string reason;
  TraceId focus = 0;
  std::string text;
  std::string perfetto_json;
};

class FlightRecorder {
 public:
  /// Entries retained in the window. Power of two, sized so a multi-VM
  /// pipelined burst's full recent history fits.
  static constexpr std::size_t kCapacity = 2048;
  /// Dumps written to stderr before going quiet (a probabilistic fault
  /// sweep would otherwise bury the test log); counting and last_dump()
  /// continue past the cap.
  static constexpr std::uint64_t kMaxStderrDumps = 4;

  FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Drop every buffered entry (tests; ids/dump counts are untouched).
  void clear() VPHI_EXCLUDES(mu_);

  /// Feed one span event (called from inside sim::Tracer's funnels).
  void record_span(TraceId id, TraceId parent, const char* op, SpanEvent ev,
                   Nanos ts) VPHI_EXCLUDES(mu_);
  /// Feed one emitted log line (called from sim::log_line).
  void record_log(LogLevel level, std::string_view component,
                  std::string_view msg, Nanos ts) VPHI_EXCLUDES(mu_);

  /// Trigger: snapshot the window, render the annotated text + Perfetto
  /// JSON, bump vphi.recorder.dumps, emit per the VPHI_FLIGHT policy and
  /// return the dump. Never advances any actor's clock. The window is
  /// snapshotted under mu_ and rendered after release: render_text reads
  /// the tracer's lock, and the tracer's funnels feed record_span under it
  /// — holding both here would order the two locks both ways.
  FlightDump dump(std::string_view reason, TraceId focus = 0)
      VPHI_EXCLUDES(mu_);

  std::uint64_t dump_count() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }
  /// Copy of the most recent dump (empty FlightDump when none happened).
  FlightDump last_dump() const VPHI_EXCLUDES(mu_);
  /// Entries currently buffered (bounded by kCapacity).
  std::size_t entry_count() const VPHI_EXCLUDES(mu_);

 private:
  struct Entry {
    enum class Kind : std::uint8_t { kSpan, kLog };
    Kind kind = Kind::kSpan;
    SpanEvent event = SpanEvent::kSubmit;
    LogLevel level = LogLevel::kOff;
    Nanos ts = 0;
    TraceId trace = 0;
    TraceId parent = 0;
    char actor[24] = {};
    char component[16] = {};
    char text[96] = {};  ///< op name (span) or message (log), truncated
  };

  void append_locked(const Entry& e) VPHI_REQUIRES(mu_);
  std::string render_text(const std::vector<Entry>& window,
                          std::string_view reason, TraceId focus,
                          std::uint64_t seq, std::uint64_t dropped) const;
  std::string render_perfetto(const std::vector<Entry>& window,
                              std::string_view reason, TraceId focus) const;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> dumps_{0};

  mutable Mutex mu_;
  /// Preallocated to kCapacity, never resized.
  std::vector<Entry> ring_ VPHI_GUARDED_BY(mu_);
  std::size_t next_ VPHI_GUARDED_BY(mu_) = 0;
  /// Valid entries (<= kCapacity).
  std::size_t count_ VPHI_GUARDED_BY(mu_) = 0;
  /// Entries lost to wraparound.
  std::uint64_t overwritten_ VPHI_GUARDED_BY(mu_) = 0;
  FlightDump last_ VPHI_GUARDED_BY(mu_);

  metrics::Counter dump_counter_{"vphi.recorder.dumps"};
  metrics::Counter dropped_counter_{"vphi.recorder.entries_dropped"};
};

/// The process-global recorder both funnels (tracer, logger) feed.
FlightRecorder& flight_recorder();

}  // namespace vphi::sim
