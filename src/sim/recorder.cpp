#include "sim/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/actor.hpp"
#include "sim/json.hpp"

namespace vphi::sim {
namespace {

void copy_trunc(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

const char* level_letter(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
    default: return "?";
  }
}

/// VPHI_FLIGHT parse, once: empty/unset/"1" -> default policy, "0" ->
/// disabled, anything else -> dump file path prefix.
struct FlightEnv {
  bool disabled = false;
  std::string path_prefix;
};

const FlightEnv& flight_env() {
  static const FlightEnv env = [] {
    FlightEnv e;
    const char* v = std::getenv("VPHI_FLIGHT");
    if (v == nullptr || v[0] == '\0' || std::strcmp(v, "1") == 0) return e;
    if (std::strcmp(v, "0") == 0) {
      e.disabled = true;
      return e;
    }
    e.path_prefix = v;
    return e;
  }();
  return env;
}

void write_file(const std::string& path, const std::string& body) {
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "vphi: cannot write flight dump %s\n", path.c_str());
  }
}

}  // namespace

FlightRecorder::FlightRecorder() {
  ring_.resize(kCapacity);  // the only allocation the recorder ever makes
  if (flight_env().disabled) enabled_.store(false, std::memory_order_relaxed);
}

void FlightRecorder::clear() {
  MutexLock lock(mu_);
  next_ = 0;
  count_ = 0;
  overwritten_ = 0;
}

void FlightRecorder::append_locked(const Entry& e) {
  if (count_ == kCapacity) {
    ++overwritten_;
    dropped_counter_.inc();
  } else {
    ++count_;
  }
  ring_[next_] = e;
  next_ = (next_ + 1) % kCapacity;
}

void FlightRecorder::record_span(TraceId id, TraceId parent, const char* op,
                                 SpanEvent ev, Nanos ts) {
  if (!enabled()) return;
  Entry e;
  e.kind = Entry::Kind::kSpan;
  e.event = ev;
  e.ts = ts;
  e.trace = id;
  e.parent = parent;
  copy_trunc(e.actor, sizeof(e.actor), this_actor().name());
  copy_trunc(e.text, sizeof(e.text), op != nullptr ? op : "");
  MutexLock lock(mu_);
  append_locked(e);
}

void FlightRecorder::record_log(LogLevel level, std::string_view component,
                                std::string_view msg, Nanos ts) {
  if (!enabled()) return;
  Entry e;
  e.kind = Entry::Kind::kLog;
  e.level = level;
  e.ts = ts;
  copy_trunc(e.actor, sizeof(e.actor), this_actor().name());
  copy_trunc(e.component, sizeof(e.component), component);
  copy_trunc(e.text, sizeof(e.text), msg);
  MutexLock lock(mu_);
  append_locked(e);
}

std::string FlightRecorder::render_text(const std::vector<Entry>& window,
                                        std::string_view reason, TraceId focus,
                                        std::uint64_t seq,
                                        std::uint64_t dropped) const {
  std::string out;
  out.reserve(256 + window.size() * 96);
  char line[256];
  std::snprintf(line, sizeof(line),
                "=== vphi flight recorder dump #%llu ===\n",
                static_cast<unsigned long long>(seq));
  out += line;
  out += "reason: ";
  out.append(reason.data(), reason.size());
  out += '\n';

  if (focus != 0) {
    // The ring may have wrapped past the focus request's early events; the
    // tracer retains the complete chain, so print it from there.
    std::snprintf(line, sizeof(line), "focus: trace %llu\n",
                  static_cast<unsigned long long>(focus));
    out += line;
    for (const auto& r : tracer().requests()) {
      if (r.id != focus) continue;
      std::snprintf(line, sizeof(line),
                    "--- focus span chain (op %s, %zu events) ---\n",
                    r.op.c_str(), r.events.size());
      out += line;
      for (const auto& ev : r.events) {
        std::snprintf(line, sizeof(line), "  [%12lld ns] %s\n",
                      static_cast<long long>(ev.ts),
                      span_event_name(ev.event));
        out += line;
      }
      break;
    }
  }

  std::snprintf(
      line, sizeof(line),
      "--- recent events (oldest first, %zu buffered, %llu overwritten) "
      "---\n",
      window.size(), static_cast<unsigned long long>(dropped));
  out += line;
  for (const Entry& e : window) {
    if (e.kind == Entry::Kind::kSpan) {
      std::snprintf(line, sizeof(line),
                    "  [%12lld ns] %-20s span %-13s trace=%llu op=%s\n",
                    static_cast<long long>(e.ts), e.actor,
                    span_event_name(e.event),
                    static_cast<unsigned long long>(e.trace), e.text);
    } else {
      std::snprintf(line, sizeof(line), "  [%12lld ns] %-20s log  %s %s: %s\n",
                    static_cast<long long>(e.ts), e.actor,
                    level_letter(e.level), e.component, e.text);
    }
    out += line;
  }
  std::snprintf(line, sizeof(line), "=== end dump #%llu ===\n",
                static_cast<unsigned long long>(seq));
  out += line;
  return out;
}

std::string FlightRecorder::render_perfetto(const std::vector<Entry>& window,
                                            std::string_view reason,
                                            TraceId focus) const {
  // Instant events on one track per actor; the window is small so a flat
  // array with per-event thread_name metadata records keeps this simple.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::vector<std::string> actors;
  auto tid_of = [&](const char* actor) {
    const std::string name{actor};
    for (std::size_t i = 0; i < actors.size(); ++i) {
      if (actors[i] == name) return static_cast<int>(i + 1);
    }
    actors.push_back(name);
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(actors.size()) + ",\"args\":{\"name\":\"";
    append_json_escaped(out, name);
    out += "\"}}";
    return static_cast<int>(actors.size());
  };
  for (const Entry& e : window) {
    const int tid = tid_of(e.actor);
    if (!first) out += ',';
    first = false;
    out += "{\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + std::to_string(static_cast<double>(e.ts) / 1e3) +
           ",\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
    if (e.kind == Entry::Kind::kSpan) {
      append_json_escaped(out, span_event_name(e.event));
      out += "\",\"args\":{\"trace\":" + std::to_string(e.trace) + ",\"op\":\"";
      append_json_escaped(out, e.text);
      out += "\"}}";
    } else {
      append_json_escaped(out, e.component);
      out += "\",\"args\":{\"level\":\"";
      out += level_letter(e.level);
      out += "\",\"msg\":\"";
      append_json_escaped(out, e.text);
      out += "\"}}";
    }
  }
  out += ",{\"pid\":1,\"tid\":0,\"ph\":\"i\",\"s\":\"g\",\"ts\":0,\"name\":\"";
  append_json_escaped(out, reason);
  out += "\",\"args\":{\"focus\":" + std::to_string(focus) + "}}";
  out += "]}";
  return out;
}

FlightDump FlightRecorder::dump(std::string_view reason, TraceId focus) {
  if (!enabled()) return {};  // VPHI_FLIGHT=0: fully out of the way
  // Snapshot under the lock, render after releasing it: render_text reads
  // the tracer (its own mutex), and the tracer's funnels feed this recorder
  // while holding that mutex — holding both here would order the locks both
  // ways round.
  std::vector<Entry> window;
  std::uint64_t dropped = 0;
  {
    MutexLock lock(mu_);
    window.reserve(count_);
    const std::size_t start = (next_ + kCapacity - count_) % kCapacity;
    for (std::size_t i = 0; i < count_; ++i) {
      window.push_back(ring_[(start + i) % kCapacity]);
    }
    dropped = overwritten_;
  }

  FlightDump d;
  d.seq = dumps_.fetch_add(1, std::memory_order_relaxed) + 1;
  dump_counter_.inc();
  d.reason.assign(reason.data(), reason.size());
  d.focus = focus;
  d.text = render_text(window, reason, focus, d.seq, dropped);
  d.perfetto_json = render_perfetto(window, reason, focus);

  const FlightEnv& env = flight_env();
  if (!env.path_prefix.empty()) {
    const std::string base = env.path_prefix + "." + std::to_string(d.seq);
    write_file(base + ".txt", d.text);
    write_file(base + ".json", d.perfetto_json);
  }
  if (d.seq <= kMaxStderrDumps) {
    std::fwrite(d.text.data(), 1, d.text.size(), stderr);
  }

  {
    MutexLock lock(mu_);
    last_ = d;
  }
  return d;
}

FlightDump FlightRecorder::last_dump() const {
  MutexLock lock(mu_);
  return last_;
}

std::size_t FlightRecorder::entry_count() const {
  MutexLock lock(mu_);
  return count_;
}

FlightRecorder& flight_recorder() {
  static FlightRecorder* instance = new FlightRecorder();  // leaked:
  // span/log records may arrive from detached actors past main()'s end.
  return *instance;
}

}  // namespace vphi::sim
