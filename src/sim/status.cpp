#include "sim/status.hpp"

namespace vphi::sim {

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kBadDescriptor: return "BAD_DESCRIPTOR";
    case Status::kBadAddress: return "BAD_ADDRESS";
    case Status::kNoMemory: return "NO_MEMORY";
    case Status::kAddressInUse: return "ADDRESS_IN_USE";
    case Status::kConnectionRefused: return "CONNECTION_REFUSED";
    case Status::kConnectionReset: return "CONNECTION_RESET";
    case Status::kNotConnected: return "NOT_CONNECTED";
    case Status::kAlreadyConnected: return "ALREADY_CONNECTED";
    case Status::kWouldBlock: return "WOULD_BLOCK";
    case Status::kInterrupted: return "INTERRUPTED";
    case Status::kTimedOut: return "TIMED_OUT";
    case Status::kNoDevice: return "NO_DEVICE";
    case Status::kNoSuchEntry: return "NO_SUCH_ENTRY";
    case Status::kAccessDenied: return "ACCESS_DENIED";
    case Status::kNotSupported: return "NOT_SUPPORTED";
    case Status::kOutOfRange: return "OUT_OF_RANGE";
    case Status::kAlreadyExists: return "ALREADY_EXISTS";
    case Status::kNotListening: return "NOT_LISTENING";
    case Status::kBusy: return "BUSY";
    case Status::kNoSpace: return "NO_SPACE";
    case Status::kShutDown: return "SHUT_DOWN";
    case Status::kInternal: return "INTERNAL";
    case Status::kIoError: return "IO_ERROR";
  }
  return "UNKNOWN";
}

}  // namespace vphi::sim
