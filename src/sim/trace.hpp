// Cross-layer request tracing on the simulated clock.
//
// A trace context (TraceId) is allocated per SCIF request as it enters the
// frontend, rides the host-side bookkeeping structures (FrontendDriver's
// Pending slot, the per-head slot table of virtio::Ring, Backend's Chain)
// — never the frozen wire headers — and collects span events at each hop:
//
//   kSubmit        frontend accepts the request        (guest driver)
//   kAvailPublish  descriptor chain visible on avail   (virtio ring)
//   kKick          doorbell actually sent              (guest driver)
//   kBackendPop    backend dequeues the chain          (QEMU backend)
//   kHostSyscall   host SCIF syscall issued            (QEMU backend)
//   kUsedPublish   completion visible on used          (virtio ring)
//   kVirq          vIRQ delivered to the guest         (hypervisor)
//   kWakeup        waiting guest context resumes       (guest driver)
//   kComplete      response parsed, buffers freed      (guest driver)
//
// All timestamps are simulated Nanos; recording never advances any actor's
// clock, so enabling tracing does not change a single measured number.
// When disabled (the default), record() costs one relaxed atomic load and
// every id is 0, so the hot path allocates nothing.
//
// Guest-level SCIF ops (scif_send, scif_readfrom, ...) open an op span via
// TraceOpScope; requests submitted while it is open link to it as their
// parent, which is how a pipelined 64 MiB read shows up as one op umbrella
// over four chunk requests.
//
// Exports: hop_breakdown() aggregates per-request deltas between
// consecutive events (the simulated analogue of the paper's fig. 4b
// table); chrome_trace_json() emits a Chrome "chrome://tracing" /
// Perfetto-loadable trace. See docs/OBSERVABILITY.md.
//
// Env knob: VPHI_TRACE=1 enables tracing at startup; any other non-"0"
// value additionally names a file the Chrome trace is written to at exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace vphi::sim {

/// 0 means "not traced"; every live request carries a unique nonzero id.
using TraceId = std::uint64_t;

enum class SpanEvent : std::uint8_t {
  kSubmit = 0,
  kAvailPublish,
  kKick,
  kBackendPop,
  kHostSyscall,
  kUsedPublish,
  kVirq,
  kWakeup,
  kComplete,
  kNumEvents,
};

const char* span_event_name(SpanEvent ev) noexcept;

/// One recorded point of a request's lifetime.
struct TraceEv {
  SpanEvent event;
  Nanos ts;
};

/// Everything recorded for one request (or one guest-level op umbrella).
struct RequestTrace {
  TraceId id = 0;
  TraceId parent = 0;  ///< enclosing op span, 0 if none
  std::string op;      ///< "readfrom", "send", ...
  std::vector<TraceEv> events;
};

/// One aggregated hop of the pipeline: the latency between two consecutive
/// span events, summarized across every traced request that has both.
struct Hop {
  SpanEvent from;
  SpanEvent to;
  Summary ns;
};

class Tracer {
 public:
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept;

  /// Open a guest-level op span (scif_send, scif_readfrom, ...). Returns 0
  /// when disabled.
  TraceId begin_op(const char* name, Nanos ts) VPHI_EXCLUDES(mu_);
  void end_op(TraceId id, Nanos ts) VPHI_EXCLUDES(mu_);

  /// Allocate a request trace and record kSubmit at `ts`. The request links
  /// to the calling thread's current op span (see TraceOpScope). Returns 0
  /// when disabled.
  TraceId begin_request(const char* op_name, Nanos ts) VPHI_EXCLUDES(mu_);

  /// Record one span event. No-op (no lock, no allocation) when id == 0.
  /// Lock order: tracer mu_ -> recorder mu_ (record() feeds the flight
  /// recorder under the tracer lock; the recorder never calls back in —
  /// FlightRecorder::dump renders outside its own lock for that reason).
  void record(TraceId id, SpanEvent ev, Nanos ts) VPHI_EXCLUDES(mu_);

  /// Drop everything recorded so far (ids remain unique process-wide).
  void clear() VPHI_EXCLUDES(mu_);

  std::size_t request_count() const VPHI_EXCLUDES(mu_);
  std::size_t event_count() const VPHI_EXCLUDES(mu_);

  /// Copy-out of all finished and in-flight request traces (op umbrellas
  /// excluded), in allocation order.
  std::vector<RequestTrace> requests() const VPHI_EXCLUDES(mu_);
  /// Op umbrella spans, in allocation order.
  std::vector<RequestTrace> ops() const VPHI_EXCLUDES(mu_);

  /// Aggregate consecutive-event deltas across all traced requests, ordered
  /// by pipeline position. Within each request, events are sorted by
  /// (ts, pipeline order) first, so cross-thread append races never produce
  /// negative hops.
  std::vector<Hop> hop_breakdown() const VPHI_EXCLUDES(mu_);

  /// Chrome trace-event JSON ("traceEvents" array object): one track per
  /// component, complete ("X") slices per hop, instant events per span
  /// point, op umbrellas on the guest track.
  std::string chrome_trace_json() const VPHI_EXCLUDES(mu_);
  /// Write chrome_trace_json() to `path`; returns false on I/O error.
  bool write_chrome_trace(const std::string& path) const VPHI_EXCLUDES(mu_);

 private:
  struct OpTls;
  friend class TraceOpScope;

  mutable Mutex mu_;
  std::atomic<bool> enabled_{false};
  std::atomic<TraceId> next_id_{1};
  std::vector<RequestTrace> requests_ VPHI_GUARDED_BY(mu_);
  std::vector<RequestTrace> ops_ VPHI_GUARDED_BY(mu_);
  // id -> index maps rebuilt lazily would cost more than they save at the
  // scale of a simulated workload; linear backward scan is fine because
  // records overwhelmingly hit the most recent requests.
  RequestTrace* find_locked(std::vector<RequestTrace>& v, TraceId id)
      VPHI_REQUIRES(mu_);
};

Tracer& tracer();

/// RAII guest-op span: opens at construction (when tracing is enabled),
/// closes at destruction, both stamped from sim::this_actor(). While alive
/// it is the calling thread's "current op" that begin_request() links to.
class TraceOpScope {
 public:
  explicit TraceOpScope(const char* name);
  ~TraceOpScope();

  TraceOpScope(const TraceOpScope&) = delete;
  TraceOpScope& operator=(const TraceOpScope&) = delete;

  TraceId id() const noexcept { return id_; }

 private:
  TraceId id_ = 0;
  TraceId saved_parent_ = 0;
};

}  // namespace vphi::sim
