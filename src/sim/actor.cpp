#include "sim/actor.hpp"

namespace vphi::sim {

namespace {
thread_local Actor* g_bound = nullptr;
std::atomic<Nanos> g_watermark{0};
}  // namespace

Nanos watermark() noexcept {
  return g_watermark.load(std::memory_order_relaxed);
}

namespace detail {
void bump_watermark(Nanos t) noexcept {
  Nanos cur = g_watermark.load(std::memory_order_relaxed);
  while (cur < t && !g_watermark.compare_exchange_weak(
                        cur, t, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

Actor& this_actor() noexcept {
  if (g_bound != nullptr) return *g_bound;
  // A thread with no bound actor joins the simulation *now*, not at
  // power-on: starting the fallback at 0 would let it lag services that
  // already advanced the clock (card boot, prior requests), and a deadline
  // anchored on such a lagging clock cannot see genuine delays smaller
  // than the lag (the watermark hedge in the frontend swallows them).
  thread_local Actor fallback{"detached", Actor::AtNow{}};
  return fallback;
}

bool has_bound_actor() noexcept { return g_bound != nullptr; }

ActorScope::ActorScope(Actor& a) noexcept : previous_(g_bound) { g_bound = &a; }

ActorScope::~ActorScope() { g_bound = previous_; }

}  // namespace vphi::sim
