// Clang Thread Safety Analysis support for the vPHI stack.
//
// Every mutex-guarded structure in the transport and sim core is annotated
// with the macros below so `clang++ -Wthread-safety` (the `VPHI_ANALYZE`
// cmake option) proves at compile time that guarded state is only touched
// with the right lock held, that `*_locked` helpers are only called under
// their lock, and that documented lock orders (EXCLUDES edges) hold. The
// macros expand to Clang's capability attributes under Clang and to nothing
// elsewhere, so gcc builds are byte-identical to the unannotated tree.
//
// Conventions (see docs/STATIC_ANALYSIS.md for the full guide):
//  - every guarded field carries VPHI_GUARDED_BY(mu_) on its declaration;
//  - private helpers named `*_locked` carry VPHI_REQUIRES(mu_);
//  - public entry points that take the lock themselves carry
//    VPHI_EXCLUDES(mu_) when re-entry would self-deadlock;
//  - condition waits use sim::CondVar (condition_variable_any) waiting
//    directly on the annotated sim::Mutex, in an explicit
//    `while (!ready) cv_.wait(mu_);` loop — predicate-lambda waits hide
//    guarded reads from the analysis inside an unannotated closure.
//
// The std::mutex in libstdc++ carries no capability attributes, so the
// stack standardizes on the annotated wrappers below (the same shape
// abseil's Mutex and the kernel's lockdep annotations use).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VPHI_TSA(x) __attribute__((x))
#endif
#endif
#ifndef VPHI_TSA
#define VPHI_TSA(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define VPHI_CAPABILITY(x) VPHI_TSA(capability(x))
/// Marks an RAII type that acquires in its ctor and releases in its dtor.
#define VPHI_SCOPED_CAPABILITY VPHI_TSA(scoped_lockable)
/// Field may only be read/written with `x` held.
#define VPHI_GUARDED_BY(x) VPHI_TSA(guarded_by(x))
/// Pointee may only be dereferenced with `x` held.
#define VPHI_PT_GUARDED_BY(x) VPHI_TSA(pt_guarded_by(x))
/// Function requires the listed capabilities held on entry (and exit).
#define VPHI_REQUIRES(...) VPHI_TSA(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define VPHI_ACQUIRE(...) VPHI_TSA(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define VPHI_RELEASE(...) VPHI_TSA(release_capability(__VA_ARGS__))
/// Function acquires the capabilities when it returns `b`.
#define VPHI_TRY_ACQUIRE(b, ...) VPHI_TSA(try_acquire_capability(b, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock / lock-order
/// guard: an EXCLUDES edge documents "this function takes that lock").
#define VPHI_EXCLUDES(...) VPHI_TSA(locks_excluded(__VA_ARGS__))
/// Declares this lock is always acquired after the listed ones.
#define VPHI_ACQUIRED_AFTER(...) VPHI_TSA(acquired_after(__VA_ARGS__))
/// Declares this lock is always acquired before the listed ones.
#define VPHI_ACQUIRED_BEFORE(...) VPHI_TSA(acquired_before(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define VPHI_RETURN_CAPABILITY(x) VPHI_TSA(lock_returned(x))
/// Escape hatch — the function's locking is intentionally invisible to the
/// analysis (init/teardown paths, deliberate unguarded fast paths). Every
/// use must carry a comment saying why.
#define VPHI_NO_THREAD_SAFETY_ANALYSIS VPHI_TSA(no_thread_safety_analysis)

namespace vphi::sim {

/// std::mutex with capability annotations. Drop-in: satisfies Lockable, so
/// std::unique_lock / condition_variable_any still accept it — but guarded
/// code should prefer MutexLock, which the analysis understands.
class VPHI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VPHI_ACQUIRE() { mu_.lock(); }
  void unlock() VPHI_RELEASE() { mu_.unlock(); }
  bool try_lock() VPHI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (std::lock_guard shape, annotated).
class VPHI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VPHI_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() VPHI_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Deadlock-free two-mutex RAII lock (std::scoped_lock shape): acquires
/// both capabilities via std::lock's ordering algorithm. Used where two
/// sibling objects of the same class must be locked together (endpoint
/// pairing) — there is no static order between same-class instances, so
/// the bodies opt out of analysis while the ACQUIRE/RELEASE contract
/// stays visible to callers.
class VPHI_SCOPED_CAPABILITY MutexLock2 {
 public:
  MutexLock2(Mutex& a, Mutex& b) VPHI_ACQUIRE(a, b)
      VPHI_NO_THREAD_SAFETY_ANALYSIS : a_(a), b_(b) {
    std::lock(a_, b_);
  }
  ~MutexLock2() VPHI_RELEASE() VPHI_NO_THREAD_SAFETY_ANALYSIS {
    a_.unlock();
    b_.unlock();
  }

  MutexLock2(const MutexLock2&) = delete;
  MutexLock2& operator=(const MutexLock2&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

/// Condition variable usable with the annotated Mutex. Waits are written
///   MutexLock lock(mu_);
///   while (!ready_) cv_.wait(mu_);
/// The analysis treats the capability as held across the wait (the
/// standard TSA fiction — the wait re-acquires before returning, so every
/// guarded access in the loop body really is protected).
using CondVar = std::condition_variable_any;

}  // namespace vphi::sim
