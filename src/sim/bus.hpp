// Bus arbitration in simulated time.
//
// Concurrent DMA from multiple requesters (several VMs, host processes, the
// card) shares one PCIe link. The arbiter linearizes transfer *occupancy* on
// the simulated timeline: a transfer asks for the bus no earlier than the
// requester's own `ready` time and holds it for `duration`; the grant start
// is max(ready, time the bus frees up). Queueing under contention therefore
// emerges naturally — two VMs each see roughly half the link.
#pragma once

#include <cstdint>

#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace vphi::sim {

class BusArbiter {
 public:
  struct Grant {
    Nanos start;  ///< simulated time the transfer began moving
    Nanos end;    ///< simulated completion time
  };

  /// Reserve the bus for `duration` ns, not before `ready`.
  Grant acquire(Nanos ready, Nanos duration) VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const Nanos start = free_at_ > ready ? free_at_ : ready;
    const Nanos end = start + duration;
    free_at_ = end;
    busy_total_ += duration;
    ++grants_;
    return {start, end};
  }

  /// Earliest time a new transfer could start.
  Nanos free_at() const VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return free_at_;
  }

  /// Total simulated busy time granted so far (utilization accounting).
  Nanos busy_total() const VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return busy_total_;
  }

  std::uint64_t grants() const VPHI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return grants_;
  }

 private:
  mutable Mutex mu_;
  Nanos free_at_ VPHI_GUARDED_BY(mu_) = 0;
  Nanos busy_total_ VPHI_GUARDED_BY(mu_) = 0;
  std::uint64_t grants_ VPHI_GUARDED_BY(mu_) = 0;
};

}  // namespace vphi::sim
