// Process-wide metrics registry for the vPHI stack.
//
// Components own their instruments (a Counter is a struct member exactly
// where the old raw std::uint64_t field sat), but every instrument
// self-registers under a stable name on construction and unregisters on
// destruction. The registry can therefore snapshot the whole stack at any
// moment — frontend, backend, ring, fault injector, hypervisor — without
// the scattered per-struct accessors the bench/tooling side used to scrape
// by hand. Same-named instruments from different instances (one Virtqueue
// per VM, say) are summed in the snapshot, while each instance's own
// accessor keeps its exact per-instance semantics.
//
// Labels add a tenant dimension on top of that: an instrument constructed
// with a label ("vm=vm0") still contributes to the aggregate under its
// base name — so existing names, sums and tests are untouched — and
// *additionally* shows up in the labeled breakdown maps. Because the
// labeled and aggregate views read the very same atomics, a per-label sum
// over one name always equals the aggregate exactly; there is no second
// accounting path to drift.
//
// The full catalogue of registered names, their units and their owning
// component lives in docs/OBSERVABILITY.md; treat those names as a stable
// interface (benchmark JSON embeds them).
//
// Env knob: VPHI_METRICS=<path> writes the JSON snapshot to <path> at
// process exit ("-" or "stderr" for stderr). Unset = no dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace vphi::sim::metrics {

/// Monotonic counter (u64, relaxed atomics; overflow is the caller's
/// problem at ~10^19 events).
class Counter {
 public:
  explicit Counter(std::string name, std::string label = {});
  ~Counter();

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  /// For counter owners with an explicit reset surface (fault injector).
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

  const std::string& name() const noexcept { return name_; }
  /// Tenant dimension ("vm=vm0"); empty = aggregate-only instrument.
  const std::string& label() const noexcept { return label_; }

 private:
  std::string name_;
  std::string label_;
  std::atomic<std::uint64_t> v_{0};
};

/// Signed point-in-time value (queue depths, parked buffers).
class Gauge {
 public:
  explicit Gauge(std::string name, std::string label = {});
  ~Gauge();

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }
  const std::string& label() const noexcept { return label_; }

 private:
  std::string name_;
  std::string label_;
  std::atomic<std::int64_t> v_{0};
};

/// Latency distribution: a mutex-guarded sim::Histogram under a registered
/// name. record() is off the simulated clock (observability never charges
/// the workload).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::string name, std::string label = {});
  ~LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(Nanos v) noexcept VPHI_EXCLUDES(mu_);
  /// Copy-out for percentile queries without holding the lock.
  Histogram snapshot() const VPHI_EXCLUDES(mu_);

  const std::string& name() const noexcept { return name_; }
  const std::string& label() const noexcept { return label_; }

 private:
  std::string name_;
  std::string label_;
  mutable Mutex mu_;
  Histogram h_ VPHI_GUARDED_BY(mu_);
};

/// The process-global registry every instrument registers with.
class Registry {
 public:
  void add(Counter* c) VPHI_EXCLUDES(mu_);
  void remove(Counter* c) VPHI_EXCLUDES(mu_);
  void add(Gauge* g) VPHI_EXCLUDES(mu_);
  void remove(Gauge* g) VPHI_EXCLUDES(mu_);
  void add(LatencyHistogram* h) VPHI_EXCLUDES(mu_);
  // Lock order: registry mu_ -> histogram mu_ (remove and the snapshot
  // readers call h->snapshot() under the registry lock; nothing under a
  // histogram lock ever reaches the registry, so the order is acyclic).
  void remove(LatencyHistogram* h) VPHI_EXCLUDES(mu_);

  /// Deterministic JSON snapshot: one object with "counters", "gauges" and
  /// "histograms" maps (aggregates over every instance, labeled or not,
  /// keys sorted, same-named live instruments summed / histograms merged),
  /// plus "labeled_counters" / "labeled_gauges" / "labeled_histograms"
  /// maps keyed "name{label}" holding the per-tenant breakdown of labeled
  /// instruments. Values reflect the instant of the call. All keys are
  /// JSON-escaped.
  std::string snapshot_json() const VPHI_EXCLUDES(mu_);

  /// Sorted, de-duplicated names of every instrument ever seen (live or
  /// retired).
  std::vector<std::string> metric_names() const VPHI_EXCLUDES(mu_);

  /// Current total for a counter name: live instruments summed plus the
  /// retired aggregate, labeled instances included. 0 for unknown names.
  std::uint64_t counter_value(const std::string& name) const
      VPHI_EXCLUDES(mu_);

  /// One labeled slice of a counter name (live + retired). 0 when the
  /// (name, label) pair was never registered.
  std::uint64_t labeled_counter_value(const std::string& name,
                                      const std::string& label) const
      VPHI_EXCLUDES(mu_);

  /// Per-label breakdown of a counter name: label -> total (live +
  /// retired). Only labeled instruments contribute; summing the values
  /// gives the counter_value() aggregate when every instance is labeled.
  std::map<std::string, std::uint64_t> counter_by_label(
      const std::string& name) const VPHI_EXCLUDES(mu_);
  /// Same for gauges.
  std::map<std::string, std::int64_t> gauge_by_label(
      const std::string& name) const VPHI_EXCLUDES(mu_);
  /// Same for latency histograms (merged per label).
  std::map<std::string, Histogram> histogram_by_label(
      const std::string& name) const VPHI_EXCLUDES(mu_);

  /// Merged distribution for a histogram name across every instance (live
  /// + retired, labeled or not).
  Histogram histogram_value(const std::string& name) const VPHI_EXCLUDES(mu_);

  /// Live instruments only.
  std::size_t instrument_count() const VPHI_EXCLUDES(mu_);

  /// Test/tooling hook: drop the retired aggregates and zero every live
  /// counter and gauge, so two identical runs produce identical snapshots.
  /// Component-local accessors observe the zeroing — call this only between
  /// workloads, never during one.
  void reset() VPHI_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<Counter*> counters_ VPHI_GUARDED_BY(mu_);
  std::vector<Gauge*> gauges_ VPHI_GUARDED_BY(mu_);
  std::vector<LatencyHistogram*> histograms_ VPHI_GUARDED_BY(mu_);
  // Final values of destroyed instruments, folded in by name so snapshots
  // taken after a Testbed tears down (bench JSON writers, the VPHI_METRICS
  // exit dump) still cover the whole run. Labeled instruments fold into
  // both the aggregate map and the name -> label -> value breakdown.
  std::map<std::string, std::uint64_t> retired_counters_
      VPHI_GUARDED_BY(mu_);
  std::map<std::string, std::int64_t> retired_gauges_ VPHI_GUARDED_BY(mu_);
  std::map<std::string, Histogram> retired_histograms_ VPHI_GUARDED_BY(mu_);
  std::map<std::string, std::map<std::string, std::uint64_t>>
      retired_labeled_counters_ VPHI_GUARDED_BY(mu_);
  std::map<std::string, std::map<std::string, std::int64_t>>
      retired_labeled_gauges_ VPHI_GUARDED_BY(mu_);
  std::map<std::string, std::map<std::string, Histogram>>
      retired_labeled_histograms_ VPHI_GUARDED_BY(mu_);
};

Registry& registry();

}  // namespace vphi::sim::metrics
