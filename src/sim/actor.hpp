// Actors: per-thread logical clocks.
//
// Every thread participating in the simulation (a guest application thread,
// the QEMU event loop, a backend worker, the card-side COI daemon, ...) owns
// an Actor. An Actor's `now()` advances when the thread performs modeled work
// (`advance`) and merges forward when the thread observes an event produced
// by another actor (`sync_to`): receiving bytes, being woken by an interrupt,
// a DMA completing. Wall-clock time never enters the model.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace vphi::sim {

/// The latest simulated time any actor in this process has reached. New
/// actors that represent work starting "now" (benchmark clients, freshly
/// spawned application threads) should be constructed at the watermark —
/// an actor starting at 0 would otherwise observe the entire history of
/// already-running services (card boot, prior requests) as waiting time
/// the first time it synchronizes with them.
Nanos watermark() noexcept;

namespace detail {
void bump_watermark(Nanos t) noexcept;
}  // namespace detail

class Actor {
 public:
  explicit Actor(std::string name = "actor", Nanos start = 0)
      : name_(std::move(name)), now_(start) {}

  /// Tag type: construct an actor whose timeline begins at the watermark.
  struct AtNow {};
  Actor(std::string name, AtNow) : Actor(std::move(name), watermark()) {}

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  /// Current simulated time on this actor's timeline.
  Nanos now() const noexcept { return now_.load(std::memory_order_relaxed); }

  /// Charge `d` nanoseconds of local work. Returns the new now().
  Nanos advance(Nanos d) noexcept {
    const Nanos result = now_.fetch_add(d, std::memory_order_relaxed) + d;
    detail::bump_watermark(result);
    return result;
  }

  /// Merge with an externally observed timestamp: now = max(now, t).
  /// Returns the new now(). Used when consuming a message/interrupt that
  /// became visible at simulated time `t`.
  Nanos sync_to(Nanos t) noexcept {
    Nanos cur = now_.load(std::memory_order_relaxed);
    while (cur < t &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
    const Nanos result = now_.load(std::memory_order_relaxed);
    detail::bump_watermark(result);
    return result;
  }

  /// sync_to(t) then advance(extra): observe an event and pay a cost.
  Nanos sync_and_advance(Nanos t, Nanos extra) noexcept {
    sync_to(t);
    return advance(extra);
  }

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<Nanos> now_;
};

/// The actor bound to the calling thread. If none has been bound with
/// ActorScope, a thread-local default actor (named "detached") is created on
/// first use so library code can always charge time.
Actor& this_actor() noexcept;

/// True iff an ActorScope is active on this thread.
bool has_bound_actor() noexcept;

/// RAII binding of an Actor to the current thread. Scopes nest; the innermost
/// binding wins. The Actor must outlive the scope.
class ActorScope {
 public:
  explicit ActorScope(Actor& a) noexcept;
  ~ActorScope();

  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  Actor* previous_;
};

}  // namespace vphi::sim
