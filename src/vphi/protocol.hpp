// The vPHI wire protocol between the guest frontend driver and the QEMU
// backend device.
//
// Each SCIF operation intercepted in the guest becomes one request chain on
// the virtio ring:
//
//   [out] RequestHeader            (device-readable)
//   [out] request payload          (optional: send data, poll set, ...)
//   [in]  ResponseHeader           (device-writable)
//   [in]  response payload         (optional: recv data, card info, ...)
//
// Headers are fixed-size PODs; payloads ride in kmalloc'd bounce buffers
// capped at KMALLOC_MAX_SIZE, which is why large transfers are chunked
// (Sec. III, "Implementation details"). RMA operations carry no payload:
// only the command crosses the ring, the data moves by host DMA directly
// to/from the pinned guest pages.
#pragma once

#include <cstdint>

#include "sim/status.hpp"

namespace vphi::core {

/// One opcode per intercepted SCIF entry point (the ioctl command set of
/// /dev/mic/scif, plus the sysfs-info forwarding the MPSS tools need).
enum class Op : std::uint32_t {
  kOpen = 1,
  kClose,
  kBind,
  kListen,
  kConnect,
  kAccept,
  kSend,
  kRecv,
  kRegister,
  kUnregister,
  kReadfrom,
  kWriteto,
  kVreadfrom,
  kVwriteto,
  kMmap,
  kMunmap,
  kFenceMark,
  kFenceWait,
  kFenceSignal,
  kPoll,
  kGetNodeIds,
  kCardInfo,
};

const char* op_name(Op op) noexcept;

struct RequestHeader {
  Op op = Op::kOpen;
  std::int32_t epd = -1;
  /// Generic argument slots; meaning is per-op (offsets, lengths, ports,
  /// node ids, protection bits...). Documented at each use site.
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
  std::uint64_t arg3 = 0;
  std::int32_t flags = 0;
  std::uint32_t payload_len = 0;  ///< bytes in the out-payload segment
};

struct ResponseHeader {
  std::int64_t ret0 = 0;    ///< per-op primary result (epd, port, offset, ...)
  std::int64_t ret1 = 0;    ///< per-op secondary result
  std::int32_t status = 0;  ///< sim::Status as int
  std::uint32_t payload_len = 0;  ///< bytes the device wrote to the in-payload
};

inline sim::Status response_status(const ResponseHeader& r) noexcept {
  return static_cast<sim::Status>(r.status);
}
inline void set_status(ResponseHeader& r, sim::Status s) noexcept {
  r.status = static_cast<std::int32_t>(s);
}

static_assert(sizeof(RequestHeader) == 48, "keep the wire format stable");
static_assert(sizeof(ResponseHeader) == 24, "keep the wire format stable");

}  // namespace vphi::core
