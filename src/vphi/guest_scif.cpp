#include "vphi/guest_scif.hpp"

#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "mic/sysfs.hpp"
#include "sim/actor.hpp"
#include "sim/trace.hpp"

namespace vphi::core {

namespace {
constexpr std::size_t kCacheLine = 64;
}

GuestScifProvider::GuestScifProvider(FrontendDriver& frontend)
    : frontend_(&frontend) {}

GuestScifProvider::~GuestScifProvider() = default;

sim::Expected<FrontendDriver::TransactResult> GuestScifProvider::call(
    const FrontendDriver::TransactArgs& args) {
  // Umbrella span for the whole SCIF call; the ring-level request(s) issued
  // by transact() parent to it (retries included), so a trace viewer groups
  // the op with every wire crossing it caused.
  sim::TraceOpScope op_scope(op_name(args.header.op));
  return frontend_->transact(sim::this_actor(), args);
}

GuestScifProvider::PipelineResult GuestScifProvider::run_pipeline(
    std::size_t total_len, std::size_t chunk, bool count_ret0,
    const std::function<FrontendDriver::TransactArgs(std::size_t,
                                                     std::size_t)>&
        make_args) {
  PipelineResult out;
  auto& actor = sim::this_actor();
  // One umbrella span covers the entire chunk walk; every chunk request
  // parents to it. make_args is a pure constructor, so peeking at chunk 0
  // for the op name is side-effect free.
  sim::TraceOpScope op_scope(
      total_len > 0
          ? op_name(make_args(0, std::min(total_len, chunk)).header.op)
          : "pipeline");
  const std::size_t window =
      std::max<std::size_t>(1, frontend_->config().pipeline_window);

  struct InFlight {
    FrontendDriver::Token token;
    std::size_t len = 0;
  };
  std::deque<InFlight> inflight;
  std::size_t next_offset = 0;
  bool stop = false;  // submission closed (failure or short completion)

  while ((!stop && next_offset < total_len) || !inflight.empty()) {
    // Fill the window: submit ahead without waiting.
    while (!stop && next_offset < total_len && inflight.size() < window) {
      const std::size_t n = std::min(total_len - next_offset, chunk);
      auto token = frontend_->submit(actor, make_args(next_offset, n));
      if (!token) {
        out.error = token.status();
        stop = true;
        break;
      }
      inflight.push_back({*token, n});
      next_offset += n;
    }
    if (inflight.empty()) break;

    // Reap strictly oldest-first: the completed prefix is only meaningful
    // in submission order.
    const InFlight f = inflight.front();
    inflight.pop_front();
    auto r = frontend_->wait(actor, f.token);
    if (stop) continue;  // draining a straggler past the stop point
    if (!r) {
      out.error = r.status();
      stop = true;
      continue;
    }
    const sim::Status st = response_status(r->response);
    if (!sim::ok(st)) {
      out.error = st;
      stop = true;
      continue;
    }
    if (count_ret0) {
      // ret0 = bytes the device moved; outside [0, chunk] is a protocol
      // violation (counting it would make the prefix lie to the caller).
      const std::int64_t ret0 = r->response.ret0;
      if (ret0 < 0 || static_cast<std::uint64_t>(ret0) > f.len) {
        out.error = sim::Status::kIoError;
        stop = true;
        continue;
      }
      out.bytes += static_cast<std::size_t>(ret0);
      if (static_cast<std::size_t>(ret0) < f.len) {
        // Legitimate short completion (EOF/peer reset): the walk ends at
        // the in-order prefix; chunks already in flight beyond it are
        // drained above and discarded.
        out.short_stop = true;
        stop = true;
      }
    } else {
      out.bytes += f.len;
    }
  }
  return out;
}

sim::Expected<std::uint64_t> GuestScifProvider::pin_user_range(
    void* addr, std::size_t len) {
  auto& kernel = frontend_->vm().kernel();
  auto gpa = kernel.ram().gpa_of(addr);
  if (!gpa) return gpa.status();
  const auto pinned = kernel.pin_pages(sim::this_actor(), *gpa, len);
  if (!sim::ok(pinned)) return pinned;
  return *gpa;
}

sim::Expected<int> GuestScifProvider::open() {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kOpen;
  auto r = call(args);
  if (!r) return r.status();
  if (!sim::ok(response_status(r->response))) {
    return response_status(r->response);
  }
  return static_cast<int>(r->response.ret0);
}

sim::Status GuestScifProvider::close(int epd) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kClose;
  args.header.epd = epd;
  auto r = call(args);
  if (!r) return r.status();
  return response_status(r->response);
}

sim::Expected<scif::Port> GuestScifProvider::bind(int epd, scif::Port pn) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kBind;
  args.header.epd = epd;
  args.header.arg0 = pn;
  auto r = call(args);
  if (!r) return r.status();
  if (!sim::ok(response_status(r->response))) {
    return response_status(r->response);
  }
  return static_cast<scif::Port>(r->response.ret0);
}

sim::Status GuestScifProvider::listen(int epd, int backlog) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kListen;
  args.header.epd = epd;
  args.header.arg0 = static_cast<std::uint64_t>(backlog);
  auto r = call(args);
  if (!r) return r.status();
  return response_status(r->response);
}

sim::Status GuestScifProvider::connect(int epd, scif::PortId dst) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kConnect;
  args.header.epd = epd;
  args.header.arg0 = dst.node;
  args.header.arg1 = dst.port;
  auto r = call(args);
  if (!r) return r.status();
  return response_status(r->response);
}

sim::Expected<scif::AcceptResult> GuestScifProvider::accept(int epd,
                                                            int flags) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kAccept;
  args.header.epd = epd;
  args.header.flags = flags;
  auto r = call(args);
  if (!r) return r.status();
  if (!sim::ok(response_status(r->response))) {
    return response_status(r->response);
  }
  scif::AcceptResult result;
  result.epd = static_cast<int>(r->response.ret0);
  result.peer.node = static_cast<scif::NodeId>(r->response.ret1 >> 16);
  result.peer.port = static_cast<scif::Port>(r->response.ret1 & 0xFFFF);
  return result;
}

sim::Expected<std::size_t> GuestScifProvider::send(int epd, const void* msg,
                                                   std::size_t len,
                                                   int flags) {
  // Chunk at KMALLOC_MAX_SIZE: "if the requested data size is greater than
  // this value, we implement the data transfer breaking up the allocation
  // to KMALLOC_MAX_SIZE elements and proceed with each one of them."
  const auto* bytes = static_cast<const std::byte*>(msg);
  // Pipelining is only sound for blocking sends: a non-blocking chunk may
  // legitimately accept fewer bytes than posted mid-stream, and chunks
  // already in flight past that point would have sent out-of-order data.
  if (len > 0 && frontend_->config().pipeline_window > 1 &&
      (flags & scif::SCIF_SEND_BLOCK) != 0) {
    auto pr = run_pipeline(
        len, frontend_->chunk_size(), /*count_ret0=*/true,
        [&](std::size_t off, std::size_t n) {
          FrontendDriver::TransactArgs args;
          args.header.op = Op::kSend;
          args.header.epd = epd;
          args.header.flags = flags;
          args.out_payload = bytes + off;
          args.out_len = n;
          return args;
        });
    if (pr.bytes > 0 || sim::ok(pr.error)) return pr.bytes;
    return pr.error;
  }
  std::size_t sent_total = 0;
  while (sent_total < len || len == 0) {
    const std::size_t chunk =
        std::min(len - sent_total, frontend_->chunk_size());
    FrontendDriver::TransactArgs args;
    args.header.op = Op::kSend;
    args.header.epd = epd;
    args.header.flags = flags;
    args.out_payload = bytes + sent_total;
    args.out_len = chunk;
    auto r = call(args);
    if (!r) {
      // Transport-level failure mid-walk: bytes up to here were consumed
      // by the device, so report the partial count like the real API.
      if (sent_total > 0) return sent_total;
      return r.status();
    }
    if (!sim::ok(response_status(r->response))) {
      if (sent_total > 0) return sent_total;  // partial like the real API
      return response_status(r->response);
    }
    // ret0 = bytes the device consumed; a value outside [0, chunk] is a
    // protocol violation (adding it unclamped would make sent_total lie to
    // the caller and under/overflow the chunk walk).
    const std::int64_t ret0 = r->response.ret0;
    if (ret0 < 0 || static_cast<std::uint64_t>(ret0) > chunk) {
      if (sent_total > 0) return sent_total;
      return sim::Status::kIoError;
    }
    sent_total += static_cast<std::size_t>(ret0);
    if (static_cast<std::size_t>(ret0) < chunk) break;
    if (len == 0) break;
  }
  return sent_total;
}

sim::Expected<std::size_t> GuestScifProvider::recv(int epd, void* msg,
                                                   std::size_t len,
                                                   int flags) {
  auto* bytes = static_cast<std::byte*>(msg);
  // Same gating as send(): a blocking recv only returns short at EOF/peer
  // reset, so the pipelined walk's in-order completed prefix is exactly
  // what a serial walk would have delivered.
  if (len > 0 && frontend_->config().pipeline_window > 1 &&
      (flags & scif::SCIF_RECV_BLOCK) != 0) {
    auto pr = run_pipeline(
        len, frontend_->chunk_size(), /*count_ret0=*/true,
        [&](std::size_t off, std::size_t n) {
          FrontendDriver::TransactArgs args;
          args.header.op = Op::kRecv;
          args.header.epd = epd;
          args.header.flags = flags;
          args.header.arg0 = n;
          args.in_payload = bytes + off;
          args.in_len = n;
          return args;
        });
    if (pr.bytes > 0 || sim::ok(pr.error)) return pr.bytes;
    return pr.error;
  }
  std::size_t got_total = 0;
  while (got_total < len || len == 0) {
    const std::size_t chunk =
        std::min(len - got_total, frontend_->chunk_size());
    FrontendDriver::TransactArgs args;
    args.header.op = Op::kRecv;
    args.header.epd = epd;
    args.header.flags = flags;
    args.header.arg0 = chunk;
    args.in_payload = bytes + got_total;
    args.in_len = chunk;
    auto r = call(args);
    if (!r) {
      // Transport-level failure mid-walk: earlier chunks already landed in
      // the caller's buffer — report the partial count, not the error.
      if (got_total > 0) return got_total;
      return r.status();
    }
    if (!sim::ok(response_status(r->response))) {
      if (got_total > 0) return got_total;
      return response_status(r->response);
    }
    // ret0 = bytes the device produced; beyond the chunk it claims data the
    // bounce buffer never held, so the copy-back would be garbage.
    const std::int64_t ret0 = r->response.ret0;
    if (ret0 < 0 || static_cast<std::uint64_t>(ret0) > chunk) {
      if (got_total > 0) return got_total;
      return sim::Status::kIoError;
    }
    got_total += static_cast<std::size_t>(ret0);
    if (static_cast<std::size_t>(ret0) < chunk) break;
    if (len == 0) break;
  }
  return got_total;
}

sim::Expected<scif::RegOffset> GuestScifProvider::register_mem(
    int epd, void* addr, std::size_t len, scif::RegOffset offset, int prot,
    int flags) {
  // Pin the guest pages first — an unpinned page that got swapped out
  // would feed stale data to remote reads (Sec. III).
  auto gpa = pin_user_range(addr, len);
  if (!gpa) return gpa.status();

  FrontendDriver::TransactArgs args;
  args.header.op = Op::kRegister;
  args.header.epd = epd;
  args.header.arg0 = *gpa;
  args.header.arg1 = len;
  args.header.arg2 = static_cast<std::uint64_t>(offset);
  args.header.arg3 = static_cast<std::uint64_t>(prot);
  args.header.flags = flags;
  auto r = call(args);
  if (!r || !sim::ok(response_status(r->response))) {
    frontend_->vm().kernel().unpin_pages(*gpa, len);
    return r ? response_status(r->response) : r.status();
  }
  const auto reg_off = static_cast<scif::RegOffset>(r->response.ret0);
  sim::MutexLock lock(mu_);
  registered_[{epd, reg_off}] = {*gpa, len};
  return reg_off;
}

sim::Status GuestScifProvider::unregister_mem(int epd, scif::RegOffset offset,
                                              std::size_t len) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kUnregister;
  args.header.epd = epd;
  args.header.arg0 = static_cast<std::uint64_t>(offset);
  args.header.arg1 = len;
  auto r = call(args);
  if (!r) return r.status();
  const auto status = response_status(r->response);
  if (sim::ok(status)) {
    sim::MutexLock lock(mu_);
    auto it = registered_.find({epd, offset});
    if (it != registered_.end()) {
      frontend_->vm().kernel().unpin_pages(it->second.first,
                                           it->second.second);
      registered_.erase(it);
    }
  }
  return status;
}

sim::Status GuestScifProvider::readfrom(int epd, scif::RegOffset loffset,
                                        std::size_t len,
                                        scif::RegOffset roffset, int flags) {
  // RMA carries no ring payload: each command crosses the ring, the data
  // DMAs directly into the pinned guest window. Transfers larger than
  // FrontendConfig::rma_chunk issue one command per chunk — the walk the
  // pipelined window overlaps.
  const std::size_t chunk =
      std::max<std::size_t>(1, frontend_->config().rma_chunk);
  if (len <= chunk) {
    FrontendDriver::TransactArgs args;
    args.header.op = Op::kReadfrom;
    args.header.epd = epd;
    args.header.arg0 = static_cast<std::uint64_t>(loffset);
    args.header.arg1 = len;
    args.header.arg2 = static_cast<std::uint64_t>(roffset);
    args.header.flags = flags;
    auto r = call(args);
    if (!r) return r.status();
    return response_status(r->response);
  }
  auto pr = run_pipeline(
      len, chunk, /*count_ret0=*/false,
      [&](std::size_t off, std::size_t n) {
        FrontendDriver::TransactArgs args;
        args.header.op = Op::kReadfrom;
        args.header.epd = epd;
        args.header.arg0 = static_cast<std::uint64_t>(loffset) + off;
        args.header.arg1 = n;
        args.header.arg2 = static_cast<std::uint64_t>(roffset) + off;
        args.header.flags = flags;
        return args;
      });
  return pr.error;
}

sim::Status GuestScifProvider::writeto(int epd, scif::RegOffset loffset,
                                       std::size_t len, scif::RegOffset roffset,
                                       int flags) {
  const std::size_t chunk =
      std::max<std::size_t>(1, frontend_->config().rma_chunk);
  if (len <= chunk) {
    FrontendDriver::TransactArgs args;
    args.header.op = Op::kWriteto;
    args.header.epd = epd;
    args.header.arg0 = static_cast<std::uint64_t>(loffset);
    args.header.arg1 = len;
    args.header.arg2 = static_cast<std::uint64_t>(roffset);
    args.header.flags = flags;
    auto r = call(args);
    if (!r) return r.status();
    return response_status(r->response);
  }
  auto pr = run_pipeline(
      len, chunk, /*count_ret0=*/false,
      [&](std::size_t off, std::size_t n) {
        FrontendDriver::TransactArgs args;
        args.header.op = Op::kWriteto;
        args.header.epd = epd;
        args.header.arg0 = static_cast<std::uint64_t>(loffset) + off;
        args.header.arg1 = n;
        args.header.arg2 = static_cast<std::uint64_t>(roffset) + off;
        args.header.flags = flags;
        return args;
      });
  return pr.error;
}

sim::Status GuestScifProvider::vreadfrom(int epd, void* addr, std::size_t len,
                                         scif::RegOffset roffset, int flags) {
  auto gpa = pin_user_range(addr, len);
  if (!gpa) return gpa.status();
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kVreadfrom;
  args.header.epd = epd;
  args.header.arg0 = *gpa;
  args.header.arg1 = len;
  args.header.arg2 = static_cast<std::uint64_t>(roffset);
  args.header.flags = flags;
  auto r = call(args);
  frontend_->vm().kernel().unpin_pages(*gpa, len);
  if (!r) return r.status();
  return response_status(r->response);
}

sim::Status GuestScifProvider::vwriteto(int epd, void* addr, std::size_t len,
                                        scif::RegOffset roffset, int flags) {
  auto gpa = pin_user_range(addr, len);
  if (!gpa) return gpa.status();
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kVwriteto;
  args.header.epd = epd;
  args.header.arg0 = *gpa;
  args.header.arg1 = len;
  args.header.arg2 = static_cast<std::uint64_t>(roffset);
  args.header.flags = flags;
  auto r = call(args);
  frontend_->vm().kernel().unpin_pages(*gpa, len);
  if (!r) return r.status();
  return response_status(r->response);
}

sim::Expected<scif::Mapping> GuestScifProvider::mmap(int epd,
                                                     scif::RegOffset roffset,
                                                     std::size_t len,
                                                     int prot) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kMmap;
  args.header.epd = epd;
  args.header.arg0 = static_cast<std::uint64_t>(roffset);
  args.header.arg1 = len;
  args.header.arg2 = static_cast<std::uint64_t>(prot);
  auto r = call(args);
  if (!r) return r.status();
  if (!sim::ok(response_status(r->response))) {
    return response_status(r->response);
  }
  const auto backend_cookie = static_cast<std::uint64_t>(r->response.ret0);
  auto* device_base = reinterpret_cast<std::byte*>(
      static_cast<std::uintptr_t>(r->response.ret1));

  // Two-level mapping: allocate a guest-virtual range, tag the vma with
  // VM_PFNPHI and the device frame so KVM faults resolve correctly.
  std::uint64_t gva;
  std::uint64_t cookie;
  {
    sim::MutexLock lock(mu_);
    gva = next_gva_;
    next_gva_ += (len + hv::GuestPhysMem::kPageSize - 1) /
                 hv::GuestPhysMem::kPageSize * hv::GuestPhysMem::kPageSize;
    cookie = next_cookie_++;
    mappings_[cookie] = GuestMapping{backend_cookie, gva, len};
  }
  const auto added = frontend_->vm().kernel().vmas().add(
      hv::Vma{gva, len, hv::VM_PFNPHI, device_base});
  if (!sim::ok(added)) return added;

  scif::Mapping mapping;
  mapping.data = device_base;  // raw alias for tests; guest access goes
                               // through map_read/map_write (the MMU path)
  mapping.len = len;
  mapping.roffset = roffset;
  mapping.cookie = cookie;
  return mapping;
}

sim::Status GuestScifProvider::munmap(scif::Mapping& mapping) {
  GuestMapping gm;
  {
    sim::MutexLock lock(mu_);
    auto it = mappings_.find(mapping.cookie);
    if (it == mappings_.end()) return sim::Status::kInvalidArgument;
    gm = it->second;
    mappings_.erase(it);
  }
  frontend_->vm().mmu().invalidate(gm.gva, gm.len);
  frontend_->vm().kernel().vmas().remove(gm.gva);

  FrontendDriver::TransactArgs args;
  args.header.op = Op::kMunmap;
  args.header.arg0 = gm.backend_cookie;
  auto r = call(args);
  mapping = scif::Mapping{};
  if (!r) return r.status();
  return response_status(r->response);
}

sim::Status GuestScifProvider::map_read(const scif::Mapping& mapping,
                                        std::size_t off, void* dst,
                                        std::size_t n) {
  GuestMapping gm;
  {
    sim::MutexLock lock(mu_);
    auto it = mappings_.find(mapping.cookie);
    if (it == mappings_.end()) return sim::Status::kInvalidArgument;
    gm = it->second;
  }
  if (off + n > gm.len) return sim::Status::kOutOfRange;
  auto& actor = sim::this_actor();
  // A guest dereference: page faults resolve through the modified KVM MMU
  // (VM_PFNPHI), then each cacheline is an uncached access to device memory.
  auto ptr = frontend_->vm().mmu().access(actor, gm.gva + off, n);
  if (!ptr) return ptr.status();
  const std::size_t lines = (n + kCacheLine - 1) / kCacheLine;
  actor.advance(static_cast<sim::Nanos>(lines) *
                frontend_->vm().model().mmio_access_ns);
  std::memcpy(dst, *ptr, n);
  return sim::Status::kOk;
}

sim::Status GuestScifProvider::map_write(const scif::Mapping& mapping,
                                         std::size_t off, const void* src,
                                         std::size_t n) {
  GuestMapping gm;
  {
    sim::MutexLock lock(mu_);
    auto it = mappings_.find(mapping.cookie);
    if (it == mappings_.end()) return sim::Status::kInvalidArgument;
    gm = it->second;
  }
  if (off + n > gm.len) return sim::Status::kOutOfRange;
  auto& actor = sim::this_actor();
  auto ptr = frontend_->vm().mmu().access(actor, gm.gva + off, n);
  if (!ptr) return ptr.status();
  const std::size_t lines = (n + kCacheLine - 1) / kCacheLine;
  actor.advance(static_cast<sim::Nanos>(lines) *
                frontend_->vm().model().mmio_access_ns);
  std::memcpy(*ptr, src, n);
  return sim::Status::kOk;
}

sim::Expected<int> GuestScifProvider::fence_mark(int epd, int flags) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kFenceMark;
  args.header.epd = epd;
  args.header.flags = flags;
  auto r = call(args);
  if (!r) return r.status();
  if (!sim::ok(response_status(r->response))) {
    return response_status(r->response);
  }
  return static_cast<int>(r->response.ret0);
}

sim::Status GuestScifProvider::fence_wait(int epd, int mark) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kFenceWait;
  args.header.epd = epd;
  args.header.arg0 = static_cast<std::uint64_t>(mark);
  auto r = call(args);
  if (!r) return r.status();
  return response_status(r->response);
}

sim::Status GuestScifProvider::fence_signal(int epd, scif::RegOffset loff,
                                            std::uint64_t lval,
                                            scif::RegOffset roff,
                                            std::uint64_t rval, int flags) {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kFenceSignal;
  args.header.epd = epd;
  args.header.arg0 = static_cast<std::uint64_t>(loff);
  args.header.arg1 = lval;
  args.header.arg2 = static_cast<std::uint64_t>(roff);
  args.header.arg3 = rval;
  args.header.flags = flags;
  auto r = call(args);
  if (!r) return r.status();
  return response_status(r->response);
}

sim::Expected<int> GuestScifProvider::poll(scif::PollEpd* epds, int nepds,
                                           int timeout_ms) {
  if (epds == nullptr || nepds <= 0) return sim::Status::kInvalidArgument;
  const std::size_t bytes =
      sizeof(scif::PollEpd) * static_cast<std::size_t>(nepds);
  std::vector<scif::PollEpd> shuttle(epds, epds + nepds);
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kPoll;
  args.header.arg0 = static_cast<std::uint64_t>(nepds);
  args.header.arg1 = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(timeout_ms));
  args.out_payload = shuttle.data();
  args.out_len = bytes;
  args.in_payload = shuttle.data();
  args.in_len = bytes;
  auto r = call(args);
  if (!r) return r.status();
  if (!sim::ok(response_status(r->response))) {
    return response_status(r->response);
  }
  std::memcpy(epds, shuttle.data(), bytes);
  return static_cast<int>(r->response.ret0);
}

sim::Expected<scif::NodeIds> GuestScifProvider::get_node_ids() {
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kGetNodeIds;
  auto r = call(args);
  if (!r) return r.status();
  if (!sim::ok(response_status(r->response))) {
    return response_status(r->response);
  }
  return scif::NodeIds{static_cast<std::uint16_t>(r->response.ret0),
                       static_cast<scif::NodeId>(r->response.ret1)};
}

sim::Expected<mic::SysfsInfo> GuestScifProvider::card_info(
    std::uint32_t index) {
  std::vector<char> blob(8'192);
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kCardInfo;
  args.header.arg0 = index;
  args.in_payload = blob.data();
  args.in_len = blob.size();
  auto r = call(args);
  if (!r) return r.status();
  if (!sim::ok(response_status(r->response))) {
    return response_status(r->response);
  }
  // Parse "key=value\n" lines back into a SysfsInfo.
  mic::SysfsInfo info;
  std::string_view rest{blob.data(), r->in_written};
  while (!rest.empty()) {
    const auto nl = rest.find('\n');
    std::string_view line = rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    info.set(std::string(line.substr(0, eq)), std::string(line.substr(eq + 1)));
  }
  return info;
}

}  // namespace vphi::core
