#include "vphi/protocol.hpp"

namespace vphi::core {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kClose: return "close";
    case Op::kBind: return "bind";
    case Op::kListen: return "listen";
    case Op::kConnect: return "connect";
    case Op::kAccept: return "accept";
    case Op::kSend: return "send";
    case Op::kRecv: return "recv";
    case Op::kRegister: return "register";
    case Op::kUnregister: return "unregister";
    case Op::kReadfrom: return "readfrom";
    case Op::kWriteto: return "writeto";
    case Op::kVreadfrom: return "vreadfrom";
    case Op::kVwriteto: return "vwriteto";
    case Op::kMmap: return "mmap";
    case Op::kMunmap: return "munmap";
    case Op::kFenceMark: return "fence_mark";
    case Op::kFenceWait: return "fence_wait";
    case Op::kFenceSignal: return "fence_signal";
    case Op::kPoll: return "poll";
    case Op::kGetNodeIds: return "get_node_ids";
    case Op::kCardInfo: return "card_info";
  }
  return "unknown";
}

}  // namespace vphi::core
