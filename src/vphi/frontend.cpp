#include "vphi/frontend.hpp"

#include <cstring>
#include <thread>
#include <vector>

#include "sim/fault.hpp"
#include "sim/log.hpp"
#include "virtio/device.hpp"
#include "virtio/ring.hpp"

namespace vphi::core {

namespace {
/// RAII for kmalloc'd guest buffers.
class KmallocGuard {
 public:
  KmallocGuard() = default;
  KmallocGuard(hv::GuestPhysMem& ram, std::uint64_t gpa) : ram_(&ram), gpa_(gpa) {}
  ~KmallocGuard() {
    if (ram_ != nullptr) ram_->kfree(gpa_);
  }
  KmallocGuard(KmallocGuard&& other) noexcept
      : ram_(other.ram_), gpa_(other.gpa_) {
    other.ram_ = nullptr;
  }
  KmallocGuard& operator=(KmallocGuard&& other) noexcept {
    if (this != &other) {
      if (ram_ != nullptr) ram_->kfree(gpa_);
      ram_ = other.ram_;
      gpa_ = other.gpa_;
      other.ram_ = nullptr;
    }
    return *this;
  }
  std::uint64_t gpa() const noexcept { return gpa_; }
  /// Give up ownership without freeing (the gpa moves to the zombie list).
  std::uint64_t release() noexcept {
    ram_ = nullptr;
    return gpa_;
  }

 private:
  hv::GuestPhysMem* ram_ = nullptr;
  std::uint64_t gpa_ = 0;
};

/// Ops safe to transparently replay after a transport fault: they either
/// read device state or re-assert it (a duplicate open leaks nothing the
/// guest cannot close; a duplicate bind of the same port is rejected by the
/// provider, not silently doubled).
constexpr bool idempotent_op(Op op) noexcept {
  switch (op) {
    case Op::kOpen:
    case Op::kBind:
    case Op::kGetNodeIds:
    case Op::kCardInfo:
      return true;
    default:
      return false;
  }
}
}  // namespace

const char* wait_scheme_name(WaitScheme scheme) noexcept {
  switch (scheme) {
    case WaitScheme::kInterrupt: return "interrupt";
    case WaitScheme::kPolling: return "polling";
    case WaitScheme::kHybrid: return "hybrid";
  }
  return "unknown";
}

FrontendDriver::FrontendDriver(hv::Vm& vm, Config config)
    : vm_(&vm), config_(config) {}

FrontendDriver::~FrontendDriver() {
  if (probed_) vm_->set_irq_handler(nullptr);
}

sim::Status FrontendDriver::probe() {
  auto& status = vm_->device_status();
  status.set(virtio::VIRTIO_STATUS_ACKNOWLEDGE);
  status.set(virtio::VIRTIO_STATUS_DRIVER);
  const std::uint64_t wanted = virtio::VIRTIO_F_VERSION_1 |
                               virtio::VPHI_F_SCIF | virtio::VPHI_F_MMAP_PFN |
                               virtio::VPHI_F_SYSFS_INFO;
  if (!status.negotiate(wanted & status.offered_features())) {
    return sim::Status::kNoDevice;
  }
  status.set(virtio::VIRTIO_STATUS_DRIVER_OK);
  vm_->set_irq_handler([this](sim::Nanos irq_ts) { on_irq(irq_ts); });
  probed_ = true;
  return sim::Status::kOk;
}

bool FrontendDriver::use_polling(std::size_t payload) const {
  switch (config_.scheme) {
    case WaitScheme::kInterrupt: return false;
    case WaitScheme::kPolling: return true;
    case WaitScheme::kHybrid: return payload < config_.hybrid_threshold;
  }
  return false;
}

void FrontendDriver::drain_used(sim::Nanos ts_floor) {
  // mu_ must already be held when get_used() runs: get_used frees the
  // chain's descriptors, and the head->request match below has to be atomic
  // with that free — otherwise another thread can reuse the head (add_buf
  // also runs under mu_) and the old chain's used entry would be matched to
  // the new request, handing it a response that was never written and
  // losing the old request's completion. Lock order is mu_ -> ring lock on
  // both paths.
  std::lock_guard lock(mu_);
  while (auto used = vm_->vq().get_used()) {
    const auto head = static_cast<std::uint16_t>(used->id);
    if (auto z = zombies_.find(head); z != zombies_.end()) {
      // A timed-out request's chain finally completed: its parked bounce
      // buffers are safe to recycle now that the device is done with them.
      for (const std::uint64_t gpa : z->second) vm_->ram().kfree(gpa);
      zombies_.erase(z);
      continue;
    }
    auto owner = inflight_.find(head);
    if (owner == inflight_.end()) continue;  // stale/cancelled request
    const std::uint64_t seq = owner->second;
    inflight_.erase(owner);
    auto it = pending_.find(seq);
    if (it == pending_.end()) continue;  // owner gave up (timed out)
    it->second.completed = true;
    it->second.done_ts = std::max(used->ts, ts_floor);
    it->second.written = used->len;
    if (it->second.interrupt_wait) {
      vm_->kernel().waitq().complete(it->second.ticket, it->second.done_ts);
    }
  }
}

void FrontendDriver::on_irq(sim::Nanos irq_ts) { drain_used(irq_ts); }

sim::Expected<FrontendDriver::TransactResult> FrontendDriver::transact(
    sim::Actor& actor, const TransactArgs& args) {
  const Op op = args.header.op;
  const bool retryable_op =
      config_.request_timeout_ns > 0 && idempotent_op(op);
  for (std::uint32_t attempt = 0;; ++attempt) {
    auto result = transact_once(actor, args);
    if (result.has_value()) return result;
    const sim::Status st = result.status();
    {
      std::lock_guard lock(mu_);
      auto& c = counters_[op];
      ++c.errors;
      if (st == sim::Status::kTimedOut) {
        ++c.timeouts;
        ++timeouts_;
      }
    }
    // Only transport-level failures are worth replaying; a real backend
    // error (kNoSuchEntry, kConnRefused, ...) would just repeat.
    const bool transport_fault =
        st == sim::Status::kTimedOut || st == sim::Status::kIoError;
    if (!retryable_op || !transport_fault ||
        attempt >= config_.max_retries) {
      return st;
    }
    {
      std::lock_guard lock(mu_);
      ++counters_[op].retries;
      ++retries_;
    }
    VPHI_LOG(kWarn, "vphi-fe")
        << "op " << op_name(op) << " failed with " << sim::to_string(st)
        << "; retry " << attempt + 1 << "/" << config_.max_retries;
  }
}

sim::Expected<FrontendDriver::TransactResult> FrontendDriver::transact_once(
    sim::Actor& actor, const TransactArgs& args) {
  if (!probed_) return sim::Status::kNoDevice;
  if (args.out_len > chunk_size() || args.in_len > chunk_size()) {
    return sim::Status::kInvalidArgument;
  }
  const auto& m = vm_->model();
  auto& ram = vm_->ram();

  actor.advance(m.fe_prepare_ns);

  // Stage the request header (+ outbound payload) in kmalloc'd memory.
  auto req_gpa = ram.kmalloc(sizeof(RequestHeader));
  if (!req_gpa) return req_gpa.status();
  KmallocGuard req_guard{ram, *req_gpa};
  RequestHeader header = args.header;
  header.payload_len = static_cast<std::uint32_t>(args.out_len);
  std::memcpy(ram.translate(*req_gpa, sizeof(RequestHeader)), &header,
              sizeof(RequestHeader));
  if (sim::fault_injector().should_fire(sim::FaultSite::kCorruptRequestHeader)) {
    // Scribble over the staged header after the driver wrote it — models a
    // hostile or buggy guest mutating the in-flight request. The backend's
    // validator must reject both the unknown op and the lying payload_len.
    auto* h = static_cast<RequestHeader*>(
        ram.translate(*req_gpa, sizeof(RequestHeader)));
    h->op = static_cast<Op>(0xDEADBEEFu);
    h->payload_len = 0xFFFF'FFFFu;
  }

  KmallocGuard out_guard;
  std::uint64_t out_gpa = 0;
  // The header copy plus (for the send/write path) the user data copy into
  // the bounce buffer — copy 3i of the paper's Fig. 3.
  actor.advance(m.fe_copy_fixed_ns +
                sim::transfer_time(args.out_len, m.guest_memcpy_Bps));
  if (args.out_len > 0) {
    auto gpa = ram.kmalloc(args.out_len);
    if (!gpa) return gpa.status();
    out_gpa = *gpa;
    out_guard = KmallocGuard{ram, out_gpa};
    std::memcpy(ram.translate(out_gpa, args.out_len), args.out_payload,
                args.out_len);
  }

  // Response header + inbound bounce buffer.
  auto resp_gpa = ram.kmalloc(sizeof(ResponseHeader));
  if (!resp_gpa) return resp_gpa.status();
  KmallocGuard resp_guard{ram, *resp_gpa};
  KmallocGuard in_guard;
  std::uint64_t in_gpa = 0;
  if (args.in_len > 0) {
    auto gpa = ram.kmalloc(args.in_len);
    if (!gpa) return gpa.status();
    in_gpa = *gpa;
    in_guard = KmallocGuard{ram, in_gpa};
  }

  // Build and post the chain.
  virtio::BufferRef out_refs[2] = {
      {*req_gpa, static_cast<std::uint32_t>(sizeof(RequestHeader))},
      {out_gpa, static_cast<std::uint32_t>(args.out_len)},
  };
  virtio::BufferRef in_refs[2] = {
      {*resp_gpa, static_cast<std::uint32_t>(sizeof(ResponseHeader))},
      {in_gpa, static_cast<std::uint32_t>(args.in_len)},
  };
  const std::size_t n_out = args.out_len > 0 ? 2 : 1;
  const std::size_t n_in = args.in_len > 0 ? 2 : 1;

  const bool polling =
      use_polling(std::max(args.out_len, args.in_len));
  std::uint64_t ticket = 0;
  if (!polling) ticket = vm_->kernel().waitq().prepare();

  std::uint16_t head;
  std::uint64_t seq;
  {
    // mu_ is held *across* the publish: the instant add_buf makes the avail
    // entry visible, a backend kicked by another thread may pop, execute and
    // push the used entry — and a concurrent drain_used would drop it as
    // stale before pending_ records the request. get_used() releases the
    // ring lock before drain_used takes mu_, so that drain blocks here
    // until the entry exists (no lock-order cycle).
    std::lock_guard lock(mu_);
    auto posted = vm_->vq().add_buf({out_refs, n_out}, {in_refs, n_in});
    if (!posted) {
      if (!polling) vm_->kernel().waitq().cancel(ticket);
      return posted.status();
    }
    head = *posted;
    seq = next_seq_++;
    pending_.emplace(seq, Pending{ticket, !polling, false, 0, 0});
    inflight_[head] = seq;
    ++requests_;
  }
  // Drop the head -> seq claim if this request stops waiting while its
  // chain is still in the ring. Caller must hold mu_.
  auto forget_inflight = [&] {
    if (auto f = inflight_.find(head); f != inflight_.end() && f->second == seq) {
      inflight_.erase(f);
    }
  };

  actor.advance(m.virtio_enqueue_ns);
  const sim::Nanos kick_ts = vm_->kick_cost(actor);
  vm_->vq().kick(kick_ts);

  // The deadline is anchored at the simulation watermark, not the caller's
  // own clock: device-side actors (backend workers, peer endpoints) may
  // legitimately sit ahead of this vCPU's timeline, and a completion they
  // stamp is not "late" just because the caller's clock lags. Only genuine
  // extra delay beyond the newest time in the system counts against the
  // timeout.
  const bool bounded = config_.request_timeout_ns > 0;
  const sim::Nanos deadline =
      bounded ? std::max(actor.now(), sim::watermark()) +
                    config_.request_timeout_ns
              : 0;

  // On a timeout the chain may still be owned by the device: move the
  // bounce buffers to the zombie list (freed when the used entry finally
  // surfaces) instead of freeing them under the device's feet. Caller must
  // hold mu_.
  auto park_buffers = [&] {
    std::vector<std::uint64_t> gpas;
    gpas.push_back(req_guard.release());
    if (args.out_len > 0) gpas.push_back(out_guard.release());
    gpas.push_back(resp_guard.release());
    if (args.in_len > 0) gpas.push_back(in_guard.release());
    zombies_[head] = std::move(gpas);
  };

  // --- wait for completion per scheme ---------------------------------------
  std::uint32_t resp_written = 0;
  if (!polling) {
    {
      std::lock_guard lock(mu_);
      ++interrupt_waits_;
    }
    const sim::Status waited =
        bounded ? vm_->kernel().waitq().wait_for(ticket, actor,
                                                 config_.lost_request_grace)
                : vm_->kernel().waitq().wait(ticket, actor);
    if (waited == sim::Status::kTimedOut) {
      bool completed = false;
      sim::Nanos done_ts = 0;
      {
        std::lock_guard lock(mu_);
        auto it = pending_.find(seq);
        if (it != pending_.end() && it->second.completed) {
          // drain_used raced the wall-clock deadline: the chain is done,
          // the buffers are ours again.
          completed = true;
          done_ts = it->second.done_ts;
          resp_written = it->second.written;
          pending_.erase(it);
        } else {
          // Genuinely lost in the transport. Park the buffers and charge
          // the simulated timeout the driver would have slept through.
          pending_.erase(seq);
          forget_inflight();
          park_buffers();
        }
      }
      if (!completed) {
        actor.sync_to(deadline);
        // Rescue kick: if the doorbell was dropped, the avail entry is
        // still stranded in the ring — re-ring so the device processes it
        // and its descriptors come back.
        vm_->vq().kick(actor.now());
        VPHI_LOG(kWarn, "vphi-fe")
            << "op " << op_name(args.header.op) << " head=" << head
            << " timed out (lost request)";
        return sim::Status::kTimedOut;
      }
      if (done_ts > deadline) {
        actor.sync_to(deadline);
        return sim::Status::kTimedOut;
      }
      actor.sync_to(done_ts);
    } else if (!sim::ok(waited)) {
      std::lock_guard lock(mu_);
      pending_.erase(seq);
      forget_inflight();
      return waited;
    } else {
      sim::Nanos done_ts = 0;
      {
        std::lock_guard lock(mu_);
        auto it = pending_.find(seq);
        done_ts = it->second.done_ts;
        resp_written = it->second.written;
        pending_.erase(it);
      }
      if (bounded && done_ts > deadline) {
        // The completion surfaced, but past the simulated deadline (e.g. a
        // delayed doorbell): the driver would have given up at `deadline`.
        VPHI_LOG(kWarn, "vphi-fe")
            << "op " << op_name(args.header.op) << " head=" << head
            << " completed at " << done_ts << " > deadline " << deadline;
        return sim::Status::kTimedOut;
      }
    }
  } else {
    // Busy-wait on the used ring; each probe costs poll_spin_ns of vCPU.
    sim::Nanos burned = 0;
    bool done = false;
    bool timed_out = false;
    sim::Nanos done_ts = 0;
    for (;;) {
      drain_used(0);
      {
        std::lock_guard lock(mu_);
        auto it = pending_.find(seq);
        if (it != pending_.end() && it->second.completed) {
          done = true;
          done_ts = it->second.done_ts;
          resp_written = it->second.written;
          pending_.erase(it);
        } else if (bounded && actor.now() >= deadline) {
          pending_.erase(seq);
          forget_inflight();
          park_buffers();
          timed_out = true;
        }
      }
      actor.advance(m.poll_spin_ns);
      burned += m.poll_spin_ns;
      if (done) {
        if (bounded && done_ts > deadline) {
          actor.sync_to(deadline);
          timed_out = true;
        } else {
          actor.sync_to(done_ts);
        }
        break;
      }
      if (timed_out) break;
      std::this_thread::yield();
    }
    {
      std::lock_guard lock(mu_);
      ++polled_waits_;
      poll_cpu_burn_ += burned;
    }
    if (timed_out) {
      if (!done) vm_->vq().kick(actor.now());  // rescue a stranded chain
      VPHI_LOG(kWarn, "vphi-fe")
          << "op " << op_name(args.header.op) << " head=" << head
          << " timed out (polling)";
      return sim::Status::kTimedOut;
    }
  }

  // Demux the response and copy any payload back to user space (copy 3ii).
  actor.advance(m.fe_complete_ns);
  if (resp_written < sizeof(ResponseHeader)) {
    // The device claims it wrote less than a full ResponseHeader — whatever
    // sits in the response slot is garbage and must not be parsed.
    VPHI_LOG(kWarn, "vphi-fe")
        << "op " << op_name(args.header.op) << " head=" << head
        << " used.len=" << resp_written << " < response header size";
    std::lock_guard lock(mu_);
    ++protocol_errors_;
    return sim::Status::kIoError;
  }
  TransactResult result;
  std::memcpy(&result.response, ram.translate(*resp_gpa, sizeof(ResponseHeader)),
              sizeof(ResponseHeader));
  if (!sim::valid_status_int(result.response.status) ||
      result.response.payload_len > args.in_len) {
    // The backend is as untrusted from the guest's side as the guest is
    // from the backend's: a status outside sim::Status or a payload_len
    // exceeding the buffer we posted means the response cannot be trusted.
    VPHI_LOG(kWarn, "vphi-fe")
        << "op " << op_name(args.header.op) << " head=" << head
        << " malformed response: status=" << result.response.status
        << " payload_len=" << result.response.payload_len;
    std::lock_guard lock(mu_);
    ++protocol_errors_;
    return sim::Status::kIoError;
  }
  const std::size_t copy_back = result.response.payload_len;
  actor.advance(m.fe_copyback_fixed_ns +
                sim::transfer_time(copy_back, m.guest_memcpy_Bps));
  if (copy_back > 0 && args.in_payload != nullptr) {
    std::memcpy(args.in_payload, ram.translate(in_gpa, copy_back), copy_back);
  }
  result.in_written = copy_back;
  return result;
}

std::uint64_t FrontendDriver::requests() const {
  std::lock_guard lock(mu_);
  return requests_;
}

std::uint64_t FrontendDriver::interrupt_waits() const {
  std::lock_guard lock(mu_);
  return interrupt_waits_;
}

std::uint64_t FrontendDriver::polled_waits() const {
  std::lock_guard lock(mu_);
  return polled_waits_;
}

sim::Nanos FrontendDriver::poll_cpu_burn() const {
  std::lock_guard lock(mu_);
  return poll_cpu_burn_;
}

std::uint64_t FrontendDriver::timeouts() const {
  std::lock_guard lock(mu_);
  return timeouts_;
}

std::uint64_t FrontendDriver::retries() const {
  std::lock_guard lock(mu_);
  return retries_;
}

std::uint64_t FrontendDriver::protocol_errors() const {
  std::lock_guard lock(mu_);
  return protocol_errors_;
}

std::uint64_t FrontendDriver::op_errors(Op op) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(op);
  return it == counters_.end() ? 0 : it->second.errors;
}

std::uint64_t FrontendDriver::op_timeouts(Op op) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(op);
  return it == counters_.end() ? 0 : it->second.timeouts;
}

std::uint64_t FrontendDriver::op_retries(Op op) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(op);
  return it == counters_.end() ? 0 : it->second.retries;
}

std::size_t FrontendDriver::pending_requests() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

}  // namespace vphi::core
