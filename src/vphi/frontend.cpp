#include "vphi/frontend.hpp"

#include <cstring>
#include <thread>

#include "virtio/device.hpp"
#include "virtio/ring.hpp"

namespace vphi::core {

namespace {
/// RAII for kmalloc'd guest buffers.
class KmallocGuard {
 public:
  KmallocGuard() = default;
  KmallocGuard(hv::GuestPhysMem& ram, std::uint64_t gpa) : ram_(&ram), gpa_(gpa) {}
  ~KmallocGuard() {
    if (ram_ != nullptr) ram_->kfree(gpa_);
  }
  KmallocGuard(KmallocGuard&& other) noexcept
      : ram_(other.ram_), gpa_(other.gpa_) {
    other.ram_ = nullptr;
  }
  KmallocGuard& operator=(KmallocGuard&& other) noexcept {
    if (this != &other) {
      if (ram_ != nullptr) ram_->kfree(gpa_);
      ram_ = other.ram_;
      gpa_ = other.gpa_;
      other.ram_ = nullptr;
    }
    return *this;
  }
  std::uint64_t gpa() const noexcept { return gpa_; }

 private:
  hv::GuestPhysMem* ram_ = nullptr;
  std::uint64_t gpa_ = 0;
};
}  // namespace

const char* wait_scheme_name(WaitScheme scheme) noexcept {
  switch (scheme) {
    case WaitScheme::kInterrupt: return "interrupt";
    case WaitScheme::kPolling: return "polling";
    case WaitScheme::kHybrid: return "hybrid";
  }
  return "unknown";
}

FrontendDriver::FrontendDriver(hv::Vm& vm, Config config)
    : vm_(&vm), config_(config) {}

FrontendDriver::~FrontendDriver() {
  if (probed_) vm_->set_irq_handler(nullptr);
}

sim::Status FrontendDriver::probe() {
  auto& status = vm_->device_status();
  status.set(virtio::VIRTIO_STATUS_ACKNOWLEDGE);
  status.set(virtio::VIRTIO_STATUS_DRIVER);
  const std::uint64_t wanted = virtio::VIRTIO_F_VERSION_1 |
                               virtio::VPHI_F_SCIF | virtio::VPHI_F_MMAP_PFN |
                               virtio::VPHI_F_SYSFS_INFO;
  if (!status.negotiate(wanted & status.offered_features())) {
    return sim::Status::kNoDevice;
  }
  status.set(virtio::VIRTIO_STATUS_DRIVER_OK);
  vm_->set_irq_handler([this](sim::Nanos irq_ts) { on_irq(irq_ts); });
  probed_ = true;
  return sim::Status::kOk;
}

bool FrontendDriver::use_polling(std::size_t payload) const {
  switch (config_.scheme) {
    case WaitScheme::kInterrupt: return false;
    case WaitScheme::kPolling: return true;
    case WaitScheme::kHybrid: return payload < config_.hybrid_threshold;
  }
  return false;
}

void FrontendDriver::drain_used(sim::Nanos ts_floor) {
  while (auto used = vm_->vq().get_used()) {
    std::lock_guard lock(mu_);
    auto it = pending_.find(static_cast<std::uint16_t>(used->id));
    if (it == pending_.end()) continue;  // stale/cancelled request
    it->second.completed = true;
    it->second.done_ts = std::max(used->ts, ts_floor);
    it->second.written = used->len;
    if (it->second.interrupt_wait) {
      vm_->kernel().waitq().complete(it->second.ticket, it->second.done_ts);
    }
  }
}

void FrontendDriver::on_irq(sim::Nanos irq_ts) { drain_used(irq_ts); }

sim::Expected<FrontendDriver::TransactResult> FrontendDriver::transact(
    sim::Actor& actor, const TransactArgs& args) {
  if (!probed_) return sim::Status::kNoDevice;
  if (args.out_len > chunk_size() || args.in_len > chunk_size()) {
    return sim::Status::kInvalidArgument;
  }
  const auto& m = vm_->model();
  auto& ram = vm_->ram();

  actor.advance(m.fe_prepare_ns);

  // Stage the request header (+ outbound payload) in kmalloc'd memory.
  auto req_gpa = ram.kmalloc(sizeof(RequestHeader));
  if (!req_gpa) return req_gpa.status();
  KmallocGuard req_guard{ram, *req_gpa};
  RequestHeader header = args.header;
  header.payload_len = static_cast<std::uint32_t>(args.out_len);
  std::memcpy(ram.translate(*req_gpa, sizeof(RequestHeader)), &header,
              sizeof(RequestHeader));

  KmallocGuard out_guard;
  std::uint64_t out_gpa = 0;
  // The header copy plus (for the send/write path) the user data copy into
  // the bounce buffer — copy 3i of the paper's Fig. 3.
  actor.advance(m.fe_copy_fixed_ns +
                sim::transfer_time(args.out_len, m.guest_memcpy_Bps));
  if (args.out_len > 0) {
    auto gpa = ram.kmalloc(args.out_len);
    if (!gpa) return gpa.status();
    out_gpa = *gpa;
    out_guard = KmallocGuard{ram, out_gpa};
    std::memcpy(ram.translate(out_gpa, args.out_len), args.out_payload,
                args.out_len);
  }

  // Response header + inbound bounce buffer.
  auto resp_gpa = ram.kmalloc(sizeof(ResponseHeader));
  if (!resp_gpa) return resp_gpa.status();
  KmallocGuard resp_guard{ram, *resp_gpa};
  KmallocGuard in_guard;
  std::uint64_t in_gpa = 0;
  if (args.in_len > 0) {
    auto gpa = ram.kmalloc(args.in_len);
    if (!gpa) return gpa.status();
    in_gpa = *gpa;
    in_guard = KmallocGuard{ram, in_gpa};
  }

  // Build and post the chain.
  virtio::BufferRef out_refs[2] = {
      {*req_gpa, static_cast<std::uint32_t>(sizeof(RequestHeader))},
      {out_gpa, static_cast<std::uint32_t>(args.out_len)},
  };
  virtio::BufferRef in_refs[2] = {
      {*resp_gpa, static_cast<std::uint32_t>(sizeof(ResponseHeader))},
      {in_gpa, static_cast<std::uint32_t>(args.in_len)},
  };
  const std::size_t n_out = args.out_len > 0 ? 2 : 1;
  const std::size_t n_in = args.in_len > 0 ? 2 : 1;

  const bool polling =
      use_polling(std::max(args.out_len, args.in_len));
  std::uint64_t ticket = 0;
  if (!polling) ticket = vm_->kernel().waitq().prepare();

  std::uint16_t head;
  {
    auto posted = vm_->vq().add_buf({out_refs, n_out}, {in_refs, n_in});
    if (!posted) return posted.status();
    head = *posted;
    std::lock_guard lock(mu_);
    pending_[head] = Pending{ticket, !polling, false, 0, 0};
    ++requests_;
  }

  actor.advance(m.virtio_enqueue_ns);
  const sim::Nanos kick_ts = vm_->kick_cost(actor);
  vm_->vq().kick(kick_ts);

  // --- wait for completion per scheme ---------------------------------------
  std::uint32_t resp_written = 0;
  if (!polling) {
    {
      std::lock_guard lock(mu_);
      ++interrupt_waits_;
    }
    const auto waited = vm_->kernel().waitq().wait(ticket, actor);
    if (!sim::ok(waited)) {
      std::lock_guard lock(mu_);
      pending_.erase(head);
      return waited;
    }
    std::lock_guard lock(mu_);
    resp_written = pending_[head].written;
    pending_.erase(head);
  } else {
    // Busy-wait on the used ring; each probe costs poll_spin_ns of vCPU.
    sim::Nanos burned = 0;
    for (;;) {
      drain_used(0);
      bool done = false;
      sim::Nanos done_ts = 0;
      {
        std::lock_guard lock(mu_);
        auto it = pending_.find(head);
        if (it != pending_.end() && it->second.completed) {
          done = true;
          done_ts = it->second.done_ts;
          resp_written = it->second.written;
          pending_.erase(it);
        }
      }
      actor.advance(m.poll_spin_ns);
      burned += m.poll_spin_ns;
      if (done) {
        actor.sync_to(done_ts);
        break;
      }
      std::this_thread::yield();
    }
    std::lock_guard lock(mu_);
    ++polled_waits_;
    poll_cpu_burn_ += burned;
  }

  // Demux the response and copy any payload back to user space (copy 3ii).
  actor.advance(m.fe_complete_ns);
  TransactResult result;
  std::memcpy(&result.response, ram.translate(*resp_gpa, sizeof(ResponseHeader)),
              sizeof(ResponseHeader));
  const std::size_t copy_back =
      std::min<std::size_t>(result.response.payload_len, args.in_len);
  actor.advance(m.fe_copyback_fixed_ns +
                sim::transfer_time(copy_back, m.guest_memcpy_Bps));
  if (copy_back > 0 && args.in_payload != nullptr) {
    std::memcpy(args.in_payload, ram.translate(in_gpa, copy_back), copy_back);
  }
  result.in_written = copy_back;
  (void)resp_written;
  return result;
}

std::uint64_t FrontendDriver::requests() const {
  std::lock_guard lock(mu_);
  return requests_;
}

std::uint64_t FrontendDriver::interrupt_waits() const {
  std::lock_guard lock(mu_);
  return interrupt_waits_;
}

std::uint64_t FrontendDriver::polled_waits() const {
  std::lock_guard lock(mu_);
  return polled_waits_;
}

sim::Nanos FrontendDriver::poll_cpu_burn() const {
  std::lock_guard lock(mu_);
  return poll_cpu_burn_;
}

}  // namespace vphi::core
