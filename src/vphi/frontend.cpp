#include "vphi/frontend.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "sim/fault.hpp"
#include "sim/log.hpp"
#include "sim/recorder.hpp"
#include "virtio/device.hpp"
#include "virtio/ring.hpp"

namespace vphi::core {

namespace {
/// RAII for kmalloc'd guest buffers.
class KmallocGuard {
 public:
  KmallocGuard() = default;
  KmallocGuard(hv::GuestPhysMem& ram, std::uint64_t gpa) : ram_(&ram), gpa_(gpa) {}
  ~KmallocGuard() {
    if (ram_ != nullptr) ram_->kfree(gpa_);
  }
  KmallocGuard(KmallocGuard&& other) noexcept
      : ram_(other.ram_), gpa_(other.gpa_) {
    other.ram_ = nullptr;
  }
  KmallocGuard& operator=(KmallocGuard&& other) noexcept {
    if (this != &other) {
      if (ram_ != nullptr) ram_->kfree(gpa_);
      ram_ = other.ram_;
      gpa_ = other.gpa_;
      other.ram_ = nullptr;
    }
    return *this;
  }
  std::uint64_t gpa() const noexcept { return gpa_; }
  /// Give up ownership without freeing (the gpa moves to the zombie list).
  std::uint64_t release() noexcept {
    ram_ = nullptr;
    return gpa_;
  }

 private:
  hv::GuestPhysMem* ram_ = nullptr;
  std::uint64_t gpa_ = 0;
};

/// Ops safe to transparently replay after a transport fault: they either
/// read device state or re-assert it (a duplicate open leaks nothing the
/// guest cannot close; a duplicate bind of the same port is rejected by the
/// provider, not silently doubled).
constexpr bool idempotent_op(Op op) noexcept {
  switch (op) {
    case Op::kOpen:
    case Op::kBind:
    case Op::kGetNodeIds:
    case Op::kCardInfo:
      return true;
    default:
      return false;
  }
}
}  // namespace

FrontendDriver::OpCounters::OpCounters(Op op, const std::string& label)
    : errors(std::string("vphi.fe.op.") + op_name(op) + ".errors", label),
      timeouts(std::string("vphi.fe.op.") + op_name(op) + ".timeouts", label),
      retries(std::string("vphi.fe.op.") + op_name(op) + ".retries", label) {}

FrontendDriver::OpCounters& FrontendDriver::op_counters_locked(Op op) {
  return counters_.try_emplace(op, op, label_).first->second;
}

const char* wait_scheme_name(WaitScheme scheme) noexcept {
  switch (scheme) {
    case WaitScheme::kInterrupt: return "interrupt";
    case WaitScheme::kPolling: return "polling";
    case WaitScheme::kHybrid: return "hybrid";
  }
  return "unknown";
}

FrontendDriver::FrontendDriver(hv::Vm& vm, Config config)
    : vm_(&vm),
      config_(config),
      label_("vm=" + vm.name()),
      requests_("vphi.fe.requests", label_),
      interrupt_waits_("vphi.fe.interrupt_waits", label_),
      polled_waits_("vphi.fe.polled_waits", label_),
      timeouts_("vphi.fe.timeouts", label_),
      retries_("vphi.fe.retries", label_),
      protocol_errors_("vphi.fe.protocol_errors", label_),
      fast_reaps_("vphi.fe.fast_reaps", label_),
      poll_cpu_burn_ns_("vphi.fe.poll_cpu_burn_ns", label_),
      bytes_out_("vphi.fe.bytes_out", label_),
      bytes_in_("vphi.fe.bytes_in", label_),
      zombie_chains_("vphi.fe.zombie_chains", label_),
      request_latency_("vphi.fe.request_latency_ns", label_),
      watchdog_enabled_(config.watchdog),
      watchdog_multiplier_(config.watchdog_multiplier),
      watchdog_stalls_("vphi.watchdog.stalls", label_),
      watchdog_budget_ns_("vphi.watchdog.budget_ns", label_) {
  if (const char* env = std::getenv("VPHI_WATCHDOG")) {
    if (env[0] == '0' && env[1] == '\0') {
      watchdog_enabled_ = false;
    } else {
      char* end = nullptr;
      const double mult = std::strtod(env, &end);
      if (end != env && mult > 0.0) {
        watchdog_enabled_ = true;
        watchdog_multiplier_ = mult;
      }
    }
  }
}

FrontendDriver::~FrontendDriver() {
  if (probed_) vm_->set_irq_handler(nullptr);
  // A guest thread that Vm::shutdown() just woke may still be walking out
  // of transact()/wait(); it touches pending_ / counters_ / mu_ on the way.
  // Block until every such caller has left driver code.
  sim::MutexLock lock(active_mu_);
  while (active_calls_ != 0) active_cv_.wait(active_mu_);
}

sim::Status FrontendDriver::probe() {
  auto& status = vm_->device_status();
  status.set(virtio::VIRTIO_STATUS_ACKNOWLEDGE);
  status.set(virtio::VIRTIO_STATUS_DRIVER);
  std::uint64_t wanted = virtio::VIRTIO_F_VERSION_1 | virtio::VPHI_F_SCIF |
                         virtio::VPHI_F_MMAP_PFN | virtio::VPHI_F_SYSFS_INFO;
  if (config_.event_idx) wanted |= virtio::VIRTIO_F_EVENT_IDX;
  if (!status.negotiate(wanted & status.offered_features())) {
    return sim::Status::kNoDevice;
  }
  status.set(virtio::VIRTIO_STATUS_DRIVER_OK);
  vm_->vq().set_event_idx(
      (status.accepted_features() & virtio::VIRTIO_F_EVENT_IDX) != 0);
  vm_->set_irq_handler([this](sim::Nanos irq_ts) { on_irq(irq_ts); });
  probed_.store(true, std::memory_order_release);
  return sim::Status::kOk;
}

bool FrontendDriver::use_polling(std::size_t payload) const {
  switch (config_.scheme) {
    case WaitScheme::kInterrupt: return false;
    case WaitScheme::kPolling: return true;
    case WaitScheme::kHybrid: return payload < config_.hybrid_threshold;
  }
  return false;
}

void FrontendDriver::drain_used(sim::Nanos ts_floor) {
  // mu_ must already be held when get_used() runs: get_used frees the
  // chain's descriptors, and the head->request match below has to be atomic
  // with that free — otherwise another thread can reuse the head (add_buf
  // also runs under mu_) and the old chain's used entry would be matched to
  // the new request, handing it a response that was never written and
  // losing the old request's completion. Lock order is mu_ -> ring lock on
  // both paths.
  sim::MutexLock lock(mu_);
  for (;;) {
    while (auto used = vm_->vq().get_used()) {
      const auto head = static_cast<std::uint16_t>(used->id);
      if (auto z = zombies_.find(head); z != zombies_.end()) {
        // A timed-out request's chain finally completed: its parked bounce
        // buffers are safe to recycle now that the device is done with them.
        for (const std::uint64_t gpa : z->second) vm_->ram().kfree(gpa);
        zombies_.erase(z);
        zombie_chains_.add(-1);
        continue;
      }
      auto owner = inflight_.find(head);
      if (owner == inflight_.end()) continue;  // stale/cancelled request
      const std::uint64_t seq = owner->second;
      inflight_.erase(owner);
      auto it = pending_.find(seq);
      if (it == pending_.end()) continue;  // owner gave up (timed out)
      it->second.completed = true;
      it->second.done_ts = std::max(used->ts, ts_floor);
      it->second.written = used->len;
      if (it->second.interrupt_wait) {
        vm_->kernel().waitq().complete(it->second.ticket, it->second.done_ts);
      }
    }
    // EVENT_IDX re-arm (the NAPI pattern): this drain consumed the used
    // index the sleeping waiters' used_event pointed at, so completions
    // pushed from here on would be suppressed against a stale shadow. If
    // any interrupt waiter is still in flight, advance the armed point to
    // the new consumption index — and if the device raced a push in
    // between, loop and drain that too instead of waiting for an IRQ that
    // was already suppressed.
    bool sleeper = false;
    for (const auto& [seq, p] : pending_) {
      if (p.interrupt_wait && !p.completed) {
        sleeper = true;
        break;
      }
    }
    if (!sleeper || !vm_->vq().arm_used_event()) break;
  }
  watchdog_scan_locked();
}

sim::Nanos FrontendDriver::watchdog_budget_locked() {
  // Throttle the histogram snapshot: a tight poll loop scans every spin,
  // and the budget only drifts as new completions land.
  if (watchdog_budget_cache_ != 0 && ++watchdog_scan_tick_ < 32) {
    return watchdog_budget_cache_;
  }
  if (watchdog_budget_cache_ == 0 && ++watchdog_scan_tick_ < 32) return 0;
  watchdog_scan_tick_ = 0;
  const sim::Histogram h = request_latency_.snapshot();
  if (h.count() < config_.watchdog_min_samples) return watchdog_budget_cache_;
  const auto derived =
      static_cast<sim::Nanos>(h.percentile(0.99) * watchdog_multiplier_);
  watchdog_budget_cache_ =
      std::max<sim::Nanos>(1, std::max(config_.watchdog_floor_ns, derived));
  watchdog_budget_ns_.set(watchdog_budget_cache_);
  return watchdog_budget_cache_;
}

void FrontendDriver::watchdog_scan_locked() {
  if (!watchdog_enabled_) return;
  const sim::Nanos budget = watchdog_budget_locked();
  if (budget <= 0) return;
  // Age against the watermark — the newest time anywhere in the system —
  // not this thread's clock: a stalled request is one the *simulation* has
  // moved past, regardless of which actor noticed.
  const sim::Nanos now = sim::watermark();
  for (auto& [seq, p] : pending_) {
    if (p.completed || p.stall_flagged) continue;
    const sim::Nanos age = now - p.submit_ts;
    if (age <= budget) continue;
    p.stall_flagged = true;  // fires exactly once per request
    watchdog_stalls_.inc();
    VPHI_LOG(kWarn, "vphi-fe")
        << "watchdog: op " << op_name(p.op) << " seq=" << seq
        << " in flight " << age << " ns > budget " << budget << " ns";
    sim::flight_recorder().dump(
        std::string("watchdog stall: op ") + op_name(p.op), p.trace);
  }
}

void FrontendDriver::on_irq(sim::Nanos irq_ts) { drain_used(irq_ts); }

sim::Expected<FrontendDriver::TransactResult> FrontendDriver::transact(
    sim::Actor& actor, const TransactArgs& args) {
  ActiveCall active{*this};
  const Op op = args.header.op;
  const bool retryable_op =
      config_.request_timeout_ns > 0 && idempotent_op(op);
  for (std::uint32_t attempt = 0;; ++attempt) {
    sim::Status st;
    auto token = submit(actor, args);
    if (token.has_value()) {
      auto result = wait(actor, *token);
      if (result.has_value()) return result;
      st = result.status();
    } else {
      st = token.status();
    }
    // Failure accounting already happened inside submit()/wait(). Only
    // transport-level failures are worth replaying; a real backend error
    // (kNoSuchEntry, kConnRefused, ...) would just repeat.
    const bool transport_fault =
        st == sim::Status::kTimedOut || st == sim::Status::kIoError;
    if (!retryable_op || !transport_fault ||
        attempt >= config_.max_retries) {
      return st;
    }
    {
      sim::MutexLock lock(mu_);
      op_counters_locked(op).retries.inc();
    }
    retries_.inc();
    VPHI_LOG(kWarn, "vphi-fe")
        << "op " << op_name(op) << " failed with " << sim::to_string(st)
        << "; retry " << attempt + 1 << "/" << config_.max_retries;
  }
}

sim::Expected<FrontendDriver::Token> FrontendDriver::submit(
    sim::Actor& actor, const TransactArgs& args) {
  ActiveCall active{*this};
  auto token = submit_once(actor, args);
  if (!token.has_value()) record_failure(args.header.op, token.status());
  return token;
}

sim::Expected<FrontendDriver::TransactResult> FrontendDriver::wait(
    sim::Actor& actor, Token token) {
  ActiveCall active{*this};
  Op op = Op::kOpen;
  bool known = false;
  {
    sim::MutexLock lock(mu_);
    auto it = pending_.find(token.seq);
    if (it != pending_.end()) {
      op = it->second.op;
      known = true;
    }
  }
  auto result = wait_once(actor, token);
  if (!result.has_value() && known) record_failure(op, result.status());
  return result;
}

std::vector<sim::Expected<FrontendDriver::TransactResult>>
FrontendDriver::wait_all(sim::Actor& actor, std::span<const Token> tokens) {
  ActiveCall active{*this};
  std::vector<sim::Expected<TransactResult>> results;
  results.reserve(tokens.size());
  for (const Token& token : tokens) results.push_back(wait(actor, token));
  return results;
}

void FrontendDriver::record_failure(Op op, sim::Status st) {
  sim::MutexLock lock(mu_);
  auto& c = op_counters_locked(op);
  c.errors.inc();
  if (st == sim::Status::kTimedOut) {
    c.timeouts.inc();
    timeouts_.inc();
  }
}

void FrontendDriver::forget_inflight_locked(std::uint16_t head,
                                            std::uint64_t seq) {
  if (auto f = inflight_.find(head); f != inflight_.end() && f->second == seq) {
    inflight_.erase(f);
  }
}

void FrontendDriver::free_buffers(Pending& req) {
  for (const std::uint64_t gpa : req.gpas) vm_->ram().kfree(gpa);
  req.gpas.clear();
}

sim::Expected<FrontendDriver::Token> FrontendDriver::submit_once(
    sim::Actor& actor, const TransactArgs& args) {
  if (!probed_) return sim::Status::kNoDevice;
  if (args.out_len > chunk_size() || args.in_len > chunk_size()) {
    return sim::Status::kInvalidArgument;
  }
  const auto& m = vm_->model();
  auto& ram = vm_->ram();

  // Allocate the request's trace context before any cost is charged, so the
  // kSubmit-to-kComplete span is the whole driver round trip. Tracing never
  // advances `actor`, so enabling it does not move a single simulated
  // number.
  const sim::Nanos submit_ts = actor.now();
  const sim::TraceId trace =
      sim::tracer().begin_request(op_name(args.header.op), submit_ts);

  actor.advance(m.fe_prepare_ns);

  // Stage the request header (+ outbound payload) in kmalloc'd memory.
  auto req_gpa = ram.kmalloc(sizeof(RequestHeader));
  if (!req_gpa) return req_gpa.status();
  KmallocGuard req_guard{ram, *req_gpa};
  RequestHeader header = args.header;
  header.payload_len = static_cast<std::uint32_t>(args.out_len);
  std::memcpy(ram.translate(*req_gpa, sizeof(RequestHeader)), &header,
              sizeof(RequestHeader));
  if (sim::fault_injector().should_fire(sim::FaultSite::kCorruptRequestHeader,
                                        trace)) {
    // Scribble over the staged header after the driver wrote it — models a
    // hostile or buggy guest mutating the in-flight request. The backend's
    // validator must reject both the unknown op and the lying payload_len.
    auto* h = static_cast<RequestHeader*>(
        ram.translate(*req_gpa, sizeof(RequestHeader)));
    h->op = static_cast<Op>(0xDEADBEEFu);
    h->payload_len = 0xFFFF'FFFFu;
  }

  KmallocGuard out_guard;
  std::uint64_t out_gpa = 0;
  // The header copy plus (for the send/write path) the user data copy into
  // the bounce buffer — copy 3i of the paper's Fig. 3.
  actor.advance(m.fe_copy_fixed_ns +
                sim::transfer_time(args.out_len, m.guest_memcpy_Bps));
  if (args.out_len > 0) {
    auto gpa = ram.kmalloc(args.out_len);
    if (!gpa) return gpa.status();
    out_gpa = *gpa;
    out_guard = KmallocGuard{ram, out_gpa};
    std::memcpy(ram.translate(out_gpa, args.out_len), args.out_payload,
                args.out_len);
  }

  // Response header + inbound bounce buffer.
  auto resp_gpa = ram.kmalloc(sizeof(ResponseHeader));
  if (!resp_gpa) return resp_gpa.status();
  KmallocGuard resp_guard{ram, *resp_gpa};
  KmallocGuard in_guard;
  std::uint64_t in_gpa = 0;
  if (args.in_len > 0) {
    auto gpa = ram.kmalloc(args.in_len);
    if (!gpa) return gpa.status();
    in_gpa = *gpa;
    in_guard = KmallocGuard{ram, in_gpa};
  }

  // Build and post the chain.
  virtio::BufferRef out_refs[2] = {
      {*req_gpa, static_cast<std::uint32_t>(sizeof(RequestHeader))},
      {out_gpa, static_cast<std::uint32_t>(args.out_len)},
  };
  virtio::BufferRef in_refs[2] = {
      {*resp_gpa, static_cast<std::uint32_t>(sizeof(ResponseHeader))},
      {in_gpa, static_cast<std::uint32_t>(args.in_len)},
  };
  const std::size_t n_out = args.out_len > 0 ? 2 : 1;
  const std::size_t n_in = args.in_len > 0 ? 2 : 1;

  const bool polling =
      use_polling(std::max(args.out_len, args.in_len));
  std::uint64_t ticket = 0;
  if (!polling) ticket = vm_->kernel().waitq().prepare();

  std::uint16_t head;
  std::uint64_t seq;
  {
    // mu_ is held *across* the publish: the instant add_buf makes the avail
    // entry visible, a backend kicked by another thread may pop, execute and
    // push the used entry — and a concurrent drain_used would drop it as
    // stale before pending_ records the request. get_used() releases the
    // ring lock before drain_used takes mu_, so that drain blocks here
    // until the entry exists (no lock-order cycle).
    sim::MutexLock lock(mu_);
    const sim::Nanos publish_ts = actor.now() + m.virtio_enqueue_ns;
    auto posted = vm_->vq().add_buf({out_refs, n_out}, {in_refs, n_in},
                                    publish_ts, trace);
    if (!posted) {
      if (!polling) vm_->kernel().waitq().cancel(ticket);
      return posted.status();
    }
    head = *posted;
    seq = next_seq_++;
    Pending p;
    p.ticket = ticket;
    p.interrupt_wait = !polling;
    p.op = args.header.op;
    p.head = head;
    p.in_payload = args.in_payload;
    p.in_len = args.in_len;
    p.resp_gpa = *resp_gpa;
    p.in_gpa = in_gpa;
    p.gpas.push_back(req_guard.release());
    if (args.out_len > 0) p.gpas.push_back(out_guard.release());
    p.gpas.push_back(resp_guard.release());
    if (args.in_len > 0) p.gpas.push_back(in_guard.release());
    p.trace = trace;
    p.submit_ts = submit_ts;
    pending_.emplace(seq, std::move(p));
    inflight_[head] = seq;
    requests_.inc();
    bytes_out_.inc(args.out_len);
  }

  actor.advance(m.virtio_enqueue_ns);
  // Sample the watermark *before* ringing the doorbell: the raise publishes
  // this request's kick timestamp to the device side, and a backend thread
  // that wakes promptly syncs its actor to it — if that includes an injected
  // kick delay, reading the watermark afterwards would fold the request's
  // own delay into its own deadline and the timeout could never fire
  // (observed as a TSan-scheduling-dependent flake in the fault sweep).
  const sim::Nanos watermark_anchor = sim::watermark();
  if (vm_->vq().kick_prepare()) {
    const sim::Nanos kick_ts = vm_->kick_cost(actor);
    // Only doorbells actually rung appear in the trace: a suppressed kick
    // leaves the hop out, which is exactly how the EVENT_IDX win shows up
    // in the per-hop breakdown.
    sim::tracer().record(trace, sim::SpanEvent::kKick, kick_ts);
    vm_->vq().kick(kick_ts);
  }
  // else: EVENT_IDX said the device is already draining — the published
  // entry rides the batch it is working through, no vmexit charged.

  if (config_.request_timeout_ns > 0) {
    // The deadline is anchored at the simulation watermark, not the
    // caller's own clock: device-side actors (backend workers, peer
    // endpoints) may legitimately sit ahead of this vCPU's timeline, and a
    // completion they stamp is not "late" just because the caller's clock
    // lags. Only genuine extra delay beyond the newest time in the system
    // counts against the timeout — which is why the anchor was sampled
    // before the kick above.
    const sim::Nanos deadline =
        std::max(actor.now(), watermark_anchor) + config_.request_timeout_ns;
    sim::MutexLock lock(mu_);
    auto it = pending_.find(seq);
    if (it != pending_.end()) it->second.deadline = deadline;
  }
  return Token{seq};
}

sim::Expected<FrontendDriver::TransactResult> FrontendDriver::wait_once(
    sim::Actor& actor, Token token) {
  if (!probed_) return sim::Status::kNoDevice;
  const auto& m = vm_->model();

  Pending req;
  enum class Path { kFast, kInterrupt, kPolling } path;
  std::uint64_t ticket = 0;
  sim::Nanos deadline = 0;
  Op op = Op::kOpen;
  std::uint16_t head = 0;
  {
    sim::MutexLock lock(mu_);
    auto it = pending_.find(token.seq);
    if (it == pending_.end()) return sim::Status::kNoSuchEntry;
    Pending& p = it->second;
    if (p.completed && p.done_ts <= actor.now() &&
        (p.deadline == 0 || p.done_ts <= p.deadline)) {
      // Pipelined reap: the completion is already in this vCPU's past (the
      // coalesced interrupt of an earlier chunk in the window drained it),
      // so there is no sleep and no per-chunk wakeup cost — just the
      // used-ring bookkeeping.
      path = Path::kFast;
      req = std::move(p);
      pending_.erase(it);
      fast_reaps_.inc();
    } else {
      path = p.interrupt_wait ? Path::kInterrupt : Path::kPolling;
      ticket = p.ticket;
      deadline = p.deadline;
      op = p.op;
      head = p.head;
    }
  }

  if (path == Path::kFast) {
    if (req.interrupt_wait) vm_->kernel().waitq().cancel(req.ticket);
    actor.advance(m.pipeline_reap_ns);
    sim::tracer().record(req.trace, sim::SpanEvent::kWakeup, actor.now());
    return finish(actor, req);
  }

  if (path == Path::kInterrupt) {
    interrupt_waits_.inc();
    // Arm-then-recheck (EVENT_IDX): arm used_event so the next completion
    // interrupts us; while the arm reports used entries already pending
    // (their interrupt was coalesced away before we armed), drain them
    // ourselves instead of sleeping on an IRQ that will never come.
    while (vm_->vq().arm_used_event()) drain_used(0);
    const sim::Status waited =
        deadline != 0 ? vm_->kernel().waitq().wait_for(
                            ticket, actor, config_.lost_request_grace)
                      : vm_->kernel().waitq().wait(ticket, actor);
    if (waited == sim::Status::kTimedOut) {
      bool completed = false;
      {
        sim::MutexLock lock(mu_);
        auto it = pending_.find(token.seq);
        if (it != pending_.end() && it->second.completed) {
          // drain_used raced the wall-clock deadline: the chain is done,
          // the buffers are ours again.
          completed = true;
          req = std::move(it->second);
          pending_.erase(it);
        } else if (it != pending_.end()) {
          // Genuinely lost in the transport. Park the buffers and charge
          // the simulated timeout the driver would have slept through.
          req = std::move(it->second);
          pending_.erase(it);
          forget_inflight_locked(head, token.seq);
          zombies_[head] = std::move(req.gpas);
          zombie_chains_.add(1);
        }
      }
      if (!completed) {
        actor.sync_to(deadline);
        // Rescue kick: if the doorbell was dropped (or suppressed along
        // with it), the avail entry is still stranded in the ring —
        // re-ring so the device processes it and its descriptors come
        // back. Bypasses kick_prepare on purpose.
        vm_->vq().kick(actor.now());
        // The parked zombie buffers are freed when the chain's used entry
        // finally surfaces; make sure that completion reaches us even
        // under interrupt suppression (no other waiter may ever arm).
        if (vm_->vq().arm_used_event()) drain_used(0);
        VPHI_LOG(kWarn, "vphi-fe")
            << "op " << op_name(op) << " head=" << head
            << " timed out (lost request)";
        sim::flight_recorder().dump(
            std::string("frontend timeout (lost request): op ") + op_name(op),
            req.trace);
        return sim::Status::kTimedOut;
      }
      if (req.done_ts > deadline) {
        actor.sync_to(deadline);
        free_buffers(req);
        return sim::Status::kTimedOut;
      }
      actor.sync_to(req.done_ts);
    } else if (!sim::ok(waited)) {
      sim::MutexLock lock(mu_);
      auto it = pending_.find(token.seq);
      if (it != pending_.end()) {
        req = std::move(it->second);
        pending_.erase(it);
        forget_inflight_locked(head, token.seq);
        free_buffers(req);
      }
      return waited;
    } else {
      {
        sim::MutexLock lock(mu_);
        auto it = pending_.find(token.seq);
        req = std::move(it->second);
        pending_.erase(it);
      }
      if (deadline != 0 && req.done_ts > deadline) {
        // The completion surfaced, but past the simulated deadline (e.g. a
        // delayed doorbell): the driver would have given up at `deadline`.
        VPHI_LOG(kWarn, "vphi-fe")
            << "op " << op_name(op) << " head=" << head << " completed at "
            << req.done_ts << " > deadline " << deadline;
        sim::flight_recorder().dump(
            std::string("frontend timeout (late completion): op ") +
                op_name(op),
            req.trace);
        free_buffers(req);
        return sim::Status::kTimedOut;
      }
    }
  } else {
    // Busy-wait on the used ring; each probe costs poll_spin_ns of vCPU.
    sim::Nanos burned = 0;
    bool done = false;
    bool timed_out = false;
    for (;;) {
      drain_used(0);
      {
        sim::MutexLock lock(mu_);
        auto it = pending_.find(token.seq);
        if (it != pending_.end() && it->second.completed) {
          done = true;
          req = std::move(it->second);
          pending_.erase(it);
        } else if (deadline != 0 && actor.now() >= deadline) {
          req = std::move(it->second);
          pending_.erase(it);
          forget_inflight_locked(head, token.seq);
          zombies_[head] = std::move(req.gpas);
          zombie_chains_.add(1);
          timed_out = true;
        }
      }
      actor.advance(m.poll_spin_ns);
      burned += m.poll_spin_ns;
      if (done) {
        if (deadline != 0 && req.done_ts > deadline) {
          actor.sync_to(deadline);
          timed_out = true;
        } else {
          actor.sync_to(req.done_ts);
        }
        break;
      }
      if (timed_out) break;
      std::this_thread::yield();
    }
    polled_waits_.inc();
    poll_cpu_burn_ns_.inc(burned);
    if (timed_out) {
      if (!done) {
        vm_->vq().kick(actor.now());  // rescue a stranded chain
        if (vm_->vq().arm_used_event()) drain_used(0);
      } else {
        free_buffers(req);
      }
      VPHI_LOG(kWarn, "vphi-fe")
          << "op " << op_name(op) << " head=" << head
          << " timed out (polling)";
      sim::flight_recorder().dump(
          std::string("frontend timeout (polling): op ") + op_name(op),
          req.trace);
      return sim::Status::kTimedOut;
    }
  }

  // Both surviving paths resumed the guest context at actor.now(): after
  // the waitq wait (which charged IRQ visibility + ISR + wakeup-scheme
  // costs) or after the poll loop synced to done_ts.
  sim::tracer().record(req.trace, sim::SpanEvent::kWakeup, actor.now());
  return finish(actor, req);
}

sim::Expected<FrontendDriver::TransactResult> FrontendDriver::finish(
    sim::Actor& actor, Pending& req) {
  const auto& m = vm_->model();
  auto& ram = vm_->ram();

  // Demux the response and copy any payload back to user space (copy 3ii).
  actor.advance(m.fe_complete_ns);
  if (req.written < sizeof(ResponseHeader)) {
    // The device claims it wrote less than a full ResponseHeader — whatever
    // sits in the response slot is garbage and must not be parsed.
    VPHI_LOG(kWarn, "vphi-fe")
        << "op " << op_name(req.op) << " head=" << req.head
        << " used.len=" << req.written << " < response header size";
    protocol_errors_.inc();
    free_buffers(req);
    sim::tracer().record(req.trace, sim::SpanEvent::kComplete, actor.now());
    sim::flight_recorder().dump(
        std::string("frontend protocol error (short response): op ") +
            op_name(req.op),
        req.trace);
    return sim::Status::kIoError;
  }
  TransactResult result;
  std::memcpy(&result.response,
              ram.translate(req.resp_gpa, sizeof(ResponseHeader)),
              sizeof(ResponseHeader));
  if (!sim::valid_status_int(result.response.status) ||
      result.response.payload_len > req.in_len) {
    // The backend is as untrusted from the guest's side as the guest is
    // from the backend's: a status outside sim::Status or a payload_len
    // exceeding the buffer we posted means the response cannot be trusted.
    VPHI_LOG(kWarn, "vphi-fe")
        << "op " << op_name(req.op) << " head=" << req.head
        << " malformed response: status=" << result.response.status
        << " payload_len=" << result.response.payload_len;
    protocol_errors_.inc();
    free_buffers(req);
    sim::tracer().record(req.trace, sim::SpanEvent::kComplete, actor.now());
    sim::flight_recorder().dump(
        std::string("frontend protocol error (malformed response): op ") +
            op_name(req.op),
        req.trace);
    return sim::Status::kIoError;
  }
  const std::size_t copy_back = result.response.payload_len;
  actor.advance(m.fe_copyback_fixed_ns +
                sim::transfer_time(copy_back, m.guest_memcpy_Bps));
  if (copy_back > 0 && req.in_payload != nullptr) {
    std::memcpy(req.in_payload, ram.translate(req.in_gpa, copy_back),
                copy_back);
  }
  result.in_written = copy_back;
  bytes_in_.inc(copy_back);
  free_buffers(req);
  sim::tracer().record(req.trace, sim::SpanEvent::kComplete, actor.now());
  request_latency_.record(actor.now() - req.submit_ts);
  return result;
}

std::uint64_t FrontendDriver::op_errors(Op op) const {
  sim::MutexLock lock(mu_);
  auto it = counters_.find(op);
  return it == counters_.end() ? 0 : it->second.errors.value();
}

std::uint64_t FrontendDriver::op_timeouts(Op op) const {
  sim::MutexLock lock(mu_);
  auto it = counters_.find(op);
  return it == counters_.end() ? 0 : it->second.timeouts.value();
}

std::uint64_t FrontendDriver::op_retries(Op op) const {
  sim::MutexLock lock(mu_);
  auto it = counters_.find(op);
  return it == counters_.end() ? 0 : it->second.retries.value();
}

std::size_t FrontendDriver::pending_requests() const {
  sim::MutexLock lock(mu_);
  return pending_.size();
}

}  // namespace vphi::core
