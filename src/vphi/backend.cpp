#include "vphi/backend.hpp"

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "mic/sysfs.hpp"
#include "scif/fabric.hpp"
#include "sim/actor.hpp"
#include "sim/fault.hpp"
#include "sim/log.hpp"
#include "sim/recorder.hpp"
#include "sim/trace.hpp"

namespace vphi::core {

namespace {
constexpr bool known_op(Op op) noexcept {
  const auto v = static_cast<std::uint32_t>(op);
  return v >= static_cast<std::uint32_t>(Op::kOpen) &&
         v <= static_cast<std::uint32_t>(Op::kCardInfo);
}

constexpr bool transfer_op(Op op) noexcept {
  return op == Op::kSend || op == Op::kRecv || op == Op::kReadfrom ||
         op == Op::kWriteto || op == Op::kVreadfrom || op == Op::kVwriteto;
}
}  // namespace

// --- policy -----------------------------------------------------------------

BackendPolicy::Classifier BackendPolicy::paper_default() {
  return [](Op op, std::uint32_t) {
    switch (op) {
      case Op::kAccept:
        // "We implement scif_accept() in a non-blocking way, since we do
        // not know beforehand when a corresponding scif_connect() request
        // will arrive." (Sec. III)
        return ExecMode::kWorker;
      case Op::kPoll:
        // Same rationale: a blocking poll's horizon is unknown.
        return ExecMode::kWorker;
      default:
        return ExecMode::kBlocking;
    }
  };
}

BackendPolicy::Classifier BackendPolicy::all_blocking() {
  return [](Op, std::uint32_t) { return ExecMode::kBlocking; };
}

BackendPolicy::Classifier BackendPolicy::all_worker() {
  return [](Op, std::uint32_t) { return ExecMode::kWorker; };
}

BackendPolicy::Classifier BackendPolicy::hybrid(std::uint32_t threshold) {
  return [threshold](Op op, std::uint32_t payload_len) {
    if (op == Op::kAccept) return ExecMode::kWorker;
    const bool is_transfer = op == Op::kSend || op == Op::kRecv ||
                             op == Op::kReadfrom || op == Op::kWriteto ||
                             op == Op::kVreadfrom || op == Op::kVwriteto;
    if (is_transfer && payload_len >= threshold) return ExecMode::kWorker;
    return ExecMode::kBlocking;
  };
}

// --- lifecycle -----------------------------------------------------------------

BackendDevice::BackendDevice(hv::Vm& vm, scif::Fabric& fabric,
                             BackendPolicy policy)
    : vm_(&vm),
      fabric_(&fabric),
      policy_(std::move(policy)),
      provider_(std::make_unique<scif::HostProvider>(fabric,
                                                     scif::kHostNode)),
      label_("vm=" + vm.name()),
      worker_requests_("vphi.be.requests.worker", label_),
      blocking_requests_("vphi.be.requests.blocking", label_),
      malformed_chains_("vphi.be.malformed_chains", label_),
      poisoned_chains_("vphi.be.poisoned_chains", label_),
      validation_failures_("vphi.be.validation_failures", label_) {}

BackendDevice::~BackendDevice() { stop(); }

void BackendDevice::start() {
  if (running_.exchange(true)) return;
  service_thread_ = std::thread([this] { service_loop(); });
}

void BackendDevice::stop() {
  if (!running_.exchange(false)) return;
  vm_->vq().shutdown();
  if (service_thread_.joinable()) service_thread_.join();
  // Close every host endpoint FIRST: a blocking recv handler may be
  // holding the QEMU event loop (and workers may be parked in accept or
  // poll); the close resets their endpoints and wakes them so the drain
  // below can complete.
  provider_->close_all();
  vm_->qemu().drain();
  vm_->qemu().join_workers();
}

void BackendDevice::service_loop() {
  sim::Actor service_actor{vm_->name() + "-vphi-be"};
  sim::ActorScope scope(service_actor);
  while (running_.load(std::memory_order_relaxed)) {
    // Batch pop: one notification drains every ready avail entry (and
    // under EVENT_IDX the guest suppressed the doorbells for all but the
    // first of them). Each chain is still classified and dispatched
    // individually below.
    auto batch = vm_->vq().pop_avail_batch();
    if (batch.empty()) break;  // ring shut down
    for (auto& chain : batch) {
      if (chain.poisoned) {
        // Cyclic/corrupted descriptor walk: nothing in the segment list can
        // be trusted except the writable slots' geometry. Answer with a
        // well-formed error response and recycle the chain.
        VPHI_LOG(kWarn, "vphi-be")
            << "rejecting poisoned chain head=" << chain.head;
        malformed_chains_.inc();
        poisoned_chains_.inc();
        sim::flight_recorder().dump("backend rejected poisoned chain",
                                    chain.trace);
        reject_chain(chain, sim::Status::kIoError, chain.kick_ts);
        continue;
      }
      if (chain.segments.empty() || chain.segments[0].ptr == nullptr ||
          chain.segments[0].len < sizeof(RequestHeader)) {
        // Malformed chain: no decodable request header. Answer with an error
        // response if the chain left us a writable segment, else a
        // zero-length used entry.
        VPHI_LOG(kWarn, "vphi-be")
            << "rejecting malformed chain head=" << chain.head << " ("
            << chain.segments.size() << " segment(s))";
        malformed_chains_.inc();
        sim::flight_recorder().dump("backend rejected malformed chain",
                                    chain.trace);
        reject_chain(chain, sim::Status::kInvalidArgument, chain.kick_ts);
        continue;
      }
      RequestHeader req;
      std::memcpy(&req, chain.segments[0].ptr, sizeof(RequestHeader));

      const ExecMode mode = policy_.classify(req.op, req.payload_len);
      {
        sim::MutexLock lock(mu_);
        op_counts_
            .try_emplace(req.op,
                         std::string("vphi.be.op.") + op_name(req.op) +
                             ".requests",
                         label_)
            .first->second.inc();
      }
      if (mode == ExecMode::kWorker) {
        worker_requests_.inc();
      } else {
        blocking_requests_.inc();
      }

      if (mode == ExecMode::kWorker) {
        if (transfer_op(req.op)) {
          // Same-endpoint transfers must not reorder: route through the
          // endpoint's FIFO runner instead of an independent worker.
          dispatch_ordered(chain, req.epd);
          continue;
        }
        // Worker handoff: the loop spends a moment spawning/dispatching,
        // the worker starts once the handoff is visible.
        const sim::Nanos start_ts =
            chain.kick_ts + vm_->model().worker_handoff_ns;
        auto work = [this, chain = std::move(chain)](sim::Actor& actor) {
          process_chain(actor, chain);
        };
        vm_->qemu().run_in_worker(std::move(work), start_ts);
      } else {
        auto work = [this, chain = std::move(chain)](sim::Actor& actor) {
          process_chain(actor, chain);
        };
        vm_->qemu().post(std::move(work));
      }
    }
  }
}

void BackendDevice::dispatch_ordered(const virtio::Chain& chain, int epd) {
  bool start_runner = false;
  {
    sim::MutexLock lock(ep_mu_);
    ep_queues_[epd].push_back(chain);
    if (!ep_running_.contains(epd)) {
      ep_running_.insert(epd);
      start_runner = true;
    }
  }
  if (!start_runner) return;
  // One runner worker per active endpoint. It drains the queue in FIFO
  // order on a single actor, so consecutive chunks of a pipelined stream
  // execute back to back (one handoff amortized over the whole burst)
  // and can never complete out of order.
  auto runner = [this, epd](sim::Actor& actor) {
    for (;;) {
      virtio::Chain next;
      {
        sim::MutexLock lock(ep_mu_);
        auto it = ep_queues_.find(epd);
        if (it == ep_queues_.end() || it->second.empty()) {
          if (it != ep_queues_.end()) ep_queues_.erase(it);
          ep_running_.erase(epd);
          return;
        }
        next = std::move(it->second.front());
        it->second.pop_front();
      }
      process_chain(actor, next);
    }
  };
  vm_->qemu().run_in_worker(std::move(runner),
                            chain.kick_ts + vm_->model().worker_handoff_ns);
}

void BackendDevice::reject_chain(const virtio::Chain& chain,
                                 sim::Status status, sim::Nanos done_ts) {
  // Find a writable slot big enough for a ResponseHeader. Even on a
  // poisoned chain the writable segments are the guest's own response
  // slots, so writing a well-formed error header there is always safe.
  void* resp_ptr = nullptr;
  for (const auto& seg : chain.segments) {
    if (seg.device_writes && seg.ptr != nullptr &&
        seg.len >= sizeof(ResponseHeader)) {
      resp_ptr = seg.ptr;
      break;
    }
  }
  std::uint32_t written = 0;
  if (resp_ptr != nullptr) {
    ResponseHeader resp;
    set_status(resp, status);
    std::memcpy(resp_ptr, &resp, sizeof(ResponseHeader));
    written = static_cast<std::uint32_t>(sizeof(ResponseHeader));
  }
  vm_->vq().push_used(chain.head, written, done_ts);
  // EVENT_IDX: only interrupt if the driver's used_event asks for this
  // completion; a coalesced batch raises one vIRQ for its newest entry.
  if (vm_->vq().should_interrupt()) {
    sim::tracer().record(chain.trace, sim::SpanEvent::kVirq,
                         done_ts + vm_->model().irq_inject_ns);
    vm_->inject_irq(done_ts);
  }
}

sim::Status BackendDevice::validate_request(const RequestHeader& req,
                                            const void* out_payload,
                                            std::uint32_t out_len,
                                            const void* in_payload,
                                            std::uint32_t in_capacity) const {
  if (!known_op(req.op)) return sim::Status::kInvalidArgument;
  // The header's payload_len is a *claim*; the chain's readable segment is
  // the ground truth. A guest that claims more than it posted would walk
  // the backend off the end of the bounce buffer.
  if (req.payload_len > 0 &&
      (out_payload == nullptr || req.payload_len > out_len)) {
    return sim::Status::kBadAddress;
  }
  if (req.op == Op::kPoll) {
    // arg0 = nepds. All bounds in 64-bit so a huge count cannot overflow
    // into a small byte total.
    constexpr std::uint64_t kMaxPollEpds =
        std::numeric_limits<std::int32_t>::max() / sizeof(scif::PollEpd);
    if (req.arg0 == 0 || req.arg0 > kMaxPollEpds) {
      return sim::Status::kInvalidArgument;
    }
    const std::uint64_t bytes = req.arg0 * sizeof(scif::PollEpd);
    if (out_payload == nullptr || bytes > req.payload_len ||
        in_payload == nullptr || bytes > in_capacity) {
      return sim::Status::kInvalidArgument;
    }
  }
  return sim::Status::kOk;
}

void BackendDevice::process_chain(sim::Actor& actor,
                                  const virtio::Chain& chain) {
  const auto& m = vm_->model();
  actor.sync_and_advance(chain.kick_ts, m.be_dispatch_ns);
  // Covers every execution mode — event loop, free worker, per-endpoint
  // FIFO runner — because each of them lands here on its own actor.
  sim::tracer().record(chain.trace, sim::SpanEvent::kBackendPop, actor.now());

  RequestHeader req;
  std::memcpy(&req, chain.segments[0].ptr, sizeof(RequestHeader));

  // Locate the optional payload segments around the two headers, recording
  // each segment's *actual* length — the only geometry we trust.
  const void* out_payload = nullptr;
  std::uint32_t out_len = 0;
  void* resp_ptr = nullptr;
  void* in_payload = nullptr;
  std::uint32_t in_capacity = 0;
  for (std::size_t i = 1; i < chain.segments.size(); ++i) {
    const auto& seg = chain.segments[i];
    if (!seg.device_writes) {
      out_payload = seg.ptr;
      out_len = seg.len;
    } else if (resp_ptr == nullptr) {
      resp_ptr = seg.ptr;
      if (seg.len < sizeof(ResponseHeader)) resp_ptr = nullptr;
    } else {
      in_payload = seg.ptr;
      in_capacity = seg.len;
    }
  }

  ResponseHeader resp;
  if (resp_ptr == nullptr) {
    // No usable response slot; reject (writes nothing, zero-length used).
    VPHI_LOG(kWarn, "vphi-be") << "chain head=" << chain.head
                               << " has no usable response segment";
    malformed_chains_.inc();
    sim::flight_recorder().dump("backend chain without response segment",
                                chain.trace);
    reject_chain(chain, sim::Status::kInvalidArgument, actor.now());
    return;
  }
  const sim::Status valid =
      validate_request(req, out_payload, out_len, in_payload, in_capacity);
  if (!sim::ok(valid)) {
    VPHI_LOG(kWarn, "vphi-be")
        << "request head=" << chain.head << " op="
        << static_cast<std::uint32_t>(req.op) << " payload_len="
        << req.payload_len << " failed validation: " << sim::to_string(valid);
    validation_failures_.inc();
    sim::flight_recorder().dump(
        std::string("backend validation failure: ")
            .append(sim::to_string(valid)),
        chain.trace);
    set_status(resp, valid);
  } else {
    sim::tracer().record(chain.trace, sim::SpanEvent::kHostSyscall,
                         actor.now());
    // Card-core occupancy attribution: the provider's SCIF work charges this
    // actor, so the clock delta across execute() is exactly the card/host
    // service time this VM consumed. Pure bookkeeping — the delta is read,
    // never re-charged.
    const sim::Nanos exec_start = actor.now();
    execute(actor, req, out_payload, out_len, in_payload, in_capacity, resp);
    fabric_->charge_card_occupancy(vm_->name(), actor.now() - exec_start);
  }

  auto& fi = sim::fault_injector();
  if (fi.should_fire(sim::FaultSite::kCorruptResponseStatus, chain.trace)) {
    // A buggy backend build (or bit flip) answering with garbage: the
    // status int is not a Status value and payload_len is absurd. The
    // frontend's response validation must catch both.
    resp.status = 0x0BADBEEF;
    resp.payload_len = 0xFFFF'FFFF;
  }
  if (fi.should_fire(sim::FaultSite::kCorruptResponseRet, chain.trace)) {
    // Plausible-looking header (valid status, sane payload_len) whose ret0
    // violates per-op contracts, e.g. "bytes moved" larger than the chunk.
    // Only the op layer (guest_scif) can catch this one.
    set_status(resp, sim::Status::kOk);
    resp.ret0 = std::numeric_limits<std::int64_t>::max() / 2;
    resp.ret1 = -1;
    resp.payload_len = 0;
  }

  std::memcpy(resp_ptr, &resp, sizeof(ResponseHeader));
  actor.advance(m.be_complete_ns);
  std::uint32_t written = static_cast<std::uint32_t>(sizeof(ResponseHeader)) +
                          resp.payload_len;
  if (fi.should_fire(sim::FaultSite::kShortUsedWrite, chain.trace)) {
    // The used entry claims nothing was written even though the chain
    // completed — the frontend must not parse the response header.
    written = 0;
  }
  vm_->vq().push_used(chain.head, written, actor.now());
  // EVENT_IDX: suppress the vIRQ when the driver's used_event says it is
  // not waiting for this entry (it will reap it from the used ring on the
  // coalesced interrupt of a sibling, or on its own arm-then-recheck).
  if (vm_->vq().should_interrupt()) {
    // Stamped at guest-visible delivery time, so the virq->wakeup hop is
    // exactly the ISR + waiting-scheme cost the paper's Sec. IV-B singles
    // out. Suppressed vIRQs leave the hop out, like suppressed kicks.
    sim::tracer().record(chain.trace, sim::SpanEvent::kVirq,
                         actor.now() + m.irq_inject_ns);
    vm_->inject_irq(actor.now());
  }
}

void BackendDevice::execute(sim::Actor& actor, const RequestHeader& req,
                            const void* out_payload, std::uint32_t out_len,
                            void* in_payload, std::uint32_t in_capacity,
                            ResponseHeader& resp) {
  (void)actor;  // provider calls charge sim::this_actor(), which is `actor`
  // validate_request() has already proven payload_len <= out_len, so every
  // read below that is bounded by req.payload_len stays inside the segment.
  (void)out_len;
  auto& p = *provider_;
  set_status(resp, sim::Status::kOk);

  switch (req.op) {
    case Op::kOpen: {
      auto epd = p.open();
      if (!epd) {
        set_status(resp, epd.status());
        return;
      }
      resp.ret0 = *epd;
      return;
    }
    case Op::kClose:
      set_status(resp, p.close(req.epd));
      return;
    case Op::kBind: {
      auto port = p.bind(req.epd, static_cast<scif::Port>(req.arg0));
      if (!port) {
        set_status(resp, port.status());
        return;
      }
      resp.ret0 = *port;
      return;
    }
    case Op::kListen:
      set_status(resp, p.listen(req.epd, static_cast<int>(req.arg0)));
      return;
    case Op::kConnect:
      set_status(resp,
                 p.connect(req.epd,
                           scif::PortId{static_cast<scif::NodeId>(req.arg0),
                                        static_cast<scif::Port>(req.arg1)}));
      return;
    case Op::kAccept: {
      auto result = p.accept(req.epd, req.flags);
      if (!result) {
        set_status(resp, result.status());
        return;
      }
      resp.ret0 = result->epd;
      resp.ret1 = (static_cast<std::int64_t>(result->peer.node) << 16) |
                  result->peer.port;
      return;
    }
    case Op::kSend: {
      auto sent = p.send(req.epd, out_payload, req.payload_len, req.flags);
      if (!sent) {
        set_status(resp, sent.status());
        return;
      }
      resp.ret0 = static_cast<std::int64_t>(*sent);
      return;
    }
    case Op::kRecv: {
      // arg0 = requested length (bounded by the writable segment).
      const auto want = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(req.arg0, in_capacity));
      auto got = p.recv(req.epd, in_payload, want, req.flags);
      if (!got) {
        set_status(resp, got.status());
        return;
      }
      resp.ret0 = static_cast<std::int64_t>(*got);
      resp.payload_len = static_cast<std::uint32_t>(*got);
      return;
    }
    case Op::kRegister: {
      // arg0 = guest-physical address of the pinned range, arg1 = len,
      // arg2 = requested offset, arg3 = prot.
      void* hva = vm_->ram().translate(req.arg0, req.arg1);
      if (hva == nullptr) {
        set_status(resp, sim::Status::kBadAddress);
        return;
      }
      auto off = p.register_guest_mem(
          req.epd, hva, req.arg1, static_cast<scif::RegOffset>(req.arg2),
          static_cast<int>(req.arg3), req.flags);
      if (!off) {
        set_status(resp, off.status());
        return;
      }
      resp.ret0 = *off;
      return;
    }
    case Op::kUnregister:
      set_status(resp,
                 p.unregister_mem(req.epd,
                                  static_cast<scif::RegOffset>(req.arg0),
                                  req.arg1));
      return;
    case Op::kReadfrom:
      set_status(resp, p.readfrom(req.epd,
                                  static_cast<scif::RegOffset>(req.arg0),
                                  req.arg1,
                                  static_cast<scif::RegOffset>(req.arg2),
                                  req.flags));
      return;
    case Op::kWriteto:
      set_status(resp, p.writeto(req.epd,
                                 static_cast<scif::RegOffset>(req.arg0),
                                 req.arg1,
                                 static_cast<scif::RegOffset>(req.arg2),
                                 req.flags));
      return;
    case Op::kVreadfrom: {
      void* hva = vm_->ram().translate(req.arg0, req.arg1);
      if (hva == nullptr) {
        set_status(resp, sim::Status::kBadAddress);
        return;
      }
      set_status(resp, p.vreadfrom_guest(req.epd, hva, req.arg1,
                                         static_cast<scif::RegOffset>(req.arg2),
                                         req.flags));
      return;
    }
    case Op::kVwriteto: {
      void* hva = vm_->ram().translate(req.arg0, req.arg1);
      if (hva == nullptr) {
        set_status(resp, sim::Status::kBadAddress);
        return;
      }
      set_status(resp, p.vwriteto_guest(req.epd, hva, req.arg1,
                                        static_cast<scif::RegOffset>(req.arg2),
                                        req.flags));
      return;
    }
    case Op::kMmap: {
      // arg0 = remote offset, arg1 = len, arg2 = prot.
      auto mapping = p.mmap(req.epd, static_cast<scif::RegOffset>(req.arg0),
                            req.arg1, static_cast<int>(req.arg2));
      if (!mapping) {
        set_status(resp, mapping.status());
        return;
      }
      sim::MutexLock lock(map_mu_);
      const std::uint64_t cookie = next_map_cookie_++;
      resp.ret0 = static_cast<std::int64_t>(cookie);
      // The "stored physical frame number" of the paper's kvm patch: the
      // host-physical base of the device region, handed to the frontend so
      // it can tag the guest vma (VM_PFNPHI) with it.
      resp.ret1 = static_cast<std::int64_t>(
          reinterpret_cast<std::uintptr_t>(mapping->data));
      live_mappings_[cookie] = *mapping;
      return;
    }
    case Op::kMunmap: {
      sim::MutexLock lock(map_mu_);
      auto it = live_mappings_.find(req.arg0);
      if (it == live_mappings_.end()) {
        set_status(resp, sim::Status::kInvalidArgument);
        return;
      }
      set_status(resp, p.munmap(it->second));
      live_mappings_.erase(it);
      return;
    }
    case Op::kFenceMark: {
      auto mark = p.fence_mark(req.epd, req.flags);
      if (!mark) {
        set_status(resp, mark.status());
        return;
      }
      resp.ret0 = *mark;
      return;
    }
    case Op::kFenceWait:
      set_status(resp, p.fence_wait(req.epd, static_cast<int>(req.arg0)));
      return;
    case Op::kFenceSignal:
      set_status(resp, p.fence_signal(req.epd,
                                      static_cast<scif::RegOffset>(req.arg0),
                                      req.arg1,
                                      static_cast<scif::RegOffset>(req.arg2),
                                      req.arg3, req.flags));
      return;
    case Op::kPoll: {
      // Out payload: PollEpd[n]; arg0 = n, arg1 = timeout_ms (int64).
      // In payload: the PollEpd array with revents filled.
      const auto n = static_cast<int>(req.arg0);
      const std::size_t bytes = sizeof(scif::PollEpd) * static_cast<std::size_t>(n);
      if (n <= 0 || out_payload == nullptr || req.payload_len < bytes ||
          in_capacity < bytes || in_payload == nullptr) {
        set_status(resp, sim::Status::kInvalidArgument);
        return;
      }
      std::vector<scif::PollEpd> epds(static_cast<std::size_t>(n));
      std::memcpy(epds.data(), out_payload, bytes);
      auto ready = p.poll(epds.data(), n, static_cast<int>(
                                              static_cast<std::int64_t>(req.arg1)));
      if (!ready) {
        set_status(resp, ready.status());
        return;
      }
      std::memcpy(in_payload, epds.data(), bytes);
      resp.ret0 = *ready;
      resp.payload_len = static_cast<std::uint32_t>(bytes);
      return;
    }
    case Op::kGetNodeIds: {
      auto ids = p.get_node_ids();
      if (!ids) {
        set_status(resp, ids.status());
        return;
      }
      resp.ret0 = ids->total;
      resp.ret1 = ids->self;
      return;
    }
    case Op::kCardInfo: {
      // arg0 = card index; response payload = "key=value\n" table, the
      // sysfs forwarding micnativeloadex relies on (Sec. III).
      auto info = p.card_info(static_cast<std::uint32_t>(req.arg0));
      if (!info) {
        set_status(resp, info.status());
        return;
      }
      std::string blob;
      for (const auto& [k, v] : info->entries()) {
        blob += k;
        blob += '=';
        blob += v;
        blob += '\n';
      }
      if (blob.size() > in_capacity || in_payload == nullptr) {
        set_status(resp, sim::Status::kNoSpace);
        return;
      }
      std::memcpy(in_payload, blob.data(), blob.size());
      resp.payload_len = static_cast<std::uint32_t>(blob.size());
      return;
    }
  }
  set_status(resp, sim::Status::kNotSupported);
}

// --- statistics ------------------------------------------------------------------

std::uint64_t BackendDevice::op_count(Op op) const {
  sim::MutexLock lock(mu_);
  auto it = op_counts_.find(op);
  return it == op_counts_.end() ? 0 : it->second.value();
}

}  // namespace vphi::core
