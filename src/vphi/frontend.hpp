// The vPHI frontend driver — the guest kernel module.
//
// Sits between the (unmodified) guest libscif and the virtio transport:
// intercepts each SCIF operation, stages payloads through kmalloc'd bounce
// buffers (<= KMALLOC_MAX_SIZE), posts a request chain, kicks the backend,
// and waits for the response according to the configured waiting scheme:
//
//  * kInterrupt — the paper's implementation: sleep on a wait queue until
//    the virtual interrupt; cheap in CPU, expensive in latency (the 93% of
//    the 375 us overhead measured in Sec. IV-B).
//  * kPolling — busy-wait on the used ring: near-native latency, burns a
//    guest vCPU (the alternative the paper rejected for large transfers).
//  * kHybrid — the paper's proposed future work: poll below a size
//    threshold, sleep above it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "hv/vm.hpp"
#include "sim/actor.hpp"
#include "sim/metrics.hpp"
#include "sim/status.hpp"
#include "sim/thread_safety.hpp"
#include "sim/trace.hpp"
#include "vphi/protocol.hpp"

namespace vphi::core {

enum class WaitScheme {
  kInterrupt,
  kPolling,
  kHybrid,
};

const char* wait_scheme_name(WaitScheme scheme) noexcept;

struct FrontendConfig {
  WaitScheme scheme = WaitScheme::kInterrupt;
  /// kHybrid: payloads strictly below this poll, others sleep.
  std::size_t hybrid_threshold = 32 * 1024;
  /// Bounce-buffer (and therefore chunk) size. Clamped to KMALLOC_MAX_SIZE
  /// — Linux will not hand out larger physically contiguous allocations.
  /// Ablation A4 sweeps this down to show the per-chunk ring overhead.
  std::size_t max_payload = hv::kKmallocMaxSize;

  /// Per-request timeout in *simulated* time. 0 disables timeouts entirely
  /// (legacy behavior: wait forever). When set, a request whose completion
  /// is not visible by the deadline fails with kTimedOut.
  sim::Nanos request_timeout_ns = 0;
  /// Bounded retry for idempotent ops (open/bind/get_node_ids/card_info)
  /// that fail with kTimedOut or kIoError. Non-idempotent ops never retry.
  std::uint32_t max_retries = 2;
  /// Wall-clock escape hatch backing the simulated timeout: a *lost*
  /// request never advances simulated time, so the interrupt waiter also
  /// arms a real-time deadline. Legitimate completions always arrive
  /// wall-fast (simulated delays cost no wall time), so this only fires
  /// when the transport genuinely dropped the request.
  std::chrono::milliseconds lost_request_grace{100};

  /// Maximum chunks a pipelined bulk transfer keeps in flight at once
  /// (guest_scif's send/recv/readfrom/writeto walks). 1 reproduces the
  /// paper's serial chunk walk: chunk N+1 is not posted until chunk N's
  /// completion has been parsed.
  std::size_t pipeline_window = 1;
  /// Negotiate VIRTIO_F_EVENT_IDX at probe time: the driver skips doorbells
  /// while the device is already draining and the device coalesces
  /// completion interrupts per batch (virtio 1.0 sec 2.6.7).
  bool event_idx = true;
  /// Per-command chunk size for RMA ops (readfrom/writeto). RMA carries no
  /// ring payload — the data DMAs straight into the pinned window — so it
  /// is not bound by KMALLOC_MAX_SIZE; this bounds the DMA each command
  /// programs, and is what the pipelined walk overlaps.
  std::size_t rma_chunk = 16ull << 20;

  /// Stall watchdog — a pure observer (never advances the simulated clock).
  /// Flags any in-flight request whose age against the simulation
  /// watermark exceeds a budget derived from the observed completion
  /// latencies: max(watchdog_floor_ns, watchdog_multiplier * p99). The
  /// watchdog arms only after watchdog_min_samples completions, so the
  /// budget reflects this workload rather than a guess. Each flagged
  /// request fires exactly once: vphi.watchdog.stalls increments and the
  /// flight recorder dumps with that request as focus. Env override
  /// VPHI_WATCHDOG: "0" disables, a positive number replaces the
  /// multiplier.
  bool watchdog = true;
  double watchdog_multiplier = 8.0;
  std::size_t watchdog_min_samples = 32;
  sim::Nanos watchdog_floor_ns = 0;
};

class FrontendDriver {
 public:
  using Config = FrontendConfig;

  /// Maximum payload per request chain: one kmalloc'd bounce buffer.
  static constexpr std::size_t kMaxPayload = hv::kKmallocMaxSize;

  explicit FrontendDriver(hv::Vm& vm, Config config = {});
  ~FrontendDriver();

  FrontendDriver(const FrontendDriver&) = delete;
  FrontendDriver& operator=(const FrontendDriver&) = delete;

  /// Virtio probe: status handshake + feature negotiation + ISR
  /// registration. Must succeed before transact() may be used.
  sim::Status probe();
  bool probed() const noexcept {
    return probed_.load(std::memory_order_acquire);
  }

  struct TransactArgs {
    RequestHeader header;
    const void* out_payload = nullptr;  ///< guest user data to stage out
    std::size_t out_len = 0;
    void* in_payload = nullptr;  ///< guest user buffer for response data
    std::size_t in_len = 0;      ///< its capacity
  };
  struct TransactResult {
    ResponseHeader response;
    std::size_t in_written = 0;  ///< bytes copied back to in_payload
  };

  /// Run one request/response round trip through the ring. Payloads must
  /// fit one bounce buffer (<= chunk_size()); chunking of larger transfers
  /// is the caller's job (GuestScifProvider does it, mirroring the paper).
  sim::Expected<TransactResult> transact(sim::Actor& actor,
                                         const TransactArgs& args)
      VPHI_EXCLUDES(mu_);

  /// Handle for a request posted with submit(); redeem with wait().
  struct Token {
    std::uint64_t seq = 0;
    explicit operator bool() const noexcept { return seq != 0; }
  };

  /// Async half of the pipelined path: stage the payload, post the chain
  /// and (unless EVENT_IDX says the device is already draining) kick — then
  /// return without waiting. Up to the ring's capacity of requests can be
  /// in flight; GuestScifProvider bounds itself to
  /// FrontendConfig::pipeline_window. The caller must eventually wait() on
  /// every token returned (or the request's state leaks).
  sim::Expected<Token> submit(sim::Actor& actor, const TransactArgs& args)
      VPHI_EXCLUDES(mu_);

  /// Redeem a token: block (per the configured waiting scheme) until the
  /// request completes or times out, then parse the response and copy any
  /// payload back. A completion that an earlier chunk's coalesced interrupt
  /// already delivered is reaped for pipeline_reap_ns instead of a full
  /// sleep/wake cycle. Timeout/retry/zombie semantics are identical to
  /// transact()'s, per in-flight request.
  sim::Expected<TransactResult> wait(sim::Actor& actor, Token token)
      VPHI_EXCLUDES(mu_);

  /// wait() every token in order; returns one result per token.
  std::vector<sim::Expected<TransactResult>> wait_all(
      sim::Actor& actor, std::span<const Token> tokens) VPHI_EXCLUDES(mu_);

  /// Effective bounce-buffer size (config.max_payload clamped to the
  /// kmalloc cap).
  std::size_t chunk_size() const noexcept {
    return config_.max_payload < kMaxPayload ? config_.max_payload
                                             : kMaxPayload;
  }

  hv::Vm& vm() noexcept { return *vm_; }
  const Config& config() const noexcept { return config_; }

  // --- statistics -----------------------------------------------------------
  // Per-instance reads of the registered metrics ("vphi.fe.*" in the
  // registry; see docs/OBSERVABILITY.md for the catalogue).
  std::uint64_t requests() const { return requests_.value(); }
  std::uint64_t interrupt_waits() const { return interrupt_waits_.value(); }
  std::uint64_t polled_waits() const { return polled_waits_.value(); }
  /// Simulated CPU time burned spinning (polling scheme).
  sim::Nanos poll_cpu_burn() const { return poll_cpu_burn_ns_.value(); }
  /// Requests that hit their deadline (total and per op).
  std::uint64_t timeouts() const { return timeouts_.value(); }
  /// Transport-level retries issued (total and per op).
  std::uint64_t retries() const { return retries_.value(); }
  /// Responses rejected by frontend validation: used.len shorter than a
  /// ResponseHeader, a status int outside sim::Status, or a payload_len
  /// exceeding the posted response-buffer capacity.
  std::uint64_t protocol_errors() const { return protocol_errors_.value(); }
  std::uint64_t op_errors(Op op) const VPHI_EXCLUDES(mu_);
  std::uint64_t op_timeouts(Op op) const VPHI_EXCLUDES(mu_);
  std::uint64_t op_retries(Op op) const VPHI_EXCLUDES(mu_);
  /// In-flight requests (tests assert this returns to zero after faults).
  std::size_t pending_requests() const VPHI_EXCLUDES(mu_);
  /// Completions reaped on the pipelined fast path (already delivered by a
  /// coalesced interrupt — no sleep, no per-chunk wakeup cost).
  std::uint64_t fast_reaps() const { return fast_reaps_.value(); }
  /// Payload bytes staged out through / copied back from bounce buffers.
  std::uint64_t bytes_out() const { return bytes_out_.value(); }
  std::uint64_t bytes_in() const { return bytes_in_.value(); }
  /// Requests the stall watchdog flagged (at most once each).
  std::uint64_t watchdog_stalls() const { return watchdog_stalls_.value(); }
  /// Current stall budget in simulated ns; 0 while the watchdog is unarmed.
  sim::Nanos watchdog_budget() const { return watchdog_budget_ns_.value(); }

 private:
  struct Pending {
    std::uint64_t ticket = 0;   ///< wait-queue ticket (interrupt waiters)
    bool interrupt_wait = true;
    bool completed = false;
    sim::Nanos done_ts = 0;
    std::uint32_t written = 0;
    // Everything wait() needs to finish the request the submit started.
    Op op = Op::kOpen;
    std::uint16_t head = 0;      ///< chain head while in the ring
    sim::Nanos deadline = 0;     ///< simulated deadline; 0 = unbounded
    void* in_payload = nullptr;  ///< user buffer for the response payload
    std::size_t in_len = 0;
    std::uint64_t resp_gpa = 0;
    std::uint64_t in_gpa = 0;        ///< 0 when in_len == 0
    std::vector<std::uint64_t> gpas; ///< owned bounce buffers (park order)
    sim::TraceId trace = 0;          ///< request trace context (0 = off)
    sim::Nanos submit_ts = 0;        ///< submit_once entry time
    bool stall_flagged = false;      ///< watchdog fired for this request
  };
  struct OpCounters {
    OpCounters(Op op, const std::string& label);
    sim::metrics::Counter errors;    ///< transact() attempts that failed
    sim::metrics::Counter timeouts;  ///< ... of which hit the deadline
    sim::metrics::Counter retries;   ///< retries issued for this op
  };
  /// counters_ entry for `op`, created on first use. mu_ must be held.
  OpCounters& op_counters_locked(Op op) VPHI_REQUIRES(mu_);

  /// submit() minus the failure accounting.
  sim::Expected<Token> submit_once(sim::Actor& actor,
                                   const TransactArgs& args)
      VPHI_EXCLUDES(mu_);
  /// wait() minus the failure accounting.
  sim::Expected<TransactResult> wait_once(sim::Actor& actor, Token token)
      VPHI_EXCLUDES(mu_);
  /// Response demux + copy-back + bounce-buffer free (the tail every
  /// completion path shares).
  sim::Expected<TransactResult> finish(sim::Actor& actor, Pending& req);
  void free_buffers(Pending& req);
  void record_failure(Op op, sim::Status st) VPHI_EXCLUDES(mu_);
  /// Drop the head -> seq claim if this request stops waiting while its
  /// chain is still in the ring. mu_ must be held.
  void forget_inflight_locked(std::uint16_t head, std::uint64_t seq)
      VPHI_REQUIRES(mu_);
  /// Drain the used ring into pending_ and wake interrupt waiters.
  void on_irq(sim::Nanos irq_ts) VPHI_EXCLUDES(mu_);
  void drain_used(sim::Nanos ts_floor) VPHI_EXCLUDES(mu_);
  bool use_polling(std::size_t payload) const;
  /// Watchdog sweep over pending_: flag (once) every in-flight request
  /// older than the stall budget, bump vphi.watchdog.stalls and dump the
  /// flight recorder focused on it. Pure observer — reads sim::watermark(),
  /// never touches any actor clock. mu_ must be held.
  void watchdog_scan_locked() VPHI_REQUIRES(mu_);
  /// Stall budget = max(floor, multiplier * p99(request_latency_)), armed
  /// once min_samples completions exist; cached and recomputed every ~32
  /// scans so the sweep stays cheap. mu_ must be held.
  sim::Nanos watchdog_budget_locked() VPHI_REQUIRES(mu_);

  /// RAII active-call marker so the destructor can drain callers that a VM
  /// shutdown woke but that have not yet left driver code.
  struct ActiveCall {
    explicit ActiveCall(FrontendDriver& fe) : fe_(fe) {
      sim::MutexLock lock(fe_.active_mu_);
      ++fe_.active_calls_;
    }
    ~ActiveCall() {
      sim::MutexLock lock(fe_.active_mu_);
      if (--fe_.active_calls_ == 0) fe_.active_cv_.notify_all();
    }
    FrontendDriver& fe_;
  };

  hv::Vm* vm_;
  Config config_;
  /// Set once by probe(), read from every submit/wait thread — atomic so a
  /// probe racing early traffic is a clean rejection, not a data race.
  std::atomic<bool> probed_{false};

  /// Teardown vs. woken-waiter race: Vm::shutdown() wakes every sleeping
  /// waiter, but the waiter still has to walk back out through pending_ /
  /// counters_ on its own thread. The destructor blocks until every
  /// transact/submit/wait caller has left.
  sim::Mutex active_mu_;
  sim::CondVar active_cv_;
  int active_calls_ VPHI_GUARDED_BY(active_mu_) = 0;

  // Lock order: mu_ -> ring mu_ (submit_once posts and drain_used pops
  // under mu_; the ring never calls back into the driver).
  mutable sim::Mutex mu_;
  /// In-flight requests keyed by a per-request sequence number. The chain
  /// head is NOT a stable key: its descriptors are freed the moment the
  /// used entry is drained, so another thread can reuse the head while the
  /// original waiter is still between wakeup and pickup — a head-keyed map
  /// would let the new request overwrite (and the old waiter steal/erase)
  /// the other's entry, silently dropping a completion.
  std::map<std::uint64_t, Pending> pending_ VPHI_GUARDED_BY(mu_);
  /// Which pending request currently owns each ring head. At most one
  /// chain per head can be inside the ring at a time, so this is a plain
  /// map; entries are erased when the used entry is drained or the owner
  /// gives up.
  std::map<std::uint16_t, std::uint64_t> inflight_ VPHI_GUARDED_BY(mu_);
  std::uint64_t next_seq_ VPHI_GUARDED_BY(mu_) = 1;
  /// Bounce buffers of timed-out requests, parked until the chain's used
  /// entry finally surfaces — freeing them earlier would let a late backend
  /// write land in re-kmalloc'd memory. Keyed by chain head.
  std::map<std::uint16_t, std::vector<std::uint64_t>> zombies_
      VPHI_GUARDED_BY(mu_);
  std::map<Op, OpCounters> counters_ VPHI_GUARDED_BY(mu_);
  /// Tenant label ("vm=<name>") stamped on every instrument below, so the
  /// registry splits the vphi.fe.* catalogue per VM while the aggregates
  /// keep their existing names and sums.
  const std::string label_;
  sim::metrics::Counter requests_;
  sim::metrics::Counter interrupt_waits_;
  sim::metrics::Counter polled_waits_;
  sim::metrics::Counter timeouts_;
  sim::metrics::Counter retries_;
  sim::metrics::Counter protocol_errors_;
  sim::metrics::Counter fast_reaps_;
  sim::metrics::Counter poll_cpu_burn_ns_;
  /// Payload bytes staged out / copied back — the per-VM throughput basis
  /// the fairness index is computed over.
  sim::metrics::Counter bytes_out_;
  sim::metrics::Counter bytes_in_;
  /// Bounce-buffer sets parked by timed-out requests, not yet reclaimed.
  sim::metrics::Gauge zombie_chains_;
  /// submit-to-complete latency of every successful request.
  sim::metrics::LatencyHistogram request_latency_;

  // Stall-watchdog state (mu_ guards the cache; instruments are atomic;
  // enabled/multiplier are constant after the constructor).
  bool watchdog_enabled_ = false;
  double watchdog_multiplier_ = 8.0;
  sim::Nanos watchdog_budget_cache_ VPHI_GUARDED_BY(mu_) = 0;
  std::uint32_t watchdog_scan_tick_ VPHI_GUARDED_BY(mu_) = 0;
  sim::metrics::Counter watchdog_stalls_;
  sim::metrics::Gauge watchdog_budget_ns_;
};

}  // namespace vphi::core
