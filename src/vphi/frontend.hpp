// The vPHI frontend driver — the guest kernel module.
//
// Sits between the (unmodified) guest libscif and the virtio transport:
// intercepts each SCIF operation, stages payloads through kmalloc'd bounce
// buffers (<= KMALLOC_MAX_SIZE), posts a request chain, kicks the backend,
// and waits for the response according to the configured waiting scheme:
//
//  * kInterrupt — the paper's implementation: sleep on a wait queue until
//    the virtual interrupt; cheap in CPU, expensive in latency (the 93% of
//    the 375 us overhead measured in Sec. IV-B).
//  * kPolling — busy-wait on the used ring: near-native latency, burns a
//    guest vCPU (the alternative the paper rejected for large transfers).
//  * kHybrid — the paper's proposed future work: poll below a size
//    threshold, sleep above it.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "hv/vm.hpp"
#include "sim/actor.hpp"
#include "sim/status.hpp"
#include "vphi/protocol.hpp"

namespace vphi::core {

enum class WaitScheme {
  kInterrupt,
  kPolling,
  kHybrid,
};

const char* wait_scheme_name(WaitScheme scheme) noexcept;

struct FrontendConfig {
  WaitScheme scheme = WaitScheme::kInterrupt;
  /// kHybrid: payloads strictly below this poll, others sleep.
  std::size_t hybrid_threshold = 32 * 1024;
  /// Bounce-buffer (and therefore chunk) size. Clamped to KMALLOC_MAX_SIZE
  /// — Linux will not hand out larger physically contiguous allocations.
  /// Ablation A4 sweeps this down to show the per-chunk ring overhead.
  std::size_t max_payload = hv::kKmallocMaxSize;

  /// Per-request timeout in *simulated* time. 0 disables timeouts entirely
  /// (legacy behavior: wait forever). When set, a request whose completion
  /// is not visible by the deadline fails with kTimedOut.
  sim::Nanos request_timeout_ns = 0;
  /// Bounded retry for idempotent ops (open/bind/get_node_ids/card_info)
  /// that fail with kTimedOut or kIoError. Non-idempotent ops never retry.
  std::uint32_t max_retries = 2;
  /// Wall-clock escape hatch backing the simulated timeout: a *lost*
  /// request never advances simulated time, so the interrupt waiter also
  /// arms a real-time deadline. Legitimate completions always arrive
  /// wall-fast (simulated delays cost no wall time), so this only fires
  /// when the transport genuinely dropped the request.
  std::chrono::milliseconds lost_request_grace{100};
};

class FrontendDriver {
 public:
  using Config = FrontendConfig;

  /// Maximum payload per request chain: one kmalloc'd bounce buffer.
  static constexpr std::size_t kMaxPayload = hv::kKmallocMaxSize;

  explicit FrontendDriver(hv::Vm& vm, Config config = {});
  ~FrontendDriver();

  FrontendDriver(const FrontendDriver&) = delete;
  FrontendDriver& operator=(const FrontendDriver&) = delete;

  /// Virtio probe: status handshake + feature negotiation + ISR
  /// registration. Must succeed before transact() may be used.
  sim::Status probe();
  bool probed() const noexcept { return probed_; }

  struct TransactArgs {
    RequestHeader header;
    const void* out_payload = nullptr;  ///< guest user data to stage out
    std::size_t out_len = 0;
    void* in_payload = nullptr;  ///< guest user buffer for response data
    std::size_t in_len = 0;      ///< its capacity
  };
  struct TransactResult {
    ResponseHeader response;
    std::size_t in_written = 0;  ///< bytes copied back to in_payload
  };

  /// Run one request/response round trip through the ring. Payloads must
  /// fit one bounce buffer (<= chunk_size()); chunking of larger transfers
  /// is the caller's job (GuestScifProvider does it, mirroring the paper).
  sim::Expected<TransactResult> transact(sim::Actor& actor,
                                         const TransactArgs& args);

  /// Effective bounce-buffer size (config.max_payload clamped to the
  /// kmalloc cap).
  std::size_t chunk_size() const noexcept {
    return config_.max_payload < kMaxPayload ? config_.max_payload
                                             : kMaxPayload;
  }

  hv::Vm& vm() noexcept { return *vm_; }
  const Config& config() const noexcept { return config_; }

  // --- statistics -----------------------------------------------------------
  std::uint64_t requests() const;
  std::uint64_t interrupt_waits() const;
  std::uint64_t polled_waits() const;
  /// Simulated CPU time burned spinning (polling scheme).
  sim::Nanos poll_cpu_burn() const;
  /// Requests that hit their deadline (total and per op).
  std::uint64_t timeouts() const;
  /// Transport-level retries issued (total and per op).
  std::uint64_t retries() const;
  /// Responses rejected by frontend validation: used.len shorter than a
  /// ResponseHeader, a status int outside sim::Status, or a payload_len
  /// exceeding the posted response-buffer capacity.
  std::uint64_t protocol_errors() const;
  std::uint64_t op_errors(Op op) const;
  std::uint64_t op_timeouts(Op op) const;
  std::uint64_t op_retries(Op op) const;
  /// In-flight requests (tests assert this returns to zero after faults).
  std::size_t pending_requests() const;

 private:
  struct Pending {
    std::uint64_t ticket = 0;   ///< wait-queue ticket (interrupt waiters)
    bool interrupt_wait = true;
    bool completed = false;
    sim::Nanos done_ts = 0;
    std::uint32_t written = 0;
  };
  struct OpCounters {
    std::uint64_t errors = 0;    ///< transact() attempts that failed
    std::uint64_t timeouts = 0;  ///< ... of which hit the deadline
    std::uint64_t retries = 0;   ///< retries issued for this op
  };

  /// One posted chain + wait + response parse. transact() wraps this in
  /// the retry loop.
  sim::Expected<TransactResult> transact_once(sim::Actor& actor,
                                              const TransactArgs& args);
  /// Drain the used ring into pending_ and wake interrupt waiters.
  void on_irq(sim::Nanos irq_ts);
  void drain_used(sim::Nanos ts_floor);
  bool use_polling(std::size_t payload) const;

  hv::Vm* vm_;
  Config config_;
  bool probed_ = false;

  mutable std::mutex mu_;
  /// In-flight requests keyed by a per-request sequence number. The chain
  /// head is NOT a stable key: its descriptors are freed the moment the
  /// used entry is drained, so another thread can reuse the head while the
  /// original waiter is still between wakeup and pickup — a head-keyed map
  /// would let the new request overwrite (and the old waiter steal/erase)
  /// the other's entry, silently dropping a completion.
  std::map<std::uint64_t, Pending> pending_;
  /// Which pending request currently owns each ring head. At most one
  /// chain per head can be inside the ring at a time, so this is a plain
  /// map; entries are erased when the used entry is drained or the owner
  /// gives up.
  std::map<std::uint16_t, std::uint64_t> inflight_;
  std::uint64_t next_seq_ = 1;
  /// Bounce buffers of timed-out requests, parked until the chain's used
  /// entry finally surfaces — freeing them earlier would let a late backend
  /// write land in re-kmalloc'd memory. Keyed by chain head.
  std::map<std::uint16_t, std::vector<std::uint64_t>> zombies_;
  std::map<Op, OpCounters> counters_;
  std::uint64_t requests_ = 0;
  std::uint64_t interrupt_waits_ = 0;
  std::uint64_t polled_waits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t protocol_errors_ = 0;
  sim::Nanos poll_cpu_burn_ = 0;
};

}  // namespace vphi::core
