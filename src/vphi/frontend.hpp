// The vPHI frontend driver — the guest kernel module.
//
// Sits between the (unmodified) guest libscif and the virtio transport:
// intercepts each SCIF operation, stages payloads through kmalloc'd bounce
// buffers (<= KMALLOC_MAX_SIZE), posts a request chain, kicks the backend,
// and waits for the response according to the configured waiting scheme:
//
//  * kInterrupt — the paper's implementation: sleep on a wait queue until
//    the virtual interrupt; cheap in CPU, expensive in latency (the 93% of
//    the 375 us overhead measured in Sec. IV-B).
//  * kPolling — busy-wait on the used ring: near-native latency, burns a
//    guest vCPU (the alternative the paper rejected for large transfers).
//  * kHybrid — the paper's proposed future work: poll below a size
//    threshold, sleep above it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "hv/vm.hpp"
#include "sim/actor.hpp"
#include "sim/status.hpp"
#include "vphi/protocol.hpp"

namespace vphi::core {

enum class WaitScheme {
  kInterrupt,
  kPolling,
  kHybrid,
};

const char* wait_scheme_name(WaitScheme scheme) noexcept;

struct FrontendConfig {
  WaitScheme scheme = WaitScheme::kInterrupt;
  /// kHybrid: payloads strictly below this poll, others sleep.
  std::size_t hybrid_threshold = 32 * 1024;
  /// Bounce-buffer (and therefore chunk) size. Clamped to KMALLOC_MAX_SIZE
  /// — Linux will not hand out larger physically contiguous allocations.
  /// Ablation A4 sweeps this down to show the per-chunk ring overhead.
  std::size_t max_payload = hv::kKmallocMaxSize;
};

class FrontendDriver {
 public:
  using Config = FrontendConfig;

  /// Maximum payload per request chain: one kmalloc'd bounce buffer.
  static constexpr std::size_t kMaxPayload = hv::kKmallocMaxSize;

  explicit FrontendDriver(hv::Vm& vm, Config config = {});
  ~FrontendDriver();

  FrontendDriver(const FrontendDriver&) = delete;
  FrontendDriver& operator=(const FrontendDriver&) = delete;

  /// Virtio probe: status handshake + feature negotiation + ISR
  /// registration. Must succeed before transact() may be used.
  sim::Status probe();
  bool probed() const noexcept { return probed_; }

  struct TransactArgs {
    RequestHeader header;
    const void* out_payload = nullptr;  ///< guest user data to stage out
    std::size_t out_len = 0;
    void* in_payload = nullptr;  ///< guest user buffer for response data
    std::size_t in_len = 0;      ///< its capacity
  };
  struct TransactResult {
    ResponseHeader response;
    std::size_t in_written = 0;  ///< bytes copied back to in_payload
  };

  /// Run one request/response round trip through the ring. Payloads must
  /// fit one bounce buffer (<= chunk_size()); chunking of larger transfers
  /// is the caller's job (GuestScifProvider does it, mirroring the paper).
  sim::Expected<TransactResult> transact(sim::Actor& actor,
                                         const TransactArgs& args);

  /// Effective bounce-buffer size (config.max_payload clamped to the
  /// kmalloc cap).
  std::size_t chunk_size() const noexcept {
    return config_.max_payload < kMaxPayload ? config_.max_payload
                                             : kMaxPayload;
  }

  hv::Vm& vm() noexcept { return *vm_; }
  const Config& config() const noexcept { return config_; }

  // --- statistics -----------------------------------------------------------
  std::uint64_t requests() const;
  std::uint64_t interrupt_waits() const;
  std::uint64_t polled_waits() const;
  /// Simulated CPU time burned spinning (polling scheme).
  sim::Nanos poll_cpu_burn() const;

 private:
  struct Pending {
    std::uint64_t ticket = 0;   ///< wait-queue ticket (interrupt waiters)
    bool interrupt_wait = true;
    bool completed = false;
    sim::Nanos done_ts = 0;
    std::uint32_t written = 0;
  };

  /// Drain the used ring into pending_ and wake interrupt waiters.
  void on_irq(sim::Nanos irq_ts);
  void drain_used(sim::Nanos ts_floor);
  bool use_polling(std::size_t payload) const;

  hv::Vm* vm_;
  Config config_;
  bool probed_ = false;

  mutable std::mutex mu_;
  std::map<std::uint16_t, Pending> pending_;  // keyed by chain head
  std::uint64_t requests_ = 0;
  std::uint64_t interrupt_waits_ = 0;
  std::uint64_t polled_waits_ = 0;
  sim::Nanos poll_cpu_burn_ = 0;
};

}  // namespace vphi::core
