// The vPHI backend device — a virtual PCI device realized as a QEMU
// extension in host user space.
//
// A service thread pops request chains off the VM's virtio ring, maps the
// guest buffers zero-copy (the ring segments arrive pre-translated through
// QEMU's registered guest memory), and replays each SCIF operation against
// the host SCIF driver through its own HostProvider. Because every VM's
// backend is a separate "QEMU process" (its own provider, its own endpoint
// table), the host driver sees multiple ordinary processes — which is the
// whole sharing story of the paper.
//
// Per-opcode execution policy mirrors Sec. III "Blocking vs non-blocking
// mode": most ops run on the QEMU event loop (blocking the VM's other I/O
// while they execute); ops that may stall indefinitely (scif_accept — "we
// do not know beforehand when a corresponding scif_connect will arrive" —
// and scif_poll) run on worker threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "hv/vm.hpp"
#include "scif/host_provider.hpp"
#include "sim/metrics.hpp"
#include "sim/status.hpp"
#include "sim/thread_safety.hpp"
#include "vphi/protocol.hpp"

namespace vphi::core {

/// Where a request executes in QEMU.
enum class ExecMode { kBlocking, kWorker };

struct BackendPolicy {
  using Classifier = std::function<ExecMode(Op, std::uint32_t payload_len)>;
  Classifier classify = paper_default();

  /// The paper's choice: accept/poll on workers, everything else blocking.
  static Classifier paper_default();
  /// Ablation A2: every op blocks the event loop.
  static Classifier all_blocking();
  /// Ablation A2: every op on a worker thread.
  static Classifier all_worker();
  /// Ablation A2: data transfers above `threshold` bytes go to workers —
  /// the hybrid the paper proposes as future work for the backend side.
  static Classifier hybrid(std::uint32_t threshold);
};

class BackendDevice {
 public:
  BackendDevice(hv::Vm& vm, scif::Fabric& fabric,
                BackendPolicy policy = {});
  ~BackendDevice();

  BackendDevice(const BackendDevice&) = delete;
  BackendDevice& operator=(const BackendDevice&) = delete;

  /// Launch the service thread. Idempotent.
  void start();
  /// Tear down: stop the service thread, close all host endpoints (which
  /// unblocks workers stuck in accept), join workers.
  void stop();

  /// This backend's host-process identity.
  scif::HostProvider& provider() noexcept { return *provider_; }
  hv::Vm& vm() noexcept { return *vm_; }

  // --- statistics ------------------------------------------------------------
  // Per-instance reads of the registered metrics ("vphi.be.*" in the
  // registry; see docs/OBSERVABILITY.md).
  std::uint64_t requests_handled() const {
    return worker_requests_.value() + blocking_requests_.value();
  }
  std::uint64_t worker_requests() const { return worker_requests_.value(); }
  std::uint64_t blocking_requests() const {
    return blocking_requests_.value();
  }
  std::uint64_t op_count(Op op) const VPHI_EXCLUDES(mu_);
  /// Chains rejected before decoding: missing/short header segment, no
  /// usable response segment, or poisoned by the ring walk.
  std::uint64_t malformed_chains() const { return malformed_chains_.value(); }
  /// Poisoned (cyclic/corrupted-walk) chains among the malformed ones.
  std::uint64_t poisoned_chains() const { return poisoned_chains_.value(); }
  /// Well-formed chains whose header failed validation against the actual
  /// chain geometry (lying payload_len, bad op, bad poll bounds, ...).
  std::uint64_t validation_failures() const {
    return validation_failures_.value();
  }

 private:
  void service_loop();
  void process_chain(sim::Actor& actor, const virtio::Chain& chain);
  /// Worker dispatch for data-transfer ops: enqueue onto the endpoint's
  /// ordered queue and (if none is active) start a runner worker that
  /// drains it sequentially. A pipelined stream's chunks all target one
  /// endpoint, so independent workers would race and could complete chunk
  /// N+1's send before chunk N's — per-endpoint FIFO makes worker mode
  /// order-safe while still overlapping work across endpoints.
  void dispatch_ordered(const virtio::Chain& chain, int epd)
      VPHI_EXCLUDES(ep_mu_);
  /// The guest is untrusted: check every header field against the actual
  /// chain geometry before dispatch. Returns kOk or the rejection status.
  /// `out_len` is the measured length of the readable payload segment.
  sim::Status validate_request(const RequestHeader& req,
                               const void* out_payload, std::uint32_t out_len,
                               const void* in_payload,
                               std::uint32_t in_capacity) const;
  /// Answer a chain that cannot be decoded: write a well-formed error
  /// ResponseHeader into the first usable device-writable segment (if any)
  /// and complete the chain. Malformed chains never die silently.
  void reject_chain(const virtio::Chain& chain, sim::Status status,
                    sim::Nanos done_ts);
  /// Execute one decoded request against the host provider. Returns the
  /// response plus bytes written into the response payload segment.
  void execute(sim::Actor& actor, const RequestHeader& req,
               const void* out_payload, std::uint32_t out_len,
               void* in_payload, std::uint32_t in_capacity,
               ResponseHeader& resp);

  hv::Vm* vm_;
  scif::Fabric* fabric_;
  BackendPolicy policy_;
  std::unique_ptr<scif::HostProvider> provider_;

  std::thread service_thread_;
  std::atomic<bool> running_{false};

  mutable sim::Mutex mu_;
  std::map<Op, sim::metrics::Counter> op_counts_ VPHI_GUARDED_BY(mu_);
  /// Tenant label ("vm=<name>") on every vphi.be.* instrument: the registry
  /// splits the backend catalogue per VM, aggregates keep their names.
  const std::string label_;
  sim::metrics::Counter worker_requests_;
  sim::metrics::Counter blocking_requests_;
  sim::metrics::Counter malformed_chains_;
  sim::metrics::Counter poisoned_chains_;
  sim::metrics::Counter validation_failures_;

  // Per-endpoint ordered worker queues (transfer ops in worker mode).
  sim::Mutex ep_mu_;
  std::map<int, std::deque<virtio::Chain>> ep_queues_ VPHI_GUARDED_BY(ep_mu_);
  std::set<int> ep_running_ VPHI_GUARDED_BY(ep_mu_);

  // scif_mmap bookkeeping: wire cookie -> live host mapping.
  sim::Mutex map_mu_;
  std::map<std::uint64_t, scif::Mapping> live_mappings_
      VPHI_GUARDED_BY(map_mu_);
  std::uint64_t next_map_cookie_ VPHI_GUARDED_BY(map_mu_) = 1;
};

}  // namespace vphi::core
