// The guest-side SCIF provider (vSCIF).
//
// This is the libscif a process inside the VM links against: the identical
// scif::Provider interface as the native HostProvider, so applications, COI
// and micnativeloadex run unmodified — the paper's binary-compatibility
// property. Every call becomes a vPHI wire request through the frontend
// driver; transfers larger than one bounce buffer are chunked at
// KMALLOC_MAX_SIZE (Sec. III "Implementation details"); scif_register pins
// the guest pages first (Sec. III "Guest memory registration"); scif_mmap
// installs a VM_PFNPHI vma so guest dereferences fault through the modified
// KVM MMU straight onto device memory.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include "sim/thread_safety.hpp"

#include "scif/provider.hpp"
#include "vphi/frontend.hpp"

namespace vphi::core {

class GuestScifProvider final : public scif::Provider {
 public:
  explicit GuestScifProvider(FrontendDriver& frontend);
  ~GuestScifProvider() override;

  sim::Expected<int> open() override;
  sim::Status close(int epd) override;
  sim::Expected<scif::Port> bind(int epd, scif::Port pn) override;
  sim::Status listen(int epd, int backlog) override;
  sim::Status connect(int epd, scif::PortId dst) override;
  sim::Expected<scif::AcceptResult> accept(int epd, int flags) override;

  sim::Expected<std::size_t> send(int epd, const void* msg, std::size_t len,
                                  int flags) override;
  sim::Expected<std::size_t> recv(int epd, void* msg, std::size_t len,
                                  int flags) override;

  sim::Expected<scif::RegOffset> register_mem(int epd, void* addr,
                                              std::size_t len,
                                              scif::RegOffset offset, int prot,
                                              int flags) override;
  sim::Status unregister_mem(int epd, scif::RegOffset offset,
                             std::size_t len) override;
  sim::Status readfrom(int epd, scif::RegOffset loffset, std::size_t len,
                       scif::RegOffset roffset, int flags) override;
  sim::Status writeto(int epd, scif::RegOffset loffset, std::size_t len,
                      scif::RegOffset roffset, int flags) override;
  sim::Status vreadfrom(int epd, void* addr, std::size_t len,
                        scif::RegOffset roffset, int flags) override;
  sim::Status vwriteto(int epd, void* addr, std::size_t len,
                       scif::RegOffset roffset, int flags) override;

  sim::Expected<scif::Mapping> mmap(int epd, scif::RegOffset roffset,
                                    std::size_t len, int prot) override;
  sim::Status munmap(scif::Mapping& mapping) override;
  sim::Status map_read(const scif::Mapping& mapping, std::size_t off,
                       void* dst, std::size_t n) override;
  sim::Status map_write(const scif::Mapping& mapping, std::size_t off,
                        const void* src, std::size_t n) override;

  sim::Expected<int> fence_mark(int epd, int flags) override;
  sim::Status fence_wait(int epd, int mark) override;
  sim::Status fence_signal(int epd, scif::RegOffset loff, std::uint64_t lval,
                           scif::RegOffset roff, std::uint64_t rval,
                           int flags) override;
  sim::Expected<int> poll(scif::PollEpd* epds, int nepds,
                          int timeout_ms) override;

  sim::Expected<scif::NodeIds> get_node_ids() override;
  sim::Expected<mic::SysfsInfo> card_info(std::uint32_t index) override;

  FrontendDriver& frontend() noexcept { return *frontend_; }

 private:
  /// One wire round trip; wraps FrontendDriver::transact with this_actor().
  sim::Expected<FrontendDriver::TransactResult> call(
      const FrontendDriver::TransactArgs& args);

  /// Outcome of a pipelined chunk walk.
  struct PipelineResult {
    std::size_t bytes = 0;  ///< in-order completed prefix
    sim::Status error = sim::Status::kOk;  ///< first failure, kOk if clean
    bool short_stop = false;  ///< a chunk legitimately completed short
  };
  /// The shared pipelined chunk walk behind send/recv/readfrom/writeto:
  /// keeps up to FrontendConfig::pipeline_window chunks in flight (submit
  /// ahead, reap oldest-first), stops submitting on the first failure or
  /// short completion, and drains the remaining in-flight siblings —
  /// discarding their results — so only the in-order completed prefix
  /// counts. `count_ret0` selects stream semantics (ret0 = bytes moved,
  /// validated to [0, chunk]; a short ret0 ends the walk) vs RMA semantics
  /// (a kOk chunk moved exactly its full length). `make_args` builds the
  /// wire request for the chunk at (offset, len).
  PipelineResult run_pipeline(
      std::size_t total_len, std::size_t chunk, bool count_ret0,
      const std::function<FrontendDriver::TransactArgs(std::size_t,
                                                       std::size_t)>&
          make_args);
  /// Pin + translate a guest user range for register/vread/vwrite; returns
  /// the gpa.
  sim::Expected<std::uint64_t> pin_user_range(void* addr, std::size_t len);

  FrontendDriver* frontend_;

  sim::Mutex mu_;
  /// registered windows: (epd, offset) -> {gpa, len} for unregister unpin.
  std::map<std::pair<int, scif::RegOffset>, std::pair<std::uint64_t, std::size_t>>
      registered_ VPHI_GUARDED_BY(mu_);
  /// live mmaps: guest gva -> {backend cookie, len}.
  struct GuestMapping {
    std::uint64_t backend_cookie = 0;
    std::uint64_t gva = 0;
    std::size_t len = 0;
  };
  /// Keyed by the cookie we mint.
  std::map<std::uint64_t, GuestMapping> mappings_ VPHI_GUARDED_BY(mu_);
  std::uint64_t next_cookie_ VPHI_GUARDED_BY(mu_) = 1;
  /// mmap address space.
  std::uint64_t next_gva_ VPHI_GUARDED_BY(mu_) = 0x7f00'0000'0000ull;
};

}  // namespace vphi::core
