// dgemm — the paper's application benchmark (cblas_dgemm from the Intel
// samples, linked against MKL, launched natively with micnativeloadex).
//
// Two halves:
//  * a real blocked, multithreaded double-precision GEMM (verified against
//    a naive reference) that actually executes on card memory, and
//  * the on-card execution-time model: 56 usable KNC cores, 8-wide DP FMA
//    at 1.1 GHz, issue efficiency by threads/core, and a size-dependent
//    kernel efficiency ramp — this is what makes Figs. 6-8 come out with
//    the paper's shape.
//
// For n above kMaxRealCompute the kernel fills and touches the matrices but
// samples the arithmetic instead of computing all 2n^3 flops (a laptop
// can't run MKL-scale GEMMs); correctness is established at small n, timing
// always comes from the model. Documented in DESIGN.md as a substitution.
#pragma once

#include <cstddef>
#include <cstdint>

#include "coi/binary.hpp"
#include "mic/uos.hpp"
#include "sim/cost_model.hpp"
#include "sim/time.hpp"

namespace vphi::workloads {

/// Largest n the COI kernel fully computes (and verifies) for real.
inline constexpr std::size_t kMaxRealCompute = 384;

/// C = A * B, naive triple loop (reference).
void dgemm_naive(const double* a, const double* b, double* c, std::size_t n);

/// C = A * B, cache-blocked and parallelized over `threads` real threads
/// (capped at hardware concurrency).
void dgemm_blocked(const double* a, const double* b, double* c, std::size_t n,
                   std::uint32_t threads);

/// Flop count of an n x n dgemm.
constexpr double dgemm_flops(std::size_t n) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(n);
}

/// MKL-like kernel efficiency vs. matrix size: small GEMMs can't keep the
/// 512-bit pipes fed; large ones approach ~92% of issue-limited peak.
double kernel_efficiency(std::size_t n);

/// Modeled execution time of an n x n dgemm on the card with `nthreads`
/// software threads (compute phase + one streaming pass of the matrices
/// through GDDR for the initialization the sample performs).
sim::Nanos mic_dgemm_time(const mic::uos::Scheduler& sched, std::size_t n,
                          std::uint32_t nthreads);

/// The MIC binary image of the dgemm sample: a small executable plus the
/// MKL/OpenMP dependencies micnativeloadex must stream to the card.
coi::BinaryImage make_dgemm_image(const sim::CostModel& model);

/// Name under which the dgemm kernel is registered (the image's entry).
inline constexpr const char* kDgemmKernelName = "cblas_dgemm_main";

/// Idempotently register the dgemm kernel (and the tiny "noop" RPC kernel)
/// with the COI KernelRegistry.
void register_dgemm_kernel();

}  // namespace vphi::workloads
