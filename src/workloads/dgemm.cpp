#include "workloads/dgemm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vphi::workloads {

void dgemm_naive(const double* a, const double* b, double* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
}

namespace {

constexpr std::size_t kBlock = 64;

/// One thread's share: rows [row_begin, row_end).
void dgemm_rows(const double* a, const double* b, double* c, std::size_t n,
                std::size_t row_begin, std::size_t row_end) {
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += kBlock) {
    const std::size_t i1 = std::min(i0 + kBlock, row_end);
    for (std::size_t k0 = 0; k0 < n; k0 += kBlock) {
      const std::size_t k1 = std::min(k0 + kBlock, n);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
        const std::size_t j1 = std::min(j0 + kBlock, n);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t k = k0; k < k1; ++k) {
            const double aik = a[i * n + k];
            for (std::size_t j = j0; j < j1; ++j) {
              c[i * n + j] += aik * b[k * n + j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

void dgemm_blocked(const double* a, const double* b, double* c, std::size_t n,
                   std::uint32_t threads) {
  std::fill(c, c + n * n, 0.0);
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t workers = std::max(1u, std::min(threads, hw));
  if (workers == 1 || n < kBlock) {
    dgemm_rows(a, b, c, n, 0, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t rows_each = (n + workers - 1) / workers;
  for (std::uint32_t t = 0; t < workers; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * rows_each;
    const std::size_t end = std::min(n, begin + rows_each);
    if (begin >= end) break;
    pool.emplace_back(dgemm_rows, a, b, c, n, begin, end);
  }
  for (auto& t : pool) t.join();
}

double kernel_efficiency(std::size_t n) {
  // Ramp toward ~92% of issue-limited peak; ~50% around n = 200.
  const double x = static_cast<double>(n);
  return 0.92 * x / (x + 208.0);
}

sim::Nanos mic_dgemm_time(const mic::uos::Scheduler& sched, std::size_t n,
                          std::uint32_t nthreads) {
  const sim::Nanos compute = sched.compute_makespan(
      dgemm_flops(n) / kernel_efficiency(n), nthreads);
  // The Intel sample initializes A and B and writes C: one streaming pass
  // over the three matrices through GDDR.
  const std::uint64_t bytes = 3ull * n * n * sizeof(double);
  return compute + sched.memory_makespan(bytes) + sched.spawn_cost(nthreads);
}

coi::BinaryImage make_dgemm_image(const sim::CostModel& model) {
  coi::BinaryImage image;
  image.name = "dgemm.mic";
  image.bytes = model.loadex_binary_bytes;
  image.libraries = {
      {"libmkl_intel_lp64.so", model.loadex_library_bytes / 2},
      {"libmkl_core.so", model.loadex_library_bytes / 4},
      {"libmkl_intel_thread.so", model.loadex_library_bytes / 8},
      {"libiomp5.so", model.loadex_library_bytes / 8},
  };
  image.entry_kernel = kDgemmKernelName;
  return image;
}

namespace {

/// Deterministic matrix entries (what the Intel sample's init loop does).
double a_entry(std::size_t i, std::size_t j, std::size_t n) {
  return static_cast<double>((i * n + j) % 7) * 0.5 + 1.0;
}
double b_entry(std::size_t i, std::size_t j) {
  return static_cast<double>((i + 2 * j) % 5) * 0.25 - 0.5;
}

int dgemm_kernel(coi::KernelContext& ctx) {
  if (ctx.args.empty()) {
    ctx.output = "usage: dgemm <n>";
    return 2;
  }
  const std::size_t n = static_cast<std::size_t>(
      std::strtoull(ctx.args[0].c_str(), nullptr, 10));
  if (n == 0) {
    ctx.output = "dgemm: bad matrix size";
    return 2;
  }

  // Capacity check against the card's advertised GDDR (a 3120P has 6 GB):
  // three n x n double matrices must fit or malloc on the card fails.
  const std::uint64_t full_bytes = 3ull * n * n * sizeof(double);
  if (full_bytes > ctx.card->model().mic_memory_bytes) {
    ctx.output = "dgemm: out of device memory";
    return 12;  // ENOMEM-ish exit
  }

  // Backing allocation: full matrices when we compute for real, a
  // representative slice for model-scale runs (the simulator's backing is
  // smaller than 6 GB; the slice is all the sampled arithmetic touches).
  auto& mem = ctx.card->memory();
  const std::size_t backed_rows =
      n <= kMaxRealCompute ? n : std::min<std::size_t>(n, 64);
  const std::uint64_t bytes = backed_rows * n * sizeof(double);
  auto a_off = mem.allocate(bytes);
  auto b_off = mem.allocate(bytes);
  auto c_off = mem.allocate(bytes);
  if (!a_off || !b_off || !c_off) {
    if (a_off) mem.free(*a_off);
    if (b_off) mem.free(*b_off);
    ctx.output = "dgemm: out of device memory";
    return 12;
  }
  auto* a = static_cast<double*>(mem.at(*a_off));
  auto* b = static_cast<double*>(mem.at(*b_off));
  auto* c = static_cast<double*>(mem.at(*c_off));

  double checksum = 0.0;
  bool verified = true;
  if (n <= kMaxRealCompute) {
    // Full real computation + spot verification against the reference.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a[i * n + j] = a_entry(i, j, n);
        b[i * n + j] = b_entry(i, j);
      }
    }
    dgemm_blocked(a, b, c, n, ctx.nthreads);
    for (std::size_t i = 0; i < n * n; ++i) checksum += c[i];
    // Spot-check a handful of entries against the naive definition.
    for (std::size_t probe = 0; probe < 8; ++probe) {
      const std::size_t i = (probe * 37) % n;
      const std::size_t j = (probe * 53) % n;
      double expect = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        expect += a[i * n + k] * b[k * n + j];
      }
      if (std::abs(expect - c[i * n + j]) > 1e-6 * std::abs(expect) + 1e-9) {
        verified = false;
      }
    }
  } else {
    // Model-scale run: initialize a representative slice and sample the
    // arithmetic; the full time comes from the execution model below.
    const std::size_t rows = std::min<std::size_t>(n, 64);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a[i * n + j] = a_entry(i, j, n);
        b[i * n + j] = b_entry(i, j);
      }
    }
    for (std::size_t i = 0; i < rows; ++i) {
      double acc = 0.0;
      for (std::size_t k = 0; k < rows; ++k) {
        acc += a[i * n + k] * b[k * n + i % rows];
      }
      c[i] = acc;
      checksum += acc;
    }
  }

  // Charge the modeled on-card execution time (spawn cost is charged by
  // the daemon already; mic_dgemm_time includes it for standalone use, so
  // subtract it here).
  const sim::Nanos modeled =
      mic_dgemm_time(ctx.card->scheduler(), n, ctx.nthreads) -
      ctx.card->scheduler().spawn_cost(ctx.nthreads);
  ctx.actor->advance(modeled);

  mem.free(*a_off);
  mem.free(*b_off);
  mem.free(*c_off);

  char line[160];
  std::snprintf(line, sizeof(line),
                "dgemm n=%zu threads=%u checksum=%.6e %s", n, ctx.nthreads,
                checksum, verified ? "PASSED" : "FAILED");
  ctx.output = line;
  return verified ? 0 : 1;
}

int noop_kernel(coi::KernelContext& ctx) {
  ctx.output = "ok";
  return 0;
}

std::once_flag g_register_once;

}  // namespace

void register_dgemm_kernel() {
  std::call_once(g_register_once, [] {
    coi::KernelRegistry::instance().register_kernel(kDgemmKernelName,
                                                    dgemm_kernel);
    coi::KernelRegistry::instance().register_kernel("noop", noop_kernel);
  });
}

}  // namespace vphi::workloads
