// Offload-mode runtime: #pragma-offload-style regions over COI.
//
// The paper's second execution mode "permits the user to execute the
// application on the host CPU and offload some compute-intensive workloads
// to the coprocessor using the corresponding directives of a framework,
// e.g. OpenMP". A compiler lowers such a directive into exactly this
// sequence: keep a card process alive, allocate card buffers for the data
// clauses, copy `in`/`inout` data over, run the kernel, copy `out`/`inout`
// data back. OffloadRegion is that lowering, written against any
// scif::Provider — so offload regions run unchanged from the host or from
// inside a VM through vPHI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coi/process.hpp"

namespace vphi::coi::offload {

/// One data clause of an offload region.
struct Clause {
  enum class Dir { kIn, kOut, kInOut };
  Dir dir = Dir::kIn;
  void* host_ptr = nullptr;
  std::uint64_t len = 0;
};

class OffloadRegion {
 public:
  /// Bring up the card-side shadow process (what the offload runtime does
  /// once per application).
  static sim::Expected<OffloadRegion> attach(scif::Provider& provider,
                                             scif::NodeId card_node,
                                             std::uint32_t threads);

  /// Execute one region: transfers per the clauses, then runs `kernel`.
  /// The kernel receives the device offsets and lengths of all clause
  /// buffers as leading args ("<offset> <len>" per clause, in order),
  /// followed by `extra_args`.
  sim::Expected<FunctionResult> run(const std::string& kernel,
                                    std::vector<Clause> clauses,
                                    std::vector<std::string> extra_args);

  Process& process() noexcept { return process_; }

 private:
  explicit OffloadRegion(Process process) : process_(std::move(process)) {}
  Process process_;
};

}  // namespace vphi::coi::offload
