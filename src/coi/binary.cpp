#include "coi/binary.hpp"

namespace vphi::coi {

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

void KernelRegistry::register_kernel(const std::string& name, KernelFn fn) {
  sim::MutexLock lock(mu_);
  table_[name] = std::move(fn);
}

sim::Expected<KernelFn> KernelRegistry::lookup(const std::string& name) const {
  sim::MutexLock lock(mu_);
  auto it = table_.find(name);
  if (it == table_.end()) return sim::Status::kNoSuchEntry;
  return it->second;
}

bool KernelRegistry::contains(const std::string& name) const {
  sim::MutexLock lock(mu_);
  return table_.count(name) > 0;
}

}  // namespace vphi::coi
