#include "coi/wire.hpp"

#include "scif/types.hpp"

namespace vphi::coi {

sim::Status send_msg(scif::Provider& p, int epd, MsgType type,
                     const Encoder& payload) {
  MsgHeader header{type,
                   static_cast<std::uint32_t>(payload.bytes().size())};
  auto sent = p.send(epd, &header, sizeof(header), scif::SCIF_SEND_BLOCK);
  if (!sent) return sent.status();
  if (header.payload_len > 0) {
    sent = p.send(epd, payload.bytes().data(), header.payload_len,
                  scif::SCIF_SEND_BLOCK);
    if (!sent) return sent.status();
  }
  return sim::Status::kOk;
}

sim::Expected<MsgHeader> recv_msg(scif::Provider& p, int epd,
                                  std::vector<std::uint8_t>& payload_out) {
  MsgHeader header;
  auto got = p.recv(epd, &header, sizeof(header), scif::SCIF_RECV_BLOCK);
  if (!got) return got.status();
  if (*got != sizeof(header)) return sim::Status::kConnectionReset;
  payload_out.resize(header.payload_len);
  if (header.payload_len > 0) {
    got = p.recv(epd, payload_out.data(), header.payload_len,
                 scif::SCIF_RECV_BLOCK);
    if (!got) return got.status();
    if (*got != header.payload_len) return sim::Status::kConnectionReset;
  }
  return header;
}

}  // namespace vphi::coi
