#include "coi/daemon.hpp"

#include <string>

#include "scif/types.hpp"

namespace vphi::coi {

Daemon::Daemon(scif::Fabric& fabric, mic::Card& card, scif::NodeId card_node)
    : fabric_(&fabric),
      card_(&card),
      card_node_(card_node),
      provider_(std::make_unique<scif::HostProvider>(fabric, card_node)) {}

Daemon::~Daemon() { stop(); }

sim::Status Daemon::start() {
  if (running_.exchange(true)) return sim::Status::kOk;
  auto epd = provider_->open();
  if (!epd) return epd.status();
  listener_epd_ = *epd;
  auto bound = provider_->bind(listener_epd_, kDaemonPort);
  if (!bound) return bound.status();
  const auto listening = provider_->listen(listener_epd_, 16);
  if (!sim::ok(listening)) return listening;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return sim::Status::kOk;
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  // Closing the descriptors unblocks the accept loop and live connections.
  provider_->close_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    sim::MutexLock lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& c : connections) {
    if (c.joinable()) c.join();
  }
}

void Daemon::accept_loop() {
  sim::Actor actor{"coi-daemon"};
  sim::ActorScope scope(actor);
  // The daemon comes up when the uOS finishes booting.
  actor.sync_to(card_->card_actor().now());
  while (running_.load(std::memory_order_relaxed)) {
    auto acc = provider_->accept(listener_epd_, scif::SCIF_ACCEPT_SYNC);
    if (!acc) break;  // listener closed during shutdown
    const int epd = acc->epd;
    sim::MutexLock lock(conn_mu_);
    connections_.emplace_back([this, epd] { serve_connection(epd); });
  }
}

void Daemon::serve_connection(int epd) {
  sim::Actor actor{"coi-conn"};
  sim::ActorScope scope(actor);
  auto& p = *provider_;

  CardProcess proc;
  bool have_process = false;
  std::uint64_t binary_remaining = 0;

  std::vector<std::uint8_t> payload;
  for (;;) {
    auto header = recv_msg(p, epd, payload);
    if (!header) break;  // peer gone
    Decoder dec{payload.data(), payload.size()};

    switch (header->type) {
      case MsgType::kCreateProcess: {
        auto name = dec.string();
        auto bytes = dec.u64();
        auto nlibs = dec.u32();
        if (!name || !bytes || !nlibs) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        proc = CardProcess{};
        proc.image.name = *name;
        proc.image.bytes = *bytes;
        binary_remaining = *bytes;
        for (std::uint32_t i = 0; i < *nlibs; ++i) {
          auto lib_name = dec.string();
          auto lib_bytes = dec.u64();
          if (!lib_name || !lib_bytes) break;
          proc.image.libraries.push_back({*lib_name, *lib_bytes});
          binary_remaining += *lib_bytes;
        }
        auto entry = dec.string();
        auto nthreads = dec.u32();
        auto args = dec.strings();
        if (!entry || !nthreads || !args) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        proc.image.entry_kernel = *entry;
        proc.nthreads = *nthreads;
        proc.args = *args;
        {
          sim::MutexLock lock(stats_mu_);
          proc.pid = next_pid_++;
          ++processes_created_;
        }
        have_process = true;
        break;
      }
      case MsgType::kBinaryChunk: {
        // The chunk bytes themselves arrived through scif_recv, so the
        // streaming time is already charged; just track progress.
        const std::uint64_t n = payload.size();
        binary_remaining = n >= binary_remaining ? 0 : binary_remaining - n;
        if (binary_remaining == 0 && have_process) {
          // Everything landed: exec the binary under the uOS.
          actor.advance(card_->scheduler().exec_cost());
          Encoder e;
          e.put_u64(proc.pid);
          send_msg(p, epd, MsgType::kProcessStarted, e);
        }
        break;
      }
      case MsgType::kAllocBuffer: {
        auto size = dec.u64();
        if (!size || !have_process) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        auto off = card_->memory().allocate(*size);
        Encoder e;
        if (!off) {
          send_msg(p, epd, MsgType::kError, e);
          break;
        }
        proc.buffers.push_back(*off);
        e.put_u64(*off);
        send_msg(p, epd, MsgType::kBufferHandle, e);
        break;
      }
      case MsgType::kFreeBuffer: {
        auto off = dec.u64();
        if (off) card_->memory().free(*off);
        send_msg(p, epd, MsgType::kAck, Encoder{});
        break;
      }
      case MsgType::kWriteBuffer: {
        // offset + len in the payload; the raw bytes follow on the stream.
        auto off = dec.u64();
        auto len = dec.u64();
        if (!off || !len || !card_->memory().covers(*off, *len)) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        auto got = p.recv(epd, card_->memory().at(*off), *len,
                          scif::SCIF_RECV_BLOCK);
        if (!got || *got != *len) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        send_msg(p, epd, MsgType::kAck, Encoder{});
        break;
      }
      case MsgType::kReadBuffer: {
        auto off = dec.u64();
        auto len = dec.u64();
        if (!off || !len || !card_->memory().covers(*off, *len)) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        Encoder e;
        e.put_u64(*len);
        auto sent = send_msg(p, epd, MsgType::kBufferData, e);
        if (!sim::ok(sent)) break;
        p.send(epd, card_->memory().at(*off), *len, scif::SCIF_SEND_BLOCK);
        break;
      }
      case MsgType::kRunFunction: {
        if (!have_process) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        auto kernel_name = dec.string();
        auto args = dec.strings();
        if (!kernel_name || !args) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        CardProcess fn_proc = proc;
        fn_proc.image.entry_kernel = *kernel_name;
        fn_proc.args = *args;
        std::string output;
        const int exit_code = run_kernel(fn_proc, actor, output);
        {
          sim::MutexLock lock(stats_mu_);
          ++functions_run_;
        }
        Encoder e;
        e.put_i64(exit_code);
        e.put_string(output);
        send_msg(p, epd, MsgType::kFunctionResult, e);
        break;
      }
      case MsgType::kShutdownProcess: {
        if (!have_process) {
          send_msg(p, epd, MsgType::kError, Encoder{});
          break;
        }
        // Native mode: the whole binary runs as main() now, then exits.
        std::string output;
        const int exit_code = run_kernel(proc, actor, output);
        for (auto off : proc.buffers) card_->memory().free(off);
        proc.buffers.clear();
        Encoder e;
        e.put_i64(exit_code);
        e.put_string(output);
        send_msg(p, epd, MsgType::kProcessExited, e);
        break;
      }
      default:
        send_msg(p, epd, MsgType::kAck, Encoder{});
        break;
    }
  }
  p.close(epd);
}

int Daemon::run_kernel(CardProcess& proc, sim::Actor& actor,
                       std::string& output) {
  auto kernel = KernelRegistry::instance().lookup(proc.image.entry_kernel);
  if (!kernel) {
    output = "coi_daemon: no such entry point: " + proc.image.entry_kernel;
    return 127;
  }
  // Spawning the requested threads is sequential work for the launcher.
  actor.advance(card_->scheduler().spawn_cost(proc.nthreads));
  KernelContext ctx;
  ctx.card = card_;
  ctx.actor = &actor;
  ctx.nthreads = proc.nthreads;
  ctx.args = proc.args;
  const int code = (*kernel)(ctx);
  output = std::move(ctx.output);
  return code;
}

std::uint64_t Daemon::processes_created() const {
  sim::MutexLock lock(stats_mu_);
  return processes_created_;
}

std::uint64_t Daemon::functions_run() const {
  sim::MutexLock lock(stats_mu_);
  return functions_run_;
}

}  // namespace vphi::coi
