// Client-side COI: engines, processes, buffers, run-function pipeline.
//
// This is the subset of Intel's COI surface that micnativeloadex and the
// offload runtimes sit on: enumerate engines (cards), create a card process
// from a binary image (streaming the executable and its libraries over
// SCIF), allocate card buffers, enqueue function invocations, and wait for
// process shutdown.
//
// Everything goes through a scif::Provider — hand it a HostProvider and
// this is the native MPSS path; hand it a GuestScifProvider and the same
// code offloads from inside a VM through vPHI. No other changes: that is
// the compatibility property the paper claims for layers above SCIF.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coi/binary.hpp"
#include "coi/wire.hpp"
#include "scif/provider.hpp"

namespace vphi::coi {

/// One offload target (COIEngine).
struct EngineInfo {
  std::uint32_t index = 0;
  scif::NodeId node = 0;
  std::string family;  ///< "Knights Corner"
  std::string sku;     ///< "3120P"
};

/// COIEngineGetCount / COIEngineGetHandle.
sim::Expected<std::vector<EngineInfo>> enumerate_engines(scif::Provider& p);

struct FunctionResult {
  int exit_code = 0;
  std::string output;
};

class Process {
 public:
  Process() = default;
  ~Process();

  Process(Process&&) noexcept;
  Process& operator=(Process&&) noexcept;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// COIProcessCreateFromFile: connect to the card's coi_daemon, ship the
  /// binary image (metadata + streamed bytes, chunked), and exec it.
  /// `nthreads` seeds the card-side OpenMP/pthread pool.
  static sim::Expected<Process> create(scif::Provider& p,
                                       scif::NodeId card_node,
                                       const BinaryImage& image,
                                       std::uint32_t nthreads,
                                       std::vector<std::string> args);

  bool valid() const noexcept { return epd_ >= 0; }
  std::uint64_t pid() const noexcept { return pid_; }

  /// COIBufferCreate: card-memory buffer; returns its device offset.
  sim::Expected<std::uint64_t> alloc_buffer(std::uint64_t size);
  sim::Status free_buffer(std::uint64_t handle);

  /// COIBufferWrite / COIBufferRead: move data between a host pointer and
  /// a card buffer over the SCIF stream.
  sim::Status write_buffer(std::uint64_t handle, const void* src,
                           std::uint64_t len);
  sim::Status read_buffer(std::uint64_t handle, void* dst, std::uint64_t len);

  /// COIPipelineRunFunction (synchronous): run `kernel` in the card
  /// process with string args.
  sim::Expected<FunctionResult> run_function(
      const std::string& kernel, const std::vector<std::string>& args);

  /// Native mode: run the image's entry kernel as main() and exit —
  /// COIProcessWaitForShutdown.
  sim::Expected<FunctionResult> wait_for_shutdown();

  sim::Status destroy();

 private:
  Process(scif::Provider* p, int epd, std::uint64_t pid)
      : provider_(p), epd_(epd), pid_(pid) {}

  scif::Provider* provider_ = nullptr;
  int epd_ = -1;
  std::uint64_t pid_ = 0;
};

}  // namespace vphi::coi
