#include "coi/process.hpp"

#include <algorithm>

#include "coi/daemon.hpp"
#include "mic/sysfs.hpp"
#include "scif/types.hpp"

namespace vphi::coi {

namespace {
/// Streaming chunk: what one scif_send of binary bytes carries. Matches
/// the kmalloc cap so the vPHI path chunks identically.
constexpr std::uint64_t kStreamChunk = 4ull << 20;
}  // namespace

sim::Expected<std::vector<EngineInfo>> enumerate_engines(scif::Provider& p) {
  auto ids = p.get_node_ids();
  if (!ids) return ids.status();
  std::vector<EngineInfo> engines;
  // Cards are nodes 1..N; probe each card's sysfs identity.
  for (std::uint32_t index = 0;; ++index) {
    auto info = p.card_info(index);
    if (!info) break;
    EngineInfo engine;
    engine.index = index;
    engine.node = static_cast<scif::NodeId>(index + 1);
    engine.family = info->get("family").value_or("");
    engine.sku = info->get("sku").value_or("");
    engines.push_back(std::move(engine));
  }
  return engines;
}

Process::~Process() { destroy(); }

Process::Process(Process&& other) noexcept
    : provider_(other.provider_), epd_(other.epd_), pid_(other.pid_) {
  other.provider_ = nullptr;
  other.epd_ = -1;
}

Process& Process::operator=(Process&& other) noexcept {
  if (this != &other) {
    destroy();
    provider_ = other.provider_;
    epd_ = other.epd_;
    pid_ = other.pid_;
    other.provider_ = nullptr;
    other.epd_ = -1;
  }
  return *this;
}

sim::Expected<Process> Process::create(scif::Provider& p,
                                       scif::NodeId card_node,
                                       const BinaryImage& image,
                                       std::uint32_t nthreads,
                                       std::vector<std::string> args) {
  auto epd = p.open();
  if (!epd) return epd.status();
  const auto connected =
      p.connect(*epd, scif::PortId{card_node, kDaemonPort});
  if (!sim::ok(connected)) {
    p.close(*epd);
    return connected;
  }

  // Metadata first.
  Encoder meta;
  meta.put_string(image.name);
  meta.put_u64(image.bytes);
  meta.put_u32(static_cast<std::uint32_t>(image.libraries.size()));
  for (const auto& lib : image.libraries) {
    meta.put_string(lib.name);
    meta.put_u64(lib.bytes);
  }
  meta.put_string(image.entry_kernel);
  meta.put_u32(nthreads);
  meta.put_strings(args);
  auto sent = send_msg(p, *epd, MsgType::kCreateProcess, meta);
  if (!sim::ok(sent)) {
    p.close(*epd);
    return sent;
  }

  // Stream the executable + libraries. The bytes are synthetic (a filled
  // buffer reused per chunk) but every byte really crosses the SCIF stream,
  // so the launch phase of Figs. 6-8 gets its full PCIe cost.
  std::vector<std::uint8_t> chunk(static_cast<std::size_t>(
      std::min<std::uint64_t>(kStreamChunk, image.total_bytes())));
  std::fill(chunk.begin(), chunk.end(), std::uint8_t{0x7F});  // "ELF"-ish
  std::uint64_t remaining = image.total_bytes();
  std::vector<std::uint8_t> payload;
  while (remaining > 0) {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, kStreamChunk));
    MsgHeader header{MsgType::kBinaryChunk, static_cast<std::uint32_t>(n)};
    auto s = p.send(*epd, &header, sizeof(header), scif::SCIF_SEND_BLOCK);
    if (!s) {
      p.close(*epd);
      return s.status();
    }
    s = p.send(*epd, chunk.data(), n, scif::SCIF_SEND_BLOCK);
    if (!s) {
      p.close(*epd);
      return s.status();
    }
    remaining -= n;
  }

  // Daemon acks with the pid once the loader is done.
  auto started = recv_msg(p, *epd, payload);
  if (!started) {
    p.close(*epd);
    return started.status();
  }
  if (started->type != MsgType::kProcessStarted) {
    p.close(*epd);
    return sim::Status::kConnectionReset;
  }
  Decoder dec{payload.data(), payload.size()};
  auto pid = dec.u64();
  if (!pid) {
    p.close(*epd);
    return pid.status();
  }
  return Process{&p, *epd, *pid};
}

sim::Expected<std::uint64_t> Process::alloc_buffer(std::uint64_t size) {
  if (!valid()) return sim::Status::kBadDescriptor;
  Encoder e;
  e.put_u64(size);
  auto sent = send_msg(*provider_, epd_, MsgType::kAllocBuffer, e);
  if (!sim::ok(sent)) return sent;
  std::vector<std::uint8_t> payload;
  auto reply = recv_msg(*provider_, epd_, payload);
  if (!reply) return reply.status();
  if (reply->type != MsgType::kBufferHandle) return sim::Status::kNoMemory;
  Decoder dec{payload.data(), payload.size()};
  return dec.u64();
}

sim::Status Process::free_buffer(std::uint64_t handle) {
  if (!valid()) return sim::Status::kBadDescriptor;
  Encoder e;
  e.put_u64(handle);
  auto sent = send_msg(*provider_, epd_, MsgType::kFreeBuffer, e);
  if (!sim::ok(sent)) return sent;
  std::vector<std::uint8_t> payload;
  auto reply = recv_msg(*provider_, epd_, payload);
  if (!reply) return reply.status();
  return reply->type == MsgType::kAck ? sim::Status::kOk
                                      : sim::Status::kInvalidArgument;
}

sim::Status Process::write_buffer(std::uint64_t handle, const void* src,
                                  std::uint64_t len) {
  if (!valid()) return sim::Status::kBadDescriptor;
  Encoder e;
  e.put_u64(handle);
  e.put_u64(len);
  auto sent = send_msg(*provider_, epd_, MsgType::kWriteBuffer, e);
  if (!sim::ok(sent)) return sent;
  auto pushed = provider_->send(epd_, src, len, scif::SCIF_SEND_BLOCK);
  if (!pushed) return pushed.status();
  std::vector<std::uint8_t> payload;
  auto reply = recv_msg(*provider_, epd_, payload);
  if (!reply) return reply.status();
  return reply->type == MsgType::kAck ? sim::Status::kOk
                                      : sim::Status::kBadAddress;
}

sim::Status Process::read_buffer(std::uint64_t handle, void* dst,
                                 std::uint64_t len) {
  if (!valid()) return sim::Status::kBadDescriptor;
  Encoder e;
  e.put_u64(handle);
  e.put_u64(len);
  auto sent = send_msg(*provider_, epd_, MsgType::kReadBuffer, e);
  if (!sim::ok(sent)) return sent;
  std::vector<std::uint8_t> payload;
  auto reply = recv_msg(*provider_, epd_, payload);
  if (!reply) return reply.status();
  if (reply->type != MsgType::kBufferData) return sim::Status::kBadAddress;
  auto got = provider_->recv(epd_, dst, len, scif::SCIF_RECV_BLOCK);
  if (!got) return got.status();
  return *got == len ? sim::Status::kOk : sim::Status::kConnectionReset;
}

sim::Expected<FunctionResult> Process::run_function(
    const std::string& kernel, const std::vector<std::string>& args) {
  if (!valid()) return sim::Status::kBadDescriptor;
  Encoder e;
  e.put_string(kernel);
  e.put_strings(args);
  auto sent = send_msg(*provider_, epd_, MsgType::kRunFunction, e);
  if (!sim::ok(sent)) return sent;
  std::vector<std::uint8_t> payload;
  auto reply = recv_msg(*provider_, epd_, payload);
  if (!reply) return reply.status();
  if (reply->type != MsgType::kFunctionResult) {
    return sim::Status::kConnectionReset;
  }
  Decoder dec{payload.data(), payload.size()};
  auto code = dec.i64();
  auto output = dec.string();
  if (!code || !output) return sim::Status::kConnectionReset;
  return FunctionResult{static_cast<int>(*code), std::move(*output)};
}

sim::Expected<FunctionResult> Process::wait_for_shutdown() {
  if (!valid()) return sim::Status::kBadDescriptor;
  auto sent = send_msg(*provider_, epd_, MsgType::kShutdownProcess, Encoder{});
  if (!sim::ok(sent)) return sent;
  std::vector<std::uint8_t> payload;
  auto reply = recv_msg(*provider_, epd_, payload);
  if (!reply) return reply.status();
  if (reply->type != MsgType::kProcessExited) {
    return sim::Status::kConnectionReset;
  }
  Decoder dec{payload.data(), payload.size()};
  auto code = dec.i64();
  auto output = dec.string();
  if (!code || !output) return sim::Status::kConnectionReset;
  return FunctionResult{static_cast<int>(*code), std::move(*output)};
}

sim::Status Process::destroy() {
  if (!valid()) return sim::Status::kOk;
  const auto closed = provider_->close(epd_);
  epd_ = -1;
  provider_ = nullptr;
  return closed;
}

}  // namespace vphi::coi
