// coi_daemon — the card-resident service that receives offload requests.
//
// On a real card the MPSS init scripts start coi_daemon after the uOS
// boots; it listens on a well-known SCIF port, receives binaries and
// run-function requests from host-side COI clients, and manages card
// processes. Our daemon does the same against the simulated card: it
// charges streaming time for the binary bytes, exec/loader cost, spawns
// the requested number of uOS threads (modeled), and runs the binary's
// entry kernel from the KernelRegistry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include "sim/thread_safety.hpp"
#include <thread>
#include <vector>

#include "coi/binary.hpp"
#include "coi/wire.hpp"
#include "mic/card.hpp"
#include "scif/host_provider.hpp"

namespace vphi::coi {

class Daemon {
 public:
  Daemon(scif::Fabric& fabric, mic::Card& card, scif::NodeId card_node);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Begin accepting connections. Idempotent.
  sim::Status start();
  void stop();

  std::uint64_t processes_created() const;
  std::uint64_t functions_run() const;

 private:
  struct CardProcess {
    std::uint64_t pid = 0;
    BinaryImage image;
    std::uint32_t nthreads = 1;
    std::vector<std::string> args;
    std::vector<std::uint64_t> buffers;  ///< device-memory offsets owned
  };

  void accept_loop();
  void serve_connection(int epd);
  /// Run `image.entry_kernel` as the process main; returns exit code.
  int run_kernel(CardProcess& proc, sim::Actor& actor, std::string& output);

  scif::Fabric* fabric_;
  mic::Card* card_;
  scif::NodeId card_node_;
  std::unique_ptr<scif::HostProvider> provider_;
  int listener_epd_ = -1;

  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  sim::Mutex conn_mu_;
  std::vector<std::thread> connections_ VPHI_GUARDED_BY(conn_mu_);

  mutable sim::Mutex stats_mu_;
  std::uint64_t next_pid_ VPHI_GUARDED_BY(stats_mu_) = 1;
  std::uint64_t processes_created_ VPHI_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t functions_run_ VPHI_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace vphi::coi
