#include "coi/offload.hpp"

namespace vphi::coi::offload {

sim::Expected<OffloadRegion> OffloadRegion::attach(scif::Provider& provider,
                                                   scif::NodeId card_node,
                                                   std::uint32_t threads) {
  BinaryImage image;
  image.name = "offload_main.mic";
  image.bytes = 8ull << 20;                       // the card-side shadow
  image.libraries = {{"liboffload.so", 24ull << 20}};
  image.entry_kernel = "noop";  // the shadow idles; regions run as functions
  auto process = Process::create(provider, card_node, image, threads, {});
  if (!process) return process.status();
  return OffloadRegion{std::move(*process)};
}

sim::Expected<FunctionResult> OffloadRegion::run(
    const std::string& kernel, std::vector<Clause> clauses,
    std::vector<std::string> extra_args) {
  // Allocate card buffers and stage `in`/`inout` data.
  std::vector<std::uint64_t> handles;
  handles.reserve(clauses.size());
  auto cleanup = [&] {
    for (const auto handle : handles) process_.free_buffer(handle);
  };

  for (const auto& clause : clauses) {
    auto handle = process_.alloc_buffer(clause.len);
    if (!handle) {
      cleanup();
      return handle.status();
    }
    handles.push_back(*handle);
    if (clause.dir != Clause::Dir::kOut) {
      const auto wrote =
          process_.write_buffer(*handle, clause.host_ptr, clause.len);
      if (!sim::ok(wrote)) {
        cleanup();
        return wrote;
      }
    }
  }

  // Kernel args: "<offset> <len>" per clause, then the user's args.
  std::vector<std::string> args;
  args.reserve(clauses.size() * 2 + extra_args.size());
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    args.push_back(std::to_string(handles[i]));
    args.push_back(std::to_string(clauses[i].len));
  }
  for (auto& a : extra_args) args.push_back(std::move(a));

  auto result = process_.run_function(kernel, args);
  if (!result) {
    cleanup();
    return result.status();
  }

  // Copy back `out`/`inout` data.
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (clauses[i].dir == Clause::Dir::kIn) continue;
    const auto read =
        process_.read_buffer(handles[i], clauses[i].host_ptr, clauses[i].len);
    if (!sim::ok(read)) {
      cleanup();
      return read;
    }
  }
  cleanup();
  return result;
}

}  // namespace vphi::coi::offload
