// Framed message wire format for the COI client <-> coi_daemon protocol.
//
// COI rides on SCIF send/recv (the paper's Fig. 1): every message is a
// fixed header (type + payload length) followed by a serialized payload.
// The encoding is a simple length-prefixed scheme — enough to carry the
// process-create / run-function / buffer RPCs the daemon speaks.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "scif/provider.hpp"
#include "sim/status.hpp"

namespace vphi::coi {

/// The well-known SCIF port coi_daemon listens on.
inline constexpr scif::Port kDaemonPort = 300;

enum class MsgType : std::uint32_t {
  kCreateProcess = 1,  ///< binary metadata; payload streaming follows
  kBinaryChunk,        ///< one chunk of binary/library bytes
  kProcessStarted,     ///< daemon -> client: pid
  kRunFunction,        ///< enqueue a kernel invocation
  kFunctionResult,     ///< daemon -> client: exit code + output
  kAllocBuffer,        ///< client -> daemon: size
  kBufferHandle,       ///< daemon -> client: handle + registered offset
  kFreeBuffer,
  kWriteBuffer,        ///< client -> daemon: offset + len, then raw bytes
  kReadBuffer,         ///< client -> daemon: offset + len; reply kBufferData
  kBufferData,         ///< daemon -> client: raw buffer contents follow
  kShutdownProcess,    ///< client -> daemon: run main, return, exit
  kProcessExited,      ///< daemon -> client: exit code + output
  kError,              ///< daemon -> client: status
  kAck,
};

struct MsgHeader {
  MsgType type = MsgType::kAck;
  std::uint32_t payload_len = 0;
};
static_assert(sizeof(MsgHeader) == 8);

/// Append-only byte encoder.
class Encoder {
 public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof(v)); }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }
  void put_strings(const std::vector<std::string>& v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& s : v) put_string(s);
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }

 private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked byte decoder.
class Decoder {
 public:
  Decoder(const void* data, std::size_t len)
      : data_(static_cast<const std::uint8_t*>(data)), len_(len) {}

  sim::Expected<std::uint32_t> u32() {
    std::uint32_t v;
    if (!take(&v, sizeof(v))) return sim::Status::kOutOfRange;
    return v;
  }
  sim::Expected<std::uint64_t> u64() {
    std::uint64_t v;
    if (!take(&v, sizeof(v))) return sim::Status::kOutOfRange;
    return v;
  }
  sim::Expected<std::int64_t> i64() {
    std::int64_t v;
    if (!take(&v, sizeof(v))) return sim::Status::kOutOfRange;
    return v;
  }
  sim::Expected<std::string> string() {
    auto n = u32();
    if (!n) return n.status();
    if (pos_ + *n > len_) return sim::Status::kOutOfRange;
    std::string s(reinterpret_cast<const char*>(data_ + pos_), *n);
    pos_ += *n;
    return s;
  }
  sim::Expected<std::vector<std::string>> strings() {
    auto n = u32();
    if (!n) return n.status();
    std::vector<std::string> out;
    out.reserve(*n);
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto s = string();
      if (!s) return s.status();
      out.push_back(std::move(*s));
    }
    return out;
  }
  std::size_t remaining() const noexcept { return len_ - pos_; }

 private:
  bool take(void* dst, std::size_t n) {
    if (pos_ + n > len_) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Send one framed message over a connected SCIF endpoint.
sim::Status send_msg(scif::Provider& p, int epd, MsgType type,
                     const Encoder& payload);
/// Receive one framed message (blocking). Returns the header; payload is
/// appended to `payload_out`.
sim::Expected<MsgHeader> recv_msg(scif::Provider& p, int epd,
                                  std::vector<std::uint8_t>& payload_out);

}  // namespace vphi::coi
