// MIC binary images and the kernel registry.
//
// A real micnativeloadex ships an x86 ELF (plus MKL/OpenMP shared objects)
// to the card and execs it under the uOS. We cannot execute k1om ELF on the
// simulator, so a BinaryImage carries (a) the *sizes* of the executable and
// its dependent libraries — these drive the PCIe streaming time, the
// dominant launch cost in Figs. 6-8 — and (b) the name of an entry kernel
// registered in the KernelRegistry: a C++ callable that *is* the program's
// behaviour (it computes real results on card memory and charges uOS-
// modeled execution time).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include "sim/thread_safety.hpp"
#include <string>
#include <vector>

#include "mic/card.hpp"
#include "sim/actor.hpp"
#include "sim/status.hpp"

namespace vphi::coi {

struct Library {
  std::string name;
  std::uint64_t bytes = 0;
};

struct BinaryImage {
  std::string name;
  std::uint64_t bytes = 0;          ///< executable size streamed to the card
  std::vector<Library> libraries;   ///< dependent .so's streamed alongside
  std::string entry_kernel;         ///< KernelRegistry entry to run as main()

  std::uint64_t total_bytes() const {
    std::uint64_t total = bytes;
    for (const auto& lib : libraries) total += lib.bytes;
    return total;
  }
};

/// Execution context a kernel runs in on the card.
struct KernelContext {
  mic::Card* card = nullptr;
  sim::Actor* actor = nullptr;     ///< the card-side process timeline
  std::uint32_t nthreads = 1;      ///< requested MIC threads
  std::vector<std::string> args;
  std::string output;              ///< becomes the process "stdout"
};

/// A MIC program entry point: returns the process exit code.
using KernelFn = std::function<int(KernelContext&)>;

/// Global name -> kernel table (our stand-in for the k1om loader).
class KernelRegistry {
 public:
  static KernelRegistry& instance();

  void register_kernel(const std::string& name, KernelFn fn);
  sim::Expected<KernelFn> lookup(const std::string& name) const;
  bool contains(const std::string& name) const;

 private:
  mutable sim::Mutex mu_;
  std::map<std::string, KernelFn> table_ VPHI_GUARDED_BY(mu_);
};

/// Convenience: static-init registration.
struct KernelRegistration {
  KernelRegistration(const std::string& name, KernelFn fn) {
    KernelRegistry::instance().register_kernel(name, std::move(fn));
  }
};

}  // namespace vphi::coi
