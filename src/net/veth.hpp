// The emulated network interface over SCIF (mic0).
//
// Sec. II-B: "Xeon Phi software stack includes an emulated network driver
// as part of the uOS, that uses SCIF, and enables users to utilize network
// tools (e.g. ssh) and remotely connect to the Xeon Phi device." This is
// that driver: an Ethernet-like framed channel over a SCIF connection,
// with per-frame driver costs and MTU segmentation — enough to carry the
// ssh-style remote-execution path the paper's Sec. IV-A discusses as the
// *other* way to use native mode (and rejects for cloud setups).
#pragma once

#include <cstdint>
#include <vector>

#include "scif/provider.hpp"
#include "sim/status.hpp"
#include "sim/time.hpp"

namespace vphi::net {

/// Well-known SCIF port the card-side netdev binds (the mic0 backend).
inline constexpr scif::Port kNetdevPort = 400;

/// MTU: payload bytes per frame. mic0 supports jumbo frames; MPSS ships
/// with a ~15.5 KiB default, which we adopt.
inline constexpr std::size_t kMtu = 15'872;

/// Per-frame driver cost on each side (skb alloc, softirq, csum) — the
/// reason the emulated interface is far slower than raw SCIF.
inline constexpr sim::Nanos kPerFrameCost = 10'000;

/// One endpoint of the virtual Ethernet pair. Construct over an already
/// connected SCIF endpoint (one side on the host, one on the card).
class VirtualEthernet {
 public:
  VirtualEthernet(scif::Provider& provider, int epd)
      : provider_(&provider), epd_(epd) {}

  /// Send one datagram: segmented into MTU-sized frames, each paying the
  /// per-frame driver cost plus the SCIF stream cost.
  sim::Status send_datagram(const void* data, std::size_t len);

  /// Receive one full datagram (blocking). Returns its payload.
  sim::Expected<std::vector<std::uint8_t>> recv_datagram();

  std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  std::uint64_t frames_received() const noexcept { return frames_received_; }

 private:
  struct FrameHeader {
    std::uint32_t datagram_len = 0;  ///< total datagram size (first frame)
    std::uint32_t frame_len = 0;     ///< payload bytes in this frame
  };

  scif::Provider* provider_;
  int epd_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

}  // namespace vphi::net
