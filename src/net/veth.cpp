#include "net/veth.hpp"

#include <algorithm>
#include <cstring>

#include "scif/types.hpp"
#include "sim/actor.hpp"

namespace vphi::net {

sim::Status VirtualEthernet::send_datagram(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  auto& actor = sim::this_actor();
  std::size_t off = 0;
  do {
    const std::size_t chunk = std::min(kMtu, len - off);
    FrameHeader header{static_cast<std::uint32_t>(len),
                       static_cast<std::uint32_t>(chunk)};
    actor.advance(kPerFrameCost);
    auto sent = provider_->send(epd_, &header, sizeof(header),
                                scif::SCIF_SEND_BLOCK);
    if (!sent) return sent.status();
    if (chunk > 0) {
      sent = provider_->send(epd_, bytes + off, chunk, scif::SCIF_SEND_BLOCK);
      if (!sent) return sent.status();
    }
    ++frames_sent_;
    off += chunk;
  } while (off < len);
  return sim::Status::kOk;
}

sim::Expected<std::vector<std::uint8_t>> VirtualEthernet::recv_datagram() {
  auto& actor = sim::this_actor();
  std::vector<std::uint8_t> datagram;
  std::size_t expected = 0;
  do {
    FrameHeader header;
    auto got = provider_->recv(epd_, &header, sizeof(header),
                               scif::SCIF_RECV_BLOCK);
    if (!got) return got.status();
    if (*got != sizeof(header)) return sim::Status::kConnectionReset;
    actor.advance(kPerFrameCost);
    if (datagram.empty()) {
      expected = header.datagram_len;
      datagram.reserve(expected);
    }
    if (header.frame_len > 0) {
      const std::size_t prior = datagram.size();
      datagram.resize(prior + header.frame_len);
      got = provider_->recv(epd_, datagram.data() + prior, header.frame_len,
                            scif::SCIF_RECV_BLOCK);
      if (!got) return got.status();
    }
    ++frames_received_;
  } while (datagram.size() < expected);
  return datagram;
}

}  // namespace vphi::net
