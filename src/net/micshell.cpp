#include "net/micshell.hpp"

#include <algorithm>
#include <cstring>

#include "coi/binary.hpp"
#include "coi/wire.hpp"
#include "scif/types.hpp"
#include "sim/actor.hpp"

namespace vphi::net {

namespace {

/// Charge the ssh crypto cost for a datagram of `len` bytes.
void charge_crypto(std::size_t len) {
  sim::this_actor().advance(kCryptoPerDatagram +
                            sim::transfer_time(len, kCryptoBytesPerSecond));
}

/// scp pushes content in datagrams of this size.
constexpr std::size_t kScpChunk = 256 * 1024;

}  // namespace

// --- daemon -----------------------------------------------------------------

MicShellDaemon::MicShellDaemon(scif::Fabric& fabric, mic::Card& card,
                               scif::NodeId node)
    : fabric_(&fabric),
      card_(&card),
      node_(node),
      provider_(std::make_unique<scif::HostProvider>(fabric, node)) {}

MicShellDaemon::~MicShellDaemon() { stop(); }

sim::Status MicShellDaemon::start() {
  if (running_.exchange(true)) return sim::Status::kOk;
  auto epd = provider_->open();
  if (!epd) return epd.status();
  listener_epd_ = *epd;
  auto bound = provider_->bind(listener_epd_, kShellPort);
  if (!bound) return bound.status();
  const auto listening = provider_->listen(listener_epd_, 8);
  if (!sim::ok(listening)) return listening;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return sim::Status::kOk;
}

void MicShellDaemon::stop() {
  if (!running_.exchange(false)) return;
  provider_->close_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> sessions;
  {
    sim::MutexLock lock(mu_);
    sessions.swap(sessions_threads_);
  }
  for (auto& s : sessions) {
    if (s.joinable()) s.join();
  }
}

void MicShellDaemon::accept_loop() {
  sim::Actor actor{"mic-sshd"};
  sim::ActorScope scope(actor);
  actor.sync_to(card_->card_actor().now());
  while (running_.load(std::memory_order_relaxed)) {
    auto acc = provider_->accept(listener_epd_, scif::SCIF_ACCEPT_SYNC);
    if (!acc) break;
    sim::MutexLock lock(mu_);
    ++session_count_;
    sessions_threads_.emplace_back(
        [this, epd = acc->epd] { serve_session(epd); });
  }
}

void MicShellDaemon::serve_session(int epd) {
  sim::Actor actor{"mic-sshd-session", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  VirtualEthernet veth{*provider_, epd};

  for (;;) {
    auto datagram = veth.recv_datagram();
    if (!datagram) break;  // session closed
    charge_crypto(datagram->size());
    coi::Decoder dec{datagram->data(), datagram->size()};
    auto command = dec.string();
    if (!command) break;

    coi::Encoder reply;
    if (*command == "push") {
      auto name = dec.string();
      auto bytes = dec.u64();
      if (!name || !bytes) break;
      // Receive the content datagrams.
      std::uint64_t remaining = *bytes;
      bool failed = false;
      while (remaining > 0) {
        auto chunk = veth.recv_datagram();
        if (!chunk) {
          failed = true;
          break;
        }
        charge_crypto(chunk->size());
        remaining -= std::min<std::uint64_t>(remaining, chunk->size());
      }
      if (failed) break;
      {
        sim::MutexLock lock(mu_);
        files_[*name] = *bytes;
      }
      reply.put_string("ok");
      reply.put_i64(0);
    } else if (*command == "exec") {
      auto binary = dec.string();
      auto kernel = dec.string();
      auto nthreads = dec.u32();
      auto args = dec.strings();
      if (!binary || !kernel || !nthreads || !args) break;
      bool have_file;
      {
        sim::MutexLock lock(mu_);
        have_file = files_.count(*binary) > 0;
      }
      if (!have_file) {
        reply.put_string("sh: " + *binary + ": No such file or directory");
        reply.put_i64(127);
      } else {
        auto fn = coi::KernelRegistry::instance().lookup(*kernel);
        if (!fn) {
          reply.put_string("exec format error");
          reply.put_i64(126);
        } else {
          // exec + thread spawn + the kernel itself, on this session's
          // card-side timeline.
          actor.advance(card_->scheduler().exec_cost() +
                        card_->scheduler().spawn_cost(*nthreads));
          coi::KernelContext ctx;
          ctx.card = card_;
          ctx.actor = &actor;
          ctx.nthreads = *nthreads;
          ctx.args = *args;
          const int code = (*fn)(ctx);
          reply.put_string(ctx.output);
          reply.put_i64(code);
        }
      }
    } else if (*command == "info") {
      reply.put_string(card_->sysfs().render());
      reply.put_i64(0);
    } else {
      reply.put_string("sh: " + *command + ": command not found");
      reply.put_i64(127);
    }

    coi::Encoder framed;
    framed = std::move(reply);
    charge_crypto(framed.bytes().size());
    if (!sim::ok(veth.send_datagram(framed.bytes().data(),
                                    framed.bytes().size()))) {
      break;
    }
  }
  provider_->close(epd);
}

std::uint64_t MicShellDaemon::stored_bytes() const {
  sim::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [_, bytes] : files_) total += bytes;
  return total;
}

std::uint64_t MicShellDaemon::sessions() const {
  sim::MutexLock lock(mu_);
  return session_count_;
}

// --- client ------------------------------------------------------------------

sim::Expected<ShellClient> ShellClient::connect(scif::Provider& provider,
                                                scif::NodeId card_node) {
  auto epd = provider.open();
  if (!epd) return epd.status();
  const auto connected =
      provider.connect(*epd, scif::PortId{card_node, kShellPort});
  if (!sim::ok(connected)) {
    provider.close(*epd);
    return connected;
  }
  return ShellClient{&provider, *epd};
}

ShellClient::~ShellClient() { close(); }

ShellClient::ShellClient(ShellClient&& other) noexcept
    : provider_(other.provider_),
      epd_(other.epd_),
      veth_(*other.provider_, other.epd_) {
  other.provider_ = nullptr;
  other.epd_ = -1;
}

sim::Status ShellClient::push_file(const std::string& name,
                                   std::uint64_t bytes) {
  if (provider_ == nullptr) return sim::Status::kBadDescriptor;
  coi::Encoder cmd;
  cmd.put_string("push");
  cmd.put_string(name);
  cmd.put_u64(bytes);
  charge_crypto(cmd.bytes().size());
  auto sent = veth_.send_datagram(cmd.bytes().data(), cmd.bytes().size());
  if (!sim::ok(sent)) return sent;

  std::vector<std::uint8_t> chunk(
      static_cast<std::size_t>(std::min<std::uint64_t>(bytes, kScpChunk)),
      0x42);
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const auto n =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kScpChunk));
    charge_crypto(n);
    sent = veth_.send_datagram(chunk.data(), n);
    if (!sim::ok(sent)) return sent;
    remaining -= n;
  }
  auto reply = veth_.recv_datagram();
  if (!reply) return reply.status();
  charge_crypto(reply->size());
  coi::Decoder dec{reply->data(), reply->size()};
  auto status_text = dec.string();
  auto code = dec.i64();
  if (!status_text || !code) return sim::Status::kConnectionReset;
  return *code == 0 ? sim::Status::kOk : sim::Status::kInternal;
}

sim::Expected<ExecResult> ShellClient::exec(
    const std::string& binary, const std::string& kernel,
    std::uint32_t nthreads, const std::vector<std::string>& args) {
  if (provider_ == nullptr) return sim::Status::kBadDescriptor;
  coi::Encoder cmd;
  cmd.put_string("exec");
  cmd.put_string(binary);
  cmd.put_string(kernel);
  cmd.put_u32(nthreads);
  cmd.put_strings(args);
  charge_crypto(cmd.bytes().size());
  const auto sent = veth_.send_datagram(cmd.bytes().data(), cmd.bytes().size());
  if (!sim::ok(sent)) return sent;

  auto reply = veth_.recv_datagram();
  if (!reply) return reply.status();
  charge_crypto(reply->size());
  coi::Decoder dec{reply->data(), reply->size()};
  auto output = dec.string();
  auto code = dec.i64();
  if (!output || !code) return sim::Status::kConnectionReset;
  return ExecResult{static_cast<int>(*code), std::move(*output)};
}

sim::Status ShellClient::close() {
  if (provider_ == nullptr || epd_ < 0) return sim::Status::kOk;
  const auto closed = provider_->close(epd_);
  epd_ = -1;
  provider_ = nullptr;
  return closed;
}

}  // namespace vphi::net
