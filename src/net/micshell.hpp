// ssh-style remote access to the card over the emulated network.
//
// Sec. IV-A: "In native mode of execution there are two choices. The user
// can either ssh to the accelerator and execute the application locally,
// or launch the MIC executable directly from the host. In the first case
// the user should explicitly copy the executables, libraries and other
// dependencies on the coprocessor and then execute" — and the paper
// rejects that first option for cloud setups ("many users logged in a
// shared accelerator environment ruining the isolation characteristics").
//
// This module makes that rejected option runnable so it can be compared:
// MicShellDaemon is the card's sshd stand-in (sessions ride the
// VirtualEthernet), ShellClient offers scp-like push and remote exec.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include "sim/thread_safety.hpp"
#include <string>
#include <thread>
#include <vector>

#include "mic/card.hpp"
#include "net/veth.hpp"
#include "scif/host_provider.hpp"

namespace vphi::net {

/// Well-known SCIF port the shell daemon (sshd) listens on, over the
/// emulated interface.
inline constexpr scif::Port kShellPort = 401;

/// ssh transport crypto cost: fixed per datagram plus per-byte (AES on a
/// single in-order KNC core is slow — a real pain point of the ssh path).
inline constexpr sim::Nanos kCryptoPerDatagram = 20'000;
inline constexpr double kCryptoBytesPerSecond = 1.2e9;

struct ExecResult {
  int exit_code = 0;
  std::string output;
};

class MicShellDaemon {
 public:
  MicShellDaemon(scif::Fabric& fabric, mic::Card& card, scif::NodeId node);
  ~MicShellDaemon();

  MicShellDaemon(const MicShellDaemon&) = delete;
  MicShellDaemon& operator=(const MicShellDaemon&) = delete;

  sim::Status start();
  void stop();

  /// Bytes of files pushed into the card's "filesystem" so far.
  std::uint64_t stored_bytes() const;
  std::uint64_t sessions() const;

 private:
  void accept_loop();
  void serve_session(int epd);

  scif::Fabric* fabric_;
  mic::Card* card_;
  scif::NodeId node_;
  std::unique_ptr<scif::HostProvider> provider_;
  int listener_epd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  mutable sim::Mutex mu_;
  std::vector<std::thread> sessions_threads_ VPHI_GUARDED_BY(mu_);
  /// name -> bytes
  std::map<std::string, std::uint64_t> files_ VPHI_GUARDED_BY(mu_);
  std::uint64_t session_count_ VPHI_GUARDED_BY(mu_) = 0;
};

/// The user's side: ssh/scp against the card's shell daemon.
class ShellClient {
 public:
  /// Opens one "ssh session" (SCIF connect + virtual Ethernet).
  static sim::Expected<ShellClient> connect(scif::Provider& provider,
                                            scif::NodeId card_node);
  ~ShellClient();

  ShellClient(ShellClient&&) noexcept;
  ShellClient& operator=(ShellClient&&) = delete;
  ShellClient(const ShellClient&) = delete;

  /// scp-like transfer: push `bytes` of content under `name`. The content
  /// is synthetic; every byte crosses the emulated network with frame and
  /// crypto costs.
  sim::Status push_file(const std::string& name, std::uint64_t bytes);

  /// Remote command: run a registered kernel with `nthreads` and args —
  /// what "ssh mic0 ./a.out" amounts to. The named binary must have been
  /// pushed first (the daemon checks its "filesystem").
  sim::Expected<ExecResult> exec(const std::string& binary,
                                 const std::string& kernel,
                                 std::uint32_t nthreads,
                                 const std::vector<std::string>& args);

  sim::Status close();

 private:
  ShellClient(scif::Provider* provider, int epd)
      : provider_(provider), epd_(epd), veth_(*provider, epd) {}

  scif::Provider* provider_;
  int epd_;
  VirtualEthernet veth_;
};

}  // namespace vphi::net
