// Quickstart: the smallest end-to-end vPHI program.
//
// Builds the paper's testbed (host + Xeon Phi 3120P + one QEMU-KVM VM with
// the vPHI split driver), starts a SCIF echo server on the card, and talks
// to it from *inside the VM* using the exact libscif-style API. Prints the
// simulated latencies so you can see the virtualization cost the paper
// measures (Fig. 4: ~7 us native vs ~382 us through vPHI).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>
#include <cstring>
#include <future>

#include "scif/api.hpp"
#include "sim/actor.hpp"
#include "tools/testbed.hpp"

using namespace vphi;           // NOLINT(google-build-using-namespace)
using namespace vphi::scif;     // NOLINT(google-build-using-namespace)

int main() {
  // 1. Assemble the testbed: host, card, SCIF fabric, one VM with vPHI.
  tools::Testbed bed{tools::TestbedConfig{}};
  std::printf("testbed up: card '%s %s', %zu VM(s)\n",
              bed.card().sysfs().get("family")->c_str(),
              bed.card().sysfs().get("sku")->c_str(), bed.vm_count());

  // 2. Card-side echo server (a process on the coprocessor's uOS).
  constexpr Port kEchoPort = 1'500;
  auto server = std::async(std::launch::async, [&bed] {
    sim::Actor actor{"card-echo"};
    sim::ActorScope scope(actor);
    auto& p = bed.card_provider();
    auto lep = p.open();
    if (!lep || !p.bind(*lep, kEchoPort) ||
        !sim::ok(p.listen(*lep, 4))) {
      return;
    }
    auto conn = p.accept(*lep, SCIF_ACCEPT_SYNC);
    if (!conn) return;
    // SCIF_RECV_BLOCK waits for the *full* requested length (Intel
    // semantics), so the echo protocol uses fixed 64-byte frames.
    char frame[64];
    for (;;) {
      auto got = p.recv(conn->epd, frame, sizeof(frame), SCIF_RECV_BLOCK);
      if (!got) break;  // client closed
      if (!p.send(conn->epd, frame, sizeof(frame), SCIF_SEND_BLOCK)) break;
    }
  });

  // 3. Guest application: the C-style SCIF API bound to the VM's provider.
  sim::Actor app{"guest-app"};
  sim::ActorScope scope(app);
  api::ProcessContext ctx(bed.vm(0).guest_scif());

  const auto epd = api::scif_open();
  const PortId dst{bed.card_node(), kEchoPort};
  if (epd < 0 || api::scif_connect(epd, &dst) != 0) {
    std::printf("connect failed: %s\n",
                std::string(sim::to_string(api::scif_last_error())).c_str());
    return 1;
  }
  std::printf("guest connected to card echo service at node %u port %u\n",
              dst.node, dst.port);

  char msg[64] = "hello, coprocessor!";
  char reply[64] = {};
  const sim::Nanos before = app.now();
  api::scif_send(epd, msg, sizeof(msg), SCIF_SEND_BLOCK);
  api::scif_recv(epd, reply, sizeof(reply), SCIF_RECV_BLOCK);
  const sim::Nanos rtt = app.now() - before;

  std::printf("echo reply: \"%s\"\n", reply);
  std::printf("guest round trip: %.1f us simulated "
              "(each direction pays the ~375 us vPHI ring overhead)\n",
              sim::to_micros(rtt));

  api::scif_close(epd);
  server.get();
  std::printf("done\n");
  return std::strcmp(msg, reply) == 0 ? 0 : 1;
}
