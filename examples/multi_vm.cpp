// Xeon Phi sharing — the capability the paper contributes ("to our
// knowledge, vPHI is the first approach that enables Xeon Phi sharing
// between multiple VMs running on the same physical node").
//
// Three VMs concurrently pull data from one card with RMA reads. Each VM's
// backend is its own QEMU process / host SCIF client, so the host driver
// multiplexes them naturally; the shared PCIe link is the contended
// resource, and the printed per-VM throughputs show the fair split.
//
//   ./build/examples/example_multi_vm [num_vms]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "scif/types.hpp"
#include "sim/actor.hpp"
#include "tools/testbed.hpp"

using namespace vphi;        // NOLINT(google-build-using-namespace)
using namespace vphi::scif;  // NOLINT(google-build-using-namespace)

namespace {
constexpr Port kBasePort = 1'800;
constexpr std::size_t kChunk = 16ull << 20;
constexpr int kRounds = 4;
}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t num_vms =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;
  tools::TestbedConfig config;
  config.num_vms = num_vms;
  tools::Testbed bed{config};
  std::printf("%u VMs sharing one %s\n\n", num_vms,
              bed.card().sysfs().get("sku")->c_str());

  // One card-side server per VM, each exporting a device-memory window.
  std::vector<std::thread> servers;
  for (std::uint32_t i = 0; i < num_vms; ++i) {
    servers.emplace_back([&bed, i] {
      sim::Actor actor{"card-srv" + std::to_string(i), sim::Actor::AtNow{}};
      sim::ActorScope scope(actor);
      auto& p = bed.card_provider();
      auto lep = p.open();
      if (!p.bind(*lep, static_cast<Port>(kBasePort + i)) ||
          !sim::ok(p.listen(*lep, 1))) {
        return;
      }
      auto conn = p.accept(*lep, SCIF_ACCEPT_SYNC);
      if (!conn) return;
      auto dev = bed.card().memory().allocate(kChunk);
      if (!dev) return;
      // SCIF_MAP_FIXED pins the window at offset 0 so clients can name it
      // without an out-of-band exchange.
      auto reg = p.register_mem(conn->epd, bed.card().memory().at(*dev),
                                kChunk, 0, SCIF_PROT_READ, SCIF_MAP_FIXED);
      if (!reg) return;
      // Stay alive until the client hangs up.
      char ack;
      p.recv(conn->epd, &ack, 1, SCIF_RECV_BLOCK);
    });
  }

  // One client thread per VM, all reading concurrently.
  std::vector<double> gbps(num_vms);
  std::vector<std::thread> clients;
  for (std::uint32_t i = 0; i < num_vms; ++i) {
    clients.emplace_back([&bed, &gbps, i] {
      sim::Actor actor{"vm" + std::to_string(i) + "-app",
                       sim::Actor::AtNow{}};
      sim::ActorScope scope(actor);
      auto& guest = bed.vm(i).guest_scif();
      auto epd = guest.open();
      if (!epd ||
          !sim::ok(guest.connect(
              *epd, PortId{bed.card_node(),
                           static_cast<Port>(kBasePort + i)}))) {
        return;
      }
      auto buf = bed.vm(i).alloc_user_buffer(kChunk);
      auto reg = guest.register_mem(*epd, *buf, kChunk, 0,
                                    SCIF_PROT_READ | SCIF_PROT_WRITE, 0);
      if (!reg) return;

      // Warm-up, then timed reads.
      if (!sim::ok(guest.readfrom(*epd, *reg, 4'096, 0, SCIF_RMA_SYNC))) {
        std::printf("vm%u warm-up read failed\n", i);
        return;
      }
      const sim::Nanos before = actor.now();
      for (int round = 0; round < kRounds; ++round) {
        if (!sim::ok(guest.readfrom(*epd, *reg, kChunk, 0, SCIF_RMA_SYNC))) {
          std::printf("vm%u read failed\n", i);
          return;
        }
      }
      const sim::Nanos elapsed = actor.now() - before;
      gbps[i] = static_cast<double>(kChunk) * kRounds /
                static_cast<double>(elapsed);
      char bye = 0;
      guest.send(*epd, &bye, 1, SCIF_SEND_BLOCK);
    });
  }
  for (auto& c : clients) c.join();
  for (auto& s : servers) s.join();

  double total = 0.0;
  for (std::uint32_t i = 0; i < num_vms; ++i) {
    std::printf("vm%u RMA read throughput: %.2f GB/s\n", i, gbps[i]);
    total += gbps[i];
  }
  std::printf("aggregate: %.2f GB/s (one VM alone reaches ~4.6 GB/s; the "
              "PCIe link is the shared bottleneck)\n",
              total);
  return 0;
}
