// Offload-mode usage through COI from inside a VM.
//
// The paper evaluates native mode but states vPHI supports all three Xeon
// Phi execution modes because they all ride SCIF. This example exercises
// the *offload* shape: a host-resident (here: guest-resident) application
// keeps a card process alive, allocates card buffers, and repeatedly
// enqueues kernels — the pattern an OpenMP-offload runtime generates.
//
//   ./build/examples/example_offload_pipeline
#include <cstdio>
#include <string>

#include "coi/binary.hpp"
#include "coi/process.hpp"
#include "sim/actor.hpp"
#include "tools/testbed.hpp"
#include "workloads/dgemm.hpp"

using namespace vphi;  // NOLINT(google-build-using-namespace)

namespace {

// A tiny "offload region": sums its argument range on the card.
int sum_kernel(coi::KernelContext& ctx) {
  long long total = 0;
  for (const auto& arg : ctx.args) total += std::atoll(arg.c_str());
  // A short modeled burst of card compute.
  ctx.actor->advance(50 * sim::kMicrosecond);
  ctx.output = std::to_string(total);
  return 0;
}

}  // namespace

int main() {
  tools::Testbed bed{tools::TestbedConfig{}};
  workloads::register_dgemm_kernel();
  coi::KernelRegistry::instance().register_kernel("offload_sum", sum_kernel);

  sim::Actor actor{"guest-offload", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = bed.vm(0).guest_scif();

  // Enumerate engines the way an offload runtime does at startup.
  auto engines = coi::enumerate_engines(guest);
  if (!engines || engines->empty()) {
    std::printf("no engines visible in the VM\n");
    return 1;
  }
  std::printf("engine 0: %s %s (node %u)\n\n", (*engines)[0].family.c_str(),
              (*engines)[0].sku.c_str(), (*engines)[0].node);

  // The offload runtime keeps one card process alive for the app.
  coi::BinaryImage image;
  image.name = "offload_rt.mic";
  image.bytes = 8ull << 20;  // the offload runtime's card-side shadow
  image.libraries = {{"liboffload.so", 24ull << 20}};
  image.entry_kernel = "noop";
  auto process = coi::Process::create(guest, bed.card_node(), image,
                                      /*nthreads=*/112, {});
  if (!process) {
    std::printf("process create failed\n");
    return 1;
  }
  std::printf("card process pid=%llu up (runtime + libs streamed)\n",
              static_cast<unsigned long long>(process->pid()));

  // Card buffer for the region's data (as COIBufferCreate would).
  auto buffer = process->alloc_buffer(32ull << 20);
  if (!buffer) {
    std::printf("buffer alloc failed\n");
    return 1;
  }
  std::printf("card buffer at device offset 0x%llx\n\n",
              static_cast<unsigned long long>(*buffer));

  // Enqueue a few offload regions.
  for (int i = 1; i <= 3; ++i) {
    const sim::Nanos before = actor.now();
    auto result = process->run_function(
        "offload_sum", {std::to_string(i * 100), std::to_string(i)});
    if (!result || result->exit_code != 0) {
      std::printf("offload region %d failed\n", i);
      return 1;
    }
    std::printf("region %d -> %s  (round trip %.1f us simulated)\n", i,
                result->output.c_str(),
                sim::to_micros(actor.now() - before));
  }

  process->free_buffer(*buffer);
  auto exited = process->wait_for_shutdown();
  std::printf("\ncard process exited with code %d\n",
              exited ? exited->exit_code : -1);
  return 0;
}
