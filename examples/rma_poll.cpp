// RDMA + polling from inside a VM: the high-performance-interconnect idiom
// Sec. II-B describes — a producer on the card writes into registered
// memory and raises a completion flag with scif_fence_signal; the consumer
// in the guest polls the flag instead of blocking in recv.
//
//   ./build/examples/example_rma_poll
#include <cstdio>
#include <cstring>
#include <future>

#include "scif/types.hpp"
#include "sim/actor.hpp"
#include "sim/rng.hpp"
#include "tools/testbed.hpp"

using namespace vphi;        // NOLINT(google-build-using-namespace)
using namespace vphi::scif;  // NOLINT(google-build-using-namespace)

namespace {
constexpr Port kPort = 1'700;
constexpr std::size_t kPayload = 4ull << 20;
// The completion flag lives in the last 8 bytes of the guest window.
constexpr std::size_t kWindow = kPayload + 4'096;
constexpr std::uint64_t kDoneFlag = 0xD04EF1A6;
}  // namespace

int main() {
  tools::Testbed bed{tools::TestbedConfig{}};

  // Card-side producer: accepts, registers device memory, and pushes the
  // payload into the *guest's* window with scif_writeto, then signals.
  auto producer = std::async(std::launch::async, [&bed] {
    sim::Actor actor{"card-producer", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    auto& p = bed.card_provider();
    auto lep = p.open();
    if (!p.bind(*lep, kPort) || !sim::ok(p.listen(*lep, 1))) return 1;
    auto conn = p.accept(*lep, SCIF_ACCEPT_SYNC);
    if (!conn) return 1;

    // Source data in card GDDR.
    auto dev = bed.card().memory().allocate(kPayload);
    auto* src = static_cast<std::byte*>(bed.card().memory().at(*dev));
    sim::Rng rng{2024};
    rng.fill(src, kPayload);
    auto reg = p.register_mem(conn->epd, src, kPayload, 0, SCIF_PROT_READ, 0);
    if (!reg) return 1;

    // Wait for the consumer's "window registered" byte before writing.
    char ready = 0;
    if (!p.recv(conn->epd, &ready, 1, SCIF_RECV_BLOCK)) return 1;

    // Push payload into the peer's registered window (offset 0), then
    // signal completion at the flag offset.
    if (!sim::ok(p.writeto(conn->epd, *reg, kPayload, 0, SCIF_RMA_SYNC))) {
      return 1;
    }
    if (!sim::ok(p.fence_signal(conn->epd, 0, 0, kPayload, kDoneFlag,
                                SCIF_SIGNAL_REMOTE))) {
      return 1;
    }
    std::printf("[card] pushed %zu MiB + raised completion flag\n",
                kPayload >> 20);
    // Hold the endpoint until the consumer is done.
    char ack;
    p.recv(conn->epd, &ack, 1, SCIF_RECV_BLOCK);
    return 0;
  });

  // Guest-side consumer.
  sim::Actor actor{"guest-consumer", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = bed.vm(0).guest_scif();
  auto epd = guest.open();
  if (!epd || !sim::ok(guest.connect(*epd, PortId{bed.card_node(), kPort}))) {
    std::printf("guest connect failed\n");
    return 1;
  }

  // Register a pinned guest window: payload area + flag page.
  auto buf = bed.vm(0).alloc_user_buffer(kWindow);
  auto* window = static_cast<std::byte*>(*buf);
  std::memset(window, 0, kWindow);
  // SCIF_MAP_FIXED at offset 0: the producer names the window by that
  // offset in its writeto/fence_signal without an out-of-band exchange.
  auto reg = guest.register_mem(*epd, window, kWindow, 0,
                                SCIF_PROT_READ | SCIF_PROT_WRITE,
                                SCIF_MAP_FIXED);
  if (!reg) {
    std::printf("guest register failed\n");
    return 1;
  }

  // Tell the producer the window is live.
  char ready = 1;
  guest.send(*epd, &ready, 1, SCIF_SEND_BLOCK);

  // Poll the flag (each probe costs simulated time, like a real spin).
  std::printf("[guest] window registered, polling for completion...\n");
  std::uint64_t flag = 0;
  std::uint64_t probes = 0;
  while (flag != kDoneFlag) {
    std::memcpy(&flag, window + kPayload, sizeof(flag));
    actor.advance(200);  // spin granularity
    ++probes;
  }
  std::printf("[guest] completion observed after %llu probes\n",
              static_cast<unsigned long long>(probes));

  // Validate the payload against the producer's PRNG stream.
  sim::Rng check{2024};
  std::vector<std::byte> expect(kPayload);
  check.fill(expect.data(), kPayload);
  const bool ok = std::memcmp(window, expect.data(), kPayload) == 0;
  std::printf("[guest] payload %s\n", ok ? "verified byte-exact" : "CORRUPT");

  char ack = 1;
  guest.send(*epd, &ack, 1, SCIF_SEND_BLOCK);
  producer.get();
  return ok ? 0 : 1;
}
