// Symmetric mode (the paper's third execution model): ranks of one parallel
// application split between a VM and the coprocessor, MPI-style.
//
// Ranks 0-1 run inside two different VMs (their SCIF traffic crosses the
// vPHI split driver), ranks 2-3 run on the card's uOS. The program does a
// ring pass, a barrier, and an allreduce — the communication skeleton of a
// symmetric MPI job — and prints each rank's simulated completion time.
//
// One rank per VM matters: with the paper's default backend policy, data
// transfers run *blocking* on the QEMU event loop, so two mutually-waiting
// ranks inside one VM would deadlock each other's requests (see the
// BlockingLoopHazard test); the paper's worker-thread mode is the cure.
//
//   ./build/examples/example_symmetric_mode
#include <cstdio>
#include <mutex>

#include "sim/actor.hpp"
#include "tools/symmetric.hpp"
#include "tools/testbed.hpp"

using namespace vphi;  // NOLINT(google-build-using-namespace)

int main() {
  tools::Testbed bed{tools::TestbedConfig{.num_vms = 2}};

  std::vector<tools::symm::World::RankSpec> ranks = {
      {&bed.vm(0).guest_scif(), "vm0-rank0"},
      {&bed.vm(1).guest_scif(), "vm1-rank1"},
      {&bed.card_provider(), "mic-rank2"},
      {&bed.card_provider(), "mic-rank3"},
  };
  tools::symm::World world{std::move(ranks), 4'000};

  std::mutex io_mu;
  const auto status = world.run([&](tools::symm::Rank& rank) -> sim::Status {
    // Ring pass: each rank sends its id around the ring and accumulates.
    int token = rank.rank();
    for (int hop = 0; hop < rank.size() - 1; ++hop) {
      const int next = (rank.rank() + 1) % rank.size();
      const int prev = (rank.rank() + rank.size() - 1) % rank.size();
      int incoming = 0;
      // Even ranks send first; odd ranks receive first (deadlock-free).
      if (rank.rank() % 2 == 0) {
        if (auto s = rank.send(next, &token, sizeof(token)); !sim::ok(s))
          return s;
        if (auto s = rank.recv(prev, &incoming, sizeof(incoming)); !sim::ok(s))
          return s;
      } else {
        if (auto s = rank.recv(prev, &incoming, sizeof(incoming)); !sim::ok(s))
          return s;
        if (auto s = rank.send(next, &token, sizeof(token)); !sim::ok(s))
          return s;
      }
      token = incoming;
    }

    if (auto s = rank.barrier(); !sim::ok(s)) return s;

    // Allreduce: everyone contributes rank+1; expect 1+2+3+4 = 10.
    double value = rank.rank() + 1.0;
    if (auto s = rank.allreduce_sum(&value, 1); !sim::ok(s)) return s;

    std::lock_guard lock(io_mu);
    std::printf("rank %d (%s): ring token=%d allreduce=%.0f done at "
                "t=%.1f us\n",
                rank.rank(), rank.rank() < 2 ? "VM " : "MIC", token,
                value, sim::to_micros(sim::this_actor().now()));
    return value == 10.0 ? sim::Status::kOk : sim::Status::kInternal;
  });

  std::printf("symmetric job: %s\n",
              std::string(sim::to_string(status)).c_str());
  return sim::ok(status) ? 0 : 1;
}
