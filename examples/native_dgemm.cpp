// The paper's application experiment (Sec. IV-C), runnable end to end:
// cblas_dgemm launched on the Xeon Phi with micnativeloadex — first from
// the host (native baseline), then from inside a VM through vPHI — with
// the per-phase timing breakdown the paper discusses.
//
//   ./build/examples/example_native_dgemm [n] [threads]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/actor.hpp"
#include "tools/micnativeloadex.hpp"
#include "tools/testbed.hpp"
#include "workloads/dgemm.hpp"

using namespace vphi;  // NOLINT(google-build-using-namespace)

namespace {

void report(const char* where, const tools::LoadexResult& r) {
  std::printf("%-6s exit=%d  handshake=%8.2f ms  transfer=%8.2f ms  "
              "exec=%9.2f ms  total=%9.2f ms\n",
              where, r.exit_code, sim::to_micros(r.handshake_ns) / 1e3,
              sim::to_micros(r.transfer_ns) / 1e3,
              sim::to_micros(r.exec_ns) / 1e3,
              sim::to_micros(r.total_ns) / 1e3);
  std::printf("       card output: %s\n", r.output.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'048;
  const auto threads =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 224u;

  tools::Testbed bed{tools::TestbedConfig{}};
  workloads::register_dgemm_kernel();
  const auto image = workloads::make_dgemm_image(bed.model());

  std::printf("launching %s (n=%zu, %u threads, %.0f MiB of binaries)\n\n",
              image.name.c_str(), n, threads,
              static_cast<double>(image.total_bytes()) / (1 << 20));

  tools::LoadexOptions options;
  options.threads = threads;
  options.args = {std::to_string(n)};

  // Native: micnativeloadex on the host.
  tools::LoadexResult host_result;
  {
    sim::Actor actor{"host", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    tools::MicNativeLoadEx loadex{bed.host_provider()};
    auto r = loadex.run(image, options);
    if (!r) {
      std::printf("host run failed: %s\n",
                  std::string(sim::to_string(r.status())).c_str());
      return 1;
    }
    host_result = *r;
    report("host", host_result);
  }

  // Virtualized: the same tool, the same binary, inside the VM via vPHI.
  tools::LoadexResult vm_result;
  {
    sim::Actor actor{"vm", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    tools::MicNativeLoadEx loadex{bed.vm(0).guest_scif()};
    auto r = loadex.run(image, options);
    if (!r) {
      std::printf("VM run failed: %s\n",
                  std::string(sim::to_string(r.status())).c_str());
      return 1;
    }
    vm_result = *r;
    report("vPHI", vm_result);
  }

  const double ratio = static_cast<double>(vm_result.total_ns) /
                       static_cast<double>(host_result.total_ns);
  std::printf("\nnormalized total time (vPHI/host): %.3f  — grows toward 1 "
              "as n increases (Figs. 6-8)\n",
              ratio);
  return 0;
}
