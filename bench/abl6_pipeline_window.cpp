// Ablation A7 — pipeline window depth on the vPHI RMA path.
//
// Beyond the paper: the serial chunk walk (window = 1, the paper's
// implementation) posts chunk N+1 only after chunk N's completion has been
// parsed, so a 64 MiB read pays one full ring round trip (~375 us) per
// 16 MiB chunk back-to-back. Widening the window overlaps those round
// trips: with EVENT_IDX notification coalescing the whole burst costs one
// doorbell and one interrupt, and throughput approaches the DMA-bound
// limit. The sweep saturates as soon as one in-flight chunk's DMA covers
// the next chunk's ring trip (window 2 for 16 MiB chunks).
#include <cstdio>
#include <iostream>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "sim/stats.hpp"

namespace vphi::bench {
namespace {

constexpr std::size_t kTotal = 64ull << 20;
const std::size_t kWindows[] = {1, 2, 4, 8, 16};
const std::size_t kSmokeWindows[] = {1, 4};
constexpr int kRounds = 2;

double measure_window(std::size_t window, scif::Port port) {
  tools::TestbedConfig config{.card_backing_bytes = 192ull << 20,
                              .vm_ram_bytes = 192ull << 20};
  config.frontend.pipeline_window = window;
  tools::Testbed bed{config};

  RmaWindowServer server{bed, port, kTotal};
  sim::Actor actor{"client", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = bed.vm(0).guest_scif();
  const int epd = connect_to_card(bed, guest, port);
  if (epd < 0) return 0.0;
  std::uint8_t ready;
  guest.recv(epd, &ready, 1, scif::SCIF_RECV_BLOCK);

  auto buf = bed.vm(0).alloc_user_buffer(kTotal);
  if (!buf) return 0.0;
  auto reg = guest.register_mem(epd, *buf, kTotal, 0,
                                scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE,
                                0);
  if (!reg) return 0.0;
  const double gbps = measure_read_throughput(guest, epd, *reg, kTotal,
                                              kRounds);
  std::uint8_t bye = 0;
  guest.send(epd, &bye, 1, scif::SCIF_SEND_BLOCK);
  guest.close(epd);
  bed.vm(0).free_user_buffer(*buf);
  return gbps;
}

void run(bool smoke) {
  print_header(
      "Ablation A7: pipeline window depth on the vPHI RMA path",
      "window 1 = the paper's serial chunk walk (~4.6 GB/s at 64 MiB); "
      "wider windows overlap the per-chunk ring round trips under one "
      "doorbell + one coalesced interrupt");

  BenchJson json{"abl6_pipeline_window"};
  sim::FigureTable table{"A7 64 MiB guest remote read vs pipeline window",
                         "window"};
  sim::Series tput{"GBps", {}, {}};

  scif::Port port = 3'900;
  const auto windows = smoke ? std::span<const std::size_t>(kSmokeWindows)
                             : std::span<const std::size_t>(kWindows);
  for (const std::size_t window : windows) {
    const double gbps = measure_window(window, port++);
    tput.add(static_cast<double>(window), gbps);
    json.add("rma_read_w" + std::to_string(window), kTotal,
             gbps > 0.0 ? static_cast<double>(kTotal) / gbps : 0.0, gbps);
  }
  table.add_series(tput);
  table.print(std::cout);
  std::printf(
      "\n(the 64 MiB transfer is 4 chunks of rma_chunk = 16 MiB; the DMAs\n"
      " serialize on the backend endpoint, so pipelining saves the ring\n"
      " round trips, not the DMA time — and window 2 already saturates,\n"
      " because one chunk's ~3.4 ms DMA more than covers the next chunk's\n"
      " ~0.38 ms ring trip)\n");
}

}  // namespace
}  // namespace vphi::bench

int main(int argc, char** argv) {
  vphi::bench::run(vphi::bench::smoke_mode(argc, argv));
  return 0;
}
