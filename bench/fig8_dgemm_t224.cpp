// Figure 8 — launch and execution of dgemm using 224 threads (four software
// threads per usable KNC core — the card fully subscribed), host vs vPHI.
#include "dgemm_fig.hpp"

int main() {
  vphi::bench::run_dgemm_figure(
      224, "Figure 8: dgemm total time, 224 threads",
      "fastest on-card execution; vPHI overhead negligible for large runs",
      "fig8_dgemm_t224");
  return 0;
}
