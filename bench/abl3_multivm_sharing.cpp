// Ablation A3 — Xeon Phi sharing across VMs: the paper's headline
// capability, quantified.
//
// N VMs concurrently issue RMA reads against one card. Each VM's backend
// is an independent QEMU process / host SCIF client (exactly the paper's
// sharing mechanism); the PCIe link arbitrates. Reported: per-VM and
// aggregate throughput for N = 1, 2, 4, 8.
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/stats.hpp"

namespace vphi::bench {
namespace {

constexpr std::size_t kChunk = 8ull << 20;
constexpr int kRounds = 4;

struct SharingResult {
  double min_gbps = 0.0;
  double max_gbps = 0.0;
  double aggregate_gbps = 0.0;
  double jain_gbps = 1.0;  // fairness of per-VM throughput
  double jain_card = 1.0;  // fairness of per-VM card-core busy time
};

SharingResult measure(std::uint32_t num_vms, scif::Port base_port) {
  tools::TestbedConfig config;
  config.num_vms = num_vms;
  config.vm_ram_bytes = 64ull << 20;
  config.card_backing_bytes = (kChunk + (1 << 20)) * num_vms + (64ull << 20);
  tools::Testbed bed{config};

  std::vector<std::unique_ptr<RmaWindowServer>> servers;
  for (std::uint32_t i = 0; i < num_vms; ++i) {
    servers.push_back(std::make_unique<RmaWindowServer>(
        bed, static_cast<scif::Port>(base_port + i), kChunk));
  }

  std::vector<double> gbps(num_vms, 0.0);
  std::vector<sim::Nanos> starts(num_vms, 0), ends(num_vms, 0);
  std::vector<std::thread> clients;
  for (std::uint32_t i = 0; i < num_vms; ++i) {
    clients.emplace_back([&, i] {
      sim::Actor actor{"vm-client" + std::to_string(i), sim::Actor::AtNow{}};
      sim::ActorScope scope(actor);
      auto& guest = bed.vm(i).guest_scif();
      const int epd = connect_to_card(
          bed, guest, static_cast<scif::Port>(base_port + i));
      if (epd < 0) return;
      std::uint8_t ready;
      guest.recv(epd, &ready, 1, scif::SCIF_RECV_BLOCK);
      auto buf = bed.vm(i).alloc_user_buffer(kChunk);
      if (!buf) return;
      auto reg = guest.register_mem(
          epd, *buf, kChunk, 0,
          scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE, 0);
      if (!reg) return;
      // Warm-up, then timed rounds bracketed by start/end stamps.
      guest.readfrom(epd, *reg, kChunk, 0, scif::SCIF_RMA_SYNC);
      starts[i] = actor.now();
      for (int round = 0; round < kRounds; ++round) {
        guest.readfrom(epd, *reg, kChunk, 0, scif::SCIF_RMA_SYNC);
      }
      ends[i] = actor.now();
      gbps[i] = static_cast<double>(kChunk) * kRounds /
                static_cast<double>(ends[i] - starts[i]);
      std::uint8_t bye = 0;
      guest.send(epd, &bye, 1, scif::SCIF_SEND_BLOCK);
      guest.close(epd);
    });
  }
  for (auto& c : clients) c.join();
  servers.clear();

  SharingResult result;
  result.min_gbps = gbps[0];
  sim::Nanos first_start = starts[0], last_end = ends[0];
  for (std::uint32_t i = 0; i < num_vms; ++i) {
    result.min_gbps = std::min(result.min_gbps, gbps[i]);
    result.max_gbps = std::max(result.max_gbps, gbps[i]);
    first_start = std::min(first_start, starts[i]);
    last_end = std::max(last_end, ends[i]);
  }
  // Honest aggregate: all bytes moved over the union of the measurement
  // windows (summing per-VM rates would overcount when windows drift).
  if (last_end > first_start) {
    result.aggregate_gbps = static_cast<double>(kChunk) * kRounds * num_vms /
                            static_cast<double>(last_end - first_start);
  }
  // Fairness of the multiplexing: Jain's index over per-VM throughput and
  // over the per-VM card-core busy time charged by the backends.
  result.jain_gbps = sim::jain_index(gbps);
  std::vector<double> busy;
  for (const auto& [vm, ns] : bed.fabric().card_occupancy()) {
    busy.push_back(static_cast<double>(ns));
  }
  if (!busy.empty()) result.jain_card = sim::jain_index(busy);
  return result;
}

void run() {
  print_header(
      "Ablation A3: multi-VM Xeon Phi sharing",
      "multiple VMs = multiple host SCIF processes; the card and link "
      "multiplex them (the capability no prior Xeon Phi solution offered)");

  BenchJson json{"abl3_multivm_sharing"};
  sim::FigureTable table{"A3 concurrent RMA read throughput (GB/s)", "vms"};
  sim::Series per_min{"per_vm_min", {}, {}};
  sim::Series per_max{"per_vm_max", {}, {}};
  sim::Series aggregate{"aggregate", {}, {}};
  sim::Series fairness{"jain_fairness", {}, {}};

  scif::Port base = 3'400;
  for (const std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const auto r = measure(n, base);
    base = static_cast<scif::Port>(base + n);
    per_min.add(n, r.min_gbps);
    per_max.add(n, r.max_gbps);
    aggregate.add(n, r.aggregate_gbps);
    fairness.add(n, r.jain_gbps);
    json.add("rma_read_aggregate_vms" + std::to_string(n), 8ull << 20, 0.0,
             r.aggregate_gbps);
    json.add("fairness_jain_vms" + std::to_string(n), 0, 0.0, r.jain_gbps);
    json.add("fairness_card_vms" + std::to_string(n), 0, 0.0, r.jain_card);
  }
  table.add_series(per_min);
  table.add_series(per_max);
  table.add_series(aggregate);
  table.add_series(fairness);
  table.print(std::cout);
  std::printf(
      "\n(8 MiB reads: one VM alone sees ~3.8 GB/s — the Fig. 5 vPHI curve\n"
      " at this size; adding VMs holds the aggregate near the fragmented-\n"
      " DMA link limit while the per-VM share drops roughly as 1/N)\n");
}

}  // namespace
}  // namespace vphi::bench

int main() {
  vphi::bench::run();
  return 0;
}
