// Ablation A5 — uOS scheduler behaviour under thread oversubscription.
//
// Sec. III: "If there is an oversubscription considering requested threads
// to physical cores ratio, then the resource multiplexing is accomplished
// by the scheduler of the uOS which runs on a dedicated Xeon Phi core."
// This bench sweeps the dgemm thread count across and beyond the card's
// 224 hardware threads and reports modeled execution time plus an
// end-to-end micnativeloadex cross-check at two points.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/stats.hpp"
#include "tools/micnativeloadex.hpp"
#include "workloads/dgemm.hpp"

namespace vphi::bench {
namespace {

constexpr std::size_t kN = 4'096;
const std::uint32_t kThreads[] = {28, 56, 112, 224, 448, 896};

/// Jain's fairness index over per-thread flops rates under the uOS
/// round-robin placement: n % cores cores carry one extra thread, and a
/// thread's share is its core's rate divided by the residents. Exactly 1.0
/// whenever the placement is even; dips below 1.0 at uneven thread counts.
double placement_jain(const mic::uos::Scheduler& sched, std::uint32_t n) {
  const std::uint32_t cores = std::min(n, sched.usable_cores());
  const std::uint32_t lo = n / cores;
  const std::uint32_t extra = n % cores;
  std::vector<double> per_thread;
  per_thread.reserve(n);
  for (std::uint32_t c = 0; c < cores; ++c) {
    const std::uint32_t resident = lo + (c < extra ? 1 : 0);
    if (resident == 0) continue;
    const double share = sched.core_flops_rate(resident) / resident;
    for (std::uint32_t t = 0; t < resident; ++t) per_thread.push_back(share);
  }
  return sim::jain_index(per_thread);
}

void run() {
  print_header(
      "Ablation A5: uOS scheduler under thread oversubscription",
      "56 usable cores x 4 hw threads = 224; beyond that the uOS "
      "round-robins with a context-switch tax");

  tools::Testbed bed{tools::TestbedConfig{}};
  workloads::register_dgemm_kernel();
  mic::uos::Scheduler& sched = bed.card().scheduler();

  BenchJson json{"abl5_oversubscription"};
  sim::FigureTable table{"A5 dgemm n=4096 on-card time vs threads", "threads"};
  sim::Series exec_s{"modeled_exec_s", {}, {}};
  sim::Series rate{"aggregate_GFLOPs", {}, {}};
  sim::Series fairness{"jain_fairness", {}, {}};

  for (const std::uint32_t t : kThreads) {
    const double secs = sim::to_seconds(workloads::mic_dgemm_time(sched, kN, t));
    const double jain = placement_jain(sched, t);
    exec_s.add(t, secs);
    rate.add(t, sched.aggregate_flops_rate(t) / 1e9);
    fairness.add(t, jain);
    json.add("dgemm_t" + std::to_string(t), 2 * kN * kN * 8, secs * 1e9, 0.0);
    json.add("fairness_jain_t" + std::to_string(t), 0, 0.0, jain);
  }
  table.add_series(exec_s);
  table.add_series(rate);
  table.add_series(fairness);
  table.print(std::cout);

  // The sweep's thread counts all divide evenly over 56 cores, so the index
  // is 1.0 throughout; show one uneven placement for contrast.
  std::printf("\nuneven placement check: jain(300 threads) = %.4f\n",
              placement_jain(sched, 300));

  // End-to-end cross-check at full subscription and 2x oversubscription.
  const auto image = workloads::make_dgemm_image(bed.model());
  auto end_to_end = [&](std::uint32_t threads) {
    sim::Actor actor{"loadex", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    tools::MicNativeLoadEx loadex{bed.host_provider()};
    tools::LoadexOptions options;
    options.threads = threads;
    options.args = {std::to_string(kN)};
    auto r = loadex.run(image, options);
    return r ? sim::to_seconds(r->exec_ns) : 0.0;
  };
  const double t224 = end_to_end(224);
  const double t448 = end_to_end(448);
  std::printf("\nend-to-end exec (micnativeloadex): 224 thr = %.3f s, "
              "448 thr = %.3f s (+%.1f%% oversubscription tax)\n",
              t224, t448, 100.0 * (t448 - t224) / t224);
}

}  // namespace
}  // namespace vphi::bench

int main() {
  vphi::bench::run();
  return 0;
}
