// Ablation A4 — bounce-buffer (chunk) size on the vPHI stream path.
//
// Sec. III "Implementation details": large transfers are broken into
// KMALLOC_MAX_SIZE (4 MiB) kmalloc'd chunks, each a full ring round trip.
// This bench sweeps the chunk size downward to expose the per-chunk ring
// overhead: stream throughput of a fixed 64 MiB guest send as a function
// of the chunk size the frontend is allowed to allocate.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/stats.hpp"

namespace vphi::bench {
namespace {

constexpr std::size_t kTotal = 64ull << 20;
const std::size_t kChunks[] = {64ull << 10, 256ull << 10, 1ull << 20,
                               4ull << 20};

double measure_chunk(std::size_t chunk, scif::Port port) {
  tools::TestbedConfig config;
  config.frontend.max_payload = chunk;
  config.vm_ram_bytes = 160ull << 20;
  tools::Testbed bed{config};

  // Card-side sink consuming the whole 64 MiB stream.
  auto sink = std::async(std::launch::async, [&bed, port] {
    sim::Actor actor{"sink", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    auto& p = bed.card_provider();
    auto lep = p.open();
    if (!p.bind(*lep, port) || !sim::ok(p.listen(*lep, 1))) return;
    auto conn = p.accept(*lep, scif::SCIF_ACCEPT_SYNC);
    if (!conn) return;
    std::vector<std::uint8_t> buf(kTotal);
    p.recv(conn->epd, buf.data(), kTotal, scif::SCIF_RECV_BLOCK);   // warm-up
    p.recv(conn->epd, buf.data(), kTotal, scif::SCIF_RECV_BLOCK);   // timed
    p.close(conn->epd);
  });

  sim::Actor actor{"client", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = bed.vm(0).guest_scif();
  const int epd = connect_to_card(bed, guest, port);
  if (epd < 0) return 0.0;
  std::vector<std::uint8_t> data(kTotal, 0x5C);
  // Warm-up pass, then the timed pass.
  if (!guest.send(epd, data.data(), kTotal, scif::SCIF_SEND_BLOCK)) return 0.0;
  const sim::Nanos before = actor.now();
  if (!guest.send(epd, data.data(), kTotal, scif::SCIF_SEND_BLOCK)) return 0.0;
  const sim::Nanos elapsed = actor.now() - before;
  guest.close(epd);
  sink.get();
  return static_cast<double>(kTotal) / static_cast<double>(elapsed);
}

void run() {
  print_header(
      "Ablation A4: kmalloc chunk size on the vPHI stream path",
      "each chunk costs one ring round trip (~375 us); KMALLOC_MAX_SIZE = "
      "4 MiB bounds how much a single trip can carry");

  BenchJson json{"abl4_chunk_size"};
  sim::FigureTable table{"A4 64 MiB guest send throughput vs chunk size",
                         "chunk_KiB"};
  sim::Series tput{"GBps", {}, {}};
  sim::Series trips{"ring_trips", {}, {}};

  scif::Port port = 3'600;
  for (const std::size_t chunk : kChunks) {
    const double gbps = measure_chunk(chunk, port++);
    tput.add(static_cast<double>(chunk >> 10), gbps);
    trips.add(static_cast<double>(chunk >> 10),
              static_cast<double>(kTotal / chunk));
    json.add("send_chunk" + std::to_string(chunk >> 10) + "KiB", kTotal,
             gbps > 0.0 ? static_cast<double>(kTotal) / gbps : 0.0, gbps);
  }
  table.add_series(tput);
  table.add_series(trips);
  table.print(std::cout);
  std::printf(
      "\n(per-chunk cost = one 375 us ring trip + bounce copies; the 4 MiB\n"
      " Linux kmalloc cap is why vPHI cannot chunk coarser — a hypothetical\n"
      " larger chunk would close most of the remaining stream-path gap)\n");
}

}  // namespace
}  // namespace vphi::bench

int main() {
  vphi::bench::run();
  return 0;
}
