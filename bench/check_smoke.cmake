# bench_smoke ctest body. Runs the two pipelining-sensitive benches in
# --smoke mode (reduced sweeps), checks their BENCH_*.json output parses,
# and asserts the headline acceptance number: at 64 MiB the pipelined vPHI
# RMA read is at least as fast as the serial one.
#
# Invoked as:
#   cmake -DFIG5=<fig5 binary> -DABL6=<abl6 binary> -P check_smoke.cmake
# with the working directory set to where the JSON files should land.

foreach(_var FIG5 ABL6)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "bench_smoke: -D${_var}=<path> is required")
  endif()
endforeach()

foreach(_bin ${FIG5} ${ABL6})
  execute_process(COMMAND ${_bin} --smoke RESULT_VARIABLE _rc
                  OUTPUT_VARIABLE _out ERROR_VARIABLE _err)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR
            "bench_smoke: ${_bin} --smoke exited ${_rc}\n${_out}\n${_err}")
  endif()
endforeach()

# Pull gbps for rows matching `op` at byte size `size` out of a BENCH json.
function(bench_gbps json_file op size out_var)
  file(READ ${json_file} _json)
  string(JSON _nrows LENGTH "${_json}" rows)
  if(_nrows EQUAL 0)
    message(FATAL_ERROR "bench_smoke: ${json_file} has no rows")
  endif()
  math(EXPR _last "${_nrows} - 1")
  foreach(_i RANGE ${_last})
    string(JSON _op GET "${_json}" rows ${_i} op)
    string(JSON _size GET "${_json}" rows ${_i} size)
    if(_op STREQUAL ${op} AND _size EQUAL ${size})
      string(JSON _gbps GET "${_json}" rows ${_i} gbps)
      set(${out_var} ${_gbps} PARENT_SCOPE)
      return()
    endif()
  endforeach()
  message(FATAL_ERROR
          "bench_smoke: no row op=${op} size=${size} in ${json_file}")
endfunction()

math(EXPR _64mib "64 * 1024 * 1024")

bench_gbps(BENCH_fig5_rma_throughput.json rma_read_vphi ${_64mib} _serial)
bench_gbps(BENCH_fig5_rma_throughput.json rma_read_vphi_pipelined ${_64mib}
           _piped)
if(_serial LESS_EQUAL 0)
  message(FATAL_ERROR "bench_smoke: serial vPHI throughput is ${_serial}")
endif()
if(_piped LESS _serial)
  message(FATAL_ERROR
          "bench_smoke: pipelined 64 MiB RMA read (${_piped} GB/s) is slower "
          "than serial (${_serial} GB/s)")
endif()

# The ablation must agree: window 4 >= window 1 at the same total size.
bench_gbps(BENCH_abl6_pipeline_window.json rma_read_w1 ${_64mib} _w1)
bench_gbps(BENCH_abl6_pipeline_window.json rma_read_w4 ${_64mib} _w4)
if(_w4 LESS _w1)
  message(FATAL_ERROR
          "bench_smoke: window-4 sweep point (${_w4} GB/s) is slower than "
          "window 1 (${_w1} GB/s)")
endif()

message(STATUS
        "bench_smoke OK: serial ${_serial} GB/s, pipelined ${_piped} GB/s, "
        "ablation w1 ${_w1} -> w4 ${_w4} GB/s")
