// Shared harness for Figures 6-8: launch + execution of dgemm through
// micnativeloadex, host vs VM, sweeping the input size at a fixed thread
// count (56/112/224 — 1/2/4 threads per usable KNC core).
//
// The paper plots normalized total execution time (launch of binaries via
// micnativeloadex + on-card run) against the total size of the two input
// arrays. The reproduction prints absolute simulated times for both paths
// plus the vPHI/host normalization, whose decay toward 1.0 is the result
// the paper reports ("the virtualization cost of vPHI is amortized").
#pragma once

#include <cstdint>

namespace vphi::bench {

/// Run the Fig. 6/7/8 sweep at `threads`, print the series and write
/// BENCH_<json_name>.json.
void run_dgemm_figure(std::uint32_t threads, const char* figure,
                      const char* claim, const char* json_name);

}  // namespace vphi::bench
