// Figure 7 — launch and execution of dgemm using 112 threads (two software
// threads per usable KNC core), host vs vPHI, input size swept.
#include "dgemm_fig.hpp"

int main() {
  vphi::bench::run_dgemm_figure(
      112, "Figure 7: dgemm total time, 112 threads",
      "same shape as Fig. 6 at higher card throughput (2 threads/core "
      "nearly doubles KNC issue rate)",
      "fig7_dgemm_t112");
  return 0;
}
