// Ablation A1 — the frontend waiting scheme: interrupt vs polling vs the
// hybrid the paper proposes as future work.
//
// Sec. IV-B: the sleep/wake scheme is 93% of the vPHI latency overhead;
// the paper plans "a hybrid approach that uses each time the best of the
// two available schemes depending on the requested data size, so we can
// enable near-native latency for small data sizes, while retaining
// acceptable transfer rate for larger ones". This bench quantifies all
// three schemes across message sizes, including the polling scheme's CPU
// cost (the reason the paper rejected always-polling).
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "sim/stats.hpp"
#include "vphi/frontend.hpp"

namespace vphi::bench {
namespace {

const std::size_t kSizes[] = {64, 1'024, 16'384, 65'536, 262'144};
constexpr int kRounds = 4;

struct SchemeResult {
  double latency_us = 0.0;
  double cpu_burn_us = 0.0;  ///< per request
};

SchemeResult measure_scheme(core::WaitScheme scheme, std::size_t size,
                            scif::Port port) {
  tools::TestbedConfig config;
  config.frontend.scheme = scheme;
  config.frontend.hybrid_threshold = 32 * 1024;
  tools::Testbed bed{config};

  LatencySink sink{bed, port, size};
  sim::Actor actor{"client", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = bed.vm(0).guest_scif();
  const int epd = connect_to_card(bed, guest, port);
  if (epd < 0) return {};
  const sim::Nanos burn_before = bed.vm(0).frontend().poll_cpu_burn();
  const sim::Nanos lat = measure_send_latency(guest, epd, size, kRounds);
  const sim::Nanos burn_after = bed.vm(0).frontend().poll_cpu_burn();
  guest.close(epd);
  return SchemeResult{
      sim::to_micros(lat),
      sim::to_micros((burn_after - burn_before)) / (kRounds + 1)};
}

void run() {
  print_header("Ablation A1: frontend waiting scheme",
               "interrupt pays ~352 us of sleep/wake per request; polling "
               "approaches native latency but burns vCPU; hybrid switches "
               "at a size threshold (the paper's future work)");

  BenchJson json{"abl1_waiting_scheme"};
  sim::FigureTable table{"A1 guest send latency by waiting scheme (us)",
                         "msg_bytes"};
  sim::Series interrupt_s{"interrupt_us", {}, {}};
  sim::Series polling_s{"polling_us", {}, {}};
  sim::Series hybrid_s{"hybrid_us", {}, {}};
  sim::Series burn_s{"poll_burn_us", {}, {}};

  scif::Port port = 3'000;
  for (const std::size_t size : kSizes) {
    const auto irq = measure_scheme(core::WaitScheme::kInterrupt, size, port++);
    const auto poll = measure_scheme(core::WaitScheme::kPolling, size, port++);
    const auto hybrid = measure_scheme(core::WaitScheme::kHybrid, size, port++);
    interrupt_s.add(static_cast<double>(size), irq.latency_us);
    polling_s.add(static_cast<double>(size), poll.latency_us);
    hybrid_s.add(static_cast<double>(size), hybrid.latency_us);
    burn_s.add(static_cast<double>(size), poll.cpu_burn_us);
    json.add("send_interrupt", size, irq.latency_us * 1e3, 0.0);
    json.add("send_polling", size, poll.latency_us * 1e3, 0.0);
    json.add("send_hybrid", size, hybrid.latency_us * 1e3, 0.0);
  }
  table.add_series(interrupt_s);
  table.add_series(polling_s);
  table.add_series(hybrid_s);
  table.add_series(burn_s);
  table.print(std::cout);
  std::printf(
      "\n(hybrid threshold = 32 KiB: below it, latency follows the polling\n"
      " curve; above it, the interrupt curve — per the paper's proposal)\n");
}

}  // namespace
}  // namespace vphi::bench

int main() {
  vphi::bench::run();
  return 0;
}
