// Section IV-B (in-text result) — breakdown of the vPHI 1-byte latency.
//
// Paper: the virtualization overhead is 375 us (382 us total minus the 7 us
// native path) and "93% of this overhead attributes to the waiting scheme
// of vPHI inside the frontend driver" (sleep on the wait queue + wake_up_all
// + scheduler-in). This bench reproduces the breakdown from *measured*
// trace spans: it sends 1-byte messages through the full stack with request
// tracing on and prints the per-hop table the tracer aggregated, so the
// stages are what the transport actually did — not a recital of cost-model
// constants. The hop sum cross-checks against the end-to-end measurement by
// construction (consecutive span deltas telescope).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"

namespace vphi::bench {
namespace {

constexpr scif::Port kPort = 2'500;
constexpr int kRounds = 5;

std::string hop_name(const sim::Hop& h) {
  return std::string(sim::span_event_name(h.from)) + " -> " +
         sim::span_event_name(h.to);
}

void run() {
  print_header(
      "Sec. IV-B: vPHI 1-byte latency breakdown",
      "382 us total = 7 us native + 375 us overhead; 93% = waiting scheme");

  tools::Testbed bed{tools::TestbedConfig{}};
  const auto& m = bed.model();

  LatencySink sink{bed, kPort, 1};
  sim::Actor actor{"vm-client", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = bed.vm(0).guest_scif();
  const int epd = connect_to_card(bed, guest, kPort);

  // Warm-up round synchronizes this timeline with the service loops; its
  // spans are cleared so the table covers exactly the measured sends.
  std::uint8_t byte = 0x42;
  guest.send(epd, &byte, 1, scif::SCIF_SEND_BLOCK);
  sim::tracer().clear();

  const sim::Nanos before = actor.now();
  for (int i = 0; i < kRounds; ++i) {
    guest.send(epd, &byte, 1, scif::SCIF_SEND_BLOCK);
  }
  const sim::Nanos measured =
      (actor.now() - before) / static_cast<sim::Nanos>(kRounds);
  const auto hops = sim::tracer().hop_breakdown();
  guest.close(epd);

  const double native = static_cast<double>(m.host_small_msg_ns());
  const double overhead = static_cast<double>(measured) - native;

  std::printf("%-48s %10s %8s\n", "hop (measured from trace spans)", "us",
              "% e2e");
  double wait_ns = 0.0;
  for (const auto& h : hops) {
    if (h.from == sim::SpanEvent::kVirq && h.to == sim::SpanEvent::kWakeup) {
      // ISR entry + the waiting scheme (wake_up_all + scheduler-in): the
      // hop is stamped at guest-visible vIRQ delivery, so its width is
      // exactly the frontend's wakeup path.
      wait_ns = h.ns.mean();
    }
    std::printf("%-48s %10.1f %7.1f%%\n", hop_name(h).c_str(),
                h.ns.mean() / 1e3,
                100.0 * h.ns.mean() / static_cast<double>(measured));
  }
  std::printf("%-48s %10.1f\n", "-- measured end-to-end (paper: 382 us) --",
              sim::to_micros(measured));
  std::printf("%-48s %10.1f\n", "-- native host path (paper: 7 us) --",
              native / 1e3);
  std::printf("%-48s %10.1f\n",
              "-- virtualization overhead (paper: 375 us) --",
              overhead / 1e3);
  std::printf("waiting-scheme share of overhead: %.1f%% (paper: 93%%)\n\n",
              overhead > 0.0 ? 100.0 * wait_ns / overhead : 0.0);

  BenchJson json{"fig4b_latency_breakdown"};
  for (const auto& h : hops) {
    json.add(hop_name(h), 1, h.ns.mean(), 0.0);
  }
  json.add("end_to_end_1byte", 1, static_cast<double>(measured), 0.0);
}

}  // namespace
}  // namespace vphi::bench

int main() {
  vphi::bench::run();
  return 0;
}
