// Section IV-B (in-text result) — breakdown of the vPHI 1-byte latency.
//
// Paper: the virtualization overhead is 375 us (382 us total minus the 7 us
// native path) and "93% of this overhead attributes to the waiting scheme
// of vPHI inside the frontend driver" (sleep on the wait queue + wake_up_all
// + scheduler-in). This bench reproduces the breakdown per pipeline stage
// and cross-checks the end-to-end measurement against the stage sum.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/cost_model.hpp"

namespace vphi::bench {
namespace {

constexpr scif::Port kPort = 2'500;

void run() {
  print_header(
      "Sec. IV-B: vPHI 1-byte latency breakdown",
      "382 us total = 7 us native + 375 us overhead; 93% = waiting scheme");

  tools::Testbed bed{tools::TestbedConfig{}};
  const auto& m = bed.model();

  struct Stage {
    const char* name;
    sim::Nanos ns;
  };
  const Stage stages[] = {
      {"frontend: ioctl intercept + request build", m.fe_prepare_ns},
      {"frontend: copy_from_user (fixed part)", m.fe_copy_fixed_ns},
      {"frontend: virtio descriptor post", m.virtio_enqueue_ns},
      {"kick: MMIO write -> VM exit -> QEMU", m.kick_vmexit_ns},
      {"backend: ring pop + guest buffer map", m.be_dispatch_ns},
      {"backend: used-ring completion", m.be_complete_ns},
      {"KVM: virtual interrupt injection", m.irq_inject_ns},
      {"guest: ISR entry + ring scan", m.guest_irq_handler_ns},
      {"guest: waiting scheme (wake_up_all + sched-in)",
       m.guest_wakeup_scheme_ns},
      {"frontend: response demux", m.fe_complete_ns},
      {"frontend: copy_to_user (fixed part)", m.fe_copyback_fixed_ns},
  };

  sim::Nanos overhead_total = 0;
  for (const auto& s : stages) overhead_total += s.ns;

  std::printf("%-48s %10s %8s\n", "stage", "us", "% ovh");
  for (const auto& s : stages) {
    std::printf("%-48s %10.1f %7.1f%%\n", s.name, sim::to_micros(s.ns),
                100.0 * static_cast<double>(s.ns) /
                    static_cast<double>(overhead_total));
  }
  const double wait_pct =
      100.0 *
      static_cast<double>(m.guest_irq_handler_ns + m.guest_wakeup_scheme_ns) /
      static_cast<double>(overhead_total);
  std::printf("%-48s %10.1f %7.1f%%\n", "-- virtualization overhead total --",
              sim::to_micros(overhead_total), 100.0);
  std::printf("%-48s %10.1f\n", "-- native host path --",
              sim::to_micros(m.host_small_msg_ns()));
  std::printf("%-48s %10.1f\n", "-- expected end-to-end --",
              sim::to_micros(overhead_total + m.host_small_msg_ns()));
  std::printf("waiting-scheme share of overhead: %.1f%% (paper: 93%%)\n\n",
              wait_pct);

  // Cross-check: measure the real end-to-end path through the full stack.
  LatencySink sink{bed, kPort, 1};
  sim::Actor actor{"vm-client", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  const int epd = connect_to_card(bed, bed.vm(0).guest_scif(), kPort);
  const sim::Nanos measured =
      measure_send_latency(bed.vm(0).guest_scif(), epd, 1, 5);
  bed.vm(0).guest_scif().close(epd);
  std::printf("measured end-to-end 1-byte latency: %.1f us "
              "(paper: 382 us)\n",
              sim::to_micros(measured));

  BenchJson json{"fig4b_latency_breakdown"};
  for (const auto& s : stages) {
    json.add(s.name, 1, static_cast<double>(s.ns), 0.0);
  }
  json.add("end_to_end_1byte", 1, static_cast<double>(measured), 0.0);
}

}  // namespace
}  // namespace vphi::bench

int main() {
  vphi::bench::run();
  return 0;
}
