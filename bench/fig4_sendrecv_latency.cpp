// Figure 4 — send-receive communication latency, host vs vPHI.
//
// Paper: a SCIF server on the card blocks in scif_recv; the client (on the
// host, then inside a VM) sends messages of growing size. Native 1-byte
// latency is 7 us; through vPHI it is 382 us (375 us of virtualization
// overhead), and the offset stays constant as the size grows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "sim/stats.hpp"

namespace vphi::bench {
namespace {

constexpr scif::Port kHostPort = 2'100;
constexpr scif::Port kVmPort = 2'101;
constexpr int kRounds = 5;

const std::size_t kSizes[] = {1,    16,    256,    1'024,
                              4'096, 16'384, 65'536};

struct Fig4Rig {
  Fig4Rig() : bed(tools::TestbedConfig{}) {}
  tools::Testbed bed;
};

Fig4Rig& rig() {
  static Fig4Rig instance;
  return instance;
}

/// One measured point: client latency of `size`-byte sends on `provider`.
sim::Nanos point(scif::Provider& provider, scif::Port port,
                 std::size_t size) {
  LatencySink sink{rig().bed, port, size};
  const int epd = connect_to_card(rig().bed, provider, port);
  if (epd < 0) return 0;
  const sim::Nanos lat = measure_send_latency(provider, epd, size, kRounds);
  provider.close(epd);
  return lat;
}

void print_figure() {
  print_header("Figure 4: send-receive communication latency",
               "host 7 us @1B; vPHI 382 us @1B; offset constant with size");
  BenchJson json{"fig4_sendrecv_latency"};
  sim::FigureTable table{"fig4 send/recv latency (us)", "msg_bytes"};
  sim::Series host{"host_us", {}, {}};
  sim::Series vphi{"vphi_us", {}, {}};
  sim::Series overhead{"overhead_us", {}, {}};

  scif::Port next_port = kHostPort;
  for (const std::size_t size : kSizes) {
    sim::Actor host_actor{"host-client", sim::Actor::AtNow{}};
    sim::Nanos host_lat;
    {
      sim::ActorScope scope(host_actor);
      host_lat = point(rig().bed.host_provider(), next_port++, size);
    }
    sim::Actor vm_actor{"vm-client", sim::Actor::AtNow{}};
    sim::Nanos vphi_lat;
    {
      sim::ActorScope scope(vm_actor);
      vphi_lat = point(rig().bed.vm(0).guest_scif(), next_port++, size);
    }
    host.add(static_cast<double>(size), sim::to_micros(host_lat));
    vphi.add(static_cast<double>(size), sim::to_micros(vphi_lat));
    overhead.add(static_cast<double>(size),
                 sim::to_micros(vphi_lat - host_lat));
    json.add("send_host", size, static_cast<double>(host_lat), 0.0);
    json.add("send_vphi", size, static_cast<double>(vphi_lat), 0.0);
  }
  table.add_series(host);
  table.add_series(vphi);
  table.add_series(overhead);
  table.add_ratio_column(1, 0, "vphi/host");
  table.print(std::cout);
  std::printf("\n");
}

// google-benchmark entries: manual time = simulated time.
void BM_SendLatency_Host(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  static scif::Port port = 2'300;
  LatencySink sink{rig().bed, port, size};
  sim::Actor actor{"bm-host", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  const int epd = connect_to_card(rig().bed, rig().bed.host_provider(), port);
  ++port;
  for (auto _ : state) {
    const sim::Nanos lat =
        measure_send_latency(rig().bed.host_provider(), epd, size, 1);
    state.SetIterationTime(sim::to_seconds(lat));
  }
  rig().bed.host_provider().close(epd);
}

void BM_SendLatency_Vphi(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  static scif::Port port = 2'400;
  LatencySink sink{rig().bed, port, size};
  sim::Actor actor{"bm-vm", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = rig().bed.vm(0).guest_scif();
  const int epd = connect_to_card(rig().bed, guest, port);
  ++port;
  for (auto _ : state) {
    const sim::Nanos lat = measure_send_latency(guest, epd, size, 1);
    state.SetIterationTime(sim::to_seconds(lat));
  }
  guest.close(epd);
}

BENCHMARK(BM_SendLatency_Host)
    ->Arg(1)
    ->Arg(1'024)
    ->Arg(65'536)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);
BENCHMARK(BM_SendLatency_Vphi)
    ->Arg(1)
    ->Arg(1'024)
    ->Arg(65'536)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);

}  // namespace
}  // namespace vphi::bench

int main(int argc, char** argv) {
  vphi::bench::print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
