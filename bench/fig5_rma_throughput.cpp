// Figure 5 — remote memory access (RMA read) throughput, host vs vPHI.
//
// Paper: a card process registers device memory; the client performs remote
// reads of growing size. Host peaks at 6.4 GB/s; vPHI at 4.6 GB/s = 72% of
// native. In the reproduction the gap is modeled as per-page scatter-gather
// DMA over the two-level-translated pinned guest memory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/stats.hpp"

namespace vphi::bench {
namespace {

constexpr int kRounds = 3;
const std::size_t kSizes[] = {4'096,       65'536,      1ull << 20,
                              4ull << 20,  16ull << 20, 64ull << 20};

struct Fig5Rig {
  Fig5Rig()
      : bed(tools::TestbedConfig{.card_backing_bytes = 192ull << 20,
                                 .vm_ram_bytes = 192ull << 20}) {}
  tools::Testbed bed;
};

Fig5Rig& rig() {
  static Fig5Rig instance;
  return instance;
}

/// Host-path point: host client with a registered host window.
double host_point(std::size_t size, scif::Port port) {
  RmaWindowServer server{rig().bed, port, size};
  auto& p = rig().bed.host_provider();
  const int epd = connect_to_card(rig().bed, p, port);
  if (epd < 0) return 0.0;
  std::uint8_t ready;
  p.recv(epd, &ready, 1, scif::SCIF_RECV_BLOCK);

  std::vector<std::byte> local(size);
  auto reg = p.register_mem(epd, local.data(), size, 0,
                            scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE, 0);
  if (!reg) return 0.0;
  const double gbps = measure_read_throughput(p, epd, *reg, size, kRounds);
  std::uint8_t bye = 0;
  p.send(epd, &bye, 1, scif::SCIF_SEND_BLOCK);
  p.close(epd);
  return gbps;
}

/// vPHI-path point: guest client with a registered (pinned) guest window.
double vphi_point(std::size_t size, scif::Port port) {
  RmaWindowServer server{rig().bed, port, size};
  auto& guest = rig().bed.vm(0).guest_scif();
  const int epd = connect_to_card(rig().bed, guest, port);
  if (epd < 0) return 0.0;
  std::uint8_t ready;
  guest.recv(epd, &ready, 1, scif::SCIF_RECV_BLOCK);

  auto buf = rig().bed.vm(0).alloc_user_buffer(size);
  if (!buf) return 0.0;
  auto reg = guest.register_mem(epd, *buf, size, 0,
                                scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE,
                                0);
  if (!reg) return 0.0;
  const double gbps = measure_read_throughput(guest, epd, *reg, size, kRounds);
  std::uint8_t bye = 0;
  guest.send(epd, &bye, 1, scif::SCIF_SEND_BLOCK);
  guest.close(epd);
  rig().bed.vm(0).free_user_buffer(*buf);
  return gbps;
}

void print_figure() {
  print_header("Figure 5: remote memory access throughput",
               "host remote read -> 6.4 GB/s; vPHI -> 4.6 GB/s (72%)");
  sim::FigureTable table{"fig5 RMA read throughput (GB/s)", "read_bytes"};
  sim::Series host{"host_GBps", {}, {}};
  sim::Series vphi{"vphi_GBps", {}, {}};

  scif::Port port = 2'600;
  for (const std::size_t size : kSizes) {
    sim::Actor host_actor{"host-client", sim::Actor::AtNow{}};
    double h;
    {
      sim::ActorScope scope(host_actor);
      h = host_point(size, port++);
    }
    sim::Actor vm_actor{"vm-client", sim::Actor::AtNow{}};
    double v;
    {
      sim::ActorScope scope(vm_actor);
      v = vphi_point(size, port++);
    }
    host.add(static_cast<double>(size), h);
    vphi.add(static_cast<double>(size), v);
  }
  table.add_series(host);
  table.add_series(vphi);
  table.add_ratio_column(1, 0, "vphi/host");
  table.print(std::cout);
  std::printf("\n");
}

void BM_RmaRead_Host(benchmark::State& state) {
  static scif::Port port = 2'700;
  const auto size = static_cast<std::size_t>(state.range(0));
  sim::Actor actor{"bm-host", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  const double gbps = host_point(size, port++);
  for (auto _ : state) {
    state.SetIterationTime(gbps > 0.0
                               ? static_cast<double>(size) / (gbps * 1e9)
                               : 1.0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(size) * state.iterations());
}

void BM_RmaRead_Vphi(benchmark::State& state) {
  static scif::Port port = 2'800;
  const auto size = static_cast<std::size_t>(state.range(0));
  sim::Actor actor{"bm-vm", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  const double gbps = vphi_point(size, port++);
  for (auto _ : state) {
    state.SetIterationTime(gbps > 0.0
                               ? static_cast<double>(size) / (gbps * 1e9)
                               : 1.0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(size) * state.iterations());
}

BENCHMARK(BM_RmaRead_Host)
    ->Arg(1 << 20)
    ->Arg(64 << 20)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_RmaRead_Vphi)
    ->Arg(1 << 20)
    ->Arg(64 << 20)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace vphi::bench

int main(int argc, char** argv) {
  vphi::bench::print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
