// Figure 5 — remote memory access (RMA read) throughput, host vs vPHI.
//
// Paper: a card process registers device memory; the client performs remote
// reads of growing size. Host peaks at 6.4 GB/s; vPHI at 4.6 GB/s = 72% of
// native. In the reproduction the gap is modeled as per-page scatter-gather
// DMA over the two-level-translated pinned guest memory.
//
// A third series goes beyond the paper: the same guest reads with the
// pipelined frontend (pipeline_window > 1 + EVENT_IDX notification
// coalescing), which overlaps the per-chunk ring round trips the serial
// walk pays back-to-back and closes part of the vPHI/host gap at large
// sizes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "sim/stats.hpp"

namespace vphi::bench {
namespace {

constexpr int kRounds = 3;
const std::size_t kSizes[] = {4'096,       65'536,      1ull << 20,
                              4ull << 20,  16ull << 20, 64ull << 20};
const std::size_t kSmokeSizes[] = {1ull << 20, 64ull << 20};

bool g_smoke = false;

struct Fig5Rig {
  Fig5Rig()
      : bed(tools::TestbedConfig{.card_backing_bytes = 192ull << 20,
                                 .vm_ram_bytes = 192ull << 20}),
        pipelined_bed(make_pipelined_config()) {}

  static tools::TestbedConfig make_pipelined_config() {
    tools::TestbedConfig config{.card_backing_bytes = 192ull << 20,
                                .vm_ram_bytes = 192ull << 20};
    config.frontend.pipeline_window = 8;  // overlap the 16 MiB RMA chunks
    return config;
  }

  tools::Testbed bed;            ///< serial frontend (pipeline_window = 1)
  tools::Testbed pipelined_bed;  ///< pipelined frontend (window = 8)
};

Fig5Rig& rig() {
  static Fig5Rig instance;
  return instance;
}

/// Host-path point: host client with a registered host window.
double host_point(std::size_t size, scif::Port port) {
  RmaWindowServer server{rig().bed, port, size};
  auto& p = rig().bed.host_provider();
  const int epd = connect_to_card(rig().bed, p, port);
  if (epd < 0) return 0.0;
  std::uint8_t ready;
  p.recv(epd, &ready, 1, scif::SCIF_RECV_BLOCK);

  std::vector<std::byte> local(size);
  auto reg = p.register_mem(epd, local.data(), size, 0,
                            scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE, 0);
  if (!reg) return 0.0;
  const double gbps = measure_read_throughput(p, epd, *reg, size, kRounds);
  std::uint8_t bye = 0;
  p.send(epd, &bye, 1, scif::SCIF_SEND_BLOCK);
  p.close(epd);
  return gbps;
}

/// vPHI-path point: guest client with a registered (pinned) guest window.
/// `bed` selects the serial or the pipelined frontend.
double vphi_point(tools::Testbed& bed, std::size_t size, scif::Port port) {
  RmaWindowServer server{bed, port, size};
  auto& guest = bed.vm(0).guest_scif();
  const int epd = connect_to_card(bed, guest, port);
  if (epd < 0) return 0.0;
  std::uint8_t ready;
  guest.recv(epd, &ready, 1, scif::SCIF_RECV_BLOCK);

  auto buf = bed.vm(0).alloc_user_buffer(size);
  if (!buf) return 0.0;
  auto reg = guest.register_mem(epd, *buf, size, 0,
                                scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE,
                                0);
  if (!reg) return 0.0;
  const double gbps = measure_read_throughput(guest, epd, *reg, size, kRounds);
  std::uint8_t bye = 0;
  guest.send(epd, &bye, 1, scif::SCIF_SEND_BLOCK);
  guest.close(epd);
  bed.vm(0).free_user_buffer(*buf);
  return gbps;
}

double ns_for(std::size_t size, double gbps) {
  return gbps > 0.0 ? static_cast<double>(size) / gbps : 0.0;
}

void print_figure() {
  print_header("Figure 5: remote memory access throughput",
               "host remote read -> 6.4 GB/s; vPHI -> 4.6 GB/s (72%); "
               "pipelined window overlaps chunk round trips (beyond paper)");
  BenchJson json{"fig5_rma_throughput"};
  sim::FigureTable table{"fig5 RMA read throughput (GB/s)", "read_bytes"};
  sim::Series host{"host_GBps", {}, {}};
  sim::Series vphi{"vphi_GBps", {}, {}};
  sim::Series piped{"vphi_pipelined_GBps", {}, {}};

  scif::Port port = 2'600;
  const auto sizes = g_smoke ? std::span<const std::size_t>(kSmokeSizes)
                             : std::span<const std::size_t>(kSizes);
  for (const std::size_t size : sizes) {
    sim::Actor host_actor{"host-client", sim::Actor::AtNow{}};
    double h;
    {
      sim::ActorScope scope(host_actor);
      h = host_point(size, port++);
    }
    sim::Actor vm_actor{"vm-client", sim::Actor::AtNow{}};
    double v;
    {
      sim::ActorScope scope(vm_actor);
      v = vphi_point(rig().bed, size, port++);
    }
    sim::Actor piped_actor{"vm-client-piped", sim::Actor::AtNow{}};
    double pw;
    {
      sim::ActorScope scope(piped_actor);
      pw = vphi_point(rig().pipelined_bed, size, port++);
    }
    host.add(static_cast<double>(size), h);
    vphi.add(static_cast<double>(size), v);
    piped.add(static_cast<double>(size), pw);
    json.add("rma_read_host", size, ns_for(size, h), h);
    json.add("rma_read_vphi", size, ns_for(size, v), v);
    json.add("rma_read_vphi_pipelined", size, ns_for(size, pw), pw);
  }
  table.add_series(host);
  table.add_series(vphi);
  table.add_series(piped);
  table.add_ratio_column(1, 0, "vphi/host");
  table.add_ratio_column(2, 0, "piped/host");
  table.print(std::cout);
  std::printf("\n");
}

void BM_RmaRead_Host(benchmark::State& state) {
  static scif::Port port = 2'700;
  const auto size = static_cast<std::size_t>(state.range(0));
  sim::Actor actor{"bm-host", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  const double gbps = host_point(size, port++);
  for (auto _ : state) {
    state.SetIterationTime(gbps > 0.0
                               ? static_cast<double>(size) / (gbps * 1e9)
                               : 1.0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(size) * state.iterations());
}

void BM_RmaRead_Vphi(benchmark::State& state) {
  static scif::Port port = 2'800;
  const auto size = static_cast<std::size_t>(state.range(0));
  sim::Actor actor{"bm-vm", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  const double gbps = vphi_point(rig().bed, size, port++);
  for (auto _ : state) {
    state.SetIterationTime(gbps > 0.0
                               ? static_cast<double>(size) / (gbps * 1e9)
                               : 1.0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(size) * state.iterations());
}

BENCHMARK(BM_RmaRead_Host)
    ->Arg(1 << 20)
    ->Arg(64 << 20)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_RmaRead_Vphi)
    ->Arg(1 << 20)
    ->Arg(64 << 20)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace vphi::bench

int main(int argc, char** argv) {
  vphi::bench::g_smoke = vphi::bench::smoke_mode(argc, argv);
  vphi::bench::print_figure();
  if (vphi::bench::g_smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
