// Ablation A2 — backend execution mode: QEMU blocking event loop vs worker
// threads per data-transfer size.
//
// Sec. III "Blocking vs non-blocking mode": blocking handlers freeze the
// VM's other I/O for the duration of the operation but avoid the worker
// handoff; worker threads cost a handoff but keep the loop free. "As the
// data size increases, the non-blocking method appears more appealing."
// This bench measures both sides of the tradeoff: request latency and the
// time the event loop was held.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/stats.hpp"
#include "vphi/backend.hpp"

namespace vphi::bench {
namespace {

const std::size_t kSizes[] = {1'024, 65'536, 1ull << 20, 4ull << 20};
constexpr int kRounds = 4;

struct ModeResult {
  double latency_us = 0.0;
  double loop_held_us = 0.0;  ///< event-loop blocked time per request
};

ModeResult measure_mode(core::BackendPolicy::Classifier classifier,
                        std::size_t size, scif::Port port) {
  tools::TestbedConfig config;
  config.backend_policy.classify = std::move(classifier);
  tools::Testbed bed{config};

  LatencySink sink{bed, port, size};
  sim::Actor actor{"client", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = bed.vm(0).guest_scif();
  const int epd = connect_to_card(bed, guest, port);
  if (epd < 0) return {};
  const sim::Nanos held_before = bed.vm(0).vm().qemu().blocked_time();
  const sim::Nanos lat = measure_send_latency(guest, epd, size, kRounds);
  const sim::Nanos held_after = bed.vm(0).vm().qemu().blocked_time();
  guest.close(epd);
  return ModeResult{sim::to_micros(lat),
                    sim::to_micros(held_after - held_before) / (kRounds + 1)};
}

void run() {
  print_header(
      "Ablation A2: backend blocking vs worker-thread execution",
      "blocking freezes the VM for the transfer duration; workers pay a "
      "handoff but keep the event loop free (Sec. III tradeoff)");

  BenchJson json{"abl2_backend_mode"};
  sim::FigureTable table{"A2 backend mode: latency + loop occupancy (us)",
                         "msg_bytes"};
  sim::Series block_lat{"blocking_us", {}, {}};
  sim::Series worker_lat{"worker_us", {}, {}};
  sim::Series block_held{"loop_held_blk_us", {}, {}};
  sim::Series worker_held{"loop_held_wrk_us", {}, {}};

  scif::Port port = 3'200;
  for (const std::size_t size : kSizes) {
    const auto blocking =
        measure_mode(core::BackendPolicy::all_blocking(), size, port++);
    const auto worker =
        measure_mode(core::BackendPolicy::all_worker(), size, port++);
    block_lat.add(static_cast<double>(size), blocking.latency_us);
    worker_lat.add(static_cast<double>(size), worker.latency_us);
    block_held.add(static_cast<double>(size), blocking.loop_held_us);
    worker_held.add(static_cast<double>(size), worker.loop_held_us);
    json.add("send_blocking", size, blocking.latency_us * 1e3, 0.0);
    json.add("send_worker", size, worker.latency_us * 1e3, 0.0);
  }
  table.add_series(block_lat);
  table.add_series(worker_lat);
  table.add_series(block_held);
  table.add_series(worker_held);
  table.print(std::cout);
  std::printf(
      "\n(worker latency = blocking + handoff; loop occupancy drops to ~0\n"
      " under workers — the hybrid the paper proposes would switch modes at\n"
      " a size threshold, paying the handoff only when the loop hold would\n"
      " be worse)\n");
}

}  // namespace
}  // namespace vphi::bench

int main() {
  vphi::bench::run();
  return 0;
}
