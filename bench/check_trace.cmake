# trace_smoke ctest body. Runs vphi-stat in --smoke mode (which enforces the
# hop-sum-vs-end-to-end identity itself and exits non-zero on a miss), then
# validates the Chrome trace JSON it writes: well-formed, non-empty, every
# event carries a ts, and per track (tid) the ts sequence is monotonically
# non-decreasing — the invariant chrome://tracing / Perfetto rely on.
#
# Invoked as:
#   cmake -DVPHI_STAT=<vphi-stat binary> -P check_trace.cmake
# with the working directory set to where the trace file should land.

if(NOT DEFINED VPHI_STAT)
  message(FATAL_ERROR "trace_smoke: -DVPHI_STAT=<path> is required")
endif()

execute_process(COMMAND ${VPHI_STAT} --smoke RESULT_VARIABLE _rc
                OUTPUT_VARIABLE _out ERROR_VARIABLE _err)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR
          "trace_smoke: ${VPHI_STAT} --smoke exited ${_rc}\n${_out}\n${_err}")
endif()

file(READ vphi_stat_trace.json _json)
string(JSON _nevents LENGTH "${_json}" traceEvents)
if(_nevents EQUAL 0)
  message(FATAL_ERROR "trace_smoke: vphi_stat_trace.json has no traceEvents")
endif()

# Walk the events once, tracking the last ts seen per tid. Metadata events
# (ph == "M") name tracks and carry no meaningful ts; skip them.
set(_tids "")
math(EXPR _last "${_nevents} - 1")
foreach(_i RANGE ${_last})
  string(JSON _ph GET "${_json}" traceEvents ${_i} ph)
  if(_ph STREQUAL "M")
    continue()
  endif()
  string(JSON _ts ERROR_VARIABLE _ts_err GET "${_json}" traceEvents ${_i} ts)
  if(_ts_err)
    message(FATAL_ERROR "trace_smoke: event ${_i} has no ts (${_ts_err})")
  endif()
  string(JSON _tid GET "${_json}" traceEvents ${_i} tid)
  if(NOT DEFINED _last_ts_${_tid})
    list(APPEND _tids ${_tid})
    set(_last_ts_${_tid} ${_ts})
  elseif(_ts LESS _last_ts_${_tid})
    message(FATAL_ERROR
            "trace_smoke: event ${_i} ts ${_ts} goes backwards on tid "
            "${_tid} (last ${_last_ts_${_tid}})")
  else()
    set(_last_ts_${_tid} ${_ts})
  endif()
endforeach()

list(LENGTH _tids _ntids)
message(STATUS
        "trace_smoke OK: ${_nevents} events across ${_ntids} tracks, "
        "ts monotone per track")
