// Shared rigs for the figure-reproduction benchmark binaries.
//
// Each bench binary prints the series the corresponding paper figure plots
// (a sim::FigureTable), with simulated time as the measurement clock. The
// micro benches additionally register google-benchmark entries (manual
// time = simulated time) for familiar tooling.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "scif/provider.hpp"
#include "scif/types.hpp"
#include "sim/actor.hpp"
#include "sim/stats.hpp"
#include "tools/testbed.hpp"

namespace vphi::bench {

/// Print a standard header naming the reproduced figure and the paper claim
/// the run should be compared against.
void print_header(const char* figure, const char* paper_claim);

/// Machine-readable result sink: every bench binary registers its measured
/// points here and writes `BENCH_<name>.json` into the working directory on
/// destruction, so CI (the bench_smoke ctest) and plotting scripts never
/// scrape the human tables. One row per measured point:
///   {"op": "...", "size": bytes, "ns": simulated_ns, "gbps": GB_per_s}
/// `ns` and `gbps` are redundant encodings of the same measurement where
/// both make sense (gbps = size / ns); latency-style rows report gbps 0.
class BenchJson {
 public:
  explicit BenchJson(std::string name);
  ~BenchJson();

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Record one measured point. Either `simulated_ns` or `gbps` may be 0
  /// when the other is the natural unit; both are stored as given.
  void add(const std::string& op, std::size_t size_bytes, double simulated_ns,
           double gbps);

  /// Write BENCH_<name>.json now (the destructor calls this at most once).
  void write();

 private:
  struct Row {
    std::string op;
    std::size_t size = 0;
    double ns = 0.0;
    double gbps = 0.0;
  };
  std::string name_;
  std::vector<Row> rows_;
  bool written_ = false;
};

/// True when `--smoke` is among the args: benches shrink their sweep to a
/// CI-sized subset (fewer sizes, fewer rounds, no google-benchmark pass).
bool smoke_mode(int argc, char** argv);

/// Card-side echo-style sink for latency runs: accepts one connection and
/// keeps consuming frames of exactly `frame` bytes until the peer closes.
class LatencySink {
 public:
  LatencySink(tools::Testbed& bed, scif::Port port, std::size_t frame);
  ~LatencySink();

  scif::Port port() const noexcept { return port_; }

 private:
  scif::Port port_;
  std::future<void> server_;
};

/// Connect `client` to a card service port; returns the connected epd.
int connect_to_card(tools::Testbed& bed, scif::Provider& client,
                    scif::Port port);

/// Measured one-way latency (duration of a blocking send) of `size` bytes,
/// averaged over `rounds`. The server must be a LatencySink of the same
/// frame size.
sim::Nanos measure_send_latency(scif::Provider& client, int epd,
                                std::size_t size, int rounds);

/// Card-side RMA window server: accepts one connection and registers a
/// device-memory window of `bytes` at fixed offset 0.
class RmaWindowServer {
 public:
  RmaWindowServer(tools::Testbed& bed, scif::Port port, std::size_t bytes);
  ~RmaWindowServer();

  scif::Port port() const noexcept { return port_; }

 private:
  scif::Port port_;
  std::future<void> server_;
};

/// Remote-read throughput in bytes/simulated-second for `size`-byte reads.
/// The client must already own a registered local window at `local_off`
/// covering `size` bytes. Performs one warm-up read then `rounds` timed.
double measure_read_throughput(scif::Provider& client, int epd,
                               scif::RegOffset local_off, std::size_t size,
                               int rounds);

}  // namespace vphi::bench
