#include "dgemm_fig.hpp"

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "tools/micnativeloadex.hpp"
#include "workloads/dgemm.hpp"

namespace vphi::bench {
namespace {

// Matrix orders swept; the paper's X axis is the total size of the two
// input arrays (2 * n^2 * 8 bytes). 14336 keeps 3 matrices inside the
// card's 6 GB.
const std::size_t kSizes[] = {1'024, 2'048, 4'096, 8'192, 12'288, 14'336};

struct Point {
  double host_s = 0.0;
  double vphi_s = 0.0;
};

Point measure(tools::Testbed& bed, const coi::BinaryImage& image,
              std::size_t n, std::uint32_t threads) {
  tools::LoadexOptions options;
  options.threads = threads;
  options.args = {std::to_string(n)};

  Point point;
  {
    sim::Actor actor{"host-loadex", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    tools::MicNativeLoadEx loadex{bed.host_provider()};
    auto r = loadex.run(image, options);
    if (r && r->exit_code == 0) point.host_s = sim::to_seconds(r->total_ns);
  }
  {
    sim::Actor actor{"vm-loadex", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    tools::MicNativeLoadEx loadex{bed.vm(0).guest_scif()};
    auto r = loadex.run(image, options);
    if (r && r->exit_code == 0) point.vphi_s = sim::to_seconds(r->total_ns);
  }
  return point;
}

}  // namespace

void run_dgemm_figure(std::uint32_t threads, const char* figure,
                      const char* claim, const char* json_name) {
  print_header(figure, claim);
  BenchJson json{json_name};
  tools::Testbed bed{tools::TestbedConfig{}};
  workloads::register_dgemm_kernel();
  const auto image = workloads::make_dgemm_image(bed.model());
  std::printf("micnativeloadex payload: %.0f MiB binaries+libs, %u threads\n\n",
              static_cast<double>(image.total_bytes()) / (1 << 20), threads);

  sim::FigureTable table{
      std::string(figure) + " — dgemm total time (s), " +
          std::to_string(threads) + " threads",
      "input_MiB"};
  sim::Series host{"host_s", {}, {}};
  sim::Series vphi{"vphi_s", {}, {}};

  for (const std::size_t n : kSizes) {
    const auto point = measure(bed, image, n, threads);
    // X axis: total size of the two input arrays, in MiB.
    const double input_mib =
        2.0 * static_cast<double>(n) * static_cast<double>(n) * 8.0 /
        static_cast<double>(1 << 20);
    host.add(input_mib, point.host_s);
    vphi.add(input_mib, point.vphi_s);
    const auto input_bytes = 2 * n * n * static_cast<std::size_t>(8);
    json.add("dgemm_host", input_bytes, point.host_s * 1e9, 0.0);
    json.add("dgemm_vphi", input_bytes, point.vphi_s * 1e9, 0.0);
  }
  table.add_series(host);
  table.add_series(vphi);
  table.add_ratio_column(1, 0, "normalized");
  table.print(std::cout);
  std::printf(
      "\n(normalized = vPHI/host total time; decays toward 1.0 as the\n"
      " launch-time virtualization overhead amortizes — the paper's claim)\n");
}

}  // namespace vphi::bench
