// Figure 6 — launch and execution of dgemm using 56 threads (one software
// thread per usable KNC core), host vs vPHI, input size swept.
#include "dgemm_fig.hpp"

int main() {
  vphi::bench::run_dgemm_figure(
      56, "Figure 6: dgemm total time, 56 threads",
      "vPHI overhead visible at small sizes, amortized for large (seconds-"
      "scale) runs",
      "fig6_dgemm_t56");
  return 0;
}
