# bench_regression ctest body. Re-runs the pipelining-, latency- and
# sharing-sensitive benches in --smoke mode and compares every row against
# the committed baseline snapshots in bench/baselines/: a throughput row
# (gbps > 0) more than its floor below baseline fails, and a latency row
# (gbps 0, ns > 0) more than 10% ABOVE its baseline ns fails.
#
# Single-VM smoke runs jitter by well under 10% run-to-run (the simulated
# clock is the measurement clock; only cross-thread arbitration order
# varies), so the default 90% floor separates real regressions from
# scheduling noise. The multi-VM sharing bench's aggregate swings ~10%
# with arbitration order, so abl3 gets a looser 75% floor — still tight
# enough to catch a real serialization bug, which halves it. Refresh a
# baseline by copying the freshly written BENCH_*.json over
# bench/baselines/ after an intentional perf change.
#
# Invoked as:
#   cmake -DFIG4=<fig4 binary> -DFIG5=<fig5 binary> -DABL3=<abl3 binary>
#         -DABL6=<abl6 binary>
#         -DBASELINE_DIR=<bench/baselines> -P check_bench_regression.cmake
# with the working directory set to where the fresh JSON files should land.

foreach(_var FIG4 FIG5 ABL3 ABL6 BASELINE_DIR)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "bench_regression: -D${_var}=<path> is required")
  endif()
endforeach()

foreach(_bin ${FIG4} ${FIG5} ${ABL3} ${ABL6})
  execute_process(COMMAND ${_bin} --smoke RESULT_VARIABLE _rc
                  OUTPUT_VARIABLE _out ERROR_VARIABLE _err)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR
            "bench_regression: ${_bin} --smoke exited ${_rc}\n${_out}\n${_err}")
  endif()
endforeach()

# CMake's math() is integer-only; scale decimal gbps strings to milli-units.
function(to_milli value out_var)
  if(NOT value MATCHES "^([0-9]+)(\\.([0-9]*))?$")
    message(FATAL_ERROR
            "bench_regression: cannot parse gbps value '${value}' "
            "(scientific notation is not expected for throughput rows)")
  endif()
  set(_int "${CMAKE_MATCH_1}")
  set(_frac "${CMAKE_MATCH_3}000")
  string(SUBSTRING "${_frac}" 0 3 _frac)
  math(EXPR _milli "${_int} * 1000 + ${_frac}")
  set(${out_var} ${_milli} PARENT_SCOPE)
endfunction()

# Find field `field` of the row matching op+size, or NOTFOUND.
function(row_field json op size field out_var)
  set(${out_var} "NOTFOUND" PARENT_SCOPE)
  string(JSON _nrows LENGTH "${json}" rows)
  if(_nrows EQUAL 0)
    return()
  endif()
  math(EXPR _last "${_nrows} - 1")
  foreach(_i RANGE ${_last})
    string(JSON _op GET "${json}" rows ${_i} op)
    string(JSON _size GET "${json}" rows ${_i} size)
    if(_op STREQUAL ${op} AND _size EQUAL ${size})
      string(JSON _value GET "${json}" rows ${_i} ${field})
      set(${out_var} ${_value} PARENT_SCOPE)
      return()
    endif()
  endforeach()
endfunction()

set(_checked 0)
set(_failures "")
file(GLOB _baselines "${BASELINE_DIR}/BENCH_*.json")
if(NOT _baselines)
  message(FATAL_ERROR "bench_regression: no baselines in ${BASELINE_DIR}")
endif()

foreach(_baseline ${_baselines})
  get_filename_component(_name ${_baseline} NAME)
  if(NOT EXISTS ${CMAKE_CURRENT_BINARY_DIR}/${_name})
    message(FATAL_ERROR
            "bench_regression: baseline ${_name} exists but the smoke run "
            "did not write a fresh ${_name}")
  endif()
  file(READ ${_baseline} _base_json)
  file(READ ${CMAKE_CURRENT_BINARY_DIR}/${_name} _cur_json)

  # Throughput floor as a percentage of baseline; the multi-VM sharing
  # aggregate legitimately swings with arbitration order.
  set(_floor_pct 90)
  if(_name MATCHES "abl3_multivm_sharing")
    set(_floor_pct 75)
  endif()

  string(JSON _nrows LENGTH "${_base_json}" rows)
  math(EXPR _last "${_nrows} - 1")
  foreach(_i RANGE ${_last})
    string(JSON _op GET "${_base_json}" rows ${_i} op)
    string(JSON _size GET "${_base_json}" rows ${_i} size)
    string(JSON _base_gbps GET "${_base_json}" rows ${_i} gbps)
    string(JSON _base_ns GET "${_base_json}" rows ${_i} ns)
    if(_base_gbps EQUAL 0)
      # Latency-style row: bound simulated ns from above instead (10%
      # ceiling). Rows with neither ns nor gbps carry no bound.
      if(_base_ns EQUAL 0)
        continue()
      endif()
      row_field("${_cur_json}" ${_op} ${_size} ns _cur_ns)
      if(_cur_ns STREQUAL "NOTFOUND")
        list(APPEND _failures "${_name}: row op=${_op} size=${_size} vanished")
        continue()
      endif()
      math(EXPR _lhs "${_cur_ns} * 100")
      math(EXPR _rhs "${_base_ns} * 110")
      if(_lhs GREATER _rhs)
        list(APPEND _failures
             "${_name}: op=${_op} size=${_size} latency regressed to "
             "${_cur_ns} ns (baseline ${_base_ns} ns, ceiling is 110%)")
      endif()
      math(EXPR _checked "${_checked} + 1")
      continue()
    endif()
    row_field("${_cur_json}" ${_op} ${_size} gbps _cur_gbps)
    if(_cur_gbps STREQUAL "NOTFOUND")
      list(APPEND _failures "${_name}: row op=${_op} size=${_size} vanished")
      continue()
    endif()
    to_milli(${_base_gbps} _base_milli)
    to_milli(${_cur_gbps} _cur_milli)
    # Fail when cur < floor% of baseline, in integer milli-gbps.
    math(EXPR _lhs "${_cur_milli} * 100")
    math(EXPR _rhs "${_base_milli} * ${_floor_pct}")
    if(_lhs LESS _rhs)
      list(APPEND _failures
           "${_name}: op=${_op} size=${_size} regressed to ${_cur_gbps} "
           "GB/s (baseline ${_base_gbps} GB/s, floor is ${_floor_pct}%)")
    endif()
    math(EXPR _checked "${_checked} + 1")
  endforeach()
endforeach()

if(_failures)
  string(REPLACE ";" "\n  " _failures "${_failures}")
  message(FATAL_ERROR "bench_regression FAILED:\n  ${_failures}")
endif()
message(STATUS
        "bench_regression OK: ${_checked} throughput/latency rows within "
        "bounds of baseline")
