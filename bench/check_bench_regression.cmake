# bench_regression ctest body. Re-runs the pipelining-sensitive benches in
# --smoke mode and compares every throughput row against the committed
# baseline snapshots in bench/baselines/: a row more than 10% below its
# baseline gbps fails the test. Latency-style rows (gbps 0) are skipped —
# the baselines bound throughput, the bench_smoke invariants bound ordering.
#
# Concurrent smoke runs jitter by well under 10% run-to-run (the simulated
# clock is the measurement clock; only cross-thread arbitration order
# varies), so the threshold separates real regressions from scheduling
# noise. Refresh a baseline by copying the freshly written BENCH_*.json over
# bench/baselines/ after an intentional perf change.
#
# Invoked as:
#   cmake -DFIG5=<fig5 binary> -DABL6=<abl6 binary>
#         -DBASELINE_DIR=<bench/baselines> -P check_bench_regression.cmake
# with the working directory set to where the fresh JSON files should land.

foreach(_var FIG5 ABL6 BASELINE_DIR)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "bench_regression: -D${_var}=<path> is required")
  endif()
endforeach()

foreach(_bin ${FIG5} ${ABL6})
  execute_process(COMMAND ${_bin} --smoke RESULT_VARIABLE _rc
                  OUTPUT_VARIABLE _out ERROR_VARIABLE _err)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR
            "bench_regression: ${_bin} --smoke exited ${_rc}\n${_out}\n${_err}")
  endif()
endforeach()

# CMake's math() is integer-only; scale decimal gbps strings to milli-units.
function(to_milli value out_var)
  if(NOT value MATCHES "^([0-9]+)(\\.([0-9]*))?$")
    message(FATAL_ERROR
            "bench_regression: cannot parse gbps value '${value}' "
            "(scientific notation is not expected for throughput rows)")
  endif()
  set(_int "${CMAKE_MATCH_1}")
  set(_frac "${CMAKE_MATCH_3}000")
  string(SUBSTRING "${_frac}" 0 3 _frac)
  math(EXPR _milli "${_int} * 1000 + ${_frac}")
  set(${out_var} ${_milli} PARENT_SCOPE)
endfunction()

# Find the gbps of the row matching op+size, or NOTFOUND.
function(row_gbps json op size out_var)
  set(${out_var} "NOTFOUND" PARENT_SCOPE)
  string(JSON _nrows LENGTH "${json}" rows)
  if(_nrows EQUAL 0)
    return()
  endif()
  math(EXPR _last "${_nrows} - 1")
  foreach(_i RANGE ${_last})
    string(JSON _op GET "${json}" rows ${_i} op)
    string(JSON _size GET "${json}" rows ${_i} size)
    if(_op STREQUAL ${op} AND _size EQUAL ${size})
      string(JSON _gbps GET "${json}" rows ${_i} gbps)
      set(${out_var} ${_gbps} PARENT_SCOPE)
      return()
    endif()
  endforeach()
endfunction()

set(_checked 0)
set(_failures "")
file(GLOB _baselines "${BASELINE_DIR}/BENCH_*.json")
if(NOT _baselines)
  message(FATAL_ERROR "bench_regression: no baselines in ${BASELINE_DIR}")
endif()

foreach(_baseline ${_baselines})
  get_filename_component(_name ${_baseline} NAME)
  if(NOT EXISTS ${CMAKE_CURRENT_BINARY_DIR}/${_name})
    message(FATAL_ERROR
            "bench_regression: baseline ${_name} exists but the smoke run "
            "did not write a fresh ${_name}")
  endif()
  file(READ ${_baseline} _base_json)
  file(READ ${CMAKE_CURRENT_BINARY_DIR}/${_name} _cur_json)

  string(JSON _nrows LENGTH "${_base_json}" rows)
  math(EXPR _last "${_nrows} - 1")
  foreach(_i RANGE ${_last})
    string(JSON _op GET "${_base_json}" rows ${_i} op)
    string(JSON _size GET "${_base_json}" rows ${_i} size)
    string(JSON _base_gbps GET "${_base_json}" rows ${_i} gbps)
    if(_base_gbps EQUAL 0)
      continue()  # latency-style row: no throughput to bound
    endif()
    row_gbps("${_cur_json}" ${_op} ${_size} _cur_gbps)
    if(_cur_gbps STREQUAL "NOTFOUND")
      list(APPEND _failures "${_name}: row op=${_op} size=${_size} vanished")
      continue()
    endif()
    to_milli(${_base_gbps} _base_milli)
    to_milli(${_cur_gbps} _cur_milli)
    # Fail when cur < 0.9 * baseline, in integer milli-gbps.
    math(EXPR _lhs "${_cur_milli} * 10")
    math(EXPR _rhs "${_base_milli} * 9")
    if(_lhs LESS _rhs)
      list(APPEND _failures
           "${_name}: op=${_op} size=${_size} regressed to ${_cur_gbps} "
           "GB/s (baseline ${_base_gbps} GB/s, floor is 90%)")
    endif()
    math(EXPR _checked "${_checked} + 1")
  endforeach()
endforeach()

if(_failures)
  string(REPLACE ";" "\n  " _failures "${_failures}")
  message(FATAL_ERROR "bench_regression FAILED:\n  ${_failures}")
endif()
message(STATUS
        "bench_regression OK: ${_checked} throughput rows within 10% of "
        "baseline")
