#include "bench_common.hpp"

#include <cstdio>

namespace vphi::bench {

void print_header(const char* figure, const char* paper_claim) {
  std::printf("# %s\n# paper: %s\n\n", figure, paper_claim);
  std::fflush(stdout);
}

LatencySink::LatencySink(tools::Testbed& bed, scif::Port port,
                         std::size_t frame)
    : port_(port) {
  auto& p = bed.card_provider();
  auto lep = p.open();
  if (!lep) return;
  const int listener = *lep;
  if (!p.bind(listener, port) || !sim::ok(p.listen(listener, 4))) return;
  server_ = std::async(std::launch::async, [&p, listener, frame] {
    sim::Actor actor{"latency-sink", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    auto conn = p.accept(listener, scif::SCIF_ACCEPT_SYNC);
    if (!conn) return;
    std::vector<std::uint8_t> buf(frame);
    while (p.recv(conn->epd, buf.data(), frame, scif::SCIF_RECV_BLOCK)) {
    }
    p.close(conn->epd);
    p.close(listener);
  });
}

LatencySink::~LatencySink() {
  if (server_.valid()) server_.wait();
}

int connect_to_card(tools::Testbed& bed, scif::Provider& client,
                    scif::Port port) {
  auto epd = client.open();
  if (!epd) return -1;
  if (!sim::ok(client.connect(*epd, scif::PortId{bed.card_node(), port}))) {
    client.close(*epd);
    return -1;
  }
  return *epd;
}

sim::Nanos measure_send_latency(scif::Provider& client, int epd,
                                std::size_t size, int rounds) {
  std::vector<std::uint8_t> buf(size, 0x42);
  auto& actor = sim::this_actor();
  // Warm-up round (synchronizes this timeline with the service loops).
  if (!client.send(epd, buf.data(), size, scif::SCIF_SEND_BLOCK)) return 0;
  const sim::Nanos before = actor.now();
  for (int i = 0; i < rounds; ++i) {
    if (!client.send(epd, buf.data(), size, scif::SCIF_SEND_BLOCK)) return 0;
  }
  return (actor.now() - before) / static_cast<sim::Nanos>(rounds);
}

RmaWindowServer::RmaWindowServer(tools::Testbed& bed, scif::Port port,
                                 std::size_t bytes)
    : port_(port) {
  auto& p = bed.card_provider();
  auto lep = p.open();
  if (!lep) return;
  const int listener = *lep;
  if (!p.bind(listener, port) || !sim::ok(p.listen(listener, 4))) return;
  server_ = std::async(std::launch::async, [&bed, &p, listener, bytes] {
    sim::Actor actor{"rma-server", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    auto conn = p.accept(listener, scif::SCIF_ACCEPT_SYNC);
    if (!conn) return;
    auto dev = bed.card().memory().allocate(bytes);
    if (!dev) return;
    auto reg = p.register_mem(conn->epd, bed.card().memory().at(*dev), bytes,
                              0, scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE,
                              scif::SCIF_MAP_FIXED);
    if (!reg) return;
    // Signal readiness, then hold the window until the client hangs up.
    std::uint8_t ready = 1;
    p.send(conn->epd, &ready, 1, scif::SCIF_SEND_BLOCK);
    std::uint8_t bye;
    p.recv(conn->epd, &bye, 1, scif::SCIF_RECV_BLOCK);
    p.close(conn->epd);
    p.close(listener);
    bed.card().memory().free(*dev);
  });
}

RmaWindowServer::~RmaWindowServer() {
  if (server_.valid()) server_.wait();
}

double measure_read_throughput(scif::Provider& client, int epd,
                               scif::RegOffset local_off, std::size_t size,
                               int rounds) {
  auto& actor = sim::this_actor();
  // Warm-up.
  if (!sim::ok(client.readfrom(epd, local_off, size, 0, scif::SCIF_RMA_SYNC))) {
    return 0.0;
  }
  const sim::Nanos before = actor.now();
  for (int i = 0; i < rounds; ++i) {
    if (!sim::ok(client.readfrom(epd, local_off, size, 0,
                                 scif::SCIF_RMA_SYNC))) {
      return 0.0;
    }
  }
  const sim::Nanos elapsed = actor.now() - before;
  if (elapsed == 0) return 0.0;
  return static_cast<double>(size) * rounds / static_cast<double>(elapsed) *
         1e9 / 1e9;  // bytes per simulated ns == GB/s
}

}  // namespace vphi::bench
