#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace vphi::bench {

void print_header(const char* figure, const char* paper_claim) {
  // Benches run with request tracing on (VPHI_TRACE=0 opts out) so every
  // BENCH_*.json carries the per-hop latency breakdown next to the measured
  // points. Tracing never advances the simulated clock, so the numbers are
  // identical either way.
  const char* env = std::getenv("VPHI_TRACE");
  if (env == nullptr || std::strcmp(env, "0") != 0) {
    sim::tracer().set_enabled(true);
  }
  std::printf("# %s\n# paper: %s\n\n", figure, paper_claim);
  std::fflush(stdout);
}

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {}

BenchJson::~BenchJson() { write(); }

void BenchJson::add(const std::string& op, std::size_t size_bytes,
                    double simulated_ns, double gbps) {
  rows_.push_back(Row{op, size_bytes, simulated_ns, gbps});
}

void BenchJson::write() {
  if (written_) return;
  written_ = true;
  std::ofstream out("BENCH_" + name_ + ".json");
  if (!out) {
    std::fprintf(stderr, "BENCH_%s.json: cannot open for writing\n",
                 name_.c_str());
    return;
  }
  out << "{\n  \"bench\": \"" << name_ << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    out << "    {\"op\": \"" << r.op << "\", \"size\": " << r.size
        << ", \"ns\": " << r.ns << ", \"gbps\": " << r.gbps << "}"
        << (i + 1 < rows_.size() ? "," : "") << "\n";
  }
  // Observability payload: the per-hop latency breakdown aggregated over
  // every ring request the run traced, plus the full metrics snapshot
  // (stable names — see docs/OBSERVABILITY.md). Empty when tracing is off.
  const auto hops = sim::tracer().hop_breakdown();
  out << "  ],\n  \"hops\": [\n";
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& h = hops[i];
    out << "    {\"from\": \"" << sim::span_event_name(h.from)
        << "\", \"to\": \"" << sim::span_event_name(h.to)
        << "\", \"count\": " << h.ns.count() << ", \"mean_ns\": " << h.ns.mean()
        << "}" << (i + 1 < hops.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": " << sim::metrics::registry().snapshot_json()
      << "\n}\n";
  std::printf("wrote BENCH_%s.json (%zu rows)\n", name_.c_str(), rows_.size());
}

bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

LatencySink::LatencySink(tools::Testbed& bed, scif::Port port,
                         std::size_t frame)
    : port_(port) {
  auto& p = bed.card_provider();
  auto lep = p.open();
  if (!lep) return;
  const int listener = *lep;
  if (!p.bind(listener, port) || !sim::ok(p.listen(listener, 4))) return;
  server_ = std::async(std::launch::async, [&p, listener, frame] {
    sim::Actor actor{"latency-sink", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    auto conn = p.accept(listener, scif::SCIF_ACCEPT_SYNC);
    if (!conn) return;
    std::vector<std::uint8_t> buf(frame);
    while (p.recv(conn->epd, buf.data(), frame, scif::SCIF_RECV_BLOCK)) {
    }
    p.close(conn->epd);
    p.close(listener);
  });
}

LatencySink::~LatencySink() {
  if (server_.valid()) server_.wait();
}

int connect_to_card(tools::Testbed& bed, scif::Provider& client,
                    scif::Port port) {
  auto epd = client.open();
  if (!epd) return -1;
  if (!sim::ok(client.connect(*epd, scif::PortId{bed.card_node(), port}))) {
    client.close(*epd);
    return -1;
  }
  return *epd;
}

sim::Nanos measure_send_latency(scif::Provider& client, int epd,
                                std::size_t size, int rounds) {
  std::vector<std::uint8_t> buf(size, 0x42);
  auto& actor = sim::this_actor();
  // Warm-up round (synchronizes this timeline with the service loops).
  if (!client.send(epd, buf.data(), size, scif::SCIF_SEND_BLOCK)) return 0;
  const sim::Nanos before = actor.now();
  for (int i = 0; i < rounds; ++i) {
    if (!client.send(epd, buf.data(), size, scif::SCIF_SEND_BLOCK)) return 0;
  }
  return (actor.now() - before) / static_cast<sim::Nanos>(rounds);
}

RmaWindowServer::RmaWindowServer(tools::Testbed& bed, scif::Port port,
                                 std::size_t bytes)
    : port_(port) {
  auto& p = bed.card_provider();
  auto lep = p.open();
  if (!lep) return;
  const int listener = *lep;
  if (!p.bind(listener, port) || !sim::ok(p.listen(listener, 4))) return;
  server_ = std::async(std::launch::async, [&bed, &p, listener, bytes] {
    sim::Actor actor{"rma-server", sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    auto conn = p.accept(listener, scif::SCIF_ACCEPT_SYNC);
    if (!conn) return;
    auto dev = bed.card().memory().allocate(bytes);
    if (!dev) return;
    auto reg = p.register_mem(conn->epd, bed.card().memory().at(*dev), bytes,
                              0, scif::SCIF_PROT_READ | scif::SCIF_PROT_WRITE,
                              scif::SCIF_MAP_FIXED);
    if (!reg) return;
    // Signal readiness, then hold the window until the client hangs up.
    std::uint8_t ready = 1;
    p.send(conn->epd, &ready, 1, scif::SCIF_SEND_BLOCK);
    std::uint8_t bye;
    p.recv(conn->epd, &bye, 1, scif::SCIF_RECV_BLOCK);
    p.close(conn->epd);
    p.close(listener);
    bed.card().memory().free(*dev);
  });
}

RmaWindowServer::~RmaWindowServer() {
  if (server_.valid()) server_.wait();
}

double measure_read_throughput(scif::Provider& client, int epd,
                               scif::RegOffset local_off, std::size_t size,
                               int rounds) {
  auto& actor = sim::this_actor();
  // Warm-up.
  if (!sim::ok(client.readfrom(epd, local_off, size, 0, scif::SCIF_RMA_SYNC))) {
    return 0.0;
  }
  const sim::Nanos before = actor.now();
  for (int i = 0; i < rounds; ++i) {
    if (!sim::ok(client.readfrom(epd, local_off, size, 0,
                                 scif::SCIF_RMA_SYNC))) {
      return 0.0;
    }
  }
  const sim::Nanos elapsed = actor.now() - before;
  if (elapsed == 0) return 0.0;
  return static_cast<double>(size) * rounds / static_cast<double>(elapsed) *
         1e9 / 1e9;  // bytes per simulated ns == GB/s
}

}  // namespace vphi::bench
