// Unit tests for the PCIe link / DMA / doorbell models.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "pcie/dma.hpp"
#include "pcie/doorbell.hpp"
#include "pcie/link.hpp"
#include "sim/cost_model.hpp"
#include "sim/rng.hpp"

namespace vphi::pcie {
namespace {

using sim::CostModel;
using sim::Nanos;

TEST(Link, MmioHopChargesSender) {
  Link link{CostModel::paper()};
  sim::Actor a{"a"};
  link.mmio_hop(a);
  EXPECT_EQ(a.now(), CostModel::paper().pcie_hop_ns);
}

TEST(Link, DmaDurationMatchesModel) {
  const auto& m = CostModel::paper();
  Link link{m};
  const std::uint64_t bytes = 1ull << 20;
  auto g = link.dma(0, bytes, /*fragmented=*/false);
  EXPECT_EQ(g.start, 0u);
  EXPECT_EQ(g.end, m.dma_setup_ns + m.dma_transfer_ns(bytes, false));
  EXPECT_EQ(link.bytes_moved(), bytes);
  EXPECT_EQ(link.dma_count(), 1u);
}

TEST(Link, FragmentedDmaSlower) {
  Link link{CostModel::paper()};
  auto contiguous = link.dma(0, 1 << 20, false);
  auto fragmented = link.dma(0, 1 << 20, true);
  EXPECT_GT(fragmented.end - fragmented.start,
            contiguous.end - contiguous.start);
}

TEST(Link, ConcurrentDmaContends) {
  // Two requesters issuing equal transfers from t=0 should each see on
  // average ~half the link: the second grant starts when the first ends.
  Link link{CostModel::paper()};
  auto g1 = link.dma(0, 4 << 20, false);
  auto g2 = link.dma(0, 4 << 20, false);
  EXPECT_EQ(g2.start, g1.end);
}

TEST(Dma, TransferMovesBytesExactly) {
  Link link{CostModel::paper()};
  DmaEngine dma{link};
  std::vector<std::uint8_t> src(65'536), dst(65'536, 0);
  sim::Rng rng{1};
  rng.fill(src.data(), src.size());
  auto c = dma.transfer(0, dst.data(), src.data(), src.size(), false);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  EXPECT_GT(c.end, c.start);
}

TEST(Dma, ZeroLengthIsHarmless) {
  Link link{CostModel::paper()};
  DmaEngine dma{link};
  auto c = dma.transfer(5, nullptr, nullptr, 0, false);
  EXPECT_EQ(c.start, 5u);
  EXPECT_EQ(c.end - c.start, CostModel::paper().dma_setup_ns);
}

TEST(Dma, ChannelsRoundRobin) {
  Link link{CostModel::paper()};
  DmaEngine dma{link};
  for (int i = 0; i < 16; ++i) dma.transfer_timing_only(0, 100, false);
  for (std::uint32_t ch = 0; ch < DmaEngine::kChannels; ++ch) {
    EXPECT_EQ(dma.channel_bytes(ch), 200u);
  }
}

TEST(Dma, TimingOnlyMatchesRealTransferTiming) {
  const auto& m = CostModel::paper();
  Link link_a{m}, link_b{m};
  DmaEngine real{link_a}, modeled{link_b};
  std::vector<std::uint8_t> buf(1 << 20);
  auto c1 = real.transfer(0, buf.data(), buf.data(), buf.size(), true);
  auto c2 = modeled.transfer_timing_only(0, buf.size(), true);
  EXPECT_EQ(c1.end - c1.start, c2.end - c2.start);
}

TEST(Doorbell, RingWaitsAndMergesTime) {
  Link link{CostModel::paper()};
  Doorbell bell{link};
  sim::Actor sender{"s", 1'000};
  sim::Actor waiter{"w"};
  bell.ring(sender);
  EXPECT_TRUE(bell.wait(waiter));
  EXPECT_EQ(waiter.now(), 1'000 + CostModel::paper().pcie_hop_ns);
}

TEST(Doorbell, TryWaitNonBlocking) {
  Link link{CostModel::paper()};
  Doorbell bell{link};
  sim::Actor a{"a"};
  EXPECT_FALSE(bell.try_wait(a));
  bell.ring(a);
  EXPECT_TRUE(bell.try_wait(a));
  EXPECT_FALSE(bell.try_wait(a));
}

TEST(Doorbell, ShutdownReleasesBlockedWaiter) {
  Link link{CostModel::paper()};
  Doorbell bell{link};
  sim::Actor waiter{"w"};
  bool result = true;
  std::thread t([&] { result = bell.wait(waiter); });
  bell.shutdown();
  t.join();
  EXPECT_FALSE(result);
}

TEST(Doorbell, CrossThreadDelivery) {
  Link link{CostModel::paper()};
  Doorbell bell{link};
  sim::Actor waiter{"w"};
  std::thread t([&] {
    sim::Actor sender{"s", 500};
    bell.ring(sender);
  });
  EXPECT_TRUE(bell.wait(waiter));
  t.join();
  EXPECT_GE(waiter.now(), 500u);
}

}  // namespace
}  // namespace vphi::pcie
