// Tests for the symmetric-mode runtime (MPI-like communicator over SCIF),
// covering host-only, card-only, VM-through-vPHI and mixed worlds.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "tools/symmetric.hpp"
#include "tools/testbed.hpp"

namespace vphi::tools::symm {
namespace {

using sim::Status;

class SymmetricFixture : public ::testing::Test {
 protected:
  SymmetricFixture() : bed_(TestbedConfig{}) {}
  Testbed bed_;
};

TEST_F(SymmetricFixture, TwoHostRanksPingPong) {
  World world{{{&bed_.host_provider(), "r0"}, {&bed_.host_provider(), "r1"}},
              5'000};
  const auto status = world.run([](Rank& rank) -> Status {
    int value = 0;
    if (rank.rank() == 0) {
      value = 41;
      if (auto s = rank.send(1, &value, sizeof(value)); !sim::ok(s)) return s;
      if (auto s = rank.recv(1, &value, sizeof(value)); !sim::ok(s)) return s;
      return value == 42 ? Status::kOk : Status::kInternal;
    }
    if (auto s = rank.recv(0, &value, sizeof(value)); !sim::ok(s)) return s;
    ++value;
    return rank.send(0, &value, sizeof(value));
  });
  EXPECT_EQ(status, Status::kOk);
}

TEST_F(SymmetricFixture, MixedVmAndCardWorldAllreduce) {
  // The paper's symmetric mode: ranks in the VM + ranks on the card.
  World world{{{&bed_.vm(0).guest_scif(), "vm-r0"},
               {&bed_.card_provider(), "mic-r1"},
               {&bed_.card_provider(), "mic-r2"}},
              5'100};
  const auto status = world.run([](Rank& rank) -> Status {
    double v[2] = {static_cast<double>(rank.rank()), 1.0};
    if (auto s = rank.allreduce_sum(v, 2); !sim::ok(s)) return s;
    // sum(0,1,2) = 3; sum(1,1,1) = 3.
    return v[0] == 3.0 && v[1] == 3.0 ? Status::kOk : Status::kInternal;
  });
  EXPECT_EQ(status, Status::kOk);
}

TEST_F(SymmetricFixture, BarrierSynchronizesAllRanks) {
  constexpr int kRanks = 4;
  World world{{{&bed_.host_provider(), "r0"},
               {&bed_.host_provider(), "r1"},
               {&bed_.card_provider(), "r2"},
               {&bed_.card_provider(), "r3"}},
              5'200};
  std::atomic<int> before_barrier{0};
  std::atomic<bool> violation{false};
  const auto status = world.run([&](Rank& rank) -> Status {
    ++before_barrier;
    if (auto s = rank.barrier(); !sim::ok(s)) return s;
    // After the barrier, every rank must have arrived.
    if (before_barrier.load() != kRanks) violation = true;
    return Status::kOk;
  });
  EXPECT_EQ(status, Status::kOk);
  EXPECT_FALSE(violation.load());
}

TEST_F(SymmetricFixture, BroadcastFromNonzeroRoot) {
  World world{{{&bed_.host_provider(), "r0"},
               {&bed_.host_provider(), "r1"},
               {&bed_.host_provider(), "r2"}},
              5'300};
  const auto status = world.run([](Rank& rank) -> Status {
    char buf[16] = {};
    if (rank.rank() == 2) {
      std::snprintf(buf, sizeof(buf), "from-two");
    }
    if (auto s = rank.broadcast(2, buf, sizeof(buf)); !sim::ok(s)) return s;
    return std::string(buf) == "from-two" ? Status::kOk : Status::kInternal;
  });
  EXPECT_EQ(status, Status::kOk);
}

TEST_F(SymmetricFixture, InvalidPeersRejected) {
  World world{{{&bed_.host_provider(), "r0"}, {&bed_.host_provider(), "r1"}},
              5'400};
  const auto status = world.run([](Rank& rank) -> Status {
    int v = 0;
    if (rank.send(rank.rank(), &v, sizeof(v)) != Status::kInvalidArgument) {
      return Status::kInternal;  // self-send must be rejected
    }
    if (rank.send(9, &v, sizeof(v)) != Status::kInvalidArgument) {
      return Status::kInternal;
    }
    if (rank.recv(-1, &v, sizeof(v)) != Status::kInvalidArgument) {
      return Status::kInternal;
    }
    return Status::kOk;
  });
  EXPECT_EQ(status, Status::kOk);
}

TEST_F(SymmetricFixture, LargePayloadAcrossVphi) {
  // A VM rank exchanges a multi-chunk payload with a card rank: the vPHI
  // path chunks it at KMALLOC_MAX_SIZE transparently.
  constexpr std::size_t kBytes = 6ull << 20;
  World world{{{&bed_.vm(0).guest_scif(), "vm-r0"},
               {&bed_.card_provider(), "mic-r1"}},
              5'500};
  const auto status = world.run([&](Rank& rank) -> Status {
    std::vector<std::uint8_t> buf(kBytes);
    if (rank.rank() == 0) {
      for (std::size_t i = 0; i < kBytes; ++i) {
        buf[i] = static_cast<std::uint8_t>(i * 31);
      }
      return rank.send(1, buf.data(), kBytes);
    }
    if (auto s = rank.recv(0, buf.data(), kBytes); !sim::ok(s)) return s;
    for (std::size_t i = 0; i < kBytes; i += 4'099) {
      if (buf[i] != static_cast<std::uint8_t>(i * 31)) {
        return Status::kInternal;
      }
    }
    return Status::kOk;
  });
  EXPECT_EQ(status, Status::kOk);
}

TEST(SymmetricPolicy, TwoRanksInOneVmNeedWorkerBackend) {
  // Design hazard the reproduction surfaces: with the paper's default
  // policy, data transfers execute *blocking* on the VM's QEMU event loop.
  // Two ranks inside one VM that wait on each other (rank1 blocked in recv
  // while rank0's send sits queued behind that very recv handler) deadlock
  // — faithfully to the paper's design. Routing transfers to worker
  // threads (the paper's non-blocking mode) resolves it; this test runs
  // the exact mutually-dependent exchange under the all-worker policy.
  TestbedConfig config;
  config.backend_policy.classify = core::BackendPolicy::all_worker();
  Testbed bed{config};

  World world{{{&bed.vm(0).guest_scif(), "vm-r0"},
               {&bed.vm(0).guest_scif(), "vm-r1"}},
              5'600};
  const auto status = world.run([](Rank& rank) -> Status {
    // rank1 posts its recv first, then rank0's send must still get through.
    int v = 7;
    if (rank.rank() == 1) {
      if (auto s = rank.recv(0, &v, sizeof(v)); !sim::ok(s)) return s;
      return v == 7 ? Status::kOk : Status::kInternal;
    }
    return rank.send(1, &v, sizeof(v));
  });
  EXPECT_EQ(status, Status::kOk);
}

}  // namespace
}  // namespace vphi::tools::symm
