// End-to-end tests of the vPHI split-driver stack: a guest application
// talks through GuestScifProvider -> FrontendDriver -> virtio ring ->
// BackendDevice -> host SCIF -> PCIe -> card. Covers functionality (byte-
// exact transfers, full API surface) and the paper's headline timing
// anchors (382 us 1-byte latency, 375 us overhead, 93% waiting scheme,
// 4.6 GB/s = 72% RMA throughput).
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "scif/types.hpp"
#include "sim/actor.hpp"
#include "sim/rng.hpp"
#include "tools/testbed.hpp"

namespace vphi::core {
namespace {

using scif::PortId;
using scif::SCIF_ACCEPT_SYNC;
using scif::SCIF_PROT_READ;
using scif::SCIF_PROT_WRITE;
using scif::SCIF_RECV_BLOCK;
using scif::SCIF_RMA_SYNC;
using scif::SCIF_SEND_BLOCK;
using sim::Nanos;
using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

constexpr scif::Port kPort = 600;

class VphiFixture : public ::testing::Test {
 protected:
  VphiFixture() : bed_(TestbedConfig{}) {}

  /// Card-side echo-ready server: accepts one connection.
  std::future<int> card_listener(scif::Port port, int* listener_out = nullptr) {
    auto lep = bed_.card_provider().open();
    EXPECT_TRUE(lep);
    EXPECT_TRUE(bed_.card_provider().bind(*lep, port));
    EXPECT_TRUE(sim::ok(bed_.card_provider().listen(*lep, 8)));
    if (listener_out != nullptr) *listener_out = *lep;
    const int listener = *lep;
    return std::async(std::launch::async, [this, listener] {
      sim::Actor a{"card-server"};
      sim::ActorScope scope(a);
      auto acc = bed_.card_provider().accept(listener, SCIF_ACCEPT_SYNC);
      EXPECT_TRUE(acc);
      return acc ? acc->epd : -1;
    });
  }

  /// Connect the guest of VM `i` to a card listener; returns {guest epd,
  /// card epd}.
  std::pair<int, int> guest_pair(std::size_t i = 0, scif::Port port = kPort) {
    auto server = card_listener(port);
    auto& guest = bed_.vm(i).guest_scif();
    auto epd = guest.open();
    EXPECT_TRUE(epd);
    EXPECT_TRUE(sim::ok(guest.connect(*epd, PortId{bed_.card_node(), port})));
    return {*epd, server.get()};
  }

  Testbed bed_;
};

TEST_F(VphiFixture, GuestOpensAndClosesEndpoint) {
  auto& guest = bed_.vm(0).guest_scif();
  auto epd = guest.open();
  ASSERT_TRUE(epd);
  EXPECT_EQ(guest.close(*epd), Status::kOk);
  EXPECT_EQ(guest.close(*epd), Status::kBadDescriptor);
  EXPECT_EQ(bed_.vm(0).backend().op_count(Op::kOpen), 1u);
  EXPECT_EQ(bed_.vm(0).backend().op_count(Op::kClose), 2u);
}

TEST_F(VphiFixture, GuestConnectsToCardService) {
  auto [guest_epd, card_epd] = guest_pair();
  EXPECT_GE(guest_epd, 0);
  EXPECT_GE(card_epd, 0);
  // accept ran on a worker thread per the paper's policy.
  EXPECT_GE(bed_.vm(0).backend().blocking_requests(), 2u);
}

TEST_F(VphiFixture, SendRecvRoundtripThroughTheRing) {
  auto [guest_epd, card_epd] = guest_pair();
  auto& guest = bed_.vm(0).guest_scif();
  auto& card = bed_.card_provider();

  sim::Rng rng{21};
  std::vector<std::uint8_t> msg(50'000);
  rng.fill(msg.data(), msg.size());

  auto sent = guest.send(guest_epd, msg.data(), msg.size(), SCIF_SEND_BLOCK);
  ASSERT_TRUE(sent);
  EXPECT_EQ(*sent, msg.size());

  std::vector<std::uint8_t> got(msg.size());
  auto received = card.recv(card_epd, got.data(), got.size(), SCIF_RECV_BLOCK);
  ASSERT_TRUE(received);
  EXPECT_EQ(got, msg);

  // Card -> guest direction.
  auto back = card.send(card_epd, msg.data(), 1'000, SCIF_SEND_BLOCK);
  ASSERT_TRUE(back);
  std::vector<std::uint8_t> got2(1'000);
  auto received2 = guest.recv(guest_epd, got2.data(), 1'000, SCIF_RECV_BLOCK);
  ASSERT_TRUE(received2);
  EXPECT_EQ(*received2, 1'000u);
  EXPECT_EQ(std::memcmp(got2.data(), msg.data(), 1'000), 0);
}

TEST_F(VphiFixture, LargeTransferChunksAtKmallocMax) {
  // 10 MiB > KMALLOC_MAX_SIZE (4 MiB): the frontend must split it into 3
  // ring transactions (4 + 4 + 2 MiB), exactly the paper's chunking rule.
  auto [guest_epd, card_epd] = guest_pair();
  auto& guest = bed_.vm(0).guest_scif();

  const std::size_t total = 10ull << 20;
  std::vector<std::uint8_t> msg(total);
  sim::Rng rng{22};
  rng.fill(msg.data(), msg.size());

  const auto sends_before = bed_.vm(0).backend().op_count(Op::kSend);
  auto receiver = std::async(std::launch::async, [&, card_epd = card_epd] {
    sim::Actor a{"receiver"};
    sim::ActorScope scope(a);
    std::vector<std::uint8_t> got(total);
    auto r = bed_.card_provider().recv(card_epd, got.data(), got.size(),
                                       SCIF_RECV_BLOCK);
    EXPECT_TRUE(r);
    return got;
  });
  auto sent = guest.send(guest_epd, msg.data(), msg.size(), SCIF_SEND_BLOCK);
  ASSERT_TRUE(sent);
  EXPECT_EQ(*sent, total);
  EXPECT_EQ(bed_.vm(0).backend().op_count(Op::kSend) - sends_before, 3u);
  EXPECT_EQ(receiver.get(), msg);
}

TEST_F(VphiFixture, GuestSeesRemoteErrorCodes) {
  auto& guest = bed_.vm(0).guest_scif();
  auto epd = guest.open();
  ASSERT_TRUE(epd);
  EXPECT_EQ(guest.connect(*epd, PortId{bed_.card_node(), 31'000}),
            Status::kConnectionRefused);
  EXPECT_EQ(guest.connect(*epd, PortId{77, 1}), Status::kNoDevice);
  std::uint8_t b;
  EXPECT_EQ(guest.send(*epd, &b, 1, SCIF_SEND_BLOCK).status(),
            Status::kNotConnected);
}

// --- the paper's latency anchors -------------------------------------------------

TEST_F(VphiFixture, Vphi1ByteLatencyIs382us) {
  // Fig. 4: virtualized 1-byte send latency is 382 us vs 7 us native.
  auto [guest_epd, card_epd] = guest_pair();
  (void)card_epd;
  auto& guest = bed_.vm(0).guest_scif();

  sim::Actor app{"guest-app"};
  sim::ActorScope scope(app);
  // Warm one request through so backend/loop actors are past their
  // startup skew, then measure.
  std::uint8_t b = 1;
  ASSERT_TRUE(guest.send(guest_epd, &b, 1, SCIF_SEND_BLOCK));

  const Nanos before = app.now();
  ASSERT_TRUE(guest.send(guest_epd, &b, 1, SCIF_SEND_BLOCK));
  const Nanos latency = app.now() - before;
  EXPECT_NEAR(sim::to_micros(latency), 382.0, 1.0);
}

TEST_F(VphiFixture, VirtualizationOverheadIs375usAnd93PercentWaitScheme) {
  // Sec. IV-B: overhead = 382 - 7 = 375 us, of which 93% is the frontend's
  // sleep/wakeup scheme.
  const auto& m = bed_.model();
  const Nanos overhead = m.vphi_ring_roundtrip_ns();
  EXPECT_EQ(overhead, 375'000u);
  const double wait_fraction =
      static_cast<double>(m.guest_irq_handler_ns + m.guest_wakeup_scheme_ns) /
      static_cast<double>(overhead);
  EXPECT_NEAR(wait_fraction, 0.93, 0.01);
}

TEST_F(VphiFixture, LatencyOffsetConstantAcrossSizes) {
  // Fig. 4: the vPHI-vs-host gap stays ~375 us as size grows.
  auto [guest_epd, card_epd] = guest_pair();
  auto& guest = bed_.vm(0).guest_scif();
  const auto& m = bed_.model();

  sim::Actor app{"guest-app"};
  sim::ActorScope scope(app);
  // Warm-up round trip synchronizes this thread's timeline with the
  // backend's event loop (standard before measuring deltas).
  std::uint8_t warm = 0;
  ASSERT_TRUE(guest.send(guest_epd, &warm, 1, SCIF_SEND_BLOCK));
  {
    std::uint8_t sink0;
    ASSERT_TRUE(bed_.card_provider().recv(card_epd, &sink0, 1,
                                          SCIF_RECV_BLOCK));
  }
  for (std::size_t len : {1ull, 4'096ull, 65'536ull}) {
    std::vector<std::uint8_t> buf(len);
    const Nanos before = app.now();
    ASSERT_TRUE(guest.send(guest_epd, buf.data(), len, SCIF_SEND_BLOCK));
    const Nanos vphi_lat = app.now() - before;
    const Nanos host_lat =
        m.host_small_msg_ns() + sim::transfer_time(len, m.scif_stream_bandwidth_Bps);
    const double gap_us = sim::to_micros(vphi_lat - host_lat);
    EXPECT_NEAR(gap_us, 375.0, 10.0) << "size " << len;
    std::vector<std::uint8_t> sink(len);
    ASSERT_TRUE(bed_.card_provider().recv(card_epd, sink.data(), len,
                                          SCIF_RECV_BLOCK));
  }
}

// --- RMA through vPHI ---------------------------------------------------------------

class VphiRmaFixture : public VphiFixture {
 protected:
  void SetUp() override {
    std::tie(guest_epd_, card_epd_) = guest_pair();
    // Card server registers a device-memory window.
    auto dev_off = bed_.card().memory().allocate(kWinBytes);
    ASSERT_TRUE(dev_off);
    dev_base_ = static_cast<std::byte*>(bed_.card().memory().at(*dev_off));
    sim::Rng rng{31};
    rng.fill(dev_base_, kWinBytes);
    auto reg = bed_.card_provider().register_mem(
        card_epd_, dev_base_, kWinBytes, 0, SCIF_PROT_READ | SCIF_PROT_WRITE,
        0);
    ASSERT_TRUE(reg);
    remote_off_ = *reg;

    // Guest registers a user buffer (pinned guest memory).
    auto buf = bed_.vm(0).alloc_user_buffer(kWinBytes);
    ASSERT_TRUE(buf);
    guest_buf_ = static_cast<std::byte*>(*buf);
    auto lreg = bed_.vm(0).guest_scif().register_mem(
        guest_epd_, guest_buf_, kWinBytes, 0, SCIF_PROT_READ | SCIF_PROT_WRITE,
        0);
    ASSERT_TRUE(lreg);
    local_off_ = *lreg;
  }

  static constexpr std::size_t kWinBytes = 8ull << 20;
  int guest_epd_ = -1, card_epd_ = -1;
  std::byte* dev_base_ = nullptr;
  std::byte* guest_buf_ = nullptr;
  scif::RegOffset remote_off_ = 0, local_off_ = 0;
};

TEST_F(VphiRmaFixture, RegisterPinsGuestPages) {
  EXPECT_TRUE(bed_.vm(0).vm().kernel().is_pinned(
      *bed_.vm(0).vm().ram().gpa_of(guest_buf_), kWinBytes));
}

TEST_F(VphiRmaFixture, ReadfromPullsDeviceDataIntoGuest) {
  auto& guest = bed_.vm(0).guest_scif();
  ASSERT_EQ(guest.readfrom(guest_epd_, local_off_, kWinBytes, remote_off_,
                           SCIF_RMA_SYNC),
            Status::kOk);
  EXPECT_EQ(std::memcmp(guest_buf_, dev_base_, kWinBytes), 0);
}

TEST_F(VphiRmaFixture, WritetoPushesGuestDataToDevice) {
  sim::Rng rng{32};
  rng.fill(guest_buf_, kWinBytes);
  auto& guest = bed_.vm(0).guest_scif();
  ASSERT_EQ(guest.writeto(guest_epd_, local_off_, kWinBytes, remote_off_,
                          SCIF_RMA_SYNC),
            Status::kOk);
  EXPECT_EQ(std::memcmp(dev_base_, guest_buf_, kWinBytes), 0);
}

TEST_F(VphiRmaFixture, VreadfromWithUnregisteredGuestBuffer) {
  auto buf = bed_.vm(0).alloc_user_buffer(65'536);
  ASSERT_TRUE(buf);
  auto& guest = bed_.vm(0).guest_scif();
  ASSERT_EQ(guest.vreadfrom(guest_epd_, *buf, 65'536, remote_off_,
                            SCIF_RMA_SYNC),
            Status::kOk);
  EXPECT_EQ(std::memcmp(*buf, dev_base_, 65'536), 0);
}

TEST_F(VphiRmaFixture, UnregisterUnpinsGuestPages) {
  auto& guest = bed_.vm(0).guest_scif();
  const auto gpa = *bed_.vm(0).vm().ram().gpa_of(guest_buf_);
  ASSERT_EQ(guest.unregister_mem(guest_epd_, local_off_, kWinBytes),
            Status::kOk);
  EXPECT_FALSE(bed_.vm(0).vm().kernel().is_pinned(gpa, kWinBytes));
  EXPECT_EQ(guest.readfrom(guest_epd_, local_off_, 1, remote_off_,
                           SCIF_RMA_SYNC),
            Status::kNoSuchEntry);
}

TEST_F(VphiRmaFixture, GuestRmaThroughputIs72PercentOfHost) {
  // Fig. 5 anchor: vPHI remote read approaches 4.6 GB/s = 72% of the
  // host's 6.4 GB/s as size grows. The gap comes from per-page
  // scatter-gather DMA on the two-level-translated pinned guest memory.
  auto& guest = bed_.vm(0).guest_scif();
  sim::Actor app{"guest-app"};
  sim::ActorScope scope(app);

  // A 64 MiB window gets close to the asymptote (the paper's Fig. 5 tops
  // out at similar sizes).
  constexpr std::size_t kBig = 64ull << 20;
  auto dev_off = bed_.card().memory().allocate(kBig);
  ASSERT_TRUE(dev_off);
  auto reg = bed_.card_provider().register_mem(
      card_epd_, bed_.card().memory().at(*dev_off), kBig, 0, SCIF_PROT_READ,
      0);
  ASSERT_TRUE(reg);
  auto buf = bed_.vm(0).alloc_user_buffer(kBig);
  ASSERT_TRUE(buf);
  auto lreg = bed_.vm(0).guest_scif().register_mem(
      guest_epd_, *buf, kBig, 0, SCIF_PROT_READ | SCIF_PROT_WRITE, 0);
  ASSERT_TRUE(lreg);

  // Warm-up round trip to synchronize with the backend loop's timeline.
  ASSERT_EQ(guest.readfrom(guest_epd_, *lreg, 4'096, *reg, SCIF_RMA_SYNC),
            Status::kOk);

  const Nanos before = app.now();
  ASSERT_EQ(guest.readfrom(guest_epd_, *lreg, kBig, *reg, SCIF_RMA_SYNC),
            Status::kOk);
  const Nanos elapsed = app.now() - before;
  const double gbps =
      static_cast<double>(kBig) / static_cast<double>(elapsed);
  EXPECT_NEAR(gbps, 4.5, 0.2) << "asymptote 4.6 GB/s, minus ring overhead";
  // Ratio against the host's 6.4 GB/s (established by the ScifRmaFixture
  // anchor under the same model) is the paper's 72%.
  EXPECT_NEAR(gbps / 6.4, 0.72, 0.04);
}

TEST_F(VphiRmaFixture, FencesThroughTheRing) {
  auto& guest = bed_.vm(0).guest_scif();
  ASSERT_EQ(guest.readfrom(guest_epd_, local_off_, kWinBytes, remote_off_, 0),
            Status::kOk);
  auto mark = guest.fence_mark(guest_epd_, scif::SCIF_FENCE_INIT_SELF);
  ASSERT_TRUE(mark);
  ASSERT_EQ(guest.fence_wait(guest_epd_, *mark), Status::kOk);
  EXPECT_EQ(std::memcmp(guest_buf_, dev_base_, kWinBytes), 0);
  ASSERT_EQ(guest.fence_signal(guest_epd_, local_off_, 0x77, remote_off_, 0x88,
                               scif::SCIF_SIGNAL_LOCAL |
                                   scif::SCIF_SIGNAL_REMOTE),
            Status::kOk);
  std::uint64_t lval = 0;
  std::memcpy(&lval, guest_buf_, sizeof(lval));
  EXPECT_EQ(lval, 0x77u);
}

// --- mmap through the two-level VM_PFNPHI path --------------------------------------

TEST_F(VphiRmaFixture, MmapInstallsPfnphiVmaAndFaultsResolve) {
  auto& guest = bed_.vm(0).guest_scif();
  auto mapping = guest.mmap(guest_epd_, remote_off_, 16'384, SCIF_PROT_READ);
  ASSERT_TRUE(mapping);
  EXPECT_EQ(bed_.vm(0).vm().kernel().vmas().count(), 1u);

  std::vector<std::byte> buf(16'384);
  const auto faults_before = bed_.vm(0).vm().mmu().faults();
  ASSERT_EQ(guest.map_read(*mapping, 0, buf.data(), buf.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(buf.data(), dev_base_, buf.size()), 0);
  EXPECT_EQ(bed_.vm(0).vm().mmu().faults() - faults_before, 4u)
      << "one EPT fault per touched page";

  // Second read: no further faults.
  ASSERT_EQ(guest.map_read(*mapping, 0, buf.data(), buf.size()), Status::kOk);
  EXPECT_EQ(bed_.vm(0).vm().mmu().faults() - faults_before, 4u);

  ASSERT_EQ(guest.munmap(*mapping), Status::kOk);
  EXPECT_EQ(bed_.vm(0).vm().kernel().vmas().count(), 0u);
}

TEST_F(VphiRmaFixture, MmapWriteReachesDeviceMemory) {
  auto& guest = bed_.vm(0).guest_scif();
  auto mapping = guest.mmap(guest_epd_, remote_off_, 4'096,
                            SCIF_PROT_READ | SCIF_PROT_WRITE);
  ASSERT_TRUE(mapping);
  const char msg[] = "store through VM_PFNPHI";
  ASSERT_EQ(guest.map_write(*mapping, 64, msg, sizeof(msg)), Status::kOk);
  EXPECT_EQ(std::memcmp(dev_base_ + 64, msg, sizeof(msg)), 0);
  ASSERT_EQ(guest.munmap(*mapping), Status::kOk);
}

TEST_F(VphiRmaFixture, MmapKeepsHostWindowBusy) {
  auto& guest = bed_.vm(0).guest_scif();
  auto mapping = guest.mmap(guest_epd_, remote_off_, 4'096, SCIF_PROT_READ);
  ASSERT_TRUE(mapping);
  EXPECT_EQ(bed_.card_provider().unregister_mem(card_epd_, remote_off_,
                                                kWinBytes),
            Status::kBusy);
  ASSERT_EQ(guest.munmap(*mapping), Status::kOk);
  EXPECT_EQ(bed_.card_provider().unregister_mem(card_epd_, remote_off_,
                                                kWinBytes),
            Status::kOk);
}

// --- poll / node ids / card info ------------------------------------------------------

TEST_F(VphiFixture, GuestPollSeesReadiness) {
  auto [guest_epd, card_epd] = guest_pair();
  auto& guest = bed_.vm(0).guest_scif();

  scif::PollEpd p{guest_epd, scif::SCIF_POLLIN, 0};
  auto n = guest.poll(&p, 1, 0);
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, 0);

  std::uint8_t b = 9;
  ASSERT_TRUE(bed_.card_provider().send(card_epd, &b, 1, SCIF_SEND_BLOCK));
  n = guest.poll(&p, 1, -1);
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, 1);
  EXPECT_TRUE(p.revents & scif::SCIF_POLLIN);
}

TEST_F(VphiFixture, GuestNodeIdsMatchHostView) {
  auto ids = bed_.vm(0).guest_scif().get_node_ids();
  ASSERT_TRUE(ids);
  EXPECT_EQ(ids->total, 2);
  EXPECT_EQ(ids->self, scif::kHostNode)
      << "the VM is presented the host's identity, as vPHI redirects";
}

TEST_F(VphiFixture, SysfsInfoForwardedIntoGuest) {
  // Sec. III "Implementation details": the backend exposes the host's
  // sysfs card info so MPSS tools work inside the VM.
  auto info = bed_.vm(0).guest_scif().card_info(0);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->get("family").value(), "Knights Corner");
  EXPECT_EQ(info->get("sku").value(), "3120P");
  EXPECT_EQ(info->get_u64("cores_count").value(), 57u);
  EXPECT_EQ(bed_.vm(0).guest_scif().card_info(9).status(), Status::kNoDevice);
}

// --- waiting schemes (ablation plumbing) --------------------------------------------

TEST(VphiWaitSchemes, PollingBeatsInterruptLatency) {
  TestbedConfig interrupt_config;
  interrupt_config.frontend.scheme = WaitScheme::kInterrupt;
  TestbedConfig polling_config;
  polling_config.frontend.scheme = WaitScheme::kPolling;

  auto measure = [](Testbed& bed) {
    auto& card = bed.card_provider();
    auto lep = card.open();
    EXPECT_TRUE(card.bind(*lep, kPort));
    EXPECT_TRUE(sim::ok(card.listen(*lep, 4)));
    auto server = std::async(std::launch::async, [&] {
      sim::Actor a{"srv"};
      sim::ActorScope scope(a);
      return card.accept(*lep, SCIF_ACCEPT_SYNC)->epd;
    });
    auto& guest = bed.vm(0).guest_scif();
    auto epd = guest.open();
    EXPECT_TRUE(sim::ok(guest.connect(*epd, PortId{bed.card_node(), kPort})));
    server.get();

    sim::Actor app{"app"};
    sim::ActorScope scope(app);
    std::uint8_t b = 0;
    EXPECT_TRUE(guest.send(*epd, &b, 1, SCIF_SEND_BLOCK));
    const Nanos before = app.now();
    EXPECT_TRUE(guest.send(*epd, &b, 1, SCIF_SEND_BLOCK));
    return app.now() - before;
  };

  Testbed interrupt_bed{interrupt_config};
  Testbed polling_bed{polling_config};
  const Nanos t_int = measure(interrupt_bed);
  const Nanos t_poll = measure(polling_bed);
  EXPECT_GT(t_int, t_poll) << "polling avoids the 349 us wakeup scheme";
  EXPECT_LT(sim::to_micros(t_poll), 60.0)
      << "polled latency approaches native";
  EXPECT_GT(polling_bed.vm(0).frontend().poll_cpu_burn(), 0u)
      << "...at the price of burned vCPU";
  EXPECT_EQ(polling_bed.vm(0).frontend().interrupt_waits(), 0u);
}

TEST(VphiWaitSchemes, HybridSwitchesOnThreshold) {
  TestbedConfig config;
  config.frontend.scheme = WaitScheme::kHybrid;
  config.frontend.hybrid_threshold = 16 * 1024;
  Testbed bed{config};

  auto& card = bed.card_provider();
  auto lep = card.open();
  ASSERT_TRUE(card.bind(*lep, kPort));
  ASSERT_TRUE(sim::ok(card.listen(*lep, 4)));
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"srv"};
    sim::ActorScope scope(a);
    return card.accept(*lep, SCIF_ACCEPT_SYNC)->epd;
  });
  auto& guest = bed.vm(0).guest_scif();
  auto epd = guest.open();
  ASSERT_TRUE(sim::ok(guest.connect(*epd, PortId{bed.card_node(), kPort})));
  const int card_epd = server.get();

  auto& fe = bed.vm(0).frontend();
  const auto polled_before = fe.polled_waits();
  std::vector<std::uint8_t> small(1'024), large(64 * 1024);
  ASSERT_TRUE(guest.send(*epd, small.data(), small.size(), SCIF_SEND_BLOCK));
  EXPECT_EQ(fe.polled_waits() - polled_before, 1u) << "small payload polls";

  const auto interrupts_before = fe.interrupt_waits();
  ASSERT_TRUE(guest.send(*epd, large.data(), large.size(), SCIF_SEND_BLOCK));
  EXPECT_EQ(fe.interrupt_waits() - interrupts_before, 1u)
      << "large payload sleeps";

  std::vector<std::uint8_t> sink(small.size() + large.size());
  ASSERT_TRUE(card.recv(card_epd, sink.data(), sink.size(), SCIF_RECV_BLOCK));
}

// --- multi-VM sharing: the headline capability ---------------------------------------

TEST(VphiSharing, TwoVmsShareOneCardConcurrently) {
  TestbedConfig config;
  config.num_vms = 2;
  Testbed bed{config};

  // One listener per VM client.
  auto& card = bed.card_provider();
  auto run_vm = [&](std::size_t vm_index, scif::Port port) {
    auto lep = card.open();
    ASSERT_TRUE(lep);
    ASSERT_TRUE(card.bind(*lep, port));
    ASSERT_TRUE(sim::ok(card.listen(*lep, 4)));
    auto server = std::async(std::launch::async, [&card, lep = *lep] {
      sim::Actor a{"srv"};
      sim::ActorScope scope(a);
      auto acc = card.accept(lep, SCIF_ACCEPT_SYNC);
      ASSERT_TRUE(acc);
      std::vector<std::uint8_t> got(100'000);
      auto r = card.recv(acc->epd, got.data(), got.size(), SCIF_RECV_BLOCK);
      ASSERT_TRUE(r);
      EXPECT_EQ(*r, got.size());
    });

    sim::Actor app{"vm" + std::to_string(vm_index) + "-app"};
    sim::ActorScope scope(app);
    auto& guest = bed.vm(vm_index).guest_scif();
    auto epd = guest.open();
    ASSERT_TRUE(epd);
    ASSERT_TRUE(sim::ok(guest.connect(*epd, PortId{bed.card_node(), port})));
    std::vector<std::uint8_t> msg(100'000);
    sim::Rng rng{vm_index + 1};
    rng.fill(msg.data(), msg.size());
    auto sent = guest.send(*epd, msg.data(), msg.size(), SCIF_SEND_BLOCK);
    ASSERT_TRUE(sent);
    server.get();
  };

  std::thread vm0([&] { run_vm(0, 700); });
  std::thread vm1([&] { run_vm(1, 701); });
  vm0.join();
  vm1.join();

  // Each VM has its own backend = its own host process identity.
  EXPECT_GE(bed.vm(0).backend().requests_handled(), 3u);
  EXPECT_GE(bed.vm(1).backend().requests_handled(), 3u);
  EXPECT_NE(&bed.vm(0).backend().provider(), &bed.vm(1).backend().provider());
}

}  // namespace
}  // namespace vphi::core
