// Unit + property tests for the registered-window table.
#include <gtest/gtest.h>

#include <vector>

#include "scif/window.hpp"
#include "sim/rng.hpp"

namespace vphi::scif {
namespace {

constexpr std::size_t kPage = WindowTable::kPageSize;

class WindowFixture : public ::testing::Test {
 protected:
  std::byte* buf(std::size_t pages) {
    storage_.push_back(std::vector<std::byte>(pages * kPage));
    return storage_.back().data();
  }
  WindowTable table_;
  std::vector<std::vector<std::byte>> storage_;
};

TEST_F(WindowFixture, DynamicOffsetsDoNotCollide) {
  auto a = table_.add(buf(2), 2 * kPage, 0, SCIF_PROT_READ, 0, false);
  auto b = table_.add(buf(2), 2 * kPage, 0, SCIF_PROT_READ, 0, false);
  ASSERT_TRUE(a && b);
  EXPECT_GE(*a, WindowTable::kDynamicBase);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(table_.count(), 2u);
  EXPECT_EQ(table_.total_bytes(), 4 * kPage);
}

TEST_F(WindowFixture, FixedOffsetHonored) {
  auto a = table_.add(buf(1), kPage, 0x10000, SCIF_PROT_READ | SCIF_PROT_WRITE,
                      SCIF_MAP_FIXED, false);
  ASSERT_TRUE(a);
  EXPECT_EQ(*a, 0x10000);
}

TEST_F(WindowFixture, FixedOverlapRejected) {
  ASSERT_TRUE(table_.add(buf(2), 2 * kPage, 0x10000, SCIF_PROT_READ,
                         SCIF_MAP_FIXED, false));
  auto overlap_mid = table_.add(buf(1), kPage, 0x10000 + kPage,
                                SCIF_PROT_READ, SCIF_MAP_FIXED, false);
  EXPECT_EQ(overlap_mid.status(), sim::Status::kAlreadyExists);
  auto overlap_front = table_.add(buf(2), 2 * kPage, 0x10000 - kPage,
                                  SCIF_PROT_READ, SCIF_MAP_FIXED, false);
  EXPECT_EQ(overlap_front.status(), sim::Status::kAlreadyExists);
  auto adjacent = table_.add(buf(1), kPage, 0x10000 + 2 * kPage,
                             SCIF_PROT_READ, SCIF_MAP_FIXED, false);
  EXPECT_TRUE(adjacent) << "touching but not overlapping is fine";
}

TEST_F(WindowFixture, InvalidArgumentsRejected) {
  EXPECT_EQ(table_.add(nullptr, kPage, 0, SCIF_PROT_READ, 0, false).status(),
            sim::Status::kInvalidArgument);
  EXPECT_EQ(table_.add(buf(1), 0, 0, SCIF_PROT_READ, 0, false).status(),
            sim::Status::kInvalidArgument);
  EXPECT_EQ(table_.add(buf(1), 100, 0, SCIF_PROT_READ, 0, false).status(),
            sim::Status::kInvalidArgument)
      << "length must be page-multiple";
  EXPECT_EQ(table_.add(buf(1), kPage, 0, 0, 0, false).status(),
            sim::Status::kInvalidArgument)
      << "no protection bits";
  EXPECT_EQ(table_.add(buf(1), kPage, 123, SCIF_PROT_READ, SCIF_MAP_FIXED,
                       false)
                .status(),
            sim::Status::kInvalidArgument)
      << "fixed offset must be page-aligned";
}

TEST_F(WindowFixture, ResolveWithinWindow) {
  auto* base = buf(4);
  auto off = table_.add(base, 4 * kPage, 0, SCIF_PROT_READ, 0, false);
  ASSERT_TRUE(off);
  auto spans = table_.resolve(*off + 100, 2 * kPage, SCIF_PROT_READ);
  ASSERT_TRUE(spans);
  ASSERT_EQ(spans->size(), 1u);
  EXPECT_EQ(spans->front().base, base + 100);
  EXPECT_EQ(spans->front().len, 2 * kPage);
}

TEST_F(WindowFixture, ResolveAcrossAdjacentWindows) {
  auto* b1 = buf(1);
  auto* b2 = buf(1);
  ASSERT_TRUE(table_.add(b1, kPage, 0x0, SCIF_PROT_WRITE, SCIF_MAP_FIXED, false));
  ASSERT_TRUE(table_.add(b2, kPage, static_cast<RegOffset>(kPage),
                         SCIF_PROT_WRITE, SCIF_MAP_FIXED, true));
  auto spans = table_.resolve(kPage / 2, kPage, SCIF_PROT_WRITE);
  ASSERT_TRUE(spans);
  ASSERT_EQ(spans->size(), 2u);
  EXPECT_EQ((*spans)[0].base, b1 + kPage / 2);
  EXPECT_EQ((*spans)[0].len, kPage / 2);
  EXPECT_FALSE((*spans)[0].fragmented);
  EXPECT_EQ((*spans)[1].base, b2);
  EXPECT_EQ((*spans)[1].len, kPage / 2);
  EXPECT_TRUE((*spans)[1].fragmented);
}

TEST_F(WindowFixture, ResolveHoleFails) {
  ASSERT_TRUE(table_.add(buf(1), kPage, 0x0, SCIF_PROT_READ, SCIF_MAP_FIXED, false));
  ASSERT_TRUE(table_.add(buf(1), kPage, static_cast<RegOffset>(3 * kPage),
                         SCIF_PROT_READ, SCIF_MAP_FIXED, false));
  EXPECT_EQ(table_.resolve(0, 4 * kPage, SCIF_PROT_READ).status(),
            sim::Status::kNoSuchEntry);
  EXPECT_EQ(table_.resolve(static_cast<RegOffset>(kPage), 1, SCIF_PROT_READ)
                .status(),
            sim::Status::kNoSuchEntry);
}

TEST_F(WindowFixture, ResolveProtectionEnforced) {
  auto off = table_.add(buf(1), kPage, 0, SCIF_PROT_READ, 0, false);
  ASSERT_TRUE(off);
  EXPECT_TRUE(table_.resolve(*off, kPage, SCIF_PROT_READ));
  EXPECT_EQ(table_.resolve(*off, kPage, SCIF_PROT_WRITE).status(),
            sim::Status::kAccessDenied);
  EXPECT_EQ(
      table_.resolve(*off, kPage, SCIF_PROT_READ | SCIF_PROT_WRITE).status(),
      sim::Status::kAccessDenied);
}

TEST_F(WindowFixture, RemoveRequiresExactWindow) {
  auto off = table_.add(buf(2), 2 * kPage, 0, SCIF_PROT_READ, 0, false);
  ASSERT_TRUE(off);
  EXPECT_EQ(table_.remove(*off, kPage), sim::Status::kInvalidArgument);
  EXPECT_EQ(table_.remove(*off + 1, 2 * kPage), sim::Status::kInvalidArgument);
  EXPECT_EQ(table_.remove(*off, 2 * kPage), sim::Status::kOk);
  EXPECT_EQ(table_.count(), 0u);
  EXPECT_EQ(table_.resolve(*off, 1, SCIF_PROT_READ).status(),
            sim::Status::kNoSuchEntry);
}

TEST_F(WindowFixture, MmapRefsBlockUnregister) {
  auto off = table_.add(buf(1), kPage, 0, SCIF_PROT_READ, 0, false);
  ASSERT_TRUE(off);
  EXPECT_EQ(table_.add_mmap_ref(*off), sim::Status::kOk);
  EXPECT_EQ(table_.remove(*off, kPage), sim::Status::kBusy);
  EXPECT_EQ(table_.drop_mmap_ref(*off), sim::Status::kOk);
  EXPECT_EQ(table_.remove(*off, kPage), sim::Status::kOk);
  EXPECT_EQ(table_.drop_mmap_ref(*off), sim::Status::kNoSuchEntry);
}

// Property sweep: random register/unregister interleavings never corrupt the
// table — every live window stays resolvable, every removed one does not.
class WindowChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowChurnTest, RandomChurnKeepsTableConsistent) {
  sim::Rng rng{GetParam()};
  WindowTable table;
  std::vector<std::vector<std::byte>> storage;
  struct Live {
    RegOffset off;
    std::size_t len;
  };
  std::vector<Live> live;

  for (int step = 0; step < 200; ++step) {
    if (live.empty() || rng.uniform() < 0.6) {
      const std::size_t pages = 1 + rng.below(8);
      storage.push_back(std::vector<std::byte>(pages * kPage));
      auto off = table.add(storage.back().data(), pages * kPage, 0,
                           SCIF_PROT_READ | SCIF_PROT_WRITE, 0, false);
      ASSERT_TRUE(off);
      live.push_back({*off, pages * kPage});
    } else {
      const std::size_t i = rng.below(live.size());
      ASSERT_EQ(table.remove(live[i].off, live[i].len), sim::Status::kOk);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    // Invariants.
    ASSERT_EQ(table.count(), live.size());
    for (const auto& w : live) {
      auto spans = table.resolve(w.off, w.len, SCIF_PROT_READ);
      ASSERT_TRUE(spans);
      ASSERT_EQ(spans->size(), 1u);
      ASSERT_EQ(spans->front().len, w.len);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowChurnTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace vphi::scif
