// Race-detection workloads: every test here is also compiled into the
// vphi_race_tsan_test binary (-fsanitize=thread), where the point is not
// the assertions but the interleavings — concurrent submit/wait through a
// worker-mode backend, metric registration racing registry snapshots,
// flight-recorder writes under a fault storm, and focused regressions for
// races the thread-safety annotation pass surfaced (the frontend's probed
// flag, endpoint teardown racing a blocked peer).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hv/vm.hpp"
#include "sim/actor.hpp"
#include "sim/fault.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"
#include "sim/recorder.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "tools/testbed.hpp"
#include "vphi/frontend.hpp"

namespace vphi::core {
namespace {

using scif::PortId;
using scif::SCIF_ACCEPT_SYNC;
using scif::SCIF_RECV_BLOCK;
using scif::SCIF_SEND_BLOCK;
using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

// Echo servers on card ports base..base+n-1, one per guest thread.
std::vector<std::future<void>> start_echoes(Testbed& bed, int n, int base) {
  auto& card = bed.card_provider();
  std::vector<std::future<void>> echoes;
  for (int t = 0; t < n; ++t) {
    auto lep = card.open();
    EXPECT_TRUE(lep);
    EXPECT_TRUE(card.bind(*lep, static_cast<scif::Port>(base + t)));
    EXPECT_TRUE(sim::ok(card.listen(*lep, 2)));
    echoes.push_back(std::async(std::launch::async, [&card, lep = *lep] {
      sim::Actor a{"echo", sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      auto acc = card.accept(lep, SCIF_ACCEPT_SYNC);
      if (!acc) return;
      std::uint8_t frame[64];
      while (card.recv(acc->epd, frame, sizeof(frame), SCIF_RECV_BLOCK)) {
        if (!card.send(acc->epd, frame, sizeof(frame), SCIF_SEND_BLOCK)) {
          break;
        }
      }
    }));
  }
  return echoes;
}

TEST(VphiRace, ConcurrentSubmitWaitWorkerBackend) {
  // All guest threads share one VM's ring with the all-worker backend:
  // submit_once/wait_once, drain_used and the worker queues all run
  // concurrently. Correctness bar: every echo returns intact; TSan bar:
  // no report.
  TestbedConfig config;
  config.backend_policy.classify = BackendPolicy::all_worker();
  Testbed bed{config};

  constexpr int kThreads = 4;
  constexpr int kRounds = 12;
  auto echoes = start_echoes(bed, kThreads, 7'200);

  std::atomic<int> failures{0};
  std::vector<std::thread> guests;
  for (int t = 0; t < kThreads; ++t) {
    guests.emplace_back([&bed, &failures, t] {
      sim::Actor a{"guest" + std::to_string(t), sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      auto& guest = bed.vm(0).guest_scif();
      auto epd = guest.open();
      if (!epd ||
          !sim::ok(guest.connect(
              *epd,
              PortId{bed.card_node(), static_cast<scif::Port>(7'200 + t)}))) {
        ++failures;
        return;
      }
      sim::Rng rng{static_cast<std::uint64_t>(t) + 1};
      std::uint8_t out[64], in[64];
      for (int round = 0; round < kRounds; ++round) {
        rng.fill(out, sizeof(out));
        if (!guest.send(*epd, out, sizeof(out), SCIF_SEND_BLOCK) ||
            !guest.recv(*epd, in, sizeof(in), SCIF_RECV_BLOCK) ||
            std::memcmp(out, in, sizeof(out)) != 0) {
          ++failures;
          return;
        }
      }
      guest.close(*epd);
    });
  }
  for (auto& g : guests) g.join();
  for (auto& e : echoes) e.get();
  EXPECT_EQ(failures.load(), 0);
}

TEST(VphiRace, ConcurrentMetricChurnAndSnapshot) {
  // Labeled instruments register and deregister (construction/destruction
  // takes the registry lock) while other threads walk the registry for
  // snapshots. The original bug class: snapshot iterating a map that a
  // registering counter rehashes under it.
  constexpr int kChurnThreads = 3;
  constexpr int kSnapshotThreads = 2;
  constexpr int kIters = 200;

  std::vector<std::thread> workers;
  for (int t = 0; t < kChurnThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        sim::metrics::Counter c{"vphi.test.race.churn",
                                "vm" + std::to_string(t)};
        c.inc(1 + static_cast<std::uint64_t>(i));
        sim::metrics::Gauge g{"vphi.test.race.gauge",
                              "vm" + std::to_string(t)};
        g.set(static_cast<std::int64_t>(i));
        sim::metrics::LatencyHistogram h{"vphi.test.race.lat",
                                         "vm" + std::to_string(t)};
        h.record(1'000);
      }
    });
  }
  std::atomic<bool> stop{false};
  for (int t = 0; t < kSnapshotThreads; ++t) {
    workers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string json = sim::metrics::registry().snapshot_json();
        EXPECT_FALSE(json.empty());
        const auto names = sim::metrics::registry().metric_names();
        EXPECT_FALSE(names.empty());
      }
    });
  }
  for (int t = 0; t < kChurnThreads; ++t) workers[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t t = kChurnThreads; t < workers.size(); ++t) workers[t].join();
}

TEST(VphiRace, SnapshotJsonUnderConcurrentMutation) {
  // Live counters mutate while snapshot_json serializes them: the snapshot
  // must always be well-formed JSON-ish text (balanced braces, our metric
  // visible), never torn. json_escaped itself is hammered from all threads
  // with the characters that need escaping.
  sim::metrics::Counter hot{"vphi.test.race.hot"};
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load(std::memory_order_relaxed)) hot.inc();
  });
  // Snapshots below must overlap live increments, so hold until the
  // mutator thread is actually scheduled and incrementing.
  while (hot.value() == 0) std::this_thread::yield();
  for (int i = 0; i < 50; ++i) {
    const std::string json = sim::metrics::registry().snapshot_json();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("vphi.test.race.hot"), std::string::npos);
    // Escaping is pure but the TSan build checks it is also re-entrant.
    EXPECT_EQ(sim::json_escaped("a\"b\\c\nd\te\x01"),
              "a\\\"b\\\\c\\nd\\te\\u0001");
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  EXPECT_GT(sim::metrics::registry().counter_value("vphi.test.race.hot"), 0u);
}

TEST(VphiRace, FlightRecorderUnderFaultStorm) {
  // Traced traffic feeds the recorder's ring from guest, backend and IRQ
  // threads while injected faults fire dump() (snapshot + render) and two
  // observer threads concurrently dump and read last_dump()/entry_count().
  sim::tracer().set_enabled(true);
  sim::flight_recorder().clear();

  TestbedConfig config;
  config.backend_policy.classify = BackendPolicy::all_worker();
  Testbed bed{config};

  constexpr int kThreads = 3;
  constexpr int kRounds = 20;
  auto echoes = start_echoes(bed, kThreads, 7'300);

  // Connect every guest before arming anything: a faulted connect would
  // strand its echo server in accept() and the test in e.get(). The armed
  // sites below lie about completions but never swallow a request, so
  // every op still executes host-side and close() always unblocks peers.
  auto& guest = bed.vm(0).guest_scif();
  std::vector<int> epds(kThreads, -1);
  {
    sim::Actor a{"storm-setup", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    for (int t = 0; t < kThreads; ++t) {
      auto epd = guest.open();
      ASSERT_TRUE(epd);
      ASSERT_TRUE(sim::ok(guest.connect(
          *epd, PortId{bed.card_node(), static_cast<scif::Port>(7'300 + t)})));
      epds[static_cast<std::size_t>(t)] = *epd;
    }
  }

  sim::fault_injector().seed(7);
  sim::fault_injector().arm_probability(sim::FaultSite::kShortUsedWrite, 0.05);
  sim::fault_injector().arm_probability(
      sim::FaultSite::kCorruptResponseStatus, 0.05);

  std::atomic<bool> stop{false};
  std::vector<std::thread> observers;
  for (int t = 0; t < 2; ++t) {
    observers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        sim::flight_recorder().dump("race-storm-observer");
        const sim::FlightDump last = sim::flight_recorder().last_dump();
        EXPECT_FALSE(last.reason.empty());
        (void)sim::flight_recorder().entry_count();
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::thread> guests;
  for (int t = 0; t < kThreads; ++t) {
    guests.emplace_back([&guest, &epds, t] {
      sim::Actor a{"storm" + std::to_string(t), sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      const int epd = epds[static_cast<std::size_t>(t)];
      std::uint8_t out[64], in[64];
      std::memset(out, 0x5a, sizeof(out));
      for (int round = 0; round < kRounds; ++round) {
        // Faults make failures legal here; stop on the first one rather
        // than desynchronizing from the fixed-frame echo peer.
        if (!guest.send(epd, out, sizeof(out), SCIF_SEND_BLOCK)) break;
        if (!guest.recv(epd, in, sizeof(in), SCIF_RECV_BLOCK)) break;
      }
      guest.close(epd);
    });
  }
  for (auto& g : guests) g.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& o : observers) o.join();
  sim::fault_injector().disarm_all();
  for (auto& e : echoes) e.get();
  sim::tracer().set_enabled(false);
  sim::tracer().clear();
  EXPECT_GT(sim::flight_recorder().dump_count(), 0u);
}

TEST(VphiRace, ProbedFlagConcurrentReadersDuringProbe) {
  // Regression: FrontendDriver::probed_ was a plain bool written by
  // probe() and read by every submit/wait thread — a data race under TSan.
  // It is atomic now; readers racing the probe see a clean before/after.
  hv::Vm vm{{.name = "race-probe"}, sim::CostModel::paper()};
  FrontendDriver frontend{vm};

  // Submission on the unprobed driver must already be a clean kNoDevice
  // rejection (not UB on a half-written flag) — single-threaded here; the
  // multi-threaded interleaving below is what TSan checks.
  {
    sim::Actor a{"early"};
    FrontendDriver::TransactArgs args;
    args.header.op = Op::kGetNodeIds;
    EXPECT_EQ(frontend.transact(a, args).status(), Status::kNoDevice);
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // Hammer the flag across the probe; every reader exits only once the
      // release-store is visible to it.
      while (!frontend.probed()) std::this_thread::yield();
    });
  }
  go.store(true, std::memory_order_release);
  EXPECT_EQ(frontend.probe(), Status::kOk);
  for (auto& r : readers) r.join();
  EXPECT_TRUE(frontend.probed());
}

TEST(VphiRace, PeerCloseRacesBlockedRecv) {
  // Regression: Endpoint::close() read peer bookkeeping (peer id, last
  // event timestamp) without the endpoint lock while the peer's recv path
  // updated it. A card-side close racing a guest blocked in recv must
  // resolve to an error status on the guest side, never a torn read.
  Testbed bed{TestbedConfig{}};
  auto& card = bed.card_provider();
  auto lep = card.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(card.bind(*lep, 7'400));
  ASSERT_TRUE(sim::ok(card.listen(*lep, 2)));

  auto acceptor = std::async(std::launch::async, [&] {
    sim::Actor a{"acceptor", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    return card.accept(*lep, SCIF_ACCEPT_SYNC);
  });

  auto& guest = bed.vm(0).guest_scif();
  auto epd = guest.open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest.connect(*epd, PortId{bed.card_node(), 7'400})));
  auto acc = acceptor.get();
  ASSERT_TRUE(acc);

  std::promise<Status> recv_status;
  std::thread blocked([&] {
    sim::Actor a{"blocked", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    std::uint8_t b;
    recv_status.set_value(
        guest.recv(*epd, &b, 1, SCIF_RECV_BLOCK).status());
  });
  // Close the card side while the guest recv is in flight (or arriving).
  {
    sim::Actor a{"closer", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    card.close(acc->epd);
  }
  const Status status = recv_status.get_future().get();
  blocked.join();
  EXPECT_TRUE(status == Status::kConnectionReset ||
              status == Status::kShutDown || status == Status::kOk)
      << "got " << std::string(sim::to_string(status));
  guest.close(*epd);
}

}  // namespace
}  // namespace vphi::core
