// Tests for the COI layer (wire format, kernel registry, daemon, process
// lifecycle) and the dgemm workload, on both the native and vPHI paths.
#include <gtest/gtest.h>

#include <vector>

#include "coi/binary.hpp"
#include "coi/process.hpp"
#include "coi/wire.hpp"
#include "sim/actor.hpp"
#include "tools/testbed.hpp"
#include "workloads/dgemm.hpp"

namespace vphi::coi {
namespace {

using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

TEST(Wire, EncodeDecodeRoundtrip) {
  Encoder e;
  e.put_u32(42);
  e.put_u64(1ull << 40);
  e.put_i64(-7);
  e.put_string("hello");
  e.put_strings({"a", "bc", ""});

  Decoder d{e.bytes().data(), e.bytes().size()};
  EXPECT_EQ(d.u32().value(), 42u);
  EXPECT_EQ(d.u64().value(), 1ull << 40);
  EXPECT_EQ(d.i64().value(), -7);
  EXPECT_EQ(d.string().value(), "hello");
  auto v = d.strings();
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, (std::vector<std::string>{"a", "bc", ""}));
  EXPECT_EQ(d.remaining(), 0u);
}

TEST(Wire, DecoderRejectsTruncation) {
  Encoder e;
  e.put_string("truncate me");
  Decoder d{e.bytes().data(), e.bytes().size() - 3};
  EXPECT_EQ(d.string().status(), Status::kOutOfRange);
  Decoder d2{e.bytes().data(), 2};
  EXPECT_EQ(d2.u32().status(), Status::kOutOfRange);
}

TEST(KernelRegistry, RegisterLookup) {
  auto& reg = KernelRegistry::instance();
  reg.register_kernel("coi_test_kernel", [](KernelContext& ctx) {
    ctx.output = "ran";
    return 5;
  });
  EXPECT_TRUE(reg.contains("coi_test_kernel"));
  auto fn = reg.lookup("coi_test_kernel");
  ASSERT_TRUE(fn);
  EXPECT_EQ(reg.lookup("missing_kernel").status(), Status::kNoSuchEntry);
}

TEST(BinaryImage, TotalBytesSumsLibraries) {
  BinaryImage image;
  image.bytes = 100;
  image.libraries = {{"a.so", 50}, {"b.so", 25}};
  EXPECT_EQ(image.total_bytes(), 175u);
}

class CoiFixture : public ::testing::Test {
 protected:
  CoiFixture() : bed_(TestbedConfig{.num_vms = 1}) {
    workloads::register_dgemm_kernel();
  }
  Testbed bed_;
};

TEST_F(CoiFixture, EnumerateEnginesSeesTheCard) {
  auto engines = enumerate_engines(bed_.host_provider());
  ASSERT_TRUE(engines);
  ASSERT_EQ(engines->size(), 1u);
  EXPECT_EQ((*engines)[0].family, "Knights Corner");
  EXPECT_EQ((*engines)[0].sku, "3120P");
  EXPECT_EQ((*engines)[0].node, 1);
}

TEST_F(CoiFixture, ProcessCreateStreamsAndStarts) {
  BinaryImage image;
  image.name = "tiny.mic";
  image.bytes = 1 << 20;
  image.libraries = {{"libtiny.so", 2 << 20}};
  image.entry_kernel = "noop";

  sim::Actor actor{"host-coi"};
  sim::ActorScope scope(actor);
  auto process = Process::create(bed_.host_provider(), bed_.card_node(), image,
                                 4, {});
  ASSERT_TRUE(process);
  EXPECT_TRUE(process->valid());
  EXPECT_GT(process->pid(), 0u);
  EXPECT_EQ(bed_.coi_daemon()->processes_created(), 1u);

  auto exited = process->wait_for_shutdown();
  ASSERT_TRUE(exited);
  EXPECT_EQ(exited->exit_code, 0);
  EXPECT_EQ(exited->output, "ok");
}

TEST_F(CoiFixture, RunFunctionOnLiveProcess) {
  BinaryImage image;
  image.name = "svc.mic";
  image.bytes = 4'096;
  image.entry_kernel = "noop";
  sim::Actor actor{"host-coi"};
  sim::ActorScope scope(actor);
  auto process =
      Process::create(bed_.host_provider(), bed_.card_node(), image, 1, {});
  ASSERT_TRUE(process);
  auto result = process->run_function("noop", {"x"});
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 0);
  EXPECT_EQ(bed_.coi_daemon()->functions_run(), 1u);

  auto missing = process->run_function("not_registered", {});
  ASSERT_TRUE(missing);
  EXPECT_EQ(missing->exit_code, 127) << "loader error for unknown entry";
}

TEST_F(CoiFixture, BufferAllocFree) {
  BinaryImage image;
  image.name = "buf.mic";
  image.bytes = 4'096;
  image.entry_kernel = "noop";
  sim::Actor actor{"host-coi"};
  sim::ActorScope scope(actor);
  auto process =
      Process::create(bed_.host_provider(), bed_.card_node(), image, 1, {});
  ASSERT_TRUE(process);
  const auto used_before = bed_.card().memory().used();
  auto buffer = process->alloc_buffer(1 << 20);
  ASSERT_TRUE(buffer);
  EXPECT_GT(bed_.card().memory().used(), used_before);
  EXPECT_EQ(process->free_buffer(*buffer), Status::kOk);
  EXPECT_EQ(bed_.card().memory().used(), used_before);
}

TEST_F(CoiFixture, OffloadFromInsideVm) {
  // The whole COI client stack running over GuestScifProvider — offload
  // mode from a VM, the paper's compatibility claim one level up.
  BinaryImage image;
  image.name = "vm-offload.mic";
  image.bytes = 1 << 20;
  image.entry_kernel = "noop";
  sim::Actor actor{"guest-coi"};
  sim::ActorScope scope(actor);
  auto process = Process::create(bed_.vm(0).guest_scif(), bed_.card_node(),
                                 image, 2, {});
  ASSERT_TRUE(process);
  auto exited = process->wait_for_shutdown();
  ASSERT_TRUE(exited);
  EXPECT_EQ(exited->exit_code, 0);
}

}  // namespace
}  // namespace vphi::coi

namespace vphi::workloads {
namespace {

TEST(Dgemm, BlockedMatchesNaive) {
  for (std::size_t n : {1ull, 7ull, 64ull, 129ull}) {
    std::vector<double> a(n * n), b(n * n), c_blocked(n * n), c_naive(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
      a[i] = static_cast<double>(i % 11) * 0.3 - 1.0;
      b[i] = static_cast<double>(i % 13) * 0.1 + 0.2;
    }
    dgemm_blocked(a.data(), b.data(), c_blocked.data(), n, 4);
    dgemm_naive(a.data(), b.data(), c_naive.data(), n);
    for (std::size_t i = 0; i < n * n; ++i) {
      ASSERT_NEAR(c_blocked[i], c_naive[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Dgemm, FlopsAndEfficiency) {
  EXPECT_DOUBLE_EQ(dgemm_flops(100), 2e6);
  EXPECT_LT(kernel_efficiency(64), kernel_efficiency(4'096));
  EXPECT_LT(kernel_efficiency(1 << 20), 0.92 + 1e-12);
}

TEST(Dgemm, MicTimeModelScalesAsNCubed) {
  mic::uos::Scheduler sched{sim::CostModel::paper()};
  const auto t1 = mic_dgemm_time(sched, 2'048, 224);
  const auto t2 = mic_dgemm_time(sched, 4'096, 224);
  const double ratio = static_cast<double>(t2) / static_cast<double>(t1);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 9.0);
}

TEST(Dgemm, MicTimeModelFasterWithMoreThreads) {
  mic::uos::Scheduler sched{sim::CostModel::paper()};
  const auto t56 = mic_dgemm_time(sched, 4'096, 56);
  const auto t112 = mic_dgemm_time(sched, 4'096, 112);
  const auto t224 = mic_dgemm_time(sched, 4'096, 224);
  EXPECT_GT(t56, t112);
  EXPECT_GT(t112, t224);
}

TEST(Dgemm, ImageCarriesMklDeps) {
  const auto image = make_dgemm_image(sim::CostModel::paper());
  EXPECT_EQ(image.entry_kernel, kDgemmKernelName);
  EXPECT_EQ(image.total_bytes(),
            sim::CostModel::paper().loadex_binary_bytes +
                sim::CostModel::paper().loadex_library_bytes);
  EXPECT_EQ(image.libraries.size(), 4u);
}

}  // namespace
}  // namespace vphi::workloads
