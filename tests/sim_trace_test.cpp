// Observability subsystem tests: request-trace span ordering (serial and
// pipelined, worker-mode backend), the disabled-tracing fast path, metrics
// snapshot determinism under a fault sweep, and the Histogram::percentile
// top-bucket regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "tools/testbed.hpp"

namespace vphi::core {
namespace {

using scif::SCIF_ACCEPT_SYNC;
using scif::SCIF_RECV_BLOCK;
using scif::SCIF_SEND_BLOCK;
using sim::SpanEvent;
using tools::Testbed;
using tools::TestbedConfig;

/// First timestamp of each span event in one request (events sorted by ts
/// at aggregation time, mirroring the exporters).
std::map<SpanEvent, sim::Nanos> event_map(const sim::RequestTrace& req) {
  std::map<SpanEvent, sim::Nanos> m;
  for (const auto& ev : req.events) {
    if (m.find(ev.event) == m.end()) m[ev.event] = ev.ts;
  }
  return m;
}

/// Assert the events that are present follow the pipeline order with
/// non-decreasing timestamps. kKick and kVirq may legitimately be absent
/// (EVENT_IDX suppression); the core hops must all be there.
void expect_causal(const sim::RequestTrace& req) {
  const auto m = event_map(req);
  for (const SpanEvent required :
       {SpanEvent::kSubmit, SpanEvent::kAvailPublish, SpanEvent::kBackendPop,
        SpanEvent::kHostSyscall, SpanEvent::kUsedPublish,
        SpanEvent::kComplete}) {
    EXPECT_TRUE(m.count(required))
        << req.op << " request " << req.id << " missing "
        << sim::span_event_name(required);
  }
  sim::Nanos last = 0;
  for (int e = 0; e < static_cast<int>(SpanEvent::kNumEvents); ++e) {
    const auto it = m.find(static_cast<SpanEvent>(e));
    if (it == m.end()) continue;
    EXPECT_GE(it->second, last)
        << req.op << " request " << req.id << ": "
        << sim::span_event_name(static_cast<SpanEvent>(e))
        << " goes backwards";
    last = it->second;
  }
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::tracer().set_enabled(true);
    sim::tracer().clear();
  }

  void TearDown() override {
    sim::tracer().set_enabled(false);
    sim::tracer().clear();
    sim::fault_injector().disarm_all();
    bed_.reset();
  }

  void make_bed(TestbedConfig cfg) {
    cfg.start_coi_daemon = false;
    bed_ = std::make_unique<Testbed>(cfg);
    sim::tracer().clear();  // drop the stack bring-up ops
  }

  GuestScifProvider& guest() { return bed_->vm(0).guest_scif(); }

  std::unique_ptr<Testbed> bed_;
};

TEST_F(TraceTest, SerialSpanOrdering) {
  TestbedConfig cfg;
  cfg.frontend.scheme = WaitScheme::kInterrupt;
  make_bed(cfg);

  ASSERT_TRUE(guest().get_node_ids());
  ASSERT_TRUE(guest().get_node_ids());

  const auto requests = sim::tracer().requests();
  ASSERT_EQ(requests.size(), 2u);
  const auto ops = sim::tracer().ops();
  ASSERT_EQ(ops.size(), 2u);
  for (const auto& req : requests) {
    EXPECT_EQ(req.op, "get_node_ids");
    expect_causal(req);
    // The guest-level op umbrella the request links to must exist and wrap
    // the request's whole span.
    ASSERT_NE(req.parent, 0u);
    bool found = false;
    for (const auto& op : ops) {
      if (op.id != req.parent) continue;
      found = true;
      ASSERT_GE(op.events.size(), 2u);
      EXPECT_LE(op.events.front().ts, req.events.front().ts);
      EXPECT_GE(op.events.back().ts, req.events.back().ts);
    }
    EXPECT_TRUE(found) << "request " << req.id << " has dangling parent";
  }

  // The serial walk tiles the timeline, so the aggregated hops telescope to
  // the full submit->complete distance of both requests.
  double hop_total = 0.0;
  for (const auto& h : sim::tracer().hop_breakdown()) {
    hop_total += h.ns.mean() * static_cast<double>(h.ns.count());
  }
  double span_total = 0.0;
  for (const auto& req : requests) {
    const auto m = event_map(req);
    span_total += static_cast<double>(m.at(SpanEvent::kComplete) -
                                      m.at(SpanEvent::kSubmit));
  }
  EXPECT_DOUBLE_EQ(hop_total, span_total);
}

TEST_F(TraceTest, PipelinedWindowWorkerModeOrdering) {
  // Mirror the pipeline test rig: 8 KiB chunks, window 4, all-worker
  // backend — chunk requests overlap on the ring and complete through the
  // per-endpoint FIFO, and every one must still trace causally.
  TestbedConfig cfg;
  cfg.frontend.scheme = WaitScheme::kInterrupt;
  cfg.frontend.max_payload = 8 * 1024;
  cfg.frontend.pipeline_window = 4;
  cfg.backend_policy.classify = BackendPolicy::all_worker();
  make_bed(cfg);

  constexpr std::size_t kTotal = 64 * 1024;  // 8 chunks
  constexpr scif::Port kPort = 7'700;
  auto& card = bed_->card_provider();
  auto lep = card.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(card.bind(*lep, kPort));
  ASSERT_TRUE(sim::ok(card.listen(*lep, 2)));
  auto sink = std::async(std::launch::async, [&card, lep = *lep] {
    sim::Actor a{"sink", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = card.accept(lep, SCIF_ACCEPT_SYNC);
    if (!acc) return;
    std::vector<std::uint8_t> buf(kTotal);
    std::size_t got = 0;
    while (got < kTotal) {
      auto r = card.recv(acc->epd, buf.data() + got, kTotal - got,
                         SCIF_RECV_BLOCK);
      if (!r || *r == 0) return;
      got += *r;
    }
    card.close(acc->epd);
  });

  auto epd = guest().open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(
      sim::ok(guest().connect(*epd, scif::PortId{bed_->card_node(), kPort})));
  sim::tracer().clear();  // trace exactly the pipelined send

  std::vector<std::uint8_t> data(kTotal, 0x5A);
  auto sent = guest().send(*epd, data.data(), kTotal, SCIF_SEND_BLOCK);
  ASSERT_TRUE(sent);
  EXPECT_EQ(*sent, kTotal);

  const auto requests = sim::tracer().requests();
  ASSERT_EQ(requests.size(), kTotal / (8 * 1024));
  const auto ops = sim::tracer().ops();
  ASSERT_EQ(ops.size(), 1u);  // one umbrella for the whole chunk walk
  for (const auto& req : requests) {
    EXPECT_EQ(req.op, "send");
    EXPECT_EQ(req.parent, ops.front().id);
    expect_causal(req);
  }
  // Submission order must survive the window: kSubmit timestamps of the
  // chunk requests are non-decreasing in allocation order.
  for (std::size_t i = 1; i < requests.size(); ++i) {
    EXPECT_GE(requests[i].events.front().ts, requests[i - 1].events.front().ts);
  }

  guest().close(*epd);
  sink.wait();
}

TEST_F(TraceTest, DisabledTracingAllocatesNothing) {
  TestbedConfig cfg;
  make_bed(cfg);
  sim::tracer().set_enabled(false);
  sim::tracer().clear();

  EXPECT_EQ(sim::tracer().begin_request("noop", 0), 0u);
  {
    sim::TraceOpScope op("noop");
    EXPECT_EQ(op.id(), 0u);
  }
  ASSERT_TRUE(guest().get_node_ids());
  ASSERT_TRUE(guest().get_node_ids());

  EXPECT_EQ(sim::tracer().request_count(), 0u);
  EXPECT_EQ(sim::tracer().event_count(), 0u);
  EXPECT_TRUE(sim::tracer().requests().empty());
  EXPECT_TRUE(sim::tracer().ops().empty());
}

/// One deterministic fault-sweep workload; returns the values of the
/// race-free metric names. (Counters that depend on real-time interleaving
/// with the backend thread — kick/irq suppression, fast reaps — are
/// deliberately left out: EVENT_IDX makes them legitimately racy.)
std::map<std::string, std::uint64_t> sweep_once() {
  auto& reg = sim::metrics::registry();
  auto& fi = sim::fault_injector();
  reg.reset();
  fi.disarm_all();
  fi.reset_counters();
  fi.seed(7);

  {
    TestbedConfig cfg;
    cfg.frontend.scheme = WaitScheme::kInterrupt;
    cfg.frontend.request_timeout_ns = 50'000'000;
    cfg.start_coi_daemon = false;
    Testbed bed{cfg};
    auto& guest = bed.vm(0).guest_scif();

    for (int i = 0; i < 3; ++i) EXPECT_TRUE(guest.get_node_ids());
    // Deterministic nth-hit trigger: the 2nd response after arming comes
    // back with a corrupt status. get_node_ids is idempotent and the
    // timeout is set, so the frontend counts a protocol error and heals it
    // with one retry — every call still succeeds.
    fi.arm_nth(sim::FaultSite::kCorruptResponseStatus, 2, 1);
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(guest.get_node_ids());
    fi.disarm_all();
  }

  std::map<std::string, std::uint64_t> out;
  for (const char* name :
       {"vphi.fe.requests", "vphi.fe.protocol_errors", "vphi.fe.timeouts",
        "vphi.fe.retries", "vphi.fe.op.get_node_ids.errors",
        "vphi.be.requests.blocking", "vphi.be.requests.worker",
        "vphi.be.op.get_node_ids.requests", "vphi.be.malformed_chains",
        "vphi.be.validation_failures", "vphi.ring.chains_poisoned",
        "vphi.ring.chains_truncated",
        "vphi.fault.corrupt-response-status.hits",
        "vphi.fault.corrupt-response-status.fires"}) {
    out[name] = reg.counter_value(name);
  }
  return out;
}

TEST(MetricsRegistryTest, SnapshotDeterministicUnderFaultSweep) {
  const auto first = sweep_once();
  const auto second = sweep_once();
  EXPECT_EQ(first, second);

  // Sanity: the sweep actually moved the interesting needles — 6 calls
  // plus the one retry that healed the corrupted response.
  EXPECT_EQ(first.at("vphi.fe.requests"), 7u);
  EXPECT_EQ(first.at("vphi.fe.retries"), 1u);
  EXPECT_EQ(first.at("vphi.fe.protocol_errors"), 1u);
  EXPECT_EQ(first.at("vphi.fault.corrupt-response-status.fires"), 1u);

  // The JSON snapshot itself is stable between immediate calls (sorted
  // keys, no iteration-order leakage).
  const auto& reg = sim::metrics::registry();
  EXPECT_EQ(reg.snapshot_json(), reg.snapshot_json());
  EXPECT_NE(reg.snapshot_json().find("\"vphi.fe.protocol_errors\":1"),
            std::string::npos);
}

TEST(HistogramPercentileTest, TopBucketReturnsObservedMax) {
  // Regression: a single sample of 1000 lands in the (512, 1024] bucket;
  // interpolation used to report the bucket's exclusive upper bound 1024 —
  // a value never observed — for high quantiles.
  sim::Histogram h;
  h.add(1'000);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1'000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 1'000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1'000.0);  // clamped to [min, max]
}

TEST(HistogramPercentileTest, EdgeCases) {
  sim::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(1.0), 0.0);

  sim::Histogram h;
  h.add(0);
  h.add(100);
  h.add(1'000'000);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1'000'000.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.5), 1'000'000.0);  // clamped above
  EXPECT_GE(h.percentile(0.0), 0.0);                 // clamped below
  EXPECT_LE(h.percentile(0.5), 1'000'000.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.percentile(0.25), h.percentile(0.75));
}

TEST(HistogramPercentileTest, MergeCombinesSummaries) {
  sim::Histogram a;
  a.add(10);
  a.add(20);
  sim::Histogram b;
  b.add(30);
  b.add(1'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), (10.0 + 20.0 + 30.0 + 1'000.0) / 4.0);
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 1'000.0);
  EXPECT_DOUBLE_EQ(a.min(), 10.0);
}

}  // namespace
}  // namespace vphi::core
