// Multi-card fabrics: several Xeon Phi cards on one host, card-to-card
// (peer-to-peer) SCIF, and a VM reaching any card through one vPHI device.
// The real MPSS stack supports multiple cards as SCIF nodes 1..N; the
// paper's design needs no change for it, and neither does the reproduction.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "coi/process.hpp"
#include "mic/card.hpp"
#include "scif/fabric.hpp"
#include "scif/host_provider.hpp"
#include "sim/actor.hpp"
#include "sim/cost_model.hpp"
#include "sim/rng.hpp"
#include "tools/testbed.hpp"

namespace vphi::scif {
namespace {

using sim::CostModel;
using sim::Status;

class MultiCardFixture : public ::testing::Test {
 protected:
  MultiCardFixture()
      : card0_({.index = 0, .memory_backing_bytes = 32ull << 20},
               CostModel::paper()),
        card1_({.index = 1, .memory_backing_bytes = 32ull << 20},
               CostModel::paper()),
        fabric_(CostModel::paper()) {
    card0_.boot();
    card1_.boot();
    node0_ = fabric_.attach_card(card0_);
    node1_ = fabric_.attach_card(card1_);
    host_ = std::make_unique<HostProvider>(fabric_, kHostNode);
    mic0_ = std::make_unique<HostProvider>(fabric_, node0_);
    mic1_ = std::make_unique<HostProvider>(fabric_, node1_);
  }

  mic::Card card0_, card1_;
  Fabric fabric_;
  NodeId node0_ = 0, node1_ = 0;
  std::unique_ptr<HostProvider> host_, mic0_, mic1_;
};

TEST_F(MultiCardFixture, TopologyEnumerates) {
  EXPECT_EQ(fabric_.node_count(), 3);
  auto ids = host_->get_node_ids();
  ASSERT_TRUE(ids);
  EXPECT_EQ(ids->total, 3);
  EXPECT_TRUE(host_->card_info(0));
  EXPECT_TRUE(host_->card_info(1));
  EXPECT_FALSE(host_->card_info(2));
  EXPECT_EQ(host_->card_info(1)->get("mic_id").value(), "1");
}

TEST_F(MultiCardFixture, CardToCardPeerToPeerStream) {
  // A process on mic0 talks directly to a server on mic1 — SCIF's
  // symmetric property across the PCIe root complex.
  auto lep = mic1_->open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(mic1_->bind(*lep, 900));
  ASSERT_TRUE(sim::ok(mic1_->listen(*lep, 2)));
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"mic1-server", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = mic1_->accept(*lep, SCIF_ACCEPT_SYNC);
    ASSERT_TRUE(acc);
    char buf[32] = {};
    auto r = mic1_->recv(acc->epd, buf, sizeof(buf), SCIF_RECV_BLOCK);
    ASSERT_TRUE(r);
    EXPECT_STREQ(buf, "peer to peer across cards");
  });

  sim::Actor a{"mic0-client", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto epd = mic0_->open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(mic0_->connect(*epd, PortId{node1_, 900})));
  char msg[32] = "peer to peer across cards";
  ASSERT_TRUE(mic0_->send(*epd, msg, sizeof(msg), SCIF_SEND_BLOCK));
  server.get();
}

TEST_F(MultiCardFixture, CardToCardRma) {
  auto lep = mic1_->open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(mic1_->bind(*lep, 901));
  ASSERT_TRUE(sim::ok(mic1_->listen(*lep, 2)));

  constexpr std::size_t kBytes = 1 << 20;
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"mic1-server", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = mic1_->accept(*lep, SCIF_ACCEPT_SYNC);
    ASSERT_TRUE(acc);
    auto dev = card1_.memory().allocate(kBytes);
    ASSERT_TRUE(dev);
    sim::Rng rng{77};
    rng.fill(card1_.memory().at(*dev), kBytes);
    ASSERT_TRUE(mic1_->register_mem(acc->epd, card1_.memory().at(*dev),
                                    kBytes, 0, SCIF_PROT_READ,
                                    SCIF_MAP_FIXED));
    std::uint8_t ready = 1;
    ASSERT_TRUE(mic1_->send(acc->epd, &ready, 1, SCIF_SEND_BLOCK));
    std::uint8_t bye;
    mic1_->recv(acc->epd, &bye, 1, SCIF_RECV_BLOCK);
  });

  sim::Actor a{"mic0-client", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto epd = mic0_->open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(mic0_->connect(*epd, PortId{node1_, 901})));
  std::uint8_t ready = 0;
  ASSERT_TRUE(mic0_->recv(*epd, &ready, 1, SCIF_RECV_BLOCK));

  auto dst = card0_.memory().allocate(kBytes);
  ASSERT_TRUE(dst);
  ASSERT_EQ(mic0_->vreadfrom(*epd, card0_.memory().at(*dst), kBytes, 0,
                             SCIF_RMA_SYNC),
            Status::kOk);
  std::uint8_t bye = 0;
  mic0_->send(*epd, &bye, 1, SCIF_SEND_BLOCK);
  server.get();

  sim::Rng rng{77};
  std::vector<std::uint8_t> expect(kBytes);
  rng.fill(expect.data(), kBytes);
  EXPECT_EQ(std::memcmp(card0_.memory().at(*dst), expect.data(), kBytes), 0);
}

TEST_F(MultiCardFixture, PortSpacesIndependentAcrossCards) {
  auto a = mic0_->open();
  auto b = mic1_->open();
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(mic0_->bind(*a, 950));
  EXPECT_TRUE(mic1_->bind(*b, 950)) << "same port number on another card";
}

}  // namespace
}  // namespace vphi::scif

namespace vphi::tools {
namespace {

TEST(MultiCardVm, GuestReachesSecondCard) {
  // A second card attached to the testbed's fabric: the VM's vPHI device
  // reaches it like any other SCIF node (the backend is just another host
  // process; no per-card frontend needed).
  Testbed bed{TestbedConfig{}};
  mic::Card card1{{.index = 1, .memory_backing_bytes = 16ull << 20},
                  bed.model()};
  card1.boot();
  const auto node1 = bed.fabric().attach_card(card1);
  scif::HostProvider mic1{bed.fabric(), node1};

  auto lep = mic1.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(mic1.bind(*lep, 960));
  ASSERT_TRUE(sim::ok(mic1.listen(*lep, 2)));
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"mic1-server", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = mic1.accept(*lep, scif::SCIF_ACCEPT_SYNC);
    ASSERT_TRUE(acc);
    std::uint8_t tag;
    auto r = mic1.recv(acc->epd, &tag, 1, scif::SCIF_RECV_BLOCK);
    ASSERT_TRUE(r);
    EXPECT_EQ(tag, 0x5A);
  });

  sim::Actor a{"guest", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto& guest = bed.vm(0).guest_scif();
  // The guest now sees both cards through the forwarded sysfs view.
  EXPECT_TRUE(guest.card_info(1));
  auto epd = guest.open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest.connect(*epd, scif::PortId{node1, 960})));
  std::uint8_t tag = 0x5A;
  ASSERT_TRUE(guest.send(*epd, &tag, 1, scif::SCIF_SEND_BLOCK));
  server.get();
  ASSERT_TRUE(sim::ok(guest.close(*epd)));
}

}  // namespace
}  // namespace vphi::tools
