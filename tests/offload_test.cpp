// Tests for the offload-mode runtime (data clauses over COI) — the
// paper's second execution model, run from the host and from inside a VM.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <vector>

#include "coi/offload.hpp"
#include "sim/actor.hpp"
#include "tools/testbed.hpp"
#include "workloads/dgemm.hpp"

namespace vphi::coi::offload {
namespace {

using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

/// Card kernel: doubles every float64 in its single inout clause buffer.
/// Args: "<offset> <len>".
int scale_kernel(KernelContext& ctx) {
  if (ctx.args.size() < 2) return 2;
  const auto off = std::strtoull(ctx.args[0].c_str(), nullptr, 10);
  const auto len = std::strtoull(ctx.args[1].c_str(), nullptr, 10);
  auto* data = static_cast<double*>(ctx.card->memory().at(off));
  if (data == nullptr) return 14;
  const std::size_t count = len / sizeof(double);
  for (std::size_t i = 0; i < count; ++i) data[i] *= 2.0;
  // A short card-side compute burst.
  ctx.actor->advance(sim::transfer_time(
      len, ctx.card->model().mic_mem_bandwidth_Bps));
  ctx.output = "scaled " + std::to_string(count);
  return 0;
}

/// Card kernel: out = a + b (two in clauses, one out clause).
/// Args: "<a_off> <a_len> <b_off> <b_len> <c_off> <c_len>".
int add_kernel(KernelContext& ctx) {
  if (ctx.args.size() < 6) return 2;
  const auto a_off = std::strtoull(ctx.args[0].c_str(), nullptr, 10);
  const auto b_off = std::strtoull(ctx.args[2].c_str(), nullptr, 10);
  const auto c_off = std::strtoull(ctx.args[4].c_str(), nullptr, 10);
  const auto len = std::strtoull(ctx.args[1].c_str(), nullptr, 10);
  const auto* a = static_cast<const double*>(ctx.card->memory().at(a_off));
  const auto* b = static_cast<const double*>(ctx.card->memory().at(b_off));
  auto* c = static_cast<double*>(ctx.card->memory().at(c_off));
  if (a == nullptr || b == nullptr || c == nullptr) return 14;
  for (std::size_t i = 0; i < len / sizeof(double); ++i) c[i] = a[i] + b[i];
  ctx.output = "added";
  return 0;
}

std::once_flag g_kernels_once;
void register_kernels() {
  std::call_once(g_kernels_once, [] {
    workloads::register_dgemm_kernel();  // provides "noop" for the shadow
    KernelRegistry::instance().register_kernel("offload_scale", scale_kernel);
    KernelRegistry::instance().register_kernel("offload_add", add_kernel);
  });
}

class OffloadFixture : public ::testing::Test {
 protected:
  OffloadFixture() : bed_(TestbedConfig{}) { register_kernels(); }
  Testbed bed_;
};

TEST_F(OffloadFixture, InOutClauseRoundtripsFromHost) {
  sim::Actor a{"host", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto region = OffloadRegion::attach(bed_.host_provider(), bed_.card_node(),
                                      112);
  ASSERT_TRUE(region);

  std::vector<double> data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i);
  }
  auto result = region->run(
      "offload_scale",
      {{Clause::Dir::kInOut, data.data(), data.size() * sizeof(double)}}, {});
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_DOUBLE_EQ(data[i], 2.0 * static_cast<double>(i)) << "i=" << i;
  }
}

TEST_F(OffloadFixture, MultipleClausesVectorAdd) {
  sim::Actor a{"host", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto region = OffloadRegion::attach(bed_.host_provider(), bed_.card_node(),
                                      56);
  ASSERT_TRUE(region);

  constexpr std::size_t kCount = 4'096;
  std::vector<double> va(kCount, 1.5), vb(kCount, 2.25), vc(kCount, 0.0);
  const std::uint64_t bytes = kCount * sizeof(double);
  auto result = region->run("offload_add",
                            {{Clause::Dir::kIn, va.data(), bytes},
                             {Clause::Dir::kIn, vb.data(), bytes},
                             {Clause::Dir::kOut, vc.data(), bytes}},
                            {});
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 0);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_DOUBLE_EQ(vc[i], 3.75);
  }
}

TEST_F(OffloadFixture, OffloadRegionFromInsideTheVm) {
  // The same region code through vPHI — offload mode in a VM.
  sim::Actor a{"guest", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto region = OffloadRegion::attach(bed_.vm(0).guest_scif(),
                                      bed_.card_node(), 112);
  ASSERT_TRUE(region);

  std::vector<double> data(2'000, 21.0);
  auto result = region->run(
      "offload_scale",
      {{Clause::Dir::kInOut, data.data(), data.size() * sizeof(double)}}, {});
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 0);
  for (const double v : data) ASSERT_DOUBLE_EQ(v, 42.0);
}

TEST_F(OffloadFixture, BuffersFreedAfterRegion) {
  sim::Actor a{"host", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto region = OffloadRegion::attach(bed_.host_provider(), bed_.card_node(),
                                      56);
  ASSERT_TRUE(region);
  const auto used_before = bed_.card().memory().used();
  std::vector<double> data(1'000, 1.0);
  auto result = region->run(
      "offload_scale",
      {{Clause::Dir::kInOut, data.data(), data.size() * sizeof(double)}}, {});
  ASSERT_TRUE(result);
  EXPECT_EQ(bed_.card().memory().used(), used_before)
      << "clause buffers must not leak card memory";
}

TEST_F(OffloadFixture, OversizedClauseFailsCleanly) {
  sim::Actor a{"host", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto region = OffloadRegion::attach(bed_.host_provider(), bed_.card_node(),
                                      56);
  ASSERT_TRUE(region);
  // Larger than the simulated backing: allocation on the card fails and
  // the region reports it without leaking or hanging.
  std::vector<double> token(1);
  Clause huge{Clause::Dir::kIn, token.data(), 8ull << 30};
  auto result = region->run("offload_scale", {huge}, {});
  EXPECT_FALSE(result);
  EXPECT_EQ(result.status(), Status::kNoMemory);
}

}  // namespace
}  // namespace vphi::coi::offload
