// Observability-layer tests: JSON escaping of hostile instrument names, the
// flight recorder's fault dumps, per-VM attribution determinism, and the
// stall watchdog's fire-exactly-once contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"
#include "sim/recorder.hpp"
#include "sim/trace.hpp"
#include "tools/testbed.hpp"

namespace vphi::core {
namespace {

using scif::PortId;
using scif::SCIF_ACCEPT_SYNC;
using scif::SCIF_RECV_BLOCK;
using scif::SCIF_SEND_BLOCK;
using tools::Testbed;
using tools::TestbedConfig;

// ---------------------------------------------------------------------------
// JSON escaping: both emitters (metrics snapshot, trace export) route every
// caller-supplied name through sim::append_json_escaped. A hostile
// instrument name must come out of snapshot_json() escaped, never raw.

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(sim::json_escaped("plain.name"), "plain.name");
  EXPECT_EQ(sim::json_escaped("he\"llo"), "he\\\"llo");
  EXPECT_EQ(sim::json_escaped("back\\slash"), "back\\\\slash");
  EXPECT_EQ(sim::json_escaped("line\nbreak\ttab"), "line\\nbreak\\ttab");
  // Split literal: "\x01b" would otherwise parse as one hex escape (0x1B).
  EXPECT_EQ(sim::json_escaped(std::string("nul\x01") + "byte"),
            "nul\\u0001byte");
}

TEST(JsonEscape, HostileMetricNameSurvivesSnapshot) {
  {
    sim::metrics::Counter evil{"evil\"name\\with\ncontrol",
                               "vm=\"vm\\0\""};
    evil.inc(7);
    const std::string json = sim::metrics::registry().snapshot_json();
    // The escaped spelling must appear...
    EXPECT_NE(json.find("evil\\\"name\\\\with\\ncontrol"), std::string::npos);
    EXPECT_NE(json.find("vm=\\\"vm\\\\0\\\""), std::string::npos);
    // ...and no raw control byte may survive anywhere in the document.
    for (const char c : json) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
  }
  // Drop the retired hostile name so later snapshots in this binary (and
  // the determinism test below) start clean.
  sim::metrics::registry().reset();
}

// ---------------------------------------------------------------------------
// Flight recorder: an injected corrupt-response-status fault must leave a
// dump whose focus span chain walks the faulted request end to end.

TEST(FlightRecorder, InjectedFaultDumpCarriesFocusSpanChain) {
  sim::tracer().set_enabled(true);
  sim::tracer().clear();
  sim::flight_recorder().clear();
  const std::uint64_t dumps_before = sim::flight_recorder().dump_count();

  {
    TestbedConfig cfg;
    cfg.frontend.scheme = WaitScheme::kPolling;
    cfg.frontend.request_timeout_ns = 100'000'000;
    cfg.start_coi_daemon = false;
    Testbed bed{cfg};

    sim::fault_injector().arm_nth(sim::FaultSite::kCorruptResponseStatus, 1);
    auto& guest = bed.vm(0).guest_scif();
    auto epd = guest.open();  // idempotent: the bounded retry heals it
    EXPECT_TRUE(epd);
    if (epd) guest.close(*epd);
    sim::fault_injector().disarm_all();
  }

  EXPECT_GT(sim::flight_recorder().dump_count(), dumps_before);
  const sim::FlightDump dump = sim::flight_recorder().last_dump();
  EXPECT_NE(dump.focus, 0u);
  EXPECT_FALSE(dump.reason.empty());

  // The focus section (printed before the ring window) must carry the
  // request's span chain from guest submit through the backend.
  const auto focus_begin = dump.text.find("--- focus span chain");
  const auto focus_end = dump.text.find("--- recent events");
  ASSERT_NE(focus_begin, std::string::npos) << dump.text;
  ASSERT_NE(focus_end, std::string::npos);
  const std::string chain =
      dump.text.substr(focus_begin, focus_end - focus_begin);
  EXPECT_NE(chain.find("submit"), std::string::npos) << chain;
  EXPECT_NE(chain.find("kick"), std::string::npos) << chain;
  EXPECT_NE(chain.find("backend_pop"), std::string::npos) << chain;
  EXPECT_NE(chain.find("used_publish"), std::string::npos) << chain;

  sim::tracer().set_enabled(false);
  sim::tracer().clear();
}

// ---------------------------------------------------------------------------
// Per-VM attribution determinism: two identical seeded 4-VM runs must
// produce byte-identical per-VM snapshots of the race-free counters. The
// per-VM workloads run sequentially — EVENT_IDX suppression counters
// (kicks/irqs suppressed) depend on cross-thread timing and are excluded.

std::string labeled_snapshot(const char* const* names, std::size_t n) {
  auto& reg = sim::metrics::registry();
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [label, v] : reg.counter_by_label(names[i])) {
      out += names[i];
      out += '{';
      out += label;
      out += "}=";
      out += std::to_string(v);
      out += '\n';
    }
  }
  return out;
}

void run_seeded_vm_workloads(Testbed& bed, std::uint32_t num_vms) {
  constexpr scif::Port kPort = 4'700;
  constexpr std::size_t kBytes = 8 * 1024;
  for (std::uint32_t i = 0; i < num_vms; ++i) {
    const std::uint32_t rounds = 6 + 5 * i;  // per-VM skew, fixed by i
    auto& p = bed.card_provider();
    auto lep = p.open();
    ASSERT_TRUE(lep);
    ASSERT_TRUE(p.bind(*lep, static_cast<scif::Port>(kPort + i)));
    ASSERT_TRUE(sim::ok(p.listen(*lep, 2)));
    auto server = std::async(std::launch::async, [&p, lep = *lep, rounds] {
      sim::Actor a{"sink", sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      auto conn = p.accept(lep, SCIF_ACCEPT_SYNC);
      if (!conn) return;
      std::vector<std::uint8_t> buf(kBytes);
      for (std::uint32_t r = 0; r < rounds; ++r) {
        std::size_t got = 0;
        while (got < kBytes) {
          auto n = p.recv(conn->epd, buf.data(),
                          static_cast<std::uint32_t>(kBytes - got),
                          SCIF_RECV_BLOCK);
          if (!n || *n == 0) return;
          got += *n;
        }
      }
      p.close(conn->epd);
      p.close(lep);
    });

    sim::Actor actor{"cli" + std::to_string(i), sim::Actor::AtNow{}};
    sim::ActorScope scope(actor);
    auto& guest = bed.vm(i).guest_scif();
    auto epd = guest.open();
    ASSERT_TRUE(epd);
    ASSERT_TRUE(sim::ok(guest.connect(
        *epd, PortId{bed.card_node(), static_cast<scif::Port>(kPort + i)})));
    std::vector<std::uint8_t> msg(kBytes, static_cast<std::uint8_t>(i));
    for (std::uint32_t r = 0; r < rounds; ++r) {
      ASSERT_TRUE(guest.send(*epd, msg.data(), msg.size(), SCIF_SEND_BLOCK));
    }
    guest.close(*epd);
    server.wait();
  }
}

TEST(PerVmAttribution, SnapshotsIdenticalAcrossSeededRuns) {
  static const char* const kRaceFree[] = {
      "vphi.fe.requests",        "vphi.fe.bytes_out",
      "vphi.fe.bytes_in",        "vphi.fe.timeouts",
      "vphi.fe.retries",         "vphi.fe.protocol_errors",
      "vphi.be.requests.blocking", "vphi.be.requests.worker",
      "vphi.be.validation_failures", "vphi.watchdog.stalls",
  };
  auto one_run = [] {
    sim::metrics::registry().reset();
    TestbedConfig cfg;
    cfg.num_vms = 4;
    cfg.vm_ram_bytes = 64ull << 20;
    cfg.start_coi_daemon = false;
    Testbed bed{cfg};
    run_seeded_vm_workloads(bed, 4);
    return labeled_snapshot(kRaceFree, std::size(kRaceFree));
  };
  const std::string first = one_run();
  const std::string second = one_run();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("vphi.fe.requests{vm=vm3}"), std::string::npos);
  EXPECT_EQ(first, second);
  sim::metrics::registry().reset();
}

// ---------------------------------------------------------------------------
// Stall watchdog: one stranded request (dropped doorbell) fires the
// watchdog exactly once, with a flight-recorder dump, and the counter does
// not tick again while the same request stays pending or after it heals.

TEST(Watchdog, FiresExactlyOncePerStalledRequest) {
  TestbedConfig cfg;
  cfg.frontend.scheme = WaitScheme::kPolling;
  cfg.frontend.pipeline_window = 4;
  cfg.frontend.request_timeout_ns = 100'000'000;  // 100 ms simulated
  cfg.frontend.watchdog_min_samples = 16;
  cfg.start_coi_daemon = false;
  Testbed bed{cfg};

  constexpr scif::Port kPort = 4'780;
  constexpr std::size_t kBytes = 4 * 1024;
  constexpr std::uint32_t kWarmup = 48;

  auto& p = bed.card_provider();
  auto lep = p.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(p.bind(*lep, kPort));
  ASSERT_TRUE(sim::ok(p.listen(*lep, 2)));
  auto server = std::async(std::launch::async, [&p, lep = *lep] {
    sim::Actor a{"sink", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto conn = p.accept(lep, SCIF_ACCEPT_SYNC);
    if (!conn) return;
    std::vector<std::uint8_t> buf(kBytes);
    for (std::uint32_t r = 0; r < kWarmup; ++r) {
      std::size_t got = 0;
      while (got < kBytes) {
        auto n = p.recv(conn->epd, buf.data(),
                        static_cast<std::uint32_t>(kBytes - got),
                        SCIF_RECV_BLOCK);
        if (!n || *n == 0) return;
        got += *n;
      }
    }
    p.close(conn->epd);
    p.close(lep);
  });

  sim::Actor actor{"cli", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto& guest = bed.vm(0).guest_scif();
  auto epd = guest.open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest.connect(*epd, PortId{bed.card_node(), kPort})));
  std::vector<std::uint8_t> msg(kBytes, 0xA5);
  // Warm-up: enough completed requests for the percentile budget to derive.
  for (std::uint32_t r = 0; r < kWarmup; ++r) {
    ASSERT_TRUE(guest.send(*epd, msg.data(), msg.size(), SCIF_SEND_BLOCK));
  }
  guest.close(*epd);
  server.wait();

  auto& fe = bed.vm(0).frontend();
  const std::uint64_t stalls_before = fe.watchdog_stalls();
  const std::uint64_t dumps_before = sim::flight_recorder().dump_count();

  // Strand exactly one request: the next doorbell is swallowed, the polling
  // wait keeps advancing simulated time, and once the request's age passes
  // the latency-derived budget the watchdog must flag it — once.
  sim::fault_injector().arm_nth(sim::FaultSite::kKickDrop, 1);
  auto epd2 = guest.open();  // idempotent: the bounded retry heals it
  EXPECT_TRUE(epd2);
  sim::fault_injector().disarm_all();

  EXPECT_EQ(fe.watchdog_stalls() - stalls_before, 1u);
  EXPECT_GT(fe.watchdog_budget(), 0);
  if (sim::flight_recorder().enabled()) {
    EXPECT_GT(sim::flight_recorder().dump_count(), dumps_before);
  }

  // Healthy traffic afterwards must not re-fire the watchdog.
  if (epd2) guest.close(*epd2);
  auto epd3 = guest.open();
  if (epd3) guest.close(*epd3);
  EXPECT_EQ(fe.watchdog_stalls() - stalls_before, 1u);
}

}  // namespace
}  // namespace vphi::core
