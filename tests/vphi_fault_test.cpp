// Fault-injection sweep over the vPHI transport.
//
// Every sim::FaultSite is exercised under both waiting schemes (interrupt,
// polling) and both backend execution modes (all-blocking, all-worker). Each
// test asserts three things:
//   1. the injected fault surfaces as the *right* sim::Status (or is healed
//      by the bounded retry of idempotent ops) — never a hang or a crash;
//   2. the fault is observable: injector fire counters plus the transport's
//      own error/timeout/retry/malformed statistics moved;
//   3. the transport heals: ring free descriptors, guest kmalloc accounting
//      and the frontend pending map return to their pre-fault state.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <tuple>

#include "sim/fault.hpp"
#include "tools/testbed.hpp"

namespace vphi::core {
namespace {

using scif::PortId;
using scif::SCIF_ACCEPT_SYNC;
using scif::SCIF_RECV_BLOCK;
using scif::SCIF_SEND_BLOCK;
using sim::FaultSite;
using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

/// (waiting scheme, run every op on a worker thread?, pipeline window)
using FaultParam = std::tuple<WaitScheme, bool, int>;

class FaultSweepTest : public ::testing::TestWithParam<FaultParam> {
 protected:
  void SetUp() override {
    TestbedConfig cfg;
    cfg.frontend.scheme = std::get<0>(GetParam());
    cfg.frontend.request_timeout_ns = 50'000'000;  // 50 ms simulated
    cfg.frontend.max_retries = 2;
    cfg.frontend.lost_request_grace = std::chrono::milliseconds{250};
    // Window > 1 routes the stream/RMA chunk walks through the pipelined
    // submit/wait path; every fault must keep the same surface behavior.
    cfg.frontend.pipeline_window =
        static_cast<std::size_t>(std::get<2>(GetParam()));
    cfg.backend_policy.classify = std::get<1>(GetParam())
                                      ? BackendPolicy::all_worker()
                                      : BackendPolicy::all_blocking();
    cfg.start_coi_daemon = false;
    bed_ = std::make_unique<Testbed>(cfg);
    // Bind a caller actor anchored at the testbed's epoch (after the card's
    // 4 s simulated boot). A caller left at 0 — e.g. this thread's detached
    // fallback on a fresh process — lags the watermark by the whole boot
    // time, and the frontend's watermark-anchored deadline then swallows
    // injected delays smaller than that lag: DelayedKickMissesDeadline
    // failed when run standalone but passed inside the full suite, where
    // earlier tests had warmed the fallback clock up to the watermark.
    actor_.emplace("fault-guest", sim::Actor::AtNow{});
    scope_.emplace(*actor_);
  }

  void TearDown() override {
    sim::fault_injector().disarm_all();
    scope_.reset();
    actor_.reset();
    bed_.reset();
  }

  FrontendDriver& fe() { return bed_->vm(0).frontend(); }
  BackendDevice& be() { return bed_->vm(0).backend(); }
  hv::Vm& vm() { return bed_->vm(0).vm(); }
  GuestScifProvider& guest() { return bed_->vm(0).guest_scif(); }

  std::pair<int, int> guest_pair(scif::Port port) {
    auto lep = bed_->card_provider().open();
    EXPECT_TRUE(lep);
    EXPECT_TRUE(bed_->card_provider().bind(*lep, port));
    EXPECT_TRUE(sim::ok(bed_->card_provider().listen(*lep, 4)));
    auto server = std::async(std::launch::async, [this, lep = *lep] {
      sim::Actor a{"srv", sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      auto acc = bed_->card_provider().accept(lep, SCIF_ACCEPT_SYNC);
      return acc ? acc->epd : -1;
    });
    auto epd = guest().open();
    EXPECT_TRUE(epd);
    EXPECT_TRUE(
        sim::ok(guest().connect(*epd, PortId{bed_->card_node(), port})));
    return {*epd, server.get()};
  }

  struct Snapshot {
    std::uint16_t free_desc = 0;
    std::uint64_t live_allocs = 0;
    std::size_t pending = 0;
  };
  Snapshot snap() {
    return {vm().vq().free_descriptors(), vm().ram().allocation_count(),
            fe().pending_requests()};
  }

  /// The healing invariant: after the fault drains (rescue kicks and zombie
  /// recycling are asynchronous), the ring, the guest allocator and the
  /// pending map are exactly where they were before the faulted request.
  void expect_restored(const Snapshot& before) {
    sim::fault_injector().disarm_all();
    for (int i = 0; i < 2'500; ++i) {
      const Snapshot now = snap();
      if (now.free_desc == before.free_desc &&
          now.live_allocs == before.live_allocs &&
          now.pending == before.pending) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{2});
    }
    const Snapshot after = snap();
    EXPECT_EQ(after.free_desc, before.free_desc);
    EXPECT_EQ(after.live_allocs, before.live_allocs);
    EXPECT_EQ(after.pending, before.pending);
  }

  std::unique_ptr<Testbed> bed_;
  std::optional<sim::Actor> actor_;
  std::optional<sim::ActorScope> scope_;
};

TEST_P(FaultSweepTest, KmallocEnomemSurfacesCleanly) {
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kKmallocNoMem, 1);
  EXPECT_EQ(guest().open().status(), Status::kNoMemory);
  EXPECT_GE(vm().ram().kmalloc_failures(), 1u);
  EXPECT_GE(fe().op_errors(Op::kOpen), 1u);
  EXPECT_EQ(fe().op_retries(Op::kOpen), 0u);  // ENOMEM is not transport loss
  expect_restored(before);
}

TEST_P(FaultSweepTest, DroppedKickTimesOutAndRetriesIdempotent) {
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kKickDrop, 1);
  auto epd = guest().open();
  EXPECT_TRUE(epd);  // the bounded retry heals the lost doorbell
  EXPECT_GE(vm().vq().dropped_kicks(), 1u);
  EXPECT_GE(fe().timeouts(), 1u);
  EXPECT_GE(fe().op_timeouts(Op::kOpen), 1u);
  EXPECT_GE(fe().op_retries(Op::kOpen), 1u);
  expect_restored(before);
}

TEST_P(FaultSweepTest, DroppedKickFailsNonIdempotentWithTimeout) {
  auto epd = guest().open();
  ASSERT_TRUE(epd);
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kKickDrop, 1);
  EXPECT_EQ(guest().close(*epd), Status::kTimedOut);
  EXPECT_GE(fe().op_timeouts(Op::kClose), 1u);
  EXPECT_EQ(fe().op_retries(Op::kClose), 0u);  // close must not be replayed
  expect_restored(before);
}

TEST_P(FaultSweepTest, DelayedKickMissesDeadlineAndRetries) {
  const auto before = snap();
  sim::FaultConfig cfg;
  cfg.nth = 1;
  cfg.max_fires = 1;
  cfg.delay_ns = 250'000'000;  // 5x the request timeout
  sim::fault_injector().arm(FaultSite::kKickDelay, cfg);
  auto epd = guest().open();
  EXPECT_TRUE(epd);
  EXPECT_GE(fe().timeouts(), 1u);
  EXPECT_GE(fe().op_retries(Op::kOpen), 1u);
  expect_restored(before);
}

TEST_P(FaultSweepTest, CorruptRequestRejectedByBackendValidator) {
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kCorruptRequestHeader, 1);
  EXPECT_EQ(guest().open().status(), Status::kInvalidArgument);
  EXPECT_GE(be().validation_failures(), 1u);
  expect_restored(before);
}

TEST_P(FaultSweepTest, CorruptResponseStatusCaughtAndRetried) {
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kCorruptResponseStatus, 1);
  auto epd = guest().open();
  EXPECT_TRUE(epd);
  EXPECT_GE(fe().protocol_errors(), 1u);
  EXPECT_GE(fe().op_retries(Op::kOpen), 1u);
  expect_restored(before);
}

TEST_P(FaultSweepTest, CorruptResponseRetRejectedAtOpLayer) {
  auto [guest_epd, card_epd] = guest_pair(7'000);
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kCorruptResponseRet, 1);
  std::uint8_t buf[32] = {};
  EXPECT_EQ(guest().send(guest_epd, buf, sizeof(buf), SCIF_SEND_BLOCK).status(),
            Status::kIoError);
  expect_restored(before);
  (void)card_epd;
}

TEST_P(FaultSweepTest, ShortUsedWriteCaughtAndRetried) {
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kShortUsedWrite, 1);
  auto ids = guest().get_node_ids();
  EXPECT_TRUE(ids);  // idempotent op healed by retry
  EXPECT_GE(fe().protocol_errors(), 1u);
  EXPECT_GE(fe().op_retries(Op::kGetNodeIds), 1u);
  expect_restored(before);
}

TEST_P(FaultSweepTest, TruncatedChainRejectedAndRetried) {
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kTruncateChain, 1);
  auto epd = guest().open();
  EXPECT_TRUE(epd);
  EXPECT_GE(vm().vq().truncated_chains(), 1u);
  EXPECT_GE(be().malformed_chains(), 1u);
  EXPECT_GE(fe().protocol_errors(), 1u);  // the zero-length used entry
  expect_restored(before);
}

TEST_P(FaultSweepTest, CyclicChainAnsweredWithErrorNotSpun) {
  const auto before = snap();
  sim::fault_injector().arm_nth(FaultSite::kCycleChain, 1);
  // A cyclic chain yields a well-formed error response, not a retry (the
  // response-level kIoError is the backend talking, not transport loss).
  EXPECT_EQ(guest().open().status(), Status::kIoError);
  EXPECT_GE(vm().vq().poisoned_chains(), 1u);
  EXPECT_GE(be().poisoned_chains(), 1u);
  expect_restored(before);
  // The transport must remain fully usable afterwards.
  EXPECT_TRUE(guest().open());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndModes, FaultSweepTest,
    ::testing::Combine(::testing::Values(WaitScheme::kInterrupt,
                                         WaitScheme::kPolling),
                       ::testing::Bool(), ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<FaultParam>& param_info) {
      return std::string(wait_scheme_name(std::get<0>(param_info.param))) +
             (std::get<1>(param_info.param) ? "_worker" : "_blocking") +
             "_w" + std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace vphi::core
