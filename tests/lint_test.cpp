// vphi-lint self-tests: the repo passes every rule, and — the half a
// linter is usually missing — each rule demonstrably FAILS on a synthetic
// violation, so a silently-degraded lint cannot pass ctest.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/vphi_lint.hpp"

namespace vphi::tools::lint {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The real repo root: tests run from build/tests, sources configured in.
#ifndef VPHI_REPO_ROOT
#define VPHI_REPO_ROOT "."
#endif

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(Lint, RepoIsClean) {
  const auto findings = run_all(VPHI_REPO_ROOT);
  for (const auto& f : findings) {
    ADD_FAILURE() << "[" << f.rule << "] " << f.where << ": " << f.message;
  }
}

TEST(Lint, LexStripsCommentsAndExtractsStrings) {
  const LexedFile lexed = lex(
      "int x; // new in a comment\n"
      "/* malloc here */ const char* s = \"vphi.fake.metric\";\n"
      "char c = '\"'; std::string t = \"esc \\\" quote\";\n");
  EXPECT_EQ(lexed.code.find("comment"), std::string::npos);
  EXPECT_EQ(lexed.code.find("malloc"), std::string::npos);
  ASSERT_EQ(lexed.strings.size(), 2u);
  EXPECT_EQ(lexed.strings[0], "vphi.fake.metric");
  EXPECT_EQ(lexed.strings[1], "esc \\\" quote");
  // Line structure is preserved for offset->line mapping.
  EXPECT_EQ(std::count(lexed.code.begin(), lexed.code.end(), '\n'), 3);
}

TEST(Lint, UncataloguedMetricFails) {
  // The acceptance demo: a metric registered in src but absent from the
  // catalogue must produce a metric-catalogue finding.
  Corpus src = {{"src/fake/thing.cpp",
                 "metrics::Counter c{\"vphi.fake.uncatalogued\"};"}};
  const std::string docs = "| `vphi.other.metric` | counter | x | y |\n";
  const auto findings = check_metric_catalogue(src, docs);
  ASSERT_TRUE(has_rule(findings, "metric-catalogue"));
  // Both directions fire: the src name is undocumented AND the catalogued
  // name is unregistered.
  EXPECT_EQ(findings.size(), 2u);
}

TEST(Lint, CataloguedFamilyPrefixMatches) {
  Corpus src = {{"src/fake/thing.cpp",
                 "Counter c{std::string(\"vphi.fake.op.\") + op + "
                 "\".errors\"};"}};
  const std::string docs =
      "| `vphi.fake.op.<op>.errors` | counter | requests | per-op |\n";
  EXPECT_TRUE(check_metric_catalogue(src, docs).empty());
}

TEST(Lint, RealCatalogueRoundTrips) {
  // Run rule 1 against the actual tree + docs, independent of run_all, so
  // a failure pinpoints the catalogue rather than "some rule".
  const std::string root{VPHI_REPO_ROOT};
  const auto findings = check_metric_catalogue(
      Corpus{{"src/all.cpp", ""}}, slurp(root + "/docs/OBSERVABILITY.md"));
  // An empty source corpus must flag every catalogued metric as stale —
  // proving the docs->src direction actually reads the docs.
  EXPECT_FALSE(findings.empty());
}

TEST(Lint, FaultSitesDocumented) {
  EXPECT_TRUE(check_fault_sites(
                  slurp(std::string{VPHI_REPO_ROOT} + "/docs/OBSERVABILITY.md"))
                  .empty());
  // Empty docs: every one of the nine sites is a finding.
  EXPECT_EQ(check_fault_sites("").size(), 9u);
}

TEST(Lint, SpanEventsMatchDesignHopList) {
  EXPECT_TRUE(
      check_span_events(slurp(std::string{VPHI_REPO_ROOT} + "/DESIGN.md"))
          .empty());
  EXPECT_EQ(check_span_events("").size(), 9u);
}

TEST(Lint, RingAllocationFails) {
  Corpus src = {{"src/virtio/ring.cpp",
                 "void f() {\n  auto* p = new Desc[4];\n  (void)p;\n}\n"}};
  const auto findings = check_ring_allocations(src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ring-allocations");
  EXPECT_EQ(findings[0].where, "src/virtio/ring.cpp:2");
  // Commented allocations and other files do not fire.
  EXPECT_TRUE(check_ring_allocations(
                  {{"src/virtio/ring.hpp", "// never calls new\n"},
                   {"src/vphi/backend.cpp", "auto* p = new int;"}})
                  .empty());
}

TEST(Lint, StrayOutputFails) {
  Corpus src = {{"src/scif/endpoint.cpp", "std::cout << \"dbg\";"},
                {"src/hv/vm.cpp", "printf(\"x\\n\");"},
                {"src/tools/vphi_top.cpp", "std::printf(\"ok\\n\");"},
                {"src/sim/recorder.cpp", "fprintf(stderr, \"dump\\n\");"}};
  const auto findings = check_stray_output(src);
  ASSERT_EQ(findings.size(), 2u);  // tools/ and fprintf(stderr) exempt
  EXPECT_EQ(findings[0].rule, "stray-output");
}

}  // namespace
}  // namespace vphi::tools::lint
