// Concurrency, shutdown and robustness tests for the vPHI stack:
// many guest threads on one ring, teardown under load, fixed-offset
// registration through the wire, failure injection (wrong card family,
// exhausted guest RAM), and per-VM isolation of failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "sim/actor.hpp"
#include "sim/rng.hpp"
#include "tools/micnativeloadex.hpp"
#include "tools/testbed.hpp"
#include "workloads/dgemm.hpp"

namespace vphi::core {
namespace {

using scif::PortId;
using scif::SCIF_ACCEPT_SYNC;
using scif::SCIF_PROT_READ;
using scif::SCIF_PROT_WRITE;
using scif::SCIF_RECV_BLOCK;
using scif::SCIF_RMA_SYNC;
using scif::SCIF_SEND_BLOCK;
using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

TEST(VphiStress, ManyGuestThreadsShareOneRing) {
  // With the all-worker backend (so intra-VM requests cannot serialize
  // into a deadlock), several guest threads hammer one VM's ring
  // concurrently; every echo must come back intact to its own thread.
  TestbedConfig config;
  config.backend_policy.classify = BackendPolicy::all_worker();
  Testbed bed{config};

  constexpr int kThreads = 4;
  constexpr int kRoundsPerThread = 25;

  // One card-side echo service per guest thread (fixed 64-byte frames).
  auto& card = bed.card_provider();
  std::vector<std::future<void>> echoes;
  for (int t = 0; t < kThreads; ++t) {
    auto lep = card.open();
    ASSERT_TRUE(lep);
    ASSERT_TRUE(card.bind(*lep, static_cast<scif::Port>(7'000 + t)));
    ASSERT_TRUE(sim::ok(card.listen(*lep, 2)));
    echoes.push_back(std::async(std::launch::async, [&card, lep = *lep] {
      sim::Actor a{"echo", sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      auto acc = card.accept(lep, SCIF_ACCEPT_SYNC);
      if (!acc) return;
      std::uint8_t frame[64];
      while (card.recv(acc->epd, frame, sizeof(frame), SCIF_RECV_BLOCK)) {
        if (!card.send(acc->epd, frame, sizeof(frame), SCIF_SEND_BLOCK)) {
          break;
        }
      }
    }));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> guests;
  for (int t = 0; t < kThreads; ++t) {
    guests.emplace_back([&bed, &failures, t] {
      sim::Actor a{"guest" + std::to_string(t), sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      auto& guest = bed.vm(0).guest_scif();
      auto epd = guest.open();
      if (!epd ||
          !sim::ok(guest.connect(
              *epd, PortId{bed.card_node(),
                           static_cast<scif::Port>(7'000 + t)}))) {
        ++failures;
        return;
      }
      sim::Rng rng{static_cast<std::uint64_t>(t) + 1};
      std::uint8_t out[64], in[64];
      for (int round = 0; round < kRoundsPerThread; ++round) {
        rng.fill(out, sizeof(out));
        if (!guest.send(*epd, out, sizeof(out), SCIF_SEND_BLOCK) ||
            !guest.recv(*epd, in, sizeof(in), SCIF_RECV_BLOCK) ||
            std::memcmp(out, in, sizeof(out)) != 0) {
          ++failures;
          return;
        }
      }
      guest.close(*epd);
    });
  }
  for (auto& g : guests) g.join();
  for (auto& e : echoes) e.get();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(bed.vm(0).backend().requests_handled(),
            static_cast<std::uint64_t>(kThreads * kRoundsPerThread * 2));
}

TEST(VphiStress, VmShutdownUnblocksPendingGuest) {
  // A guest blocked in a ring round trip must come back with kShutDown
  // when the VM is torn down underneath it (not hang).
  auto bed = std::make_unique<Testbed>(TestbedConfig{});
  auto& guest = bed->vm(0).guest_scif();

  // Block a guest thread in recv on a connection nobody will ever feed.
  auto lep = bed->card_provider().open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(bed->card_provider().bind(*lep, 7'100));
  ASSERT_TRUE(sim::ok(bed->card_provider().listen(*lep, 2)));
  auto acceptor = std::async(std::launch::async, [&] {
    sim::Actor a{"acceptor", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    return bed->card_provider().accept(*lep, SCIF_ACCEPT_SYNC).status();
  });
  auto epd = guest.open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest.connect(*epd, PortId{bed->card_node(), 7'100})));
  ASSERT_EQ(acceptor.get(), Status::kOk);

  std::promise<Status> blocked_result;
  std::thread blocked([&] {
    sim::Actor a{"blocked", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    std::uint8_t b;
    blocked_result.set_value(guest.recv(*epd, &b, 1, SCIF_RECV_BLOCK).status());
  });
  // Give the request time to reach the backend, then tear the VM down.
  auto fut = blocked_result.get_future();
  while (bed->vm(0).backend().op_count(Op::kRecv) == 0) {
    std::this_thread::yield();
  }
  bed.reset();  // destroys VMs: ring shutdown + endpoint close
  const auto status = fut.get();
  blocked.join();
  EXPECT_TRUE(status == Status::kShutDown ||
              status == Status::kConnectionReset)
      << "got " << std::string(sim::to_string(status));
}

TEST(VphiStress, FixedOffsetRegistrationThroughTheWire) {
  Testbed bed{TestbedConfig{}};
  auto& card = bed.card_provider();
  auto lep = card.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(card.bind(*lep, 7'200));
  ASSERT_TRUE(sim::ok(card.listen(*lep, 2)));
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"srv", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    return card.accept(*lep, SCIF_ACCEPT_SYNC)->epd;
  });
  sim::Actor a{"guest", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto& guest = bed.vm(0).guest_scif();
  auto epd = guest.open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest.connect(*epd, PortId{bed.card_node(), 7'200})));
  server.get();

  auto buf = bed.vm(0).alloc_user_buffer(8'192);
  ASSERT_TRUE(buf);
  // SCIF_MAP_FIXED must ride the wire intact.
  auto reg = guest.register_mem(*epd, *buf, 8'192, 0x40000,
                                SCIF_PROT_READ | SCIF_PROT_WRITE,
                                scif::SCIF_MAP_FIXED);
  ASSERT_TRUE(reg);
  EXPECT_EQ(*reg, 0x40000);
  // Overlapping fixed registration rejected end to end.
  auto clash = guest.register_mem(*epd, *buf, 8'192, 0x40000,
                                  SCIF_PROT_READ, scif::SCIF_MAP_FIXED);
  EXPECT_EQ(clash.status(), Status::kAlreadyExists);
  EXPECT_EQ(guest.unregister_mem(*epd, 0x40000, 8'192), Status::kOk);
}

TEST(VphiStress, GuestRamExhaustionSurfacesAsNoMemory) {
  // A VM with tiny RAM cannot stage a large bounce buffer: the frontend's
  // kmalloc fails and the caller sees kNoMemory (not a crash, not a hang).
  TestbedConfig config;
  config.vm_ram_bytes = 8ull << 20;
  Testbed bed{config};
  auto& card = bed.card_provider();
  auto lep = card.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(card.bind(*lep, 7'300));
  ASSERT_TRUE(sim::ok(card.listen(*lep, 2)));
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"srv", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    return card.accept(*lep, SCIF_ACCEPT_SYNC).status();
  });
  sim::Actor a{"guest", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto& guest = bed.vm(0).guest_scif();
  auto epd = guest.open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest.connect(*epd, PortId{bed.card_node(), 7'300})));
  ASSERT_EQ(server.get(), Status::kOk);

  // 4 MiB payload needs a 4 MiB bounce, but most of the 8 MiB RAM is gone
  // (ring buffers, the payload staging copy itself, allocator rounding).
  std::vector<std::uint8_t> huge(4ull << 20);
  auto buf = bed.vm(0).alloc_user_buffer(6ull << 20);  // eat the RAM
  ASSERT_TRUE(buf);
  auto sent = guest.send(*epd, huge.data(), huge.size(), SCIF_SEND_BLOCK);
  EXPECT_EQ(sent.status(), Status::kNoMemory);
}

TEST(VphiStress, LoadexRejectsWrongFamilyCard) {
  // micnativeloadex checks the sysfs family string; a non-KNC part (or a
  // card whose state is not "online") must be refused before any SCIF
  // traffic happens.
  Testbed bed{TestbedConfig{}};
  workloads::register_dgemm_kernel();
  bed.card().sysfs().set("family", "Knights Landing");
  sim::Actor a{"host", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  tools::MicNativeLoadEx loadex{bed.host_provider()};
  const auto image = workloads::make_dgemm_image(bed.model());
  EXPECT_EQ(loadex.run(image, {}).status(), Status::kNoDevice);

  bed.card().sysfs().set("family", "Knights Corner");
  bed.card().sysfs().set("state", "resetting");
  EXPECT_EQ(loadex.run(image, {}).status(), Status::kNoDevice);
}

TEST(VphiStress, FailureInOneVmDoesNotAffectAnother) {
  TestbedConfig config;
  config.num_vms = 2;
  Testbed bed{config};
  // VM0 misbehaves: connects to a dead port (refused).
  {
    sim::Actor a{"vm0", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto& g0 = bed.vm(0).guest_scif();
    auto e0 = g0.open();
    ASSERT_TRUE(e0);
    EXPECT_EQ(g0.connect(*e0, PortId{bed.card_node(), 31'999}),
              Status::kConnectionRefused);
  }
  // VM1 proceeds normally.
  auto lep = bed.card_provider().open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(bed.card_provider().bind(*lep, 7'400));
  ASSERT_TRUE(sim::ok(bed.card_provider().listen(*lep, 2)));
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"srv", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = bed.card_provider().accept(*lep, SCIF_ACCEPT_SYNC);
    ASSERT_TRUE(acc);
    std::uint8_t b;
    EXPECT_TRUE(bed.card_provider().recv(acc->epd, &b, 1, SCIF_RECV_BLOCK));
  });
  sim::Actor a{"vm1", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto& g1 = bed.vm(1).guest_scif();
  auto e1 = g1.open();
  ASSERT_TRUE(e1);
  ASSERT_TRUE(sim::ok(g1.connect(*e1, PortId{bed.card_node(), 7'400})));
  std::uint8_t b = 1;
  EXPECT_TRUE(g1.send(*e1, &b, 1, SCIF_SEND_BLOCK));
  server.get();
}

}  // namespace
}  // namespace vphi::core
