// Tests for the emulated network over SCIF (mic0) and the ssh-style
// native-mode path of Sec. IV-A — including the comparison against
// micnativeloadex the paper implies when it rejects the ssh option.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "net/micshell.hpp"
#include "net/veth.hpp"
#include "sim/actor.hpp"
#include "sim/rng.hpp"
#include "tools/micnativeloadex.hpp"
#include "tools/testbed.hpp"
#include "workloads/dgemm.hpp"

namespace vphi::net {
namespace {

using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

class NetFixture : public ::testing::Test {
 protected:
  NetFixture() : bed_(TestbedConfig{}) {
    workloads::register_dgemm_kernel();
    daemon_ = std::make_unique<MicShellDaemon>(bed_.fabric(), bed_.card(),
                                               bed_.card_node());
    EXPECT_EQ(daemon_->start(), Status::kOk);
  }

  Testbed bed_;
  std::unique_ptr<MicShellDaemon> daemon_;
};

TEST_F(NetFixture, DatagramsSegmentAndReassemble) {
  // Raw veth pair over a dedicated SCIF connection.
  auto lep = bed_.card_provider().open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(bed_.card_provider().bind(*lep, 8'000));
  ASSERT_TRUE(sim::ok(bed_.card_provider().listen(*lep, 1)));
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"card-net", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = bed_.card_provider().accept(*lep, scif::SCIF_ACCEPT_SYNC);
    ASSERT_TRUE(acc);
    VirtualEthernet veth{bed_.card_provider(), acc->epd};
    auto datagram = veth.recv_datagram();
    ASSERT_TRUE(datagram);
    // Echo it back.
    ASSERT_EQ(veth.send_datagram(datagram->data(), datagram->size()),
              Status::kOk);
    EXPECT_GT(veth.frames_received(), 1u) << "larger than one MTU";
  });

  sim::Actor a{"host-net", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto epd = bed_.host_provider().open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(bed_.host_provider().connect(
      *epd, scif::PortId{bed_.card_node(), 8'000})));
  VirtualEthernet veth{bed_.host_provider(), *epd};

  std::vector<std::uint8_t> payload(kMtu * 3 + 123);
  sim::Rng rng{11};
  rng.fill(payload.data(), payload.size());
  ASSERT_EQ(veth.send_datagram(payload.data(), payload.size()), Status::kOk);
  auto echoed = veth.recv_datagram();
  ASSERT_TRUE(echoed);
  EXPECT_EQ(*echoed, payload);
  EXPECT_EQ(veth.frames_sent(), 4u);
  server.get();
}

TEST_F(NetFixture, ShellInfoAndUnknownCommand) {
  sim::Actor a{"user", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto shell = ShellClient::connect(bed_.host_provider(), bed_.card_node());
  ASSERT_TRUE(shell);
  auto result = shell->exec("missing.bin", "noop", 1, {});
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 127) << "binary was never pushed";
  EXPECT_NE(result->output.find("No such file"), std::string::npos);
}

TEST_F(NetFixture, PushThenExecRunsKernel) {
  sim::Actor a{"user", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto shell = ShellClient::connect(bed_.host_provider(), bed_.card_node());
  ASSERT_TRUE(shell);
  ASSERT_EQ(shell->push_file("dgemm.mic", 2ull << 20), Status::kOk);
  EXPECT_EQ(daemon_->stored_bytes(), 2ull << 20);
  auto result = shell->exec("dgemm.mic", workloads::kDgemmKernelName, 56,
                            {"128"});
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 0);
  EXPECT_NE(result->output.find("PASSED"), std::string::npos);
}

TEST_F(NetFixture, SshPathWorksFromInsideTheVm) {
  // The emulated network rides SCIF, so it crosses vPHI like everything
  // else — a guest can "ssh" to the card without any host bridge, though
  // the paper rejects this usage model for clouds on isolation grounds.
  sim::Actor a{"guest-user", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto shell =
      ShellClient::connect(bed_.vm(0).guest_scif(), bed_.card_node());
  ASSERT_TRUE(shell);
  ASSERT_EQ(shell->push_file("tool.bin", 1 << 20), Status::kOk);
  auto result = shell->exec("tool.bin", "noop", 1, {});
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 0);
  EXPECT_EQ(result->output, "ok");
}

TEST_F(NetFixture, SshNativeModeSlowerThanLoadex) {
  // Sec. IV-A's two native-mode options, measured head to head on the same
  // workload: (a) scp the binary + ssh-exec; (b) micnativeloadex. The
  // framed + encrypted network path must lose to the DMA streaming path
  // for the bulk transfer.
  constexpr std::uint64_t kBinaryBytes = 48ull << 20;
  constexpr std::size_t kN = 2'048;

  // (a) ssh/scp.
  sim::Nanos ssh_total;
  {
    sim::Actor a{"ssh-user", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto shell = ShellClient::connect(bed_.host_provider(), bed_.card_node());
    ASSERT_TRUE(shell);
    const sim::Nanos before = a.now();
    ASSERT_EQ(shell->push_file("bench.mic", kBinaryBytes), Status::kOk);
    auto result = shell->exec("bench.mic", workloads::kDgemmKernelName, 112,
                              {std::to_string(kN)});
    ASSERT_TRUE(result);
    ASSERT_EQ(result->exit_code, 0);
    ssh_total = a.now() - before;
  }

  // (b) micnativeloadex with an equal-size image.
  sim::Nanos loadex_total;
  {
    sim::Actor a{"loadex-user", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    coi::BinaryImage image;
    image.name = "bench.mic";
    image.bytes = kBinaryBytes;
    image.entry_kernel = workloads::kDgemmKernelName;
    tools::MicNativeLoadEx loadex{bed_.host_provider()};
    tools::LoadexOptions options;
    options.threads = 112;
    options.args = {std::to_string(kN)};
    auto r = loadex.run(image, options);
    ASSERT_TRUE(r);
    ASSERT_EQ(r->exit_code, 0);
    loadex_total = r->total_ns;
  }

  EXPECT_GT(ssh_total, loadex_total)
      << "per-frame + crypto costs must lose to SCIF DMA streaming";
}

TEST_F(NetFixture, DaemonCountsSessions) {
  sim::Actor a{"user", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  {
    auto s1 = ShellClient::connect(bed_.host_provider(), bed_.card_node());
    ASSERT_TRUE(s1);
    auto s2 = ShellClient::connect(bed_.host_provider(), bed_.card_node());
    ASSERT_TRUE(s2);
  }
  // connect() returns at the SCIF rendezvous; the daemon's accept loop
  // counts the session on its own thread, so give it time to be scheduled.
  for (int i = 0; i < 2'000 && daemon_->sessions() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  }
  EXPECT_EQ(daemon_->sessions(), 2u);
}

}  // namespace
}  // namespace vphi::net
