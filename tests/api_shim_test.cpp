// Coverage for the remaining C-style libscif shim entry points (host side)
// and the small sim utilities (logging, channel introspection).
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "mic/card.hpp"
#include "scif/api.hpp"
#include "scif/fabric.hpp"
#include "scif/host_provider.hpp"
#include "sim/channel.hpp"
#include "sim/log.hpp"
#include "tools/testbed.hpp"

namespace vphi::scif::api {
namespace {

using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

class ApiShimFixture : public ::testing::Test {
 protected:
  ApiShimFixture() : bed_(TestbedConfig{}) {}

  /// Host client connected to a card window server (window at offset 0).
  int connected_client(scif::Port port, std::size_t window_bytes) {
    auto& card = bed_.card_provider();
    auto lep = card.open();
    EXPECT_TRUE(lep);
    EXPECT_TRUE(card.bind(*lep, port));
    EXPECT_TRUE(sim::ok(card.listen(*lep, 2)));
    server_ = std::async(std::launch::async, [this, lep = *lep,
                                              window_bytes] {
      sim::Actor a{"srv", sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      auto& card_p = bed_.card_provider();
      auto acc = card_p.accept(lep, SCIF_ACCEPT_SYNC);
      ASSERT_TRUE(acc);
      auto dev = bed_.card().memory().allocate(window_bytes);
      ASSERT_TRUE(dev);
      ASSERT_TRUE(card_p.register_mem(
          acc->epd, bed_.card().memory().at(*dev), window_bytes, 0,
          SCIF_PROT_READ | SCIF_PROT_WRITE, SCIF_MAP_FIXED));
      std::uint8_t ready = 1;
      ASSERT_TRUE(card_p.send(acc->epd, &ready, 1, SCIF_SEND_BLOCK));
      std::uint8_t bye;
      card_p.recv(acc->epd, &bye, 1, SCIF_RECV_BLOCK);
    });
    const auto epd = scif_open();
    EXPECT_GE(epd, 0);
    const PortId dst{bed_.card_node(), port};
    EXPECT_EQ(scif_connect(epd, &dst), 0);
    std::uint8_t ready = 0;
    EXPECT_EQ(scif_recv(epd, &ready, 1, SCIF_RECV_BLOCK), 1);
    return epd;
  }

  void finish(int epd) {
    std::uint8_t bye = 0;
    scif_send(epd, &bye, 1, SCIF_SEND_BLOCK);
    server_.get();
    EXPECT_EQ(scif_close(epd), 0);
  }

  Testbed bed_;
  std::future<void> server_;
};

TEST_F(ApiShimFixture, RegisterRmaFenceUnregisterViaShim) {
  sim::Actor a{"app", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  ProcessContext ctx(bed_.host_provider());
  const int epd = connected_client(8'500, 1 << 20);

  std::vector<std::byte> local(1 << 20);
  const long off = scif_register(epd, local.data(), local.size(), 0,
                                 SCIF_PROT_READ | SCIF_PROT_WRITE, 0);
  ASSERT_GE(off, 0);

  EXPECT_EQ(scif_readfrom(epd, off, 65'536, 0, 0), 0);
  EXPECT_EQ(scif_writeto(epd, off, 65'536, 65'536, 0), 0);
  int mark = -1;
  ASSERT_EQ(scif_fence_mark(epd, SCIF_FENCE_INIT_SELF, &mark), 0);
  ASSERT_EQ(scif_fence_wait(epd, mark), 0);
  EXPECT_EQ(scif_fence_signal(epd, off, 0xAA, 0, 0xBB,
                              SCIF_SIGNAL_LOCAL | SCIF_SIGNAL_REMOTE),
            0);
  std::uint64_t lval = 0;
  std::memcpy(&lval, local.data(), sizeof(lval));
  EXPECT_EQ(lval, 0xAAu);

  EXPECT_EQ(scif_vwriteto(epd, local.data(), 4'096, 8'192, SCIF_RMA_SYNC), 0);
  EXPECT_EQ(scif_vreadfrom(epd, local.data(), 4'096, 8'192, SCIF_RMA_SYNC), 0);

  EXPECT_EQ(scif_unregister(epd, off, local.size()), 0);
  EXPECT_EQ(scif_readfrom(epd, off, 1, 0, 0), -1);
  EXPECT_EQ(scif_last_error(), Status::kNoSuchEntry);
  finish(epd);
}

TEST_F(ApiShimFixture, PollAndListenViaShim) {
  sim::Actor a{"app", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  ProcessContext ctx(bed_.host_provider());

  const int listener = scif_open();
  ASSERT_GE(listener, 0);
  ASSERT_GE(scif_bind(listener, 8'600), 0);
  ASSERT_EQ(scif_listen(listener, 4), 0);

  PollEpd p{listener, SCIF_POLLIN, 0};
  EXPECT_EQ(scif_poll(&p, 1, 0), 0) << "no pending connects yet";

  // A card-side connector makes the listener readable; then accept works.
  auto connector = std::async(std::launch::async, [&] {
    sim::Actor ca{"connector", sim::Actor::AtNow{}};
    sim::ActorScope cscope(ca);
    auto& card = bed_.card_provider();
    auto epd = card.open();
    ASSERT_TRUE(epd);
    ASSERT_TRUE(sim::ok(card.connect(*epd, PortId{kHostNode, 8'600})));
  });
  EXPECT_EQ(scif_poll(&p, 1, -1), 1);
  EXPECT_TRUE(p.revents & SCIF_POLLIN);
  PortId peer;
  int accepted = -1;
  EXPECT_EQ(scif_accept(listener, &peer, &accepted, SCIF_ACCEPT_SYNC), 0);
  EXPECT_EQ(peer.node, bed_.card_node());
  connector.get();
  EXPECT_EQ(scif_close(accepted), 0);
  EXPECT_EQ(scif_close(listener), 0);
}

TEST_F(ApiShimFixture, ShimArgumentValidation) {
  sim::Actor a{"app", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  ProcessContext ctx(bed_.host_provider());
  const int epd = scif_open();
  ASSERT_GE(epd, 0);
  EXPECT_EQ(scif_connect(epd, nullptr), -1);
  EXPECT_EQ(scif_last_error(), Status::kBadAddress);
  EXPECT_EQ(scif_accept(epd, nullptr, nullptr, 0), -1);
  EXPECT_EQ(scif_fence_mark(epd, 0, nullptr), -1);
  Mapping out;
  EXPECT_EQ(scif_mmap(epd, 0, 4'096, SCIF_PROT_READ, nullptr), -1);
  EXPECT_EQ(scif_mmap(epd, 0, 4'096, SCIF_PROT_READ, &out), -1)
      << "not connected";
  EXPECT_EQ(scif_munmap(nullptr), -1);
  EXPECT_EQ(scif_close(epd), 0);
}

}  // namespace
}  // namespace vphi::scif::api

namespace vphi::sim {
namespace {

TEST(Log, LevelsFilterAndEmit) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  VPHI_LOG(kDebug, "test") << "visible " << 42;
  VPHI_LOG(kTrace, "test") << "filtered out";
  log_line(LogLevel::kError, "test", "direct call");
  set_log_level(prior);
}

TEST(Channel, SizeTracksContents) {
  Channel<int> ch;
  EXPECT_EQ(ch.size(), 0u);
  ch.push(1, 0);
  ch.push(2, 0);
  EXPECT_EQ(ch.size(), 2u);
  ch.try_pop();
  EXPECT_EQ(ch.size(), 1u);
  EXPECT_FALSE(ch.closed());
  ch.close();
  EXPECT_TRUE(ch.closed());
}

}  // namespace
}  // namespace vphi::sim
