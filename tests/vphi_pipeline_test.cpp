// Pipelined multi-chunk transfer tests: ordering, short-completion
// truncation and fault healing when several chunks of one logical transfer
// are in flight on the ring at once (FrontendConfig::pipeline_window > 1).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "tools/testbed.hpp"

namespace vphi::core {
namespace {

using scif::PortId;
using scif::SCIF_ACCEPT_SYNC;
using scif::SCIF_RECV_BLOCK;
using scif::SCIF_SEND_BLOCK;
using sim::FaultSite;
using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

class PipelineTest : public ::testing::Test {
 protected:
  // 8 KiB bounce buffers make even modest transfers span many chunks, so
  // the window (4) genuinely overlaps requests on the ring. All-worker
  // backend: same-endpoint chunks run through the per-endpoint FIFO, which
  // is exactly the ordering property under test.
  static constexpr std::size_t kChunk = 8 * 1024;
  static constexpr std::size_t kWindow = 4;

  void SetUp() override {
    TestbedConfig cfg;
    cfg.frontend.scheme = WaitScheme::kInterrupt;
    cfg.frontend.max_payload = kChunk;
    cfg.frontend.pipeline_window = kWindow;
    cfg.frontend.request_timeout_ns = 50'000'000;  // 50 ms simulated
    cfg.frontend.max_retries = 2;
    cfg.frontend.lost_request_grace = std::chrono::milliseconds{250};
    cfg.backend_policy.classify = BackendPolicy::all_worker();
    cfg.start_coi_daemon = false;
    bed_ = std::make_unique<Testbed>(cfg);
  }

  void TearDown() override {
    sim::fault_injector().disarm_all();
    bed_.reset();
  }

  FrontendDriver& fe() { return bed_->vm(0).frontend(); }
  hv::Vm& vm() { return bed_->vm(0).vm(); }
  GuestScifProvider& guest() { return bed_->vm(0).guest_scif(); }

  struct Snapshot {
    std::uint16_t free_desc = 0;
    std::uint64_t live_allocs = 0;
    std::size_t pending = 0;
  };
  Snapshot snap() {
    return {vm().vq().free_descriptors(), vm().ram().allocation_count(),
            fe().pending_requests()};
  }

  /// Same healing invariant as the fault sweep: zombie recycling and rescue
  /// kicks are asynchronous, so poll until the ring, the guest allocator
  /// and the pending map return to their pre-fault state.
  void expect_restored(const Snapshot& before) {
    sim::fault_injector().disarm_all();
    for (int i = 0; i < 2'500; ++i) {
      const Snapshot now = snap();
      if (now.free_desc == before.free_desc &&
          now.live_allocs == before.live_allocs &&
          now.pending == before.pending) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{2});
    }
    const Snapshot after = snap();
    EXPECT_EQ(after.free_desc, before.free_desc);
    EXPECT_EQ(after.live_allocs, before.live_allocs);
    EXPECT_EQ(after.pending, before.pending);
  }

  std::unique_ptr<Testbed> bed_;
};

TEST_F(PipelineTest, StreamOrderingPreservedAcrossWindow) {
  // A 128 KiB send is 16 chunks, up to 4 in flight; the worker backend's
  // per-endpoint queue must deliver them in submission order or the echoed
  // bytes come back permuted.
  constexpr std::size_t kTotal = 128 * 1024;
  constexpr scif::Port kPort = 7'600;

  auto& card = bed_->card_provider();
  auto lep = card.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(card.bind(*lep, kPort));
  ASSERT_TRUE(sim::ok(card.listen(*lep, 2)));
  auto echo = std::async(std::launch::async, [&card, lep = *lep] {
    sim::Actor a{"echo", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = card.accept(lep, SCIF_ACCEPT_SYNC);
    if (!acc) return;
    std::vector<std::uint8_t> buf(kTotal);
    std::size_t got = 0;
    while (got < kTotal) {
      auto r = card.recv(acc->epd, buf.data() + got, kTotal - got,
                         SCIF_RECV_BLOCK);
      if (!r || *r == 0) return;
      got += *r;
    }
    card.send(acc->epd, buf.data(), kTotal, SCIF_SEND_BLOCK);
    card.close(acc->epd);
  });

  sim::Actor a{"guest", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto epd = guest().open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest().connect(*epd, PortId{bed_->card_node(), kPort})));

  std::vector<std::uint8_t> out(kTotal), in(kTotal, 0);
  sim::Rng rng{42};
  rng.fill(out.data(), out.size());

  auto sent = guest().send(*epd, out.data(), kTotal, SCIF_SEND_BLOCK);
  ASSERT_TRUE(sent);
  EXPECT_EQ(*sent, kTotal);

  std::size_t got = 0;
  while (got < kTotal) {
    auto r = guest().recv(*epd, in.data() + got, kTotal - got,
                          SCIF_RECV_BLOCK);
    ASSERT_TRUE(r);
    ASSERT_GT(*r, 0u);
    got += *r;
  }
  EXPECT_EQ(std::memcmp(out.data(), in.data(), kTotal), 0)
      << "pipelined chunks were reordered on the wire";
  guest().close(*epd);
  echo.get();
  // Both directions really chunked: >= 32 transfer requests crossed the
  // ring for this endpoint.
  EXPECT_GE(fe().requests(), 2 * kTotal / kChunk);
}

TEST_F(PipelineTest, ShortRecvMidWindowTruncatesToCompletedPrefix) {
  // The peer sends 20 KiB (2.5 chunks) and closes. The pipelined recv walk
  // has up to 4 chunks posted; chunk 3 legitimately completes short and
  // chunk 4 hits the closed stream. recv must return exactly the in-order
  // completed prefix — 20 KiB — and the stragglers' results must be
  // discarded without leaking state.
  constexpr std::size_t kWire = 20 * 1024;
  constexpr std::size_t kAsk = 64 * 1024;
  constexpr scif::Port kPort = 7'610;

  auto& card = bed_->card_provider();
  auto lep = card.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(card.bind(*lep, kPort));
  ASSERT_TRUE(sim::ok(card.listen(*lep, 2)));
  auto server = std::async(std::launch::async, [&card, lep = *lep] {
    sim::Actor a{"srv", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = card.accept(lep, SCIF_ACCEPT_SYNC);
    if (!acc) return;
    std::vector<std::uint8_t> buf(kWire, 0x7A);
    card.send(acc->epd, buf.data(), buf.size(), SCIF_SEND_BLOCK);
    card.close(acc->epd);
  });

  sim::Actor a{"guest", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto epd = guest().open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest().connect(*epd, PortId{bed_->card_node(), kPort})));
  server.get();

  const auto before_pending = fe().pending_requests();
  std::vector<std::uint8_t> in(kAsk, 0);
  auto got = guest().recv(*epd, in.data(), kAsk, SCIF_RECV_BLOCK);
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, kWire);
  for (std::size_t i = 0; i < kWire; ++i) {
    ASSERT_EQ(in[i], 0x7A) << "short prefix corrupted at byte " << i;
  }
  for (std::size_t i = kWire; i < kAsk; ++i) {
    ASSERT_EQ(in[i], 0) << "bytes past the completed prefix were written";
  }
  EXPECT_EQ(fe().pending_requests(), before_pending)
      << "straggler chunks were not drained";
  guest().close(*epd);
}

TEST_F(PipelineTest, DroppedKickOnFirstChunkHealsWindow) {
  // The burst's first chunk carries the only doorbell (chunks 2..4 are
  // published while it is pending, so EVENT_IDX suppresses theirs). Drop
  // it: the device never wakes, the whole window strands, and the first
  // wait()'s deadline rescue re-rings. The transfer reports the timeout
  // and every descriptor, bounce buffer and pending entry comes back.
  constexpr std::size_t kTotal = 32 * 1024;  // 4 chunks == one full window
  constexpr scif::Port kPort = 7'620;

  auto& card = bed_->card_provider();
  auto lep = card.open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(card.bind(*lep, kPort));
  ASSERT_TRUE(sim::ok(card.listen(*lep, 2)));
  std::atomic<bool> stop{false};
  auto sink = std::async(std::launch::async, [&card, &stop, lep = *lep] {
    sim::Actor a{"sink", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = card.accept(lep, SCIF_ACCEPT_SYNC);
    if (!acc) return;
    std::vector<std::uint8_t> buf(kTotal);
    while (!stop.load()) {
      auto r = card.recv(acc->epd, buf.data(), buf.size(), SCIF_RECV_BLOCK);
      if (!r || *r == 0) break;
    }
    card.close(acc->epd);
  });

  sim::Actor a{"guest", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto epd = guest().open();
  ASSERT_TRUE(epd);
  ASSERT_TRUE(sim::ok(guest().connect(*epd, PortId{bed_->card_node(), kPort})));

  const auto before = snap();
  const auto kicks_suppressed_before = vm().vq().suppressed_kicks();
  sim::fault_injector().arm_nth(FaultSite::kKickDrop, 1);

  std::vector<std::uint8_t> out(kTotal, 0x5B);
  auto sent = guest().send(*epd, out.data(), kTotal, SCIF_SEND_BLOCK);
  // The first chunk never completed, so no prefix exists: the transfer
  // surfaces the transport timeout itself (send is not retried — it is not
  // idempotent).
  EXPECT_EQ(sent.status(), Status::kTimedOut);
  EXPECT_GE(vm().vq().dropped_kicks(), 1u);
  EXPECT_GE(fe().timeouts(), 1u);
  EXPECT_GE(fe().op_timeouts(Op::kSend), 1u);
  // Deterministic suppression: while the (dropped) doorbell was pending the
  // device was asleep, so the sibling chunks' kicks were all elided.
  EXPECT_GE(vm().vq().suppressed_kicks() - kicks_suppressed_before, 2u);

  expect_restored(before);

  // The transport heals: the same endpoint moves data again afterwards.
  auto again = guest().send(*epd, out.data(), kChunk, SCIF_SEND_BLOCK);
  ASSERT_TRUE(again);
  EXPECT_EQ(*again, kChunk);
  stop.store(true);
  guest().close(*epd);
  sink.get();
}

}  // namespace
}  // namespace vphi::core
