// Unit tests for the hypervisor substrate: guest memory / kmalloc limits,
// the frontend wait queue (the paper's waiting scheme), vma table, KVM MMU
// two-level mapping, QEMU event loop, and the Vm container.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hv/event_loop.hpp"
#include "hv/guest_kernel.hpp"
#include "hv/guest_mem.hpp"
#include "hv/kvm_mmu.hpp"
#include "hv/vm.hpp"
#include "sim/cost_model.hpp"

namespace vphi::hv {
namespace {

using sim::CostModel;
using sim::Nanos;
using sim::Status;

TEST(GuestPhysMem, TranslateBounds) {
  GuestPhysMem ram{1 << 20};
  EXPECT_NE(ram.translate(0, 1), nullptr);
  EXPECT_NE(ram.translate((1 << 20) - 1, 1), nullptr);
  EXPECT_EQ(ram.translate(1 << 20, 1), nullptr);
  EXPECT_EQ(ram.translate((1 << 20) - 1, 2), nullptr);
}

TEST(GuestPhysMem, GpaOfInvertsTranslate) {
  GuestPhysMem ram{1 << 20};
  void* p = ram.translate(12'288, 16);
  ASSERT_NE(p, nullptr);
  auto gpa = ram.gpa_of(p);
  ASSERT_TRUE(gpa);
  EXPECT_EQ(*gpa, 12'288u);
  int stack_var;
  EXPECT_EQ(ram.gpa_of(&stack_var).status(), Status::kBadAddress);
}

TEST(GuestPhysMem, KmallocEnforcesLinuxCap) {
  GuestPhysMem ram{16ull << 20};
  EXPECT_TRUE(ram.kmalloc(kKmallocMaxSize));
  // One byte over KMALLOC_MAX_SIZE must fail — this is the limit that
  // forces the vPHI frontend to chunk large transfers.
  EXPECT_EQ(ram.kmalloc(kKmallocMaxSize + 1).status(), Status::kNoMemory);
  EXPECT_EQ(ram.kmalloc(0).status(), Status::kInvalidArgument);
}

TEST(GuestPhysMem, KmallocKfreeRecycles) {
  GuestPhysMem ram{8ull << 20};
  std::vector<std::uint64_t> blocks;
  for (int i = 0; i < 2; ++i) {
    auto b = ram.kmalloc(kKmallocMaxSize);
    ASSERT_TRUE(b);
    blocks.push_back(*b);
  }
  EXPECT_EQ(ram.kmalloc(4'096).status(), Status::kNoMemory) << "RAM exhausted";
  for (auto b : blocks) EXPECT_EQ(ram.kfree(b), Status::kOk);
  EXPECT_EQ(ram.allocated_bytes(), 0u);
  EXPECT_TRUE(ram.kmalloc(kKmallocMaxSize)) << "coalesced after free";
  EXPECT_EQ(ram.kfree(123), Status::kInvalidArgument);
}

// --- WaitQueue: the paper's waiting scheme ------------------------------------

TEST(WaitQueue, SingleWaiterPaysWakeupScheme) {
  const auto& m = CostModel::paper();
  WaitQueue wq{m};
  sim::Actor waiter{"w"};
  const auto ticket = wq.prepare();
  std::thread isr([&] { wq.complete(ticket, 100'000); });
  ASSERT_EQ(wq.wait(ticket, waiter), Status::kOk);
  isr.join();
  // resume = irq_ts + ISR entry + wakeup scheme (no extra sleepers).
  EXPECT_EQ(waiter.now(),
            100'000 + m.guest_irq_handler_ns + m.guest_wakeup_scheme_ns);
}

TEST(WaitQueue, CompletionBeforeWaitIsNotLost) {
  WaitQueue wq{CostModel::paper()};
  sim::Actor waiter{"w"};
  const auto ticket = wq.prepare();
  wq.complete(ticket, 5'000);  // ISR fires before the waiter sleeps
  EXPECT_EQ(wq.wait(ticket, waiter), Status::kOk);
  EXPECT_GE(waiter.now(), 5'000u);
}

TEST(WaitQueue, WakeAllTaxesConcurrentSleepers) {
  // With N sleepers, every interrupt wakes all of them; each waiter's
  // latency grows with the number of co-sleepers (spurious wakeups) —
  // the contention behaviour the paper's breakdown explains.
  const auto& m = CostModel::paper();
  WaitQueue wq{m};
  constexpr int kWaiters = 4;
  std::vector<std::uint64_t> tickets(kWaiters);
  for (auto& t : tickets) t = wq.prepare();

  std::vector<std::thread> waiters;
  std::vector<Nanos> resumes(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      sim::Actor a{"w" + std::to_string(i)};
      ASSERT_EQ(wq.wait(tickets[static_cast<std::size_t>(i)], a), Status::kOk);
      resumes[static_cast<std::size_t>(i)] = a.now();
    });
  }
  // Wait until every waiter is genuinely blocked, then complete one at a
  // time so the wake-all churn is observable deterministically.
  while (wq.blocked_waiters() != kWaiters) std::this_thread::yield();
  for (int i = 0; i < kWaiters; ++i) {
    wq.complete(tickets[static_cast<std::size_t>(i)], 1'000);
    while (wq.sleepers() > static_cast<std::size_t>(kWaiters - 1 - i)) {
      std::this_thread::yield();
    }
  }
  for (auto& w : waiters) w.join();
  EXPECT_GT(wq.spurious_wakeups(), 0u)
      << "later completions spuriously woke earlier sleepers";
  // Everyone pays at least the base scheme; co-sleepers pay more.
  Nanos base = 1'000 + m.guest_irq_handler_ns + m.guest_wakeup_scheme_ns;
  int taxed = 0;
  for (auto r : resumes) {
    EXPECT_GE(r, base);
    if (r > base) ++taxed;
  }
  EXPECT_GT(taxed, 0) << "at least one waiter saw wake-all churn";
}

TEST(WaitQueue, ShutdownReleasesWaiters) {
  WaitQueue wq{CostModel::paper()};
  const auto ticket = wq.prepare();
  Status got = Status::kOk;
  std::thread waiter([&] {
    sim::Actor a{"w"};
    got = wq.wait(ticket, a);
  });
  while (wq.sleepers() != 1) std::this_thread::yield();
  wq.shutdown();
  waiter.join();
  EXPECT_EQ(got, Status::kShutDown);
}

// --- VmaTable / MMU --------------------------------------------------------------

TEST(VmaTable, AddFindRemove) {
  VmaTable vmas;
  std::vector<std::byte> dev(8'192);
  ASSERT_EQ(vmas.add(Vma{0x7000'0000, 8'192, VM_PFNPHI, dev.data()}),
            Status::kOk);
  const Vma* v = vmas.find(0x7000'0000 + 4'096);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->device_base, dev.data());
  EXPECT_EQ(vmas.find(0x7000'0000 + 8'192), nullptr);
  EXPECT_EQ(vmas.find(0x6FFF'FFFF), nullptr);
  EXPECT_EQ(vmas.remove(0x7000'0000), Status::kOk);
  EXPECT_EQ(vmas.find(0x7000'0000), nullptr);
  EXPECT_EQ(vmas.remove(0x7000'0000), Status::kNoSuchEntry);
}

TEST(VmaTable, OverlapRejected) {
  VmaTable vmas;
  std::vector<std::byte> dev(16'384);
  ASSERT_EQ(vmas.add(Vma{0x1000, 8'192, VM_PFNPHI, dev.data()}), Status::kOk);
  EXPECT_EQ(vmas.add(Vma{0x2000, 8'192, VM_PFNPHI, dev.data()}),
            Status::kAlreadyExists);
  EXPECT_EQ(vmas.add(Vma{0x0, 8'192, VM_PFNPHI, dev.data()}),
            Status::kAlreadyExists);
  EXPECT_EQ(vmas.add(Vma{0x3000, 4'096, VM_PFNPHI, dev.data()}), Status::kOk);
}

TEST(KvmMmu, FaultOncePerPageThenCached) {
  const auto& m = CostModel::paper();
  VmaTable vmas;
  std::vector<std::byte> dev(16'384);
  dev[5'000] = std::byte{0xAB};
  ASSERT_EQ(vmas.add(Vma{0x10000, 16'384, VM_PFNPHI, dev.data()}), Status::kOk);
  kvm::Mmu mmu{vmas, m};

  sim::Actor a{"guest"};
  auto p = mmu.access(a, 0x10000 + 5'000, 1);
  ASSERT_TRUE(p);
  EXPECT_EQ(**p, std::byte{0xAB}) << "resolves to the device frame";
  EXPECT_EQ(mmu.faults(), 1u);
  EXPECT_EQ(a.now(), m.ept_fault_ns);

  // Second touch of the same page: no new fault, no fault cost.
  ASSERT_TRUE(mmu.access(a, 0x10000 + 5'001, 1));
  EXPECT_EQ(mmu.faults(), 1u);
  EXPECT_EQ(a.now(), m.ept_fault_ns);

  // A range spanning three pages faults the two untouched ones.
  ASSERT_TRUE(mmu.access(a, 0x10000, 3 * 4'096));
  EXPECT_EQ(mmu.faults(), 3u);
}

TEST(KvmMmu, UnmappedAccessFails) {
  VmaTable vmas;
  kvm::Mmu mmu{vmas, CostModel::paper()};
  sim::Actor a{"guest"};
  EXPECT_EQ(mmu.access(a, 0xDEAD'0000, 1).status(), Status::kBadAddress);
}

TEST(KvmMmu, NonPfnphiVmaRejected) {
  VmaTable vmas;
  std::vector<std::byte> dev(4'096);
  ASSERT_EQ(vmas.add(Vma{0x1000, 4'096, 0, dev.data()}), Status::kOk);
  kvm::Mmu mmu{vmas, CostModel::paper()};
  sim::Actor a{"guest"};
  EXPECT_EQ(mmu.access(a, 0x1000, 1).status(), Status::kAccessDenied);
}

TEST(KvmMmu, InvalidateForcesRefault) {
  VmaTable vmas;
  std::vector<std::byte> dev(4'096);
  ASSERT_EQ(vmas.add(Vma{0x1000, 4'096, VM_PFNPHI, dev.data()}), Status::kOk);
  kvm::Mmu mmu{vmas, CostModel::paper()};
  sim::Actor a{"guest"};
  ASSERT_TRUE(mmu.access(a, 0x1000, 1));
  EXPECT_EQ(mmu.mapped_pages(), 1u);
  mmu.invalidate(0x1000, 4'096);
  EXPECT_EQ(mmu.mapped_pages(), 0u);
  ASSERT_TRUE(mmu.access(a, 0x1000, 1));
  EXPECT_EQ(mmu.faults(), 2u);
}

// --- guest kernel services ----------------------------------------------------

TEST(GuestKernel, PinUnpinLifecycle) {
  GuestPhysMem ram{1 << 20};
  GuestKernel kernel{ram, CostModel::paper()};
  sim::Actor a{"guest"};
  ASSERT_EQ(kernel.pin_pages(a, 8'192, 16'384), Status::kOk);
  EXPECT_TRUE(kernel.is_pinned(8'192, 16'384));
  EXPECT_TRUE(kernel.is_pinned(12'288, 4'096)) << "subrange counts";
  EXPECT_FALSE(kernel.is_pinned(0, 4'096));
  EXPECT_GT(a.now(), 0u) << "pinning costs time";
  EXPECT_EQ(kernel.unpin_pages(8'192, 16'384), Status::kOk);
  EXPECT_FALSE(kernel.is_pinned(8'192, 16'384));
  EXPECT_EQ(kernel.unpin_pages(8'192, 16'384), Status::kInvalidArgument);
}

TEST(GuestKernel, PinOutsideRamFails) {
  GuestPhysMem ram{1 << 20};
  GuestKernel kernel{ram, CostModel::paper()};
  sim::Actor a{"guest"};
  EXPECT_EQ(kernel.pin_pages(a, 1 << 20, 4'096), Status::kBadAddress);
}

TEST(GuestKernel, UserCopiesMoveDataAndChargeTime) {
  GuestPhysMem ram{1 << 20};
  GuestKernel kernel{ram, CostModel::paper()};
  sim::Actor a{"guest"};
  const char src[] = "user data";
  char dst[sizeof(src)] = {};
  kernel.copy_from_user(a, dst, src, sizeof(src));
  EXPECT_STREQ(dst, src);
  EXPECT_GE(a.now(), CostModel::paper().copy_setup_ns);
}

// --- event loop ---------------------------------------------------------------

TEST(EventLoop, HandlersSerializeAndAccountBlockedTime) {
  EventLoop loop{"qemu-test"};
  std::atomic<int> order{0};
  int first = -1, second = -1;
  loop.post([&](sim::Actor& a) {
    a.advance(1'000);
    first = order.fetch_add(1);
  });
  loop.post([&](sim::Actor& a) {
    a.advance(500);
    second = order.fetch_add(1);
  });
  loop.drain();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(loop.handled(), 2u);
  EXPECT_EQ(loop.blocked_time(), 1'500u);
  loop.stop();
}

TEST(EventLoop, WorkersRunConcurrentlyWithLoop) {
  EventLoop loop{"qemu-test"};
  std::atomic<bool> worker_ran{false};
  sim::Nanos worker_start = 0;
  loop.run_in_worker(
      [&](sim::Actor& a) {
        worker_start = a.now();
        worker_ran = true;
      },
      42'000);
  loop.join_workers();
  EXPECT_TRUE(worker_ran);
  EXPECT_EQ(worker_start, 42'000u) << "worker actor starts at handoff time";
  EXPECT_EQ(loop.workers_spawned(), 1u);
  EXPECT_EQ(loop.blocked_time(), 0u) << "workers never hold the loop";
}

TEST(EventLoop, StopAfterPendingHandlersStillRunsThem) {
  EventLoop loop{"qemu-test"};
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    loop.post([&](sim::Actor&) { ++ran; });
  }
  loop.stop();
  EXPECT_EQ(ran.load(), 10);
}

// --- Vm container ---------------------------------------------------------------

TEST(Vm, WiringAndIrqDelivery) {
  Vm vm{{.name = "test-vm", .ram_bytes = 8ull << 20, .ring_size = 16},
        CostModel::paper()};
  EXPECT_EQ(vm.ram().ram_bytes(), 8ull << 20);
  EXPECT_EQ(vm.vq().size(), 16);

  Nanos seen = 0;
  vm.set_irq_handler([&](Nanos ts) { seen = ts; });
  vm.inject_irq(10'000);
  EXPECT_EQ(seen, 10'000 + CostModel::paper().irq_inject_ns);
  EXPECT_EQ(vm.irqs_injected(), 1u);
}

TEST(Vm, KickCostsVmexit) {
  Vm vm{{.name = "test-vm", .ram_bytes = 1ull << 20}, CostModel::paper()};
  sim::Actor guest{"guest"};
  vm.kick_cost(guest);
  EXPECT_EQ(guest.now(), CostModel::paper().kick_vmexit_ns);
}

TEST(Vm, RingTranslatesThroughGuestRam) {
  Vm vm{{.name = "test-vm", .ram_bytes = 1ull << 20, .ring_size = 8},
        CostModel::paper()};
  auto gpa = vm.ram().kmalloc(4'096);
  ASSERT_TRUE(gpa);
  auto* p = static_cast<std::uint8_t*>(vm.ram().translate(*gpa, 4));
  ASSERT_NE(p, nullptr);
  p[0] = 0x5A;
  virtio::BufferRef out{*gpa, 4};
  ASSERT_TRUE(vm.vq().add_buf({&out, 1}, {}));
  vm.vq().kick(0);
  auto chain = vm.vq().pop_avail();
  ASSERT_TRUE(chain);
  EXPECT_EQ(static_cast<std::uint8_t*>(chain->segments[0].ptr)[0], 0x5A);
}

TEST(Vm, DeviceStatusHandshake) {
  Vm vm{{.name = "t"}, CostModel::paper()};
  auto& status = vm.device_status();
  status.set(virtio::VIRTIO_STATUS_ACKNOWLEDGE);
  status.set(virtio::VIRTIO_STATUS_DRIVER);
  EXPECT_TRUE(status.negotiate(status.offered_features()));
  status.set(virtio::VIRTIO_STATUS_DRIVER_OK);
  EXPECT_TRUE(status.driver_ok());
}

}  // namespace
}  // namespace vphi::hv
