// Tests for the remaining tools-layer pieces: the testbed builder itself,
// guest user-buffer management, and frontend/backend statistics surfaces.
#include <gtest/gtest.h>

#include "sim/actor.hpp"
#include "tools/testbed.hpp"

namespace vphi::tools {
namespace {

using sim::Status;

TEST(Testbed, DefaultConfigurationWiresEverything) {
  Testbed bed{TestbedConfig{}};
  EXPECT_TRUE(bed.card().online());
  EXPECT_EQ(bed.fabric().node_count(), 2);
  EXPECT_EQ(bed.vm_count(), 1u);
  EXPECT_NE(bed.coi_daemon(), nullptr);
  EXPECT_TRUE(bed.vm(0).frontend().probed());
}

TEST(Testbed, NoDaemonWhenDisabled) {
  TestbedConfig config;
  config.start_coi_daemon = false;
  Testbed bed{config};
  EXPECT_EQ(bed.coi_daemon(), nullptr);
}

TEST(Testbed, AddVmGrowsTheFleet) {
  Testbed bed{TestbedConfig{}};
  auto& vm1 = bed.add_vm();
  EXPECT_EQ(bed.vm_count(), 2u);
  EXPECT_TRUE(vm1.frontend().probed());
  EXPECT_EQ(vm1.vm().name(), "vm1");
  // Distinct backends = distinct host-process identities.
  EXPECT_NE(&bed.vm(0).backend().provider(), &vm1.backend().provider());
}

TEST(Testbed, UserBuffersComeFromGuestRam) {
  Testbed bed{TestbedConfig{}};
  auto buf = bed.vm(0).alloc_user_buffer(10ull << 20);  // > kmalloc cap: fine
  ASSERT_TRUE(buf);
  auto gpa = bed.vm(0).vm().ram().gpa_of(*buf);
  EXPECT_TRUE(gpa);
  EXPECT_EQ(bed.vm(0).free_user_buffer(*buf), Status::kOk);
  int on_stack;
  EXPECT_EQ(bed.vm(0).free_user_buffer(&on_stack), Status::kBadAddress);
}

TEST(Testbed, VmRamExhaustionFailsCleanly) {
  TestbedConfig config;
  config.vm_ram_bytes = 4ull << 20;
  Testbed bed{config};
  EXPECT_EQ(bed.vm(0).alloc_user_buffer(64ull << 20).status(),
            Status::kNoMemory);
}

TEST(Testbed, StatsStartAtZeroAndCount) {
  Testbed bed{TestbedConfig{}};
  auto& fe = bed.vm(0).frontend();
  auto& be = bed.vm(0).backend();
  EXPECT_EQ(fe.requests(), 0u);
  EXPECT_EQ(be.requests_handled(), 0u);

  sim::Actor a{"app", sim::Actor::AtNow{}};
  sim::ActorScope scope(a);
  auto epd = bed.vm(0).guest_scif().open();
  ASSERT_TRUE(epd);
  EXPECT_EQ(fe.requests(), 1u);
  EXPECT_EQ(fe.interrupt_waits(), 1u);
  EXPECT_EQ(fe.polled_waits(), 0u);
  EXPECT_EQ(be.requests_handled(), 1u);
  EXPECT_EQ(be.blocking_requests(), 1u);
  EXPECT_EQ(be.worker_requests(), 0u);
}

}  // namespace
}  // namespace vphi::tools
