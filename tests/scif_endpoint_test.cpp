// Integration tests for SCIF endpoints through the HostProvider: the
// connection lifecycle, stream messaging, RMA over registered windows,
// mmap, fences, poll and the paper's host-side timing anchors.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "mic/card.hpp"
#include "scif/api.hpp"
#include "scif/fabric.hpp"
#include "scif/host_provider.hpp"
#include "sim/actor.hpp"
#include "sim/cost_model.hpp"
#include "sim/rng.hpp"

namespace vphi::scif {
namespace {

using sim::CostModel;
using sim::Nanos;
using sim::Status;

constexpr Port kServicePort = 500;

class ScifFixture : public ::testing::Test {
 protected:
  ScifFixture()
      : card_({.index = 0, .memory_backing_bytes = 64ull << 20},
              CostModel::paper()),
        fabric_(CostModel::paper()) {
    card_.boot();
    card_node_ = fabric_.attach_card(card_);
    host_ = std::make_unique<HostProvider>(fabric_, kHostNode);
    card_side_ = std::make_unique<HostProvider>(fabric_, card_node_);
  }

  /// Start a card-side listener and return a future for its accepted epd.
  /// The listener epd is returned immediately via `listener_out`.
  std::future<int> start_card_listener(Port port, int* listener_out) {
    auto lep = card_side_->open();
    EXPECT_TRUE(lep);
    EXPECT_TRUE(card_side_->bind(*lep, port));
    EXPECT_TRUE(sim::ok(card_side_->listen(*lep, 8)));
    if (listener_out != nullptr) *listener_out = *lep;
    const int listener = *lep;
    return std::async(std::launch::async, [this, listener] {
      sim::Actor server_actor{"card-server"};
      sim::ActorScope scope(server_actor);
      auto acc = card_side_->accept(listener, SCIF_ACCEPT_SYNC);
      EXPECT_TRUE(acc);
      return acc ? acc->epd : -1;
    });
  }

  /// Establish a host-client <-> card-server pair; returns {client, server}.
  std::pair<int, int> make_pair(Port port = kServicePort) {
    int listener = -1;
    auto server_future = start_card_listener(port, &listener);
    auto cep = host_->open();
    EXPECT_TRUE(cep);
    EXPECT_TRUE(sim::ok(host_->connect(*cep, PortId{card_node_, port})));
    const int server = server_future.get();
    EXPECT_GE(server, 0);
    return {*cep, server};
  }

  mic::Card card_;
  Fabric fabric_;
  NodeId card_node_ = 0;
  std::unique_ptr<HostProvider> host_;
  std::unique_ptr<HostProvider> card_side_;
};

TEST_F(ScifFixture, ConnectAcceptLifecycle) {
  auto [client, server] = make_pair();
  auto client_ep = host_->endpoint(client);
  auto server_ep = card_side_->endpoint(server);
  ASSERT_TRUE(client_ep && server_ep);
  EXPECT_EQ(client_ep->state(), Endpoint::State::kConnected);
  EXPECT_EQ(server_ep->state(), Endpoint::State::kConnected);
  EXPECT_EQ(client_ep->peer_id().node, card_node_);
  EXPECT_EQ(server_ep->peer_id().node, kHostNode);
  EXPECT_EQ(server_ep->peer_id().port, client_ep->local_id().port);
  EXPECT_TRUE(sim::ok(host_->close(client)));
  EXPECT_TRUE(sim::ok(card_side_->close(server)));
}

TEST_F(ScifFixture, ConnectToUnservedPortRefused) {
  auto cep = host_->open();
  ASSERT_TRUE(cep);
  EXPECT_EQ(host_->connect(*cep, PortId{card_node_, 999}),
            Status::kConnectionRefused);
}

TEST_F(ScifFixture, ConnectToMissingNodeFails) {
  auto cep = host_->open();
  ASSERT_TRUE(cep);
  EXPECT_EQ(host_->connect(*cep, PortId{42, 1}), Status::kNoDevice);
}

TEST_F(ScifFixture, BindCollisionDetected) {
  auto a = card_side_->open();
  auto b = card_side_->open();
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(card_side_->bind(*a, 700));
  EXPECT_EQ(card_side_->bind(*b, 700).status(), Status::kAddressInUse);
  // Host port space is independent of the card's.
  auto c = host_->open();
  ASSERT_TRUE(c);
  EXPECT_TRUE(host_->bind(*c, 700));
}

TEST_F(ScifFixture, EphemeralBindsAreDistinct) {
  auto a = host_->open();
  auto b = host_->open();
  ASSERT_TRUE(a && b);
  auto pa = host_->bind(*a, 0);
  auto pb = host_->bind(*b, 0);
  ASSERT_TRUE(pa && pb);
  EXPECT_GE(*pa, kEphemeralBase);
  EXPECT_NE(*pa, *pb);
}

TEST_F(ScifFixture, SendRecvRoundtripBothDirections) {
  auto [client, server] = make_pair();
  sim::Rng rng{99};
  std::vector<std::uint8_t> msg(10'000);
  rng.fill(msg.data(), msg.size());

  auto sent = host_->send(client, msg.data(), msg.size(), SCIF_SEND_BLOCK);
  ASSERT_TRUE(sent);
  EXPECT_EQ(*sent, msg.size());

  std::vector<std::uint8_t> got(msg.size());
  auto received =
      card_side_->recv(server, got.data(), got.size(), SCIF_RECV_BLOCK);
  ASSERT_TRUE(received);
  EXPECT_EQ(*received, msg.size());
  EXPECT_EQ(got, msg);

  // And card -> host.
  auto back = card_side_->send(server, msg.data(), 128, SCIF_SEND_BLOCK);
  ASSERT_TRUE(back);
  std::vector<std::uint8_t> got2(128);
  auto received2 = host_->recv(client, got2.data(), 128, SCIF_RECV_BLOCK);
  ASSERT_TRUE(received2);
  EXPECT_EQ(std::memcmp(got2.data(), msg.data(), 128), 0);
}

TEST_F(ScifFixture, NonBlockingRecvReturnsWouldBlock) {
  auto [client, server] = make_pair();
  std::uint8_t b;
  EXPECT_EQ(card_side_->recv(server, &b, 1, 0).status(), Status::kWouldBlock);
  (void)client;
}

TEST_F(ScifFixture, SendOnUnconnectedFails) {
  auto ep = host_->open();
  ASSERT_TRUE(ep);
  std::uint8_t b = 0;
  EXPECT_EQ(host_->send(*ep, &b, 1, SCIF_SEND_BLOCK).status(),
            Status::kNotConnected);
  EXPECT_EQ(host_->recv(*ep, &b, 1, SCIF_RECV_BLOCK).status(),
            Status::kNotConnected);
}

TEST_F(ScifFixture, BadDescriptorRejectedEverywhere) {
  std::uint8_t b = 0;
  EXPECT_EQ(host_->close(1234), Status::kBadDescriptor);
  EXPECT_EQ(host_->send(1234, &b, 1, 0).status(), Status::kBadDescriptor);
  EXPECT_EQ(host_->listen(1234, 1), Status::kBadDescriptor);
  EXPECT_EQ(host_->readfrom(1234, 0, 1, 0, 0), Status::kBadDescriptor);
}

TEST_F(ScifFixture, PeerCloseResetsStream) {
  auto [client, server] = make_pair();
  std::uint8_t payload = 7;
  ASSERT_TRUE(host_->send(client, &payload, 1, SCIF_SEND_BLOCK));
  ASSERT_TRUE(sim::ok(host_->close(client)));

  // Buffered byte still readable, then reset.
  std::uint8_t got = 0;
  auto r1 = card_side_->recv(server, &got, 1, SCIF_RECV_BLOCK);
  ASSERT_TRUE(r1);
  EXPECT_EQ(got, 7);
  EXPECT_EQ(card_side_->recv(server, &got, 1, SCIF_RECV_BLOCK).status(),
            Status::kConnectionReset);
  EXPECT_EQ(card_side_->send(server, &got, 1, SCIF_SEND_BLOCK).status(),
            Status::kConnectionReset);
}

TEST_F(ScifFixture, CloseUnblocksPeerRecv) {
  auto [client, server] = make_pair();
  auto blocked = std::async(std::launch::async, [&] {
    sim::Actor a{"blocked"};
    sim::ActorScope scope(a);
    std::uint8_t b;
    return card_side_->recv(server, &b, 1, SCIF_RECV_BLOCK).status();
  });
  ASSERT_TRUE(sim::ok(host_->close(client)));
  EXPECT_EQ(blocked.get(), Status::kConnectionReset);
}

TEST_F(ScifFixture, ListenerCloseRefusesQueuedConnector) {
  int listener = -1;
  auto lep = card_side_->open();
  ASSERT_TRUE(lep);
  listener = *lep;
  ASSERT_TRUE(card_side_->bind(listener, 800));
  ASSERT_TRUE(sim::ok(card_side_->listen(listener, 4)));

  auto connector = std::async(std::launch::async, [&] {
    sim::Actor a{"connector"};
    sim::ActorScope scope(a);
    auto cep = host_->open();
    EXPECT_TRUE(cep);
    return host_->connect(*cep, PortId{card_node_, 800});
  });
  // Give the connector time to enqueue, then close the listener.
  while (card_side_->endpoint(listener)->poll_events(SCIF_POLLIN) == 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(sim::ok(card_side_->close(listener)));
  EXPECT_EQ(connector.get(), Status::kConnectionRefused);
}

TEST_F(ScifFixture, AcceptNonBlockingOnEmptyBacklog) {
  auto lep = card_side_->open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(card_side_->bind(*lep, 801));
  ASSERT_TRUE(sim::ok(card_side_->listen(*lep, 4)));
  EXPECT_EQ(card_side_->accept(*lep, 0).status(), Status::kWouldBlock);
}

TEST_F(ScifFixture, AcceptOnNonListenerFails) {
  auto ep = card_side_->open();
  ASSERT_TRUE(ep);
  EXPECT_EQ(card_side_->accept(*ep, SCIF_ACCEPT_SYNC).status(),
            Status::kNotListening);
}

TEST_F(ScifFixture, MultipleClientsShareOneListener) {
  int listener = -1;
  auto lep = card_side_->open();
  ASSERT_TRUE(lep);
  listener = *lep;
  ASSERT_TRUE(card_side_->bind(listener, 802));
  ASSERT_TRUE(sim::ok(card_side_->listen(listener, 8)));

  constexpr int kClients = 4;
  std::vector<std::future<Status>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::async(std::launch::async, [this, i] {
      sim::Actor a{"client" + std::to_string(i)};
      sim::ActorScope scope(a);
      auto cep = host_->open();
      EXPECT_TRUE(cep);
      auto s = host_->connect(*cep, PortId{card_node_, 802});
      if (!sim::ok(s)) return s;
      const std::uint8_t tag = static_cast<std::uint8_t>(i);
      auto sent = host_->send(*cep, &tag, 1, SCIF_SEND_BLOCK);
      return sent ? Status::kOk : sent.status();
    }));
  }

  std::vector<bool> seen(kClients, false);
  for (int i = 0; i < kClients; ++i) {
    auto acc = card_side_->accept(listener, SCIF_ACCEPT_SYNC);
    ASSERT_TRUE(acc);
    std::uint8_t tag = 255;
    auto r = card_side_->recv(acc->epd, &tag, 1, SCIF_RECV_BLOCK);
    ASSERT_TRUE(r);
    ASSERT_LT(tag, kClients);
    EXPECT_FALSE(seen[tag]);
    seen[tag] = true;
  }
  for (auto& c : clients) EXPECT_EQ(c.get(), Status::kOk);
}

// --- timing anchors ------------------------------------------------------------

TEST_F(ScifFixture, HostOneByteSendLatencyIs7us) {
  // Fig. 4 anchor: native 1-byte send-recv latency is 7 us, measured as the
  // duration of the client's blocking scif_send.
  auto [client, server] = make_pair();
  sim::Actor client_actor{"client"};
  sim::ActorScope scope(client_actor);
  const Nanos before = client_actor.now();
  std::uint8_t b = 1;
  ASSERT_TRUE(host_->send(client, &b, 1, SCIF_SEND_BLOCK));
  // 7 us fixed path + the (1 ns) wire time of the single byte.
  EXPECT_NEAR(static_cast<double>(client_actor.now() - before), 7'000.0, 2.0);
  (void)server;
}

TEST_F(ScifFixture, HostLatencyOffsetConstantWithSize) {
  // Fig. 4 shows latency growing with size but the *offset* between curves
  // constant; here: host latency at size N = 7 us + N/stream_bw.
  auto [client, server] = make_pair();
  sim::Actor client_actor{"client"};
  sim::ActorScope scope(client_actor);
  const auto& m = CostModel::paper();
  for (std::size_t len : {1ull, 1024ull, 65'536ull}) {
    std::vector<std::uint8_t> buf(len);
    const Nanos before = client_actor.now();
    ASSERT_TRUE(host_->send(client, buf.data(), len, SCIF_SEND_BLOCK));
    const Nanos lat = client_actor.now() - before;
    const Nanos expect =
        7'000 + sim::transfer_time(len, m.scif_stream_bandwidth_Bps);
    EXPECT_EQ(lat, expect) << "size " << len;
    // Drain so flow control never interferes.
    std::vector<std::uint8_t> sink(len);
    ASSERT_TRUE(card_side_->recv(server, sink.data(), len, SCIF_RECV_BLOCK));
  }
}

// --- RMA --------------------------------------------------------------------

class ScifRmaFixture : public ScifFixture {
 protected:
  void SetUp() override {
    std::tie(client_, server_) = make_pair();
    // The card-side server registers a window of device memory.
    auto dev_off = card_.memory().allocate(kWinBytes);
    ASSERT_TRUE(dev_off);
    dev_base_ = static_cast<std::byte*>(card_.memory().at(*dev_off));
    sim::Rng rng{7};
    rng.fill(dev_base_, kWinBytes);
    auto reg = card_side_->register_mem(server_, dev_base_, kWinBytes, 0,
                                        SCIF_PROT_READ | SCIF_PROT_WRITE, 0);
    ASSERT_TRUE(reg);
    remote_off_ = *reg;

    local_.resize(kWinBytes);
    auto lreg = host_->register_mem(client_, local_.data(), kWinBytes, 0,
                                    SCIF_PROT_READ | SCIF_PROT_WRITE, 0);
    ASSERT_TRUE(lreg);
    local_off_ = *lreg;
  }

  static constexpr std::size_t kWinBytes = 1 << 20;
  int client_ = -1, server_ = -1;
  std::byte* dev_base_ = nullptr;
  RegOffset remote_off_ = 0, local_off_ = 0;
  std::vector<std::byte> local_;
};

TEST_F(ScifRmaFixture, ReadfromPullsRemoteData) {
  ASSERT_EQ(host_->readfrom(client_, local_off_, kWinBytes, remote_off_,
                            SCIF_RMA_SYNC),
            Status::kOk);
  EXPECT_EQ(std::memcmp(local_.data(), dev_base_, kWinBytes), 0);
}

TEST_F(ScifRmaFixture, WritetoPushesLocalData) {
  sim::Rng rng{8};
  rng.fill(local_.data(), kWinBytes);
  ASSERT_EQ(host_->writeto(client_, local_off_, kWinBytes, remote_off_,
                           SCIF_RMA_SYNC),
            Status::kOk);
  EXPECT_EQ(std::memcmp(dev_base_, local_.data(), kWinBytes), 0);
}

TEST_F(ScifRmaFixture, SubrangeRma) {
  ASSERT_EQ(host_->readfrom(client_, local_off_ + 4'096, 8'192,
                            remote_off_ + 16'384, SCIF_RMA_SYNC),
            Status::kOk);
  EXPECT_EQ(std::memcmp(local_.data() + 4'096, dev_base_ + 16'384, 8'192), 0);
}

TEST_F(ScifRmaFixture, VreadVwriteUseRawPointers) {
  std::vector<std::byte> scratch(65'536);
  ASSERT_EQ(host_->vreadfrom(client_, scratch.data(), scratch.size(),
                             remote_off_, SCIF_RMA_SYNC),
            Status::kOk);
  EXPECT_EQ(std::memcmp(scratch.data(), dev_base_, scratch.size()), 0);

  sim::Rng rng{9};
  rng.fill(scratch.data(), scratch.size());
  ASSERT_EQ(host_->vwriteto(client_, scratch.data(), scratch.size(),
                            remote_off_ + 65'536, SCIF_RMA_SYNC),
            Status::kOk);
  EXPECT_EQ(std::memcmp(dev_base_ + 65'536, scratch.data(), scratch.size()), 0);
}

TEST_F(ScifRmaFixture, RmaBeyondWindowFails) {
  EXPECT_EQ(host_->readfrom(client_, local_off_, kWinBytes + 1, remote_off_,
                            SCIF_RMA_SYNC),
            Status::kNoSuchEntry);
  EXPECT_EQ(host_->readfrom(client_, local_off_, 1, remote_off_ + kWinBytes,
                            SCIF_RMA_SYNC),
            Status::kNoSuchEntry);
}

TEST_F(ScifRmaFixture, ProtectionEnforcedOnRma) {
  // A read-only remote window cannot be written to.
  std::vector<std::byte> ro(4'096);
  auto reg = card_side_->register_mem(server_, ro.data(), ro.size(), 0,
                                      SCIF_PROT_READ, 0);
  ASSERT_TRUE(reg);
  EXPECT_EQ(host_->writeto(client_, local_off_, 4'096, *reg, SCIF_RMA_SYNC),
            Status::kAccessDenied);
}

TEST_F(ScifRmaFixture, UnregisterThenRmaFails) {
  ASSERT_EQ(card_side_->unregister_mem(server_, remote_off_, kWinBytes),
            Status::kOk);
  EXPECT_EQ(host_->readfrom(client_, local_off_, 1, remote_off_,
                            SCIF_RMA_SYNC),
            Status::kNoSuchEntry);
}

TEST_F(ScifRmaFixture, AsyncRmaCompletesViaFence) {
  sim::Actor actor{"rma"};
  sim::ActorScope scope(actor);
  // Async read (no SYNC): caller's clock does not jump to completion...
  ASSERT_EQ(host_->readfrom(client_, local_off_, kWinBytes, remote_off_, 0),
            Status::kOk);
  const Nanos after_issue = actor.now();
  auto mark = host_->fence_mark(client_, SCIF_FENCE_INIT_SELF);
  ASSERT_TRUE(mark);
  ASSERT_EQ(host_->fence_wait(client_, *mark), Status::kOk);
  // ...the fence_wait does.
  EXPECT_GT(actor.now(), after_issue);
  EXPECT_EQ(std::memcmp(local_.data(), dev_base_, kWinBytes), 0);
}

TEST_F(ScifRmaFixture, FenceWaitUnknownMarkFails) {
  EXPECT_EQ(host_->fence_wait(client_, 424'242), Status::kInvalidArgument);
}

TEST_F(ScifRmaFixture, FenceSignalWritesBothSides) {
  ASSERT_EQ(host_->readfrom(client_, local_off_, 4'096, remote_off_, 0),
            Status::kOk);
  ASSERT_EQ(host_->fence_signal(client_, local_off_, 0xABCD, remote_off_,
                                0x1234, SCIF_SIGNAL_LOCAL | SCIF_SIGNAL_REMOTE),
            Status::kOk);
  std::uint64_t lval = 0, rval = 0;
  std::memcpy(&lval, local_.data(), sizeof(lval));
  std::memcpy(&rval, dev_base_, sizeof(rval));
  EXPECT_EQ(lval, 0xABCDu);
  EXPECT_EQ(rval, 0x1234u);
}

TEST_F(ScifRmaFixture, HostRmaThroughputApproaches6p4GBs) {
  // Fig. 5 anchor, measured through the full provider path.
  sim::Actor actor{"tp"};
  sim::ActorScope scope(actor);
  // Use a larger remote window for a closer asymptote.
  constexpr std::size_t kBig = 32ull << 20;
  auto dev_off = card_.memory().allocate(kBig);
  ASSERT_TRUE(dev_off);
  auto reg = card_side_->register_mem(
      server_, card_.memory().at(*dev_off), kBig, 0, SCIF_PROT_READ, 0);
  ASSERT_TRUE(reg);
  // Like the paper's benchmark, registration happens outside the timed
  // region; the timed part is the remote read alone.
  std::vector<std::byte> sink(kBig);
  auto lreg = host_->register_mem(client_, sink.data(), kBig, 0,
                                  SCIF_PROT_READ | SCIF_PROT_WRITE, 0);
  ASSERT_TRUE(lreg);
  const Nanos before = actor.now();
  ASSERT_EQ(host_->readfrom(client_, *lreg, kBig, *reg, SCIF_RMA_SYNC),
            Status::kOk);
  const double gbps =
      static_cast<double>(kBig) / static_cast<double>(actor.now() - before);
  EXPECT_NEAR(gbps, 6.4, 0.15);
}

TEST_F(ScifRmaFixture, UsecpuSlowerThanDmaForBulk) {
  sim::Actor actor{"cpu"};
  sim::ActorScope scope(actor);
  const Nanos t0 = actor.now();
  ASSERT_EQ(host_->readfrom(client_, local_off_, kWinBytes, remote_off_,
                            SCIF_RMA_SYNC | SCIF_RMA_USECPU),
            Status::kOk);
  const Nanos cpu_time = actor.now() - t0;
  const Nanos t1 = actor.now();
  ASSERT_EQ(host_->readfrom(client_, local_off_, kWinBytes, remote_off_,
                            SCIF_RMA_SYNC),
            Status::kOk);
  const Nanos dma_time = actor.now() - t1;
  EXPECT_GT(cpu_time, dma_time);
}

// --- mmap ------------------------------------------------------------------

TEST_F(ScifRmaFixture, MmapReadsRemoteMemory) {
  auto mapping = host_->mmap(client_, remote_off_, 8'192, SCIF_PROT_READ);
  ASSERT_TRUE(mapping);
  std::vector<std::byte> buf(8'192);
  ASSERT_EQ(host_->map_read(*mapping, 0, buf.data(), buf.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(buf.data(), dev_base_, buf.size()), 0);
  EXPECT_EQ(host_->munmap(*mapping), Status::kOk);
  EXPECT_FALSE(mapping->valid());
}

TEST_F(ScifRmaFixture, MmapWriteVisibleToOwner) {
  auto mapping = host_->mmap(client_, remote_off_, 4'096,
                             SCIF_PROT_READ | SCIF_PROT_WRITE);
  ASSERT_TRUE(mapping);
  const char msg[] = "written through the BAR";
  ASSERT_EQ(host_->map_write(*mapping, 100, msg, sizeof(msg)), Status::kOk);
  EXPECT_EQ(std::memcmp(dev_base_ + 100, msg, sizeof(msg)), 0);
  ASSERT_EQ(host_->munmap(*mapping), Status::kOk);
}

TEST_F(ScifRmaFixture, MmapBlocksUnregister) {
  auto mapping = host_->mmap(client_, remote_off_, 4'096, SCIF_PROT_READ);
  ASSERT_TRUE(mapping);
  EXPECT_EQ(card_side_->unregister_mem(server_, remote_off_, kWinBytes),
            Status::kBusy);
  ASSERT_EQ(host_->munmap(*mapping), Status::kOk);
  EXPECT_EQ(card_side_->unregister_mem(server_, remote_off_, kWinBytes),
            Status::kOk);
}

TEST_F(ScifRmaFixture, MmapOutOfRangeAccessRejected) {
  auto mapping = host_->mmap(client_, remote_off_, 4'096, SCIF_PROT_READ);
  ASSERT_TRUE(mapping);
  std::byte b;
  EXPECT_EQ(host_->map_read(*mapping, 4'096, &b, 1), Status::kOutOfRange);
  ASSERT_EQ(host_->munmap(*mapping), Status::kOk);
}

TEST_F(ScifRmaFixture, MmapUnknownOffsetFails) {
  EXPECT_EQ(host_->mmap(client_, remote_off_ + (64ull << 30), 4'096,
                        SCIF_PROT_READ)
                .status(),
            Status::kNoSuchEntry);
}

// --- poll ----------------------------------------------------------------------

TEST_F(ScifFixture, PollSeesIncomingData) {
  auto [client, server] = make_pair();
  PollEpd p{server, SCIF_POLLIN, 0};
  auto n = card_side_->poll(&p, 1, 0);
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, 0) << "nothing pending yet";

  std::uint8_t b = 5;
  ASSERT_TRUE(host_->send(client, &b, 1, SCIF_SEND_BLOCK));
  n = card_side_->poll(&p, 1, -1);
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, 1);
  EXPECT_TRUE(p.revents & SCIF_POLLIN);
}

TEST_F(ScifFixture, PollListenerReadyOnPendingConnect) {
  int listener = -1;
  auto server_future = start_card_listener(900, &listener);
  auto cep = host_->open();
  ASSERT_TRUE(cep);
  ASSERT_TRUE(sim::ok(host_->connect(*cep, PortId{card_node_, 900})));
  server_future.get();
  // After accept drained the backlog, the listener is quiet again.
  PollEpd p{listener, SCIF_POLLIN, 0};
  auto n = card_side_->poll(&p, 1, 0);
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, 0);
}

TEST_F(ScifFixture, PollHupOnPeerClose) {
  auto [client, server] = make_pair();
  ASSERT_TRUE(sim::ok(host_->close(client)));
  PollEpd p{server, SCIF_POLLIN, 0};
  auto n = card_side_->poll(&p, 1, -1);
  ASSERT_TRUE(n);
  EXPECT_TRUE(p.revents & (SCIF_POLLHUP | SCIF_POLLIN));
}

TEST_F(ScifFixture, PollInvalidDescriptorFlagged) {
  PollEpd p{31'337, SCIF_POLLIN, 0};
  auto n = host_->poll(&p, 1, 0);
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, 1);
  EXPECT_EQ(p.revents, SCIF_POLLNVAL);
}

TEST_F(ScifFixture, PollTimeoutAdvancesSimClock) {
  auto [client, server] = make_pair();
  (void)client;
  sim::Actor actor{"poller"};
  sim::ActorScope scope(actor);
  PollEpd p{server, SCIF_POLLIN, 0};
  const Nanos before = actor.now();
  auto n = card_side_->poll(&p, 1, 5);
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, 0);
  EXPECT_GE(actor.now() - before, 5 * sim::kMillisecond);
}

// --- topology / info ------------------------------------------------------------

TEST_F(ScifFixture, NodeIdsReported) {
  auto host_ids = host_->get_node_ids();
  ASSERT_TRUE(host_ids);
  EXPECT_EQ(host_ids->total, 2);
  EXPECT_EQ(host_ids->self, kHostNode);
  auto card_ids = card_side_->get_node_ids();
  ASSERT_TRUE(card_ids);
  EXPECT_EQ(card_ids->self, card_node_);
}

TEST_F(ScifFixture, CardInfoExposed) {
  auto info = host_->card_info(0);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->get("sku").value(), "3120P");
  EXPECT_EQ(host_->card_info(5).status(), Status::kNoDevice);
}

// --- the C shim -------------------------------------------------------------------

TEST_F(ScifFixture, CStyleApiMirrorsProvider) {
  int listener = -1;
  auto server_future = start_card_listener(950, &listener);

  api::ProcessContext ctx(*host_);
  const auto epd = api::scif_open();
  ASSERT_GE(epd, 0);
  const PortId dst{card_node_, 950};
  ASSERT_EQ(api::scif_connect(epd, &dst), 0);
  const int server = server_future.get();

  const char msg[] = "hello from the C API";
  EXPECT_EQ(api::scif_send(epd, msg, sizeof(msg), SCIF_SEND_BLOCK),
            static_cast<long>(sizeof(msg)));
  char got[sizeof(msg)] = {};
  auto r = card_side_->recv(server, got, sizeof(msg), SCIF_RECV_BLOCK);
  ASSERT_TRUE(r);
  EXPECT_STREQ(got, msg);

  NodeId self = 99;
  EXPECT_EQ(api::scif_get_node_ids(nullptr, 0, &self), 2);
  EXPECT_EQ(self, kHostNode);
  EXPECT_EQ(api::scif_close(epd), 0);
  EXPECT_EQ(api::scif_close(epd), -1) << "double close";
  EXPECT_EQ(api::scif_last_error(), Status::kBadDescriptor);
}

TEST(ScifApiNoContext, CallsFailWithoutProcessContext) {
  EXPECT_EQ(api::scif_open(), -1);
  EXPECT_EQ(api::scif_last_error(), Status::kNoDevice);
}

}  // namespace
}  // namespace vphi::scif
