// Unit + property tests for the SCIF byte stream (flow control, timestamps,
// reset semantics, cross-thread reassembly).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "scif/stream.hpp"
#include "sim/rng.hpp"

namespace vphi::scif {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  sim::Rng rng{seed};
  rng.fill(v.data(), v.size());
  return v;
}

TEST(Stream, WriteReadRoundtrip) {
  Stream s;
  const auto src = pattern_bytes(1'000, 1);
  auto w = s.write(src.data(), src.size(), 42, true);
  ASSERT_TRUE(w);
  EXPECT_EQ(w->written, 1'000u);
  EXPECT_EQ(s.available(), 1'000u);

  std::vector<std::uint8_t> dst(1'000);
  auto r = s.read(dst.data(), dst.size(), true);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->read, 1'000u);
  EXPECT_EQ(r->newest_ts, 42u);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(s.available(), 0u);
}

TEST(Stream, PartialReadsPreserveOrder) {
  Stream s;
  const auto src = pattern_bytes(300, 2);
  ASSERT_TRUE(s.write(src.data(), 100, 1, true));
  ASSERT_TRUE(s.write(src.data() + 100, 200, 2, true));

  std::vector<std::uint8_t> dst(300);
  auto r1 = s.read(dst.data(), 150, true);
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->read, 150u);
  EXPECT_EQ(r1->newest_ts, 2u) << "read crossed into the second segment";
  auto r2 = s.read(dst.data() + 150, 150, true);
  ASSERT_TRUE(r2);
  EXPECT_EQ(dst, src);
}

TEST(Stream, NonBlockingReadEmptyReturnsWouldBlock) {
  Stream s;
  std::uint8_t b;
  auto r = s.read(&b, 1, false);
  EXPECT_EQ(r.status(), sim::Status::kWouldBlock);
}

TEST(Stream, NonBlockingWriteFullReturnsWouldBlock) {
  Stream s{16};
  const auto src = pattern_bytes(16, 3);
  ASSERT_TRUE(s.write(src.data(), 16, 0, false));
  auto w = s.write(src.data(), 1, 0, false);
  EXPECT_EQ(w.status(), sim::Status::kWouldBlock);
  EXPECT_EQ(s.window(), 0u);
}

TEST(Stream, NonBlockingWritePartiallyFits) {
  Stream s{10};
  const auto src = pattern_bytes(16, 4);
  auto w = s.write(src.data(), 16, 0, false);
  ASSERT_TRUE(w);
  EXPECT_EQ(w->written, 10u);
}

TEST(Stream, BlockingWriteWaitsForReader) {
  Stream s{8};
  const auto src = pattern_bytes(64, 5);
  std::vector<std::uint8_t> dst(64);
  std::thread writer([&] {
    auto w = s.write(src.data(), src.size(), 7, true);
    ASSERT_TRUE(w);
    EXPECT_EQ(w->written, 64u);
  });
  auto r = s.read(dst.data(), dst.size(), true);
  writer.join();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->read, 64u);
  EXPECT_EQ(dst, src);
}

TEST(Stream, BlockingReadWaitsForWriter) {
  Stream s;
  std::vector<std::uint8_t> dst(32);
  std::thread writer([&] {
    const auto src = pattern_bytes(32, 6);
    ASSERT_TRUE(s.write(src.data(), src.size(), 9, true));
  });
  auto r = s.read(dst.data(), dst.size(), true);
  writer.join();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->read, 32u);
  EXPECT_EQ(r->newest_ts, 9u);
}

TEST(Stream, ResetFailsWriters) {
  Stream s;
  s.reset();
  std::uint8_t b = 0;
  EXPECT_EQ(s.write(&b, 1, 0, true).status(), sim::Status::kConnectionReset);
}

TEST(Stream, ResetDrainsThenFailsReaders) {
  Stream s;
  const auto src = pattern_bytes(10, 7);
  ASSERT_TRUE(s.write(src.data(), 10, 0, true));
  s.reset();
  std::vector<std::uint8_t> dst(10);
  auto r = s.read(dst.data(), 10, true);
  ASSERT_TRUE(r) << "buffered data still readable after reset";
  EXPECT_EQ(r->read, 10u);
  auto r2 = s.read(dst.data(), 1, true);
  EXPECT_EQ(r2.status(), sim::Status::kConnectionReset);
}

TEST(Stream, ResetPartiallySatisfiedBlockingReadReturnsShort) {
  Stream s;
  const auto src = pattern_bytes(5, 8);
  ASSERT_TRUE(s.write(src.data(), 5, 0, true));
  std::vector<std::uint8_t> dst(10);
  std::thread resetter([&] { s.reset(); });
  auto r = s.read(dst.data(), 10, true);
  resetter.join();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->read, 5u) << "short read, not an error, when data preceded reset";
}

TEST(Stream, ResetUnblocksWaitingWriter) {
  Stream s{4};
  const auto src = pattern_bytes(16, 9);
  ASSERT_TRUE(s.write(src.data(), 4, 0, true));
  sim::Status got = sim::Status::kOk;
  std::thread writer([&] { got = s.write(src.data(), 16, 0, true).status(); });
  s.reset();
  writer.join();
  EXPECT_EQ(got, sim::Status::kConnectionReset);
}

TEST(Stream, TimestampsMonotoneAcrossSegments) {
  Stream s;
  std::uint8_t b = 0;
  ASSERT_TRUE(s.write(&b, 1, 100, true));
  ASSERT_TRUE(s.write(&b, 1, 200, true));
  EXPECT_EQ(s.head_ts(), 100u);
  std::uint8_t out[2];
  auto r = s.read(out, 2, true);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->newest_ts, 200u);
}

TEST(Stream, TotalWrittenAccumulates) {
  Stream s;
  const auto src = pattern_bytes(100, 10);
  ASSERT_TRUE(s.write(src.data(), 100, 0, true));
  ASSERT_TRUE(s.write(src.data(), 100, 0, true));
  EXPECT_EQ(s.total_written(), 200u);
}

// Property sweep: any split of a message into writes, reassembled by any
// split of reads, yields the identical byte sequence.
class StreamReassemblyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamReassemblyTest, ArbitrarySplitsReassemble) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng{seed};
  const std::size_t total = 1'024 + rng.below(16'384);
  const auto src = pattern_bytes(total, seed * 31 + 1);

  Stream s{4'096};
  std::vector<std::uint8_t> dst(total);

  std::thread writer([&] {
    std::size_t off = 0;
    sim::Rng wr{seed * 7 + 3};
    while (off < total) {
      const std::size_t n = 1 + wr.below(2'000);
      const std::size_t chunk = std::min(n, total - off);
      auto w = s.write(src.data() + off, chunk, off, true);
      ASSERT_TRUE(w);
      off += w->written;
    }
  });

  std::size_t off = 0;
  sim::Rng rr{seed * 13 + 5};
  while (off < total) {
    const std::size_t n = 1 + rr.below(3'000);
    const std::size_t chunk = std::min(n, total - off);
    auto r = s.read(dst.data() + off, chunk, true);
    ASSERT_TRUE(r);
    off += r->read;
  }
  writer.join();
  EXPECT_EQ(dst, src);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamReassemblyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace vphi::scif
