// End-to-end tests of micnativeloadex: dgemm launched natively from the
// host and from inside a VM (Sec. IV-C), including the paper's qualitative
// claims — no on-card slowdown under vPHI, overhead amortized with size.
#include <gtest/gtest.h>

#include "sim/actor.hpp"
#include "tools/micnativeloadex.hpp"
#include "tools/testbed.hpp"
#include "workloads/dgemm.hpp"

namespace vphi::tools {
namespace {

using sim::Status;

class LoadexFixture : public ::testing::Test {
 protected:
  LoadexFixture() : bed_(TestbedConfig{}) {
    workloads::register_dgemm_kernel();
    image_ = workloads::make_dgemm_image(bed_.model());
  }

  sim::Expected<LoadexResult> run(scif::Provider& p, std::size_t n,
                                  std::uint32_t threads) {
    MicNativeLoadEx loadex{p};
    LoadexOptions options;
    options.threads = threads;
    options.args = {std::to_string(n)};
    return loadex.run(image_, options);
  }

  Testbed bed_;
  coi::BinaryImage image_;
};

TEST_F(LoadexFixture, HostLaunchComputesAndVerifies) {
  sim::Actor actor{"host", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto result = run(bed_.host_provider(), 256, 56);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 0);
  EXPECT_NE(result->output.find("PASSED"), std::string::npos);
  EXPECT_GT(result->transfer_ns, 0u);
  EXPECT_GT(result->exec_ns, 0u);
  EXPECT_GE(result->total_ns,
            result->handshake_ns + result->transfer_ns + result->exec_ns);
}

TEST_F(LoadexFixture, VmLaunchProducesIdenticalOutput) {
  // Binary compatibility: the same tool, the same image, the same output —
  // only the provider differs.
  sim::Actor host_actor{"host", sim::Actor::AtNow{}};
  std::string host_output, vm_output;
  {
    sim::ActorScope scope(host_actor);
    auto r = run(bed_.host_provider(), 192, 56);
    ASSERT_TRUE(r);
    host_output = r->output;
  }
  sim::Actor vm_actor{"vm", sim::Actor::AtNow{}};
  {
    sim::ActorScope scope(vm_actor);
    auto r = run(bed_.vm(0).guest_scif(), 192, 56);
    ASSERT_TRUE(r);
    vm_output = r->output;
  }
  EXPECT_EQ(host_output, vm_output);
}

TEST_F(LoadexFixture, RefusesNonexistentCard) {
  sim::Actor actor{"host", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  MicNativeLoadEx loadex{bed_.host_provider()};
  LoadexOptions options;
  options.card_index = 7;
  EXPECT_EQ(loadex.run(image_, options).status(), Status::kNoDevice);
}

TEST_F(LoadexFixture, OnCardExecutionTimeUnchangedUnderVphi) {
  // Sec. IV-C: "we observed no performance degradation for the vPHI
  // compared to the host concerning actual execution time on the device."
  sim::Actor host_actor{"host", sim::Actor::AtNow{}};
  sim::Nanos host_exec, vm_exec;
  {
    sim::ActorScope scope(host_actor);
    auto r = run(bed_.host_provider(), 4'096, 112);
    ASSERT_TRUE(r);
    host_exec = r->exec_ns;
  }
  sim::Actor vm_actor{"vm", sim::Actor::AtNow{}};
  {
    sim::ActorScope scope(vm_actor);
    auto r = run(bed_.vm(0).guest_scif(), 4'096, 112);
    ASSERT_TRUE(r);
    vm_exec = r->exec_ns;
  }
  // exec phase includes two ring round trips (the shutdown RPC) under
  // vPHI; the card-side computation itself is identical. Allow only that
  // sliver of difference.
  const double rel = std::abs(static_cast<double>(vm_exec) -
                              static_cast<double>(host_exec)) /
                     static_cast<double>(host_exec);
  EXPECT_LT(rel, 0.01);
}

TEST_F(LoadexFixture, VphiOverheadAmortizesWithProblemSize) {
  // Figs. 6-8: normalized total time vPHI/host falls toward 1 as the
  // experiment grows.
  auto ratio_at = [&](std::size_t n) {
    sim::Actor host_actor{"host", sim::Actor::AtNow{}};
    sim::Nanos host_total;
    {
      sim::ActorScope scope(host_actor);
      auto r = run(bed_.host_provider(), n, 112);
      EXPECT_TRUE(r);
      host_total = r->total_ns;
    }
    sim::Actor vm_actor{"vm", sim::Actor::AtNow{}};
    sim::Nanos vm_total;
    {
      sim::ActorScope scope(vm_actor);
      auto r = run(bed_.vm(0).guest_scif(), n, 112);
      EXPECT_TRUE(r);
      vm_total = r->total_ns;
    }
    return static_cast<double>(vm_total) / static_cast<double>(host_total);
  };

  const double small = ratio_at(512);
  const double large = ratio_at(12'288);
  EXPECT_GT(small, large) << "overhead relatively larger for small runs";
  EXPECT_GT(small, 1.5) << "overhead dominates small runs";
  EXPECT_LT(large, 1.10) << "negligible overhead for seconds-long runs";
}

TEST_F(LoadexFixture, OutOfDeviceMemoryPropagates) {
  // 8 GiB of matrices exceeds a 3120P's 6 GB (and our backing): the card
  // process must exit with the ENOMEM code, reported through the stack.
  sim::Actor actor{"host", sim::Actor::AtNow{}};
  sim::ActorScope scope(actor);
  auto result = run(bed_.host_provider(), 20'000, 56);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->exit_code, 12);
  EXPECT_NE(result->output.find("out of device memory"), std::string::npos);
}

}  // namespace
}  // namespace vphi::tools
