// Unit tests for the simulation substrate: actors/virtual time, the bus
// arbiter, timestamped channels, statistics containers, and — crucially —
// the paper anchors baked into the default CostModel.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "sim/actor.hpp"
#include "sim/bus.hpp"
#include "sim/channel.hpp"
#include "sim/cost_model.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/status.hpp"
#include "sim/time.hpp"

namespace vphi::sim {
namespace {

TEST(Time, TransferTimeBasics) {
  EXPECT_EQ(transfer_time(0, 1e9), 0u);
  EXPECT_EQ(transfer_time(1'000'000'000, 1e9), 1'000'000'000u);  // 1 GB @ 1GB/s
  EXPECT_EQ(transfer_time(1, 1e12), 1u) << "nonzero transfers take >= 1 ns";
  EXPECT_EQ(transfer_time(4096, 4.096e9), 1'000u);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_micros(kMicrosecond), 1.0);
  EXPECT_DOUBLE_EQ(to_micros(7 * kMicrosecond), 7.0);
}

TEST(Actor, AdvanceAccumulates) {
  Actor a{"t"};
  EXPECT_EQ(a.now(), 0u);
  EXPECT_EQ(a.advance(100), 100u);
  EXPECT_EQ(a.advance(50), 150u);
  EXPECT_EQ(a.now(), 150u);
}

TEST(Actor, SyncOnlyMovesForward) {
  Actor a{"t", 1'000};
  EXPECT_EQ(a.sync_to(500), 1'000u) << "sync to the past is a no-op";
  EXPECT_EQ(a.sync_to(2'000), 2'000u);
  EXPECT_EQ(a.sync_and_advance(1'500, 10), 2'010u)
      << "sync below current now still pays the advance";
}

TEST(Actor, ThisActorFallbackExists) {
  Actor& d = this_actor();
  EXPECT_FALSE(has_bound_actor());
  const Nanos before = d.now();
  d.advance(5);
  EXPECT_EQ(this_actor().now(), before + 5);
}

TEST(Actor, ScopeBindsAndNests) {
  Actor outer{"outer", 10};
  Actor inner{"inner", 20};
  {
    ActorScope s1(outer);
    EXPECT_TRUE(has_bound_actor());
    EXPECT_EQ(&this_actor(), &outer);
    {
      ActorScope s2(inner);
      EXPECT_EQ(&this_actor(), &inner);
    }
    EXPECT_EQ(&this_actor(), &outer);
  }
  EXPECT_FALSE(has_bound_actor());
}

TEST(Actor, ScopeIsPerThread) {
  Actor main_actor{"main"};
  ActorScope scope(main_actor);
  bool other_thread_bound = true;
  std::thread t([&] { other_thread_bound = has_bound_actor(); });
  t.join();
  EXPECT_FALSE(other_thread_bound);
}

TEST(Bus, UncontendedStartsAtReady) {
  BusArbiter bus;
  const auto g = bus.acquire(100, 50);
  EXPECT_EQ(g.start, 100u);
  EXPECT_EQ(g.end, 150u);
  EXPECT_EQ(bus.free_at(), 150u);
}

TEST(Bus, ContentionQueues) {
  BusArbiter bus;
  const auto g1 = bus.acquire(0, 100);
  const auto g2 = bus.acquire(10, 100);  // requester ready at 10, bus busy
  EXPECT_EQ(g1.end, 100u);
  EXPECT_EQ(g2.start, 100u);
  EXPECT_EQ(g2.end, 200u);
  EXPECT_EQ(bus.busy_total(), 200u);
  EXPECT_EQ(bus.grants(), 2u);
}

TEST(Bus, IdleGapNotCharged) {
  BusArbiter bus;
  bus.acquire(0, 10);
  const auto g = bus.acquire(1'000, 10);  // long idle gap before
  EXPECT_EQ(g.start, 1'000u);
  EXPECT_EQ(bus.busy_total(), 20u);
}

TEST(Bus, ConcurrentAcquiresLinearize) {
  BusArbiter bus;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus] {
      for (int i = 0; i < kPerThread; ++i) bus.acquire(0, 7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bus.busy_total(), static_cast<Nanos>(kThreads * kPerThread * 7));
  EXPECT_EQ(bus.free_at(), bus.busy_total()) << "back-to-back grants from t=0";
}

TEST(Channel, FifoOrderAndTimestamps) {
  Channel<int> ch;
  ch.push(1, 100);
  ch.push(2, 50);
  auto a = ch.pop();
  auto b = ch.pop();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(a->ts, 100u);
  EXPECT_EQ(b->value, 2);
  EXPECT_EQ(b->ts, 50u);
}

TEST(Channel, PopBlocksUntilPush) {
  Channel<int> ch;
  std::thread producer([&] { ch.push(42, 7); });
  auto item = ch.pop();
  producer.join();
  ASSERT_TRUE(item);
  EXPECT_EQ(item->value, 42);
}

TEST(Channel, CloseDrainsThenReturnsNull) {
  Channel<int> ch;
  ch.push(1, 0);
  ch.close();
  EXPECT_TRUE(ch.pop().has_value());
  EXPECT_FALSE(ch.pop().has_value());
  EXPECT_FALSE(ch.try_pop().has_value());
}

TEST(EventLine, CountingSemantics) {
  EventLine line;
  line.raise(10);
  line.raise(20);
  EXPECT_EQ(line.pending(), 2u);
  EXPECT_EQ(line.wait().value(), 20u) << "latest raise time is reported";
  EXPECT_EQ(line.try_wait().value(), 20u);
  EXPECT_FALSE(line.try_wait().has_value());
}

TEST(EventLine, CloseReleasesWaiter) {
  EventLine line;
  std::optional<Nanos> got = Nanos{1};
  std::thread waiter([&] { got = line.wait(); });
  line.close();
  waiter.join();
  EXPECT_FALSE(got.has_value());
}

TEST(Status, Names) {
  EXPECT_EQ(to_string(Status::kOk), "OK");
  EXPECT_EQ(to_string(Status::kConnectionReset), "CONNECTION_RESET");
  EXPECT_TRUE(ok(Status::kOk));
  EXPECT_FALSE(ok(Status::kNoMemory));
}

TEST(Expected, ValueAndError) {
  Expected<int> good{7};
  ASSERT_TRUE(good);
  EXPECT_EQ(*good, 7);
  EXPECT_EQ(good.status(), Status::kOk);

  Expected<int> bad{Status::kNoDevice};
  EXPECT_FALSE(bad);
  EXPECT_EQ(bad.status(), Status::kNoDevice);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Summary, Moments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(Histogram, PercentilesMonotone) {
  Histogram h;
  for (Nanos v = 1; v <= 1'000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1'000u);
  const double p50 = h.percentile(0.50);
  const double p90 = h.percentile(0.90);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p50, 256.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_EQ(Histogram{}.percentile(0.5), 0.0);
}

TEST(FigureTable, PrintsAllSeriesAndRatios) {
  FigureTable t{"demo", "size"};
  Series host{"host", {}, {}};
  host.add(1, 7.0);
  host.add(2, 8.0);
  Series vphi{"vphi", {}, {}};
  vphi.add(1, 382.0);
  vphi.add(2, 383.0);
  t.add_series(host);
  t.add_series(vphi);
  t.add_ratio_column(1, 0, "vphi/host");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("host"), std::string::npos);
  EXPECT_NE(out.find("382.0000"), std::string::npos);
  EXPECT_NE(out.find("54.5714"), std::string::npos);  // 382/7
}

TEST(Stats, FormatBytes) {
  EXPECT_EQ(format_bytes(1), "1 B");
  EXPECT_EQ(format_bytes(4096), "4 KiB");
  EXPECT_EQ(format_bytes(64ull << 20), "64 MiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3 GiB");
  EXPECT_EQ(format_bytes(1500), "1500 B");
}

TEST(Rng, Deterministic) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangesRespectBounds) {
  Rng r{7};
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_LT(r.below(10), 10u);
    const auto v = r.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, FillIsReproducible) {
  Rng a{42}, b{42};
  unsigned char buf_a[37], buf_b[37];
  a.fill(buf_a, sizeof(buf_a));
  b.fill(buf_b, sizeof(buf_b));
  EXPECT_EQ(memcmp(buf_a, buf_b, sizeof(buf_a)), 0);
}

// --- Paper anchors in the default cost model --------------------------------

TEST(CostModel, HostSmallMessageIs7us) {
  // Fig. 4: native 1-byte latency 7 us.
  EXPECT_EQ(CostModel::paper().host_small_msg_ns(), 7'000u);
}

TEST(CostModel, VphiRingRoundtripIs375us) {
  // Fig. 4: vPHI adds 375 us over native (382 - 7).
  EXPECT_EQ(CostModel::paper().vphi_ring_roundtrip_ns(), 375'000u);
}

TEST(CostModel, WakeupSchemeIs93PercentOfOverhead) {
  // Sec. IV-B breakdown: 93% of the virtualization overhead is the
  // frontend's sleep/wakeup scheme.
  const auto& m = CostModel::paper();
  const double frac = static_cast<double>(m.guest_wakeup_scheme_ns) /
                      static_cast<double>(m.vphi_ring_roundtrip_ns());
  EXPECT_NEAR(frac, 0.93, 0.005);
}

TEST(CostModel, HostDmaApproaches6p4GBs) {
  // Fig. 5: host remote read peaks at 6.4 GB/s.
  const auto& m = CostModel::paper();
  const std::uint64_t bytes = 64ull << 20;
  const Nanos t = m.dma_setup_ns + m.dma_transfer_ns(bytes, /*fragmented=*/false);
  const double gbps = static_cast<double>(bytes) / static_cast<double>(t);
  EXPECT_NEAR(gbps, 6.4, 0.1);
}

TEST(CostModel, FragmentedDmaApproaches4p6GBs) {
  // Fig. 5: vPHI remote read peaks at 4.6 GB/s = 72% of host. The loss
  // splits between per-page scatter-gather on pinned guest memory and the
  // ring round trip each 16 MiB RMA chunk pays: raw fragmented DMA alone
  // runs ~5 GB/s, and the serial 4-chunk walk over 64 MiB lands at ~4.5.
  const auto& m = CostModel::paper();
  const std::uint64_t bytes = 64ull << 20;
  const Nanos dma = m.dma_setup_ns + m.dma_transfer_ns(bytes, /*fragmented=*/true);
  EXPECT_NEAR(static_cast<double>(bytes) / static_cast<double>(dma), 5.0, 0.1);

  const std::uint64_t chunk = 16ull << 20;  // FrontendConfig::rma_chunk
  const Nanos per_chunk = m.vphi_ring_roundtrip_ns() + m.dma_setup_ns +
                          m.dma_transfer_ns(chunk, /*fragmented=*/true);
  const Nanos total = 4 * per_chunk;
  const double gbps = static_cast<double>(bytes) / static_cast<double>(total);
  EXPECT_NEAR(gbps, 4.5, 0.1);
}

TEST(CostModel, FragmentedNeverFasterThanContiguous) {
  const auto& m = CostModel::paper();
  for (std::uint64_t bytes : {1ull, 4096ull, 65536ull, 1ull << 20, 64ull << 20}) {
    EXPECT_GE(m.dma_transfer_ns(bytes, true), m.dma_transfer_ns(bytes, false));
  }
}

TEST(CostModel, MicTopologyMatches3120P) {
  const auto& m = CostModel::paper();
  EXPECT_EQ(m.mic_cores, 57u);
  EXPECT_EQ(m.mic_reserved_cores, 1u);
  EXPECT_EQ(m.mic_threads_per_core, 4u);
  // 56 usable cores x {1,2,4} threads = the paper's 56/112/224 sweeps.
  EXPECT_EQ((m.mic_cores - m.mic_reserved_cores) * 1, 56u);
  EXPECT_EQ((m.mic_cores - m.mic_reserved_cores) * 2, 112u);
  EXPECT_EQ((m.mic_cores - m.mic_reserved_cores) * 4, 224u);
}

}  // namespace
}  // namespace vphi::sim
