// Unit + property tests for the virtio split virtqueue and device status.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "sim/rng.hpp"
#include "virtio/device.hpp"
#include "virtio/ring.hpp"

namespace vphi::virtio {
namespace {

/// Flat "guest memory" backing for ring tests.
class FlatMem {
 public:
  explicit FlatMem(std::size_t size) : mem_(size) {}

  MemTranslate translator() {
    return [this](std::uint64_t gpa, std::uint32_t len) -> void* {
      if (gpa + len > mem_.size()) return nullptr;
      return mem_.data() + gpa;
    };
  }
  std::uint8_t* at(std::uint64_t gpa) { return mem_.data() + gpa; }

 private:
  std::vector<std::uint8_t> mem_;
};

TEST(Virtqueue, PostPopCompleteRoundtrip) {
  FlatMem mem{4'096};
  Virtqueue vq{8, mem.translator()};
  std::memcpy(mem.at(0), "request!", 8);

  BufferRef out{0, 8};
  BufferRef in{100, 16};
  auto head = vq.add_buf({&out, 1}, {&in, 1});
  ASSERT_TRUE(head);
  EXPECT_EQ(vq.free_descriptors(), 6);
  vq.kick(1'000);

  auto chain = vq.pop_avail();
  ASSERT_TRUE(chain);
  EXPECT_EQ(chain->head, *head);
  EXPECT_EQ(chain->kick_ts, 1'000u);
  ASSERT_EQ(chain->segments.size(), 2u);
  EXPECT_FALSE(chain->segments[0].device_writes);
  EXPECT_TRUE(chain->segments[1].device_writes);
  EXPECT_EQ(chain->writable_bytes(), 16u);
  EXPECT_EQ(std::memcmp(chain->segments[0].ptr, "request!", 8), 0);

  // Device writes a response in place (zero copy) and completes.
  std::memcpy(chain->segments[1].ptr, "response", 8);
  ASSERT_EQ(vq.push_used(chain->head, 8, 2'000), sim::Status::kOk);

  auto used = vq.get_used();
  ASSERT_TRUE(used);
  EXPECT_EQ(used->id, *head);
  EXPECT_EQ(used->len, 8u);
  EXPECT_EQ(used->ts, 2'000u);
  EXPECT_EQ(std::memcmp(mem.at(100), "response", 8), 0);
  EXPECT_EQ(vq.free_descriptors(), 8) << "chain descriptors recycled";
}

TEST(Virtqueue, ExhaustionReturnsNoSpace) {
  FlatMem mem{4'096};
  Virtqueue vq{4, mem.translator()};
  BufferRef r{0, 1};
  std::vector<std::uint16_t> heads;
  for (int i = 0; i < 4; ++i) {
    auto h = vq.add_buf({&r, 1}, {});
    ASSERT_TRUE(h);
    heads.push_back(*h);
  }
  EXPECT_EQ(vq.add_buf({&r, 1}, {}).status(), sim::Status::kNoSpace);
  // Complete one, slot frees up.
  vq.kick(0);
  auto chain = vq.pop_avail();
  ASSERT_TRUE(chain);
  ASSERT_EQ(vq.push_used(chain->head, 0, 0), sim::Status::kOk);
  ASSERT_TRUE(vq.get_used());
  EXPECT_TRUE(vq.add_buf({&r, 1}, {}));
}

TEST(Virtqueue, ChainTooLongRejectedAtomically) {
  FlatMem mem{4'096};
  Virtqueue vq{4, mem.translator()};
  std::vector<BufferRef> refs(5, BufferRef{0, 1});
  EXPECT_EQ(vq.add_buf({refs.data(), 5}, {}).status(), sim::Status::kNoSpace);
  EXPECT_EQ(vq.free_descriptors(), 4) << "failed add leaks nothing";
  EXPECT_EQ(vq.add_buf({}, {}).status(), sim::Status::kInvalidArgument);
}

TEST(Virtqueue, FifoOrderPreserved) {
  FlatMem mem{4'096};
  Virtqueue vq{16, mem.translator()};
  std::vector<std::uint16_t> heads;
  for (std::uint32_t i = 0; i < 5; ++i) {
    BufferRef r{i * 8, 8};
    auto h = vq.add_buf({&r, 1}, {});
    ASSERT_TRUE(h);
    heads.push_back(*h);
  }
  vq.kick(0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto chain = vq.try_pop_avail();
    ASSERT_TRUE(chain);
    EXPECT_EQ(chain->head, heads[i]);
  }
  EXPECT_FALSE(vq.try_pop_avail());
}

TEST(Virtqueue, TranslationFailureYieldsNullSegment) {
  FlatMem mem{64};
  Virtqueue vq{4, mem.translator()};
  BufferRef bogus{1'000'000, 8};
  ASSERT_TRUE(vq.add_buf({&bogus, 1}, {}));
  vq.kick(0);
  auto chain = vq.pop_avail();
  ASSERT_TRUE(chain);
  EXPECT_EQ(chain->segments[0].ptr, nullptr)
      << "backend must detect unmapped guest addresses";
}

TEST(Virtqueue, ShutdownUnblocksDevice) {
  FlatMem mem{64};
  Virtqueue vq{4, mem.translator()};
  std::optional<Chain> got = Chain{};
  std::thread device([&] { got = vq.pop_avail(); });
  vq.shutdown();
  device.join();
  EXPECT_FALSE(got.has_value());
}

TEST(Virtqueue, CrossThreadPipelineKeepsDataIntact) {
  FlatMem mem{1 << 16};
  Virtqueue vq{32, mem.translator()};
  constexpr int kMsgs = 200;
  constexpr std::uint32_t kMsgLen = 64;

  std::thread device([&] {
    for (int i = 0; i < kMsgs; ++i) {
      auto chain = vq.pop_avail();
      ASSERT_TRUE(chain);
      ASSERT_EQ(chain->segments.size(), 2u);
      // Echo request into response segment.
      std::memcpy(chain->segments[1].ptr, chain->segments[0].ptr, kMsgLen);
      ASSERT_EQ(vq.push_used(chain->head, kMsgLen, chain->kick_ts + 10),
                sim::Status::kOk);
    }
  });

  sim::Rng rng{5};
  for (int i = 0; i < kMsgs; ++i) {
    const std::uint64_t req_gpa = 0;
    const std::uint64_t rsp_gpa = 4'096;
    rng.fill(mem.at(req_gpa), kMsgLen);
    BufferRef out{req_gpa, kMsgLen};
    BufferRef in{rsp_gpa, kMsgLen};
    auto head = vq.add_buf({&out, 1}, {&in, 1});
    ASSERT_TRUE(head);
    vq.kick(static_cast<sim::Nanos>(i));
    // Wait for the echo.
    std::optional<UsedElem> used;
    while (!(used = vq.get_used())) std::this_thread::yield();
    EXPECT_EQ(used->id, *head);
    EXPECT_EQ(std::memcmp(mem.at(req_gpa), mem.at(rsp_gpa), kMsgLen), 0);
  }
  device.join();
}

// Ring-invariant property sweep: random post/complete interleavings never
// leak descriptors and used ids always match posted heads.
class RingChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingChurnTest, DescriptorAccountingExact) {
  FlatMem mem{1 << 16};
  Virtqueue vq{16, mem.translator()};
  sim::Rng rng{GetParam()};
  std::vector<std::uint16_t> outstanding;

  for (int step = 0; step < 500; ++step) {
    if (outstanding.empty() || (rng.uniform() < 0.55 && vq.free_descriptors() >= 3)) {
      std::vector<BufferRef> out(1 + rng.below(2), BufferRef{0, 16});
      BufferRef in{256, 16};
      auto head = vq.add_buf({out.data(), out.size()}, {&in, 1});
      if (!head) continue;
      vq.kick(static_cast<sim::Nanos>(step));
      outstanding.push_back(*head);
    } else {
      auto chain = vq.try_pop_avail();
      if (!chain) continue;
      ASSERT_EQ(vq.push_used(chain->head, 4, 0), sim::Status::kOk);
      auto used = vq.get_used();
      ASSERT_TRUE(used);
      ASSERT_EQ(used->id, chain->head);
      auto it = std::find(outstanding.begin(), outstanding.end(),
                          static_cast<std::uint16_t>(used->id));
      ASSERT_NE(it, outstanding.end()) << "used id was never posted";
      outstanding.erase(it);
    }
  }
  // Drain everything; the free list must return to full.
  while (auto chain = vq.try_pop_avail()) {
    ASSERT_EQ(vq.push_used(chain->head, 0, 0), sim::Status::kOk);
    ASSERT_TRUE(vq.get_used());
  }
  EXPECT_EQ(vq.free_descriptors(), 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingChurnTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- EVENT_IDX notification suppression (virtio 1.0 sec 2.6.7) --------------

TEST(Virtqueue, EventIdxSuppressesKicksWhileDoorbellPending) {
  FlatMem mem{4'096};
  Virtqueue vq{8, mem.translator()};
  vq.set_event_idx(true);
  BufferRef out{0, 8};

  // First publish from idle: the device armed avail_event at its consumption
  // point, so the doorbell is needed (the idle->busy edge is never elided).
  auto h1 = vq.add_buf({&out, 1}, {}, 10);
  ASSERT_TRUE(h1);
  EXPECT_TRUE(vq.kick_prepare());
  vq.kick(100);

  // Second publish while that doorbell is still pending: the device has not
  // re-armed past it, so the kick is suppressed — the burst rides the first
  // entry's doorbell.
  auto h2 = vq.add_buf({&out, 1}, {}, 20);
  ASSERT_TRUE(h2);
  EXPECT_FALSE(vq.kick_prepare());
  EXPECT_EQ(vq.suppressed_kicks(), 1u);

  // The suppressed chain is still drained: one wakeup, both chains.
  auto batch = vq.pop_avail_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].head, *h1);
  EXPECT_EQ(batch[1].head, *h2);
  // The suppressed entry's visibility is bounded by the covering doorbell.
  EXPECT_GE(batch[1].kick_ts, 100);

  // Back to idle: the device re-armed at its new consumption point inside
  // the drain, so the next publish needs a doorbell again.
  auto h3 = vq.add_buf({&out, 1}, {}, 30);
  ASSERT_TRUE(h3);
  EXPECT_TRUE(vq.kick_prepare());
  EXPECT_EQ(vq.suppressed_kicks(), 1u);
}

TEST(Virtqueue, EventIdxCoalescesInterruptsPerBatch) {
  FlatMem mem{4'096};
  Virtqueue vq{8, mem.translator()};
  vq.set_event_idx(true);
  BufferRef out{0, 8};
  auto h1 = vq.add_buf({&out, 1}, {}, 0);
  auto h2 = vq.add_buf({&out, 1}, {}, 0);
  ASSERT_TRUE(h1);
  ASSERT_TRUE(h2);
  vq.kick(50);
  auto batch = vq.pop_avail_batch();
  ASSERT_EQ(batch.size(), 2u);

  // First completion of the batch crosses used_event -> interrupt.
  ASSERT_EQ(vq.push_used(*h1, 0, 200), sim::Status::kOk);
  EXPECT_TRUE(vq.should_interrupt());
  // Second completion before the driver re-armed -> coalesced.
  ASSERT_EQ(vq.push_used(*h2, 0, 210), sim::Status::kOk);
  EXPECT_FALSE(vq.should_interrupt());
  EXPECT_EQ(vq.suppressed_irqs(), 1u);

  // One IRQ, two completions drained.
  EXPECT_TRUE(vq.get_used());
  EXPECT_TRUE(vq.get_used());
  EXPECT_FALSE(vq.get_used());
  // Re-arm with nothing pending: clean, no forced re-drain.
  EXPECT_FALSE(vq.arm_used_event());

  // Next completion after the re-arm gets its own interrupt (busy->idle->
  // busy edge is never suppressed).
  auto h3 = vq.add_buf({&out, 1}, {}, 0);
  ASSERT_TRUE(h3);
  vq.kick(300);
  ASSERT_EQ(vq.pop_avail_batch().size(), 1u);
  ASSERT_EQ(vq.push_used(*h3, 0, 400), sim::Status::kOk);
  EXPECT_TRUE(vq.should_interrupt());
  EXPECT_EQ(vq.suppressed_irqs(), 1u);
}

TEST(Virtqueue, ArmUsedEventReportsRacedCompletion) {
  // The classic lost-wakeup edge: a completion lands while the driver is
  // between "drained everything" and "armed used_event". arm_used_event
  // must report the pending entry so the driver re-drains instead of
  // sleeping through a suppressed interrupt.
  FlatMem mem{4'096};
  Virtqueue vq{8, mem.translator()};
  vq.set_event_idx(true);
  BufferRef out{0, 8};
  auto h1 = vq.add_buf({&out, 1}, {}, 0);
  ASSERT_TRUE(h1);
  vq.kick(10);
  ASSERT_EQ(vq.pop_avail_batch().size(), 1u);
  ASSERT_EQ(vq.push_used(*h1, 0, 100), sim::Status::kOk);

  // Driver has not drained yet: the arm must report pending work.
  EXPECT_TRUE(vq.arm_used_event());
  EXPECT_TRUE(vq.get_used());
  EXPECT_FALSE(vq.arm_used_event());
}

TEST(Virtqueue, EventIdxOffNeverSuppresses) {
  FlatMem mem{4'096};
  Virtqueue vq{8, mem.translator()};
  BufferRef out{0, 8};
  for (int i = 0; i < 3; ++i) {
    auto h = vq.add_buf({&out, 1}, {}, 0);
    ASSERT_TRUE(h);
    // Legacy behavior: every publish wants a doorbell, every completion an
    // interrupt.
    EXPECT_TRUE(vq.kick_prepare());
    vq.kick(i * 10);
    auto chain = vq.pop_avail();
    ASSERT_TRUE(chain);
    ASSERT_EQ(vq.push_used(chain->head, 0, i * 10 + 5), sim::Status::kOk);
    EXPECT_TRUE(vq.should_interrupt());
    EXPECT_TRUE(vq.get_used());
  }
  EXPECT_FALSE(vq.arm_used_event());  // no-op with EVENT_IDX off
  EXPECT_EQ(vq.suppressed_kicks(), 0u);
  EXPECT_EQ(vq.suppressed_irqs(), 0u);
}

TEST(DeviceStatus, HandshakeSucceeds) {
  DeviceStatus status{VIRTIO_F_VERSION_1 | VPHI_F_SCIF};
  status.set(VIRTIO_STATUS_ACKNOWLEDGE);
  status.set(VIRTIO_STATUS_DRIVER);
  EXPECT_TRUE(status.negotiate(VIRTIO_F_VERSION_1 | VPHI_F_SCIF));
  status.set(VIRTIO_STATUS_DRIVER_OK);
  EXPECT_TRUE(status.driver_ok());
  EXPECT_FALSE(status.failed());
  EXPECT_EQ(status.accepted_features(), VIRTIO_F_VERSION_1 | VPHI_F_SCIF);
}

TEST(DeviceStatus, UnofferedFeatureFailsNegotiation) {
  DeviceStatus status{VPHI_F_SCIF};
  EXPECT_FALSE(status.negotiate(VPHI_F_SCIF | VPHI_F_MMAP_PFN));
  EXPECT_TRUE(status.failed());
}

TEST(DeviceStatus, ResetClearsState) {
  DeviceStatus status{VPHI_F_SCIF};
  ASSERT_TRUE(status.negotiate(VPHI_F_SCIF));
  status.reset();
  EXPECT_FALSE(status.has(VIRTIO_STATUS_FEATURES_OK));
  EXPECT_EQ(status.accepted_features(), 0u);
}

}  // namespace
}  // namespace vphi::virtio
