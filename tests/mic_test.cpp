// Unit tests for the Xeon Phi card model: device memory arena, sysfs
// identity, uOS scheduler, card lifecycle.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mic/card.hpp"
#include "mic/device_memory.hpp"
#include "mic/sysfs.hpp"
#include "mic/uos.hpp"
#include "sim/cost_model.hpp"
#include "sim/rng.hpp"

namespace vphi::mic {
namespace {

using sim::CostModel;

TEST(DeviceMemory, AllocateFreeRoundtrip) {
  DeviceMemory mem{1 << 20};
  auto a = mem.allocate(10'000);
  ASSERT_TRUE(a);
  EXPECT_EQ(*a % DeviceMemory::kPageSize, 0u);
  EXPECT_EQ(mem.used(), 12'288u) << "rounded to pages";
  EXPECT_EQ(mem.free(*a), sim::Status::kOk);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(DeviceMemory, ExhaustionReturnsNoMemory) {
  DeviceMemory mem{64 * 1024};
  auto a = mem.allocate(60 * 1024);
  ASSERT_TRUE(a);
  auto b = mem.allocate(8 * 1024);
  EXPECT_EQ(b.status(), sim::Status::kNoMemory);
}

TEST(DeviceMemory, CoalescingAllowsReuse) {
  DeviceMemory mem{64 * 1024};
  auto a = mem.allocate(16 * 1024);
  auto b = mem.allocate(16 * 1024);
  auto c = mem.allocate(16 * 1024);
  ASSERT_TRUE(a && b && c);
  // Free middle, then neighbours: must coalesce back into one span.
  EXPECT_EQ(mem.free(*b), sim::Status::kOk);
  EXPECT_EQ(mem.free(*a), sim::Status::kOk);
  EXPECT_EQ(mem.free(*c), sim::Status::kOk);
  auto big = mem.allocate(64 * 1024);
  EXPECT_TRUE(big) << "full capacity reusable after coalescing";
}

TEST(DeviceMemory, FreeOfUnknownOffsetRejected) {
  DeviceMemory mem{64 * 1024};
  EXPECT_EQ(mem.free(0), sim::Status::kInvalidArgument);
  auto a = mem.allocate(4'096);
  ASSERT_TRUE(a);
  EXPECT_EQ(mem.free(*a + 1), sim::Status::kInvalidArgument);
}

TEST(DeviceMemory, CoversChecksAllocatedRanges) {
  DeviceMemory mem{1 << 20};
  auto a = mem.allocate(8'192);
  ASSERT_TRUE(a);
  EXPECT_TRUE(mem.covers(*a, 8'192));
  EXPECT_TRUE(mem.covers(*a + 100, 100));
  EXPECT_FALSE(mem.covers(*a, 8'193));
  EXPECT_FALSE(mem.covers(*a + 8'192, 1));
}

TEST(DeviceMemory, DataIsReadableThroughAt) {
  DeviceMemory mem{1 << 20};
  auto a = mem.allocate(4'096);
  ASSERT_TRUE(a);
  sim::Rng rng{3};
  std::vector<std::uint8_t> pattern(4'096);
  rng.fill(pattern.data(), pattern.size());
  std::memcpy(mem.at(*a), pattern.data(), pattern.size());
  EXPECT_EQ(std::memcmp(mem.at(*a), pattern.data(), pattern.size()), 0);
  EXPECT_EQ(mem.at(mem.capacity()), nullptr);
}

TEST(DeviceMemory, ZeroLengthAllocationRejected) {
  DeviceMemory mem{1 << 20};
  EXPECT_EQ(mem.allocate(0).status(), sim::Status::kInvalidArgument);
}

TEST(Sysfs, The3120PIdentity) {
  auto info = SysfsInfo::for_3120p(0);
  EXPECT_EQ(info.get("family").value(), "Knights Corner");
  EXPECT_EQ(info.get("sku").value(), "3120P");
  EXPECT_EQ(info.get_u64("cores_count").value(), 57u);
  EXPECT_EQ(info.get_u64("memsize_mb").value(), 6'144u);
  EXPECT_FALSE(info.get("nonexistent").has_value());
  EXPECT_FALSE(info.get_u64("family").has_value()) << "non-numeric";
  EXPECT_NE(info.render().find("sku: 3120P"), std::string::npos);
}

TEST(Uos, TopologyFrom3120P) {
  uos::Scheduler sched{CostModel::paper()};
  EXPECT_EQ(sched.usable_cores(), 56u);
  EXPECT_EQ(sched.hw_threads(), 224u);
}

TEST(Uos, SingleThreadPerCoreIsHalfIssueRate) {
  // KNC's headline property: one thread/core can only reach ~50% of peak.
  uos::Scheduler sched{CostModel::paper()};
  const double r1 = sched.core_flops_rate(1);
  const double r2 = sched.core_flops_rate(2);
  const auto& m = CostModel::paper();
  EXPECT_DOUBLE_EQ(r1, m.mic_core_hz * m.mic_flops_per_cycle * 0.50);
  EXPECT_GT(r2, 1.5 * r1) << "two threads nearly double the issue rate";
}

TEST(Uos, AggregateRateGrowsWithThreads) {
  uos::Scheduler sched{CostModel::paper()};
  const double r56 = sched.aggregate_flops_rate(56);
  const double r112 = sched.aggregate_flops_rate(112);
  const double r224 = sched.aggregate_flops_rate(224);
  EXPECT_GT(r112, r56);
  EXPECT_GT(r224, r112);
  // 224 threads approach the card's practical peak (~1 TF for a 3120P).
  EXPECT_NEAR(r224 / 1e12, 0.94, 0.05);
}

TEST(Uos, MakespanScalesInverselyWithRate) {
  uos::Scheduler sched{CostModel::paper()};
  const double flops = 2.0 * 1e12;
  const auto t56 = sched.compute_makespan(flops, 56);
  const auto t224 = sched.compute_makespan(flops, 224);
  EXPECT_GT(t56, t224);
  EXPECT_EQ(sched.compute_makespan(0.0, 56), 0u);
  EXPECT_EQ(sched.compute_makespan(flops, 0), 0u);
}

TEST(Uos, OversubscriptionDegradesGracefully) {
  uos::Scheduler sched{CostModel::paper()};
  const double flops = 1e12;
  const auto t224 = sched.compute_makespan(flops, 224);
  const auto t448 = sched.compute_makespan(flops, 448);
  const auto t896 = sched.compute_makespan(flops, 896);
  // More threads than hw contexts cannot go faster, only slightly slower
  // (context-switch tax).
  EXPECT_GE(t448, t224);
  EXPECT_GE(t896, t448);
  EXPECT_LT(static_cast<double>(t896), 1.10 * static_cast<double>(t224))
      << "RR multiplexing should not collapse throughput";
}

TEST(Uos, UnbalancedPlacementGovernedBySlowestCore) {
  uos::Scheduler sched{CostModel::paper()};
  // 57 threads on 56 cores: one core runs 2 threads; makespan must exceed
  // the 56-thread case even though aggregate rate is higher.
  const double flops = 1e12;
  EXPECT_GT(sched.compute_makespan(flops, 57), sched.compute_makespan(flops, 56));
}

TEST(Uos, SpawnAndExecCosts) {
  uos::Scheduler sched{CostModel::paper()};
  const auto& m = CostModel::paper();
  EXPECT_EQ(sched.spawn_cost(224), 224u * m.uos_spawn_thread_ns);
  EXPECT_EQ(sched.exec_cost(), m.uos_exec_setup_ns);
}

TEST(Card, BootBringsCardOnline) {
  Card card{{.index = 0, .memory_backing_bytes = 1 << 20}, CostModel::paper()};
  EXPECT_FALSE(card.online());
  card.boot();
  EXPECT_TRUE(card.online());
  EXPECT_EQ(card.sysfs().get("state").value(), "online");
  const auto t = card.card_actor().now();
  card.boot();  // idempotent
  EXPECT_EQ(card.card_actor().now(), t);
}

TEST(Card, ComponentsWired) {
  Card card{{.index = 3, .memory_backing_bytes = 1 << 20}, CostModel::paper()};
  EXPECT_EQ(card.index(), 3u);
  EXPECT_EQ(card.sysfs().get("mic_id").value(), "3");
  EXPECT_EQ(card.memory().capacity(), 1u << 20);
  EXPECT_EQ(&card.dma().link(), &card.link());
}

}  // namespace
}  // namespace vphi::mic
