// Edge-case and property tests across the vPHI stack: chunk boundaries,
// probe/negotiation failures, poll sets, peer-initiated fences, recv
// chunking, mmap corner cases, the C API over the guest provider, the
// mic_info tool, and a randomized full-stack stream property sweep.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "scif/api.hpp"
#include "scif/fabric.hpp"
#include "sim/actor.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "tools/mic_info.hpp"
#include "tools/testbed.hpp"
#include "virtio/device.hpp"

namespace vphi::core {
namespace {

using scif::PortId;
using scif::SCIF_ACCEPT_SYNC;
using scif::SCIF_PROT_READ;
using scif::SCIF_PROT_WRITE;
using scif::SCIF_RECV_BLOCK;
using scif::SCIF_RMA_SYNC;
using scif::SCIF_SEND_BLOCK;
using sim::Status;
using tools::Testbed;
using tools::TestbedConfig;

class EdgeFixture : public ::testing::Test {
 protected:
  EdgeFixture() : bed_(TestbedConfig{}) {}

  std::pair<int, int> guest_pair(scif::Port port) {
    auto lep = bed_.card_provider().open();
    EXPECT_TRUE(lep);
    EXPECT_TRUE(bed_.card_provider().bind(*lep, port));
    EXPECT_TRUE(sim::ok(bed_.card_provider().listen(*lep, 4)));
    auto server = std::async(std::launch::async, [this, lep = *lep] {
      sim::Actor a{"srv", sim::Actor::AtNow{}};
      sim::ActorScope scope(a);
      auto acc = bed_.card_provider().accept(lep, SCIF_ACCEPT_SYNC);
      return acc ? acc->epd : -1;
    });
    auto& guest = bed_.vm(0).guest_scif();
    auto epd = guest.open();
    EXPECT_TRUE(epd);
    EXPECT_TRUE(sim::ok(guest.connect(*epd, PortId{bed_.card_node(), port})));
    return {*epd, server.get()};
  }

  Testbed bed_;
};

// --- chunk boundaries ---------------------------------------------------------

class ChunkBoundaryTest
    : public EdgeFixture,
      public ::testing::WithParamInterface<std::size_t> {};

TEST_P(ChunkBoundaryTest, SendSizesAroundKmallocCap) {
  // Property: any size splits into ceil(size / 4 MiB) ring transactions
  // and arrives byte-exact.
  const std::size_t size = GetParam();
  auto [guest_epd, card_epd] = guest_pair(6'000);
  auto& guest = bed_.vm(0).guest_scif();

  std::vector<std::uint8_t> msg(size);
  sim::Rng rng{size};
  rng.fill(msg.data(), msg.size());

  const auto sends_before = bed_.vm(0).backend().op_count(Op::kSend);
  auto receiver = std::async(std::launch::async, [&, card_epd = card_epd] {
    sim::Actor a{"rx", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    std::vector<std::uint8_t> got(size);
    auto r = bed_.card_provider().recv(card_epd, got.data(), size,
                                       SCIF_RECV_BLOCK);
    EXPECT_TRUE(r);
    return got;
  });
  auto sent = guest.send(guest_epd, msg.data(), size, SCIF_SEND_BLOCK);
  ASSERT_TRUE(sent);
  EXPECT_EQ(*sent, size);
  const auto expected_chunks =
      (size + hv::kKmallocMaxSize - 1) / hv::kKmallocMaxSize;
  EXPECT_EQ(bed_.vm(0).backend().op_count(Op::kSend) - sends_before,
            expected_chunks);
  EXPECT_EQ(receiver.get(), msg);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChunkBoundaryTest,
    ::testing::Values(1, 4'096, (4ull << 20) - 1, 4ull << 20,
                      (4ull << 20) + 1, (8ull << 20) + 3, 12ull << 20));

TEST_F(EdgeFixture, RecvChunksLargeRequests) {
  auto [guest_epd, card_epd] = guest_pair(6'010);
  auto& guest = bed_.vm(0).guest_scif();
  constexpr std::size_t kSize = 9ull << 20;  // 3 chunks (4+4+1)

  std::vector<std::uint8_t> msg(kSize, 0xA5);
  auto sender = std::async(std::launch::async, [&, card_epd = card_epd] {
    sim::Actor a{"tx", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto r = bed_.card_provider().send(card_epd, msg.data(), kSize,
                                       SCIF_SEND_BLOCK);
    EXPECT_TRUE(r);
  });
  const auto recvs_before = bed_.vm(0).backend().op_count(Op::kRecv);
  std::vector<std::uint8_t> got(kSize);
  auto r = guest.recv(guest_epd, got.data(), kSize, SCIF_RECV_BLOCK);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, kSize);
  EXPECT_EQ(bed_.vm(0).backend().op_count(Op::kRecv) - recvs_before, 3u);
  EXPECT_EQ(got, msg);
  sender.get();
}

// --- virtio probe / negotiation failure -----------------------------------------

TEST(VphiProbe, TransactBeforeProbeFails) {
  hv::Vm vm{{.name = "bare"}, sim::CostModel::paper()};
  FrontendDriver frontend{vm};
  sim::Actor a{"app"};
  FrontendDriver::TransactArgs args;
  args.header.op = Op::kOpen;
  EXPECT_EQ(frontend.transact(a, args).status(), Status::kNoDevice);
}

TEST(VphiProbe, ProbeNegotiatesFeatures) {
  hv::Vm vm{{.name = "probing"}, sim::CostModel::paper()};
  FrontendDriver frontend{vm};
  EXPECT_EQ(frontend.probe(), Status::kOk);
  EXPECT_TRUE(vm.device_status().driver_ok());
  EXPECT_TRUE(vm.device_status().accepted_features() & virtio::VPHI_F_SCIF);
}

// --- poll sets through the ring ----------------------------------------------

TEST_F(EdgeFixture, GuestPollMultipleEndpoints) {
  auto [g1, c1] = guest_pair(6'020);
  auto [g2, c2] = guest_pair(6'021);
  auto& guest = bed_.vm(0).guest_scif();

  std::uint8_t b = 1;
  ASSERT_TRUE(bed_.card_provider().send(c2, &b, 1, SCIF_SEND_BLOCK));

  scif::PollEpd set[2] = {{g1, scif::SCIF_POLLIN, 0},
                          {g2, scif::SCIF_POLLIN, 0}};
  auto n = guest.poll(set, 2, -1);
  ASSERT_TRUE(n);
  EXPECT_EQ(*n, 1);
  EXPECT_EQ(set[0].revents, 0);
  EXPECT_TRUE(set[1].revents & scif::SCIF_POLLIN);
  (void)c1;
}

TEST_F(EdgeFixture, GuestPollInvalidArguments) {
  auto& guest = bed_.vm(0).guest_scif();
  EXPECT_EQ(guest.poll(nullptr, 1, 0).status(), Status::kInvalidArgument);
  scif::PollEpd p{1, scif::SCIF_POLLIN, 0};
  EXPECT_EQ(guest.poll(&p, 0, 0).status(), Status::kInvalidArgument);
}

// --- fences initiated by the peer ------------------------------------------------

TEST_F(EdgeFixture, FenceInitPeerCoversRemoteRma) {
  auto [guest_epd, card_epd] = guest_pair(6'030);
  auto& guest = bed_.vm(0).guest_scif();
  auto& card = bed_.card_provider();

  // Guest window (pinned guest memory) the card will write into.
  constexpr std::size_t kBytes = 1 << 20;
  auto buf = bed_.vm(0).alloc_user_buffer(kBytes);
  ASSERT_TRUE(buf);
  auto greg = guest.register_mem(guest_epd, *buf, kBytes, 0,
                                 SCIF_PROT_READ | SCIF_PROT_WRITE,
                                 scif::SCIF_MAP_FIXED);
  ASSERT_TRUE(greg);

  // Card-side source window + async writeto into the guest.
  std::vector<std::byte> src(kBytes, std::byte{0x3C});
  auto creg = card.register_mem(card_epd, src.data(), kBytes, 0,
                                SCIF_PROT_READ, 0);
  ASSERT_TRUE(creg);
  ASSERT_EQ(card.writeto(card_epd, *creg, kBytes, 0, 0), Status::kOk);

  // The guest fences on *peer-initiated* RMAs.
  auto mark = guest.fence_mark(guest_epd, scif::SCIF_FENCE_INIT_PEER);
  ASSERT_TRUE(mark);
  ASSERT_EQ(guest.fence_wait(guest_epd, *mark), Status::kOk);
  EXPECT_EQ(std::memcmp(*buf, src.data(), kBytes), 0);
}

// --- mmap corner cases ------------------------------------------------------------

TEST_F(EdgeFixture, MmapAcrossWindowBoundaryUnsupported) {
  auto [guest_epd, card_epd] = guest_pair(6'040);
  auto& card = bed_.card_provider();
  std::vector<std::byte> w1(4'096), w2(4'096);
  ASSERT_TRUE(card.register_mem(card_epd, w1.data(), 4'096, 0x10000,
                                SCIF_PROT_READ, scif::SCIF_MAP_FIXED));
  ASSERT_TRUE(card.register_mem(card_epd, w2.data(), 4'096, 0x11000,
                                SCIF_PROT_READ, scif::SCIF_MAP_FIXED));
  auto& guest = bed_.vm(0).guest_scif();
  // RMA across the boundary works (span walk)...
  auto sink = bed_.vm(0).alloc_user_buffer(8'192);
  ASSERT_TRUE(sink);
  EXPECT_EQ(guest.vreadfrom(guest_epd, *sink, 8'192, 0x10000, SCIF_RMA_SYNC),
            Status::kOk);
  // ...but a single mmap cannot alias two disjoint backings.
  EXPECT_EQ(guest.mmap(guest_epd, 0x10000, 8'192, SCIF_PROT_READ).status(),
            Status::kNotSupported);
}

TEST_F(EdgeFixture, MunmapUnknownCookieRejected) {
  auto& guest = bed_.vm(0).guest_scif();
  scif::Mapping bogus;
  bogus.cookie = 424'242;
  bogus.data = reinterpret_cast<std::byte*>(0x1);
  bogus.len = 4'096;
  EXPECT_EQ(guest.munmap(bogus), Status::kInvalidArgument);
}

// --- the C API over the guest provider ------------------------------------------

TEST_F(EdgeFixture, CStyleApiWorksInsideTheVm) {
  // The full libscif shim bound to the virtualized provider: open, connect,
  // register, RMA, fence, mmap — no call changes relative to the host.
  auto lep = bed_.card_provider().open();
  ASSERT_TRUE(lep);
  ASSERT_TRUE(bed_.card_provider().bind(*lep, 6'050));
  ASSERT_TRUE(sim::ok(bed_.card_provider().listen(*lep, 2)));
  auto server = std::async(std::launch::async, [&] {
    sim::Actor a{"srv", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    auto acc = bed_.card_provider().accept(*lep, SCIF_ACCEPT_SYNC);
    ASSERT_TRUE(acc);
    // Register 64 KiB of device memory at fixed offset 0.
    auto dev = bed_.card().memory().allocate(65'536);
    ASSERT_TRUE(dev);
    std::memset(bed_.card().memory().at(*dev), 0x77, 65'536);
    ASSERT_TRUE(bed_.card_provider().register_mem(
        acc->epd, bed_.card().memory().at(*dev), 65'536, 0,
        SCIF_PROT_READ | SCIF_PROT_WRITE, scif::SCIF_MAP_FIXED));
    std::uint8_t ready = 1;
    ASSERT_TRUE(bed_.card_provider().send(acc->epd, &ready, 1,
                                          SCIF_SEND_BLOCK));
    std::uint8_t bye;
    bed_.card_provider().recv(acc->epd, &bye, 1, SCIF_RECV_BLOCK);
  });

  sim::Actor app{"guest-app", sim::Actor::AtNow{}};
  sim::ActorScope scope(app);
  scif::api::ProcessContext ctx(bed_.vm(0).guest_scif());

  const auto epd = scif::api::scif_open();
  ASSERT_GE(epd, 0);
  const PortId dst{bed_.card_node(), 6'050};
  ASSERT_EQ(scif::api::scif_connect(epd, &dst), 0);
  std::uint8_t ready = 0;
  ASSERT_EQ(scif::api::scif_recv(epd, &ready, 1, SCIF_RECV_BLOCK), 1);

  // vreadfrom pulls the 0x77 pattern.
  auto buf = bed_.vm(0).alloc_user_buffer(65'536);
  ASSERT_TRUE(buf);
  ASSERT_EQ(scif::api::scif_vreadfrom(epd, *buf, 65'536, 0, SCIF_RMA_SYNC), 0);
  EXPECT_EQ(static_cast<std::uint8_t*>(*buf)[12'345], 0x77);

  // Register + fence + mmap through the shim.
  ASSERT_GE(scif::api::scif_register(epd, *buf, 65'536, 0,
                                     SCIF_PROT_READ | SCIF_PROT_WRITE, 0),
            0);
  int mark = -1;
  ASSERT_EQ(scif::api::scif_fence_mark(epd, scif::SCIF_FENCE_INIT_SELF,
                                       &mark),
            0);
  ASSERT_EQ(scif::api::scif_fence_wait(epd, mark), 0);

  scif::Mapping mapping;
  ASSERT_EQ(scif::api::scif_mmap(epd, 0, 4'096, SCIF_PROT_READ, &mapping), 0);
  EXPECT_TRUE(mapping.valid());
  ASSERT_EQ(scif::api::scif_munmap(&mapping), 0);

  std::uint8_t bye = 0;
  scif::api::scif_send(epd, &bye, 1, SCIF_SEND_BLOCK);
  ASSERT_EQ(scif::api::scif_close(epd), 0);
  server.get();
}

// --- mic_info tool --------------------------------------------------------------

TEST_F(EdgeFixture, MicInfoIdenticalHostAndGuest) {
  const std::string host_view = tools::render_mic_info(bed_.host_provider());
  const std::string guest_view =
      tools::render_mic_info(bed_.vm(0).guest_scif());
  EXPECT_FALSE(host_view.empty());
  EXPECT_EQ(host_view, guest_view)
      << "the backend must forward the host's sysfs view verbatim";
  EXPECT_NE(host_view.find("family: Knights Corner"), std::string::npos);
}

// --- randomized full-stack stream property ----------------------------------------

class StackStreamTest : public EdgeFixture,
                        public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(StackStreamTest, RandomMessageSequencesArriveExactly) {
  // Property: an arbitrary sequence of variable-size guest sends is
  // reassembled byte-exactly by the card, regardless of how the vPHI path
  // chunks and the stream segments them.
  const std::uint64_t seed = GetParam();
  auto [guest_epd, card_epd] =
      guest_pair(static_cast<scif::Port>(6'100 + seed));
  auto& guest = bed_.vm(0).guest_scif();

  sim::Rng rng{seed};
  const int messages = 3 + static_cast<int>(rng.below(5));
  std::vector<std::vector<std::uint8_t>> sent;
  std::size_t total = 0;
  for (int i = 0; i < messages; ++i) {
    std::vector<std::uint8_t> msg(1 + rng.below(300'000));
    rng.fill(msg.data(), msg.size());
    total += msg.size();
    sent.push_back(std::move(msg));
  }

  auto receiver = std::async(std::launch::async, [&, card_epd = card_epd] {
    sim::Actor a{"rx", sim::Actor::AtNow{}};
    sim::ActorScope scope(a);
    std::vector<std::uint8_t> got(total);
    auto r = bed_.card_provider().recv(card_epd, got.data(), total,
                                       SCIF_RECV_BLOCK);
    EXPECT_TRUE(r);
    return got;
  });

  std::vector<std::uint8_t> concatenated;
  for (const auto& msg : sent) {
    auto r = guest.send(guest_epd, msg.data(), msg.size(), SCIF_SEND_BLOCK);
    ASSERT_TRUE(r);
    concatenated.insert(concatenated.end(), msg.begin(), msg.end());
  }
  EXPECT_EQ(receiver.get(), concatenated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackStreamTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- transport trust regressions -------------------------------------------
//
// One regression per guest-trust bug: each of these used to corrupt state,
// overread memory or hang before the backend validator / frontend response
// checks / bounded ring walk existed.

/// Post a hand-crafted chain straight on the ring (no frontend driver, like
/// a hostile guest would) and spin for the backend's response.
ResponseHeader raw_roundtrip(hv::Vm& vm, const RequestHeader& req,
                             std::size_t out_seg_len) {
  auto& ram = vm.ram();
  auto req_gpa = ram.kmalloc(sizeof(RequestHeader));
  auto resp_gpa = ram.kmalloc(sizeof(ResponseHeader));
  EXPECT_TRUE(req_gpa && resp_gpa);
  std::memcpy(ram.translate(*req_gpa, sizeof(RequestHeader)), &req,
              sizeof(RequestHeader));

  virtio::BufferRef out[2] = {
      {*req_gpa, static_cast<std::uint32_t>(sizeof(RequestHeader))}, {0, 0}};
  std::size_t n_out = 1;
  std::uint64_t out_gpa = 0;
  if (out_seg_len > 0) {
    auto gpa = ram.kmalloc(out_seg_len);
    EXPECT_TRUE(gpa);
    out_gpa = *gpa;
    out[1] = {out_gpa, static_cast<std::uint32_t>(out_seg_len)};
    n_out = 2;
  }
  virtio::BufferRef in[1] = {
      {*resp_gpa, static_cast<std::uint32_t>(sizeof(ResponseHeader))}};

  sim::Actor a{"hostile-guest"};
  EXPECT_TRUE(vm.vq().add_buf({out, n_out}, {in, 1}));
  vm.vq().kick(a.now());

  for (;;) {
    if (auto used = vm.vq().get_used()) {
      EXPECT_GE(used->len, sizeof(ResponseHeader));
      ResponseHeader resp;
      std::memcpy(&resp, ram.translate(*resp_gpa, sizeof(ResponseHeader)),
                  sizeof(ResponseHeader));
      ram.kfree(*req_gpa);
      ram.kfree(*resp_gpa);
      if (out_seg_len > 0) ram.kfree(out_gpa);
      return resp;
    }
    std::this_thread::yield();
  }
}

TEST(BackendValidation, OverclaimedPayloadLenRejected) {
  // Regression: the backend discarded the readable segment's length, so a
  // header claiming payload_len = 8 KiB over a 4 KiB segment made kSend
  // read 4 KiB of unrelated host memory.
  const sim::CostModel model = sim::CostModel::paper();
  hv::Vm vm{{.name = "lying-guest"}, model};
  scif::Fabric fabric{model};
  BackendDevice backend{vm, fabric};
  backend.start();

  RequestHeader req;
  req.op = Op::kSend;
  req.epd = 0;
  req.payload_len = 8'192;  // twice what the chain actually carries
  const ResponseHeader resp = raw_roundtrip(vm, req, 4'096);
  EXPECT_EQ(response_status(resp), Status::kBadAddress);
  EXPECT_GE(backend.validation_failures(), 1u);
  backend.stop();
}

TEST(BackendValidation, PollCountOverflowRejected) {
  // A poll request whose nepds * sizeof(PollEpd) overflows 32-bit math used
  // to slip past the per-op bounds check.
  const sim::CostModel model = sim::CostModel::paper();
  hv::Vm vm{{.name = "poll-bomb"}, model};
  scif::Fabric fabric{model};
  BackendDevice backend{vm, fabric};
  backend.start();

  RequestHeader req;
  req.op = Op::kPoll;
  req.arg0 = (1ull << 62);  // absurd nepds
  req.payload_len = 4'096;
  const ResponseHeader resp = raw_roundtrip(vm, req, 4'096);
  EXPECT_EQ(response_status(resp), Status::kInvalidArgument);
  EXPECT_GE(backend.validation_failures(), 1u);
  backend.stop();
}

class TrustRegression : public EdgeFixture {
 protected:
  void TearDown() override { sim::fault_injector().disarm_all(); }
};

TEST_F(TrustRegression, ShortUsedWriteSurfacesIoError) {
  // Regression: the frontend ignored used.len entirely and parsed whatever
  // bytes sat in the response slot — here, uninitialized kmalloc memory.
  sim::fault_injector().arm_nth(sim::FaultSite::kShortUsedWrite, 1);
  EXPECT_EQ(bed_.vm(0).guest_scif().get_node_ids().status(),
            Status::kIoError);
  EXPECT_GE(bed_.vm(0).frontend().protocol_errors(), 1u);
}

TEST_F(TrustRegression, CyclicChainAnsweredInsteadOfHanging) {
  // Regression: the descriptor walk followed `next` unboundedly, so a chain
  // whose terminator looped back to its head spun the service thread
  // forever. Now it is poisoned, answered with kIoError, and recycled.
  sim::fault_injector().arm_nth(sim::FaultSite::kCycleChain, 1);
  auto& guest = bed_.vm(0).guest_scif();
  EXPECT_EQ(guest.open().status(), Status::kIoError);
  EXPECT_GE(bed_.vm(0).vm().vq().poisoned_chains(), 1u);
  EXPECT_GE(bed_.vm(0).backend().poisoned_chains(), 1u);
  // The transport survives the attack.
  EXPECT_TRUE(guest.open());
}

TEST_F(TrustRegression, OversizedSendRetRejected) {
  // Regression: send() added the backend's ret0 to its running total
  // unclamped, so a corrupted "bytes sent" larger than the chunk made the
  // byte-walk lie to the caller (and underflow the remaining length).
  auto [guest_epd, card_epd] = guest_pair(6'200);
  auto& guest = bed_.vm(0).guest_scif();
  std::uint8_t buf[64] = {};
  sim::fault_injector().arm_nth(sim::FaultSite::kCorruptResponseRet, 1);
  EXPECT_EQ(guest.send(guest_epd, buf, sizeof(buf), SCIF_SEND_BLOCK).status(),
            Status::kIoError);
  (void)card_epd;
}

TEST_F(TrustRegression, OversizedRecvRetRejected) {
  // Recv flavour of the same bug: ret0 beyond the chunk claimed data the
  // bounce buffer never held, so the copy-back handed garbage to the user.
  auto [guest_epd, card_epd] = guest_pair(6'201);
  auto& guest = bed_.vm(0).guest_scif();
  std::uint8_t b = 7;
  ASSERT_TRUE(bed_.card_provider().send(card_epd, &b, 1, SCIF_SEND_BLOCK));
  sim::fault_injector().arm_nth(sim::FaultSite::kCorruptResponseRet, 1);
  std::uint8_t got[8] = {};
  EXPECT_EQ(guest.recv(guest_epd, got, 1, SCIF_RECV_BLOCK).status(),
            Status::kIoError);
}

}  // namespace
}  // namespace vphi::core
